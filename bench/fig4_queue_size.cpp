/**
 * Figure 4 — "Queue sizes for a matrix multiply application, shown for an
 * individual queue (all queues sized equally). The dots indicate the mean
 * of each observation... The red and green lines indicate the 95th and 5th
 * percentiles respectively. The execution time increases slowly with
 * buffer sizes >= 8 MB, as well as becoming far more varied."
 *
 * This harness runs the streaming matmul application (algo/matmul.hpp)
 * with every stream statically sized to the swept capacity (dynamic
 * resizing off — the size IS the variable), repeating each configuration
 * and reporting mean / 5th / 95th percentile execution time.
 *
 * Environment knobs: RAFT_FIG4_N (matrix dim), RAFT_FIG4_TRIALS,
 * RAFT_FIG4_WIDTH (multiply-kernel replicas).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <algo/matmul.hpp>
#include <raft.hpp>

namespace {

std::size_t env_or( const char *name, const std::size_t fallback )
{
    const char *v = std::getenv( name );
    return v != nullptr ? static_cast<std::size_t>( std::atoll( v ) )
                        : fallback;
}

double run_once( const raft::algo::matrix &A,
                 const raft::algo::matrix &B,
                 const std::size_t queue_items,
                 const std::size_t width )
{
    raft::algo::matrix C( A.n );
    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::algo::mm_source>( A.n ),
        raft::kernel::make<raft::algo::mm_multiply>( &A, &B ) );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::algo::mm_sink>( &C ) );
    raft::run_options o;
    o.initial_queue_capacity = queue_items;
    o.dynamic_resize         = false; /** the size is the variable **/
    o.collect_stats          = false;
    o.replication_width      = width;
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0 )
        .count();
}

} /** end anonymous namespace **/

int main()
{
    const auto n      = env_or( "RAFT_FIG4_N", 320 );
    const auto trials = env_or( "RAFT_FIG4_TRIALS", 7 );
    const auto width  = env_or( "RAFT_FIG4_WIDTH", 2 );

    const auto A = raft::algo::matrix::random( n, 11 );
    const auto B = raft::algo::matrix::random( n, 22 );

    std::printf( "Figure 4: execution time vs per-queue buffer size "
                 "(matrix multiply, n=%zu, %zu multiply replicas, "
                 "%zu trials/point)\n",
                 n, width, trials );
    std::printf( "element = mm_tile (%zu bytes)\n\n",
                 sizeof( raft::algo::mm_tile ) );
    std::printf( "%-14s %-10s %-12s %-12s %-12s\n", "buffer_bytes",
                 "items", "mean_s", "p5_s", "p95_s" );

    /** sweep 2 items (~4 KiB) up to 8192 items (~16 MiB) **/
    for( std::size_t items = 2; items <= 8192; items *= 4 )
    {
        std::vector<double> times;
        for( std::size_t t = 0; t < trials; ++t )
        {
            times.push_back( run_once( A, B, items, width ) );
        }
        std::sort( times.begin(), times.end() );
        double mean = 0.0;
        for( const auto x : times )
        {
            mean += x;
        }
        mean /= static_cast<double>( times.size() );
        const auto pct = [ & ]( const double q ) {
            const auto idx = static_cast<std::size_t>(
                q * static_cast<double>( times.size() - 1 ) + 0.5 );
            return times[ idx ];
        };
        std::printf( "%-14zu %-10zu %-12.4f %-12.4f %-12.4f\n",
                     items * sizeof( raft::algo::mm_tile ), items,
                     mean, pct( 0.05 ), pct( 0.95 ) );
    }
    std::printf( "\npaper shape: slow at tiny buffers, flat through the "
                 "middle, slowly rising mean and widening percentiles "
                 ">= 8 MB (paging effects need the paper's 30 GB-scale "
                 "footprint; see EXPERIMENTS.md)\n" );
    return 0;
}
