/**
 * E10 — mapper speed and quality (§4.1: "No claim is made to optimality
 * for this simple algorithm, however it is fast"). Times the partitioner
 * over growing random topologies on the paper's Table 1 machine shape and
 * reports the crossing quality on structured pipelines.
 */
#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

#include <core/kernels/generate.hpp>
#include <mapping/partition.hpp>

namespace {

class stub_kernel : public raft::kernel
{
public:
    stub_kernel()
    {
        input.addPort<int>( "in" );
        output.addPort<int>( "out" );
    }
    raft::kstatus run() override { return raft::stop; }
};

struct random_app
{
    std::vector<std::unique_ptr<stub_kernel>> kernels;
    raft::topology topo;

    random_app( const std::size_t n, const std::uint64_t seed )
    {
        for( std::size_t i = 0; i < n; ++i )
        {
            kernels.push_back( std::make_unique<stub_kernel>() );
        }
        std::mt19937_64 eng( seed );
        /** pipeline backbone + random chords **/
        for( std::size_t i = 0; i + 1 < n; ++i )
        {
            topo.add_edge( raft::edge{ kernels[ i ].get(), "out",
                                       kernels[ i + 1 ].get(), "in",
                                       raft::in_order } );
        }
        std::uniform_int_distribution<std::size_t> pick( 0, n - 1 );
        for( std::size_t e = 0; e < n / 2; ++e )
        {
            const auto a = pick( eng );
            const auto b = pick( eng );
            if( a != b )
            {
                topo.add_edge( raft::edge{ kernels[ a ].get(), "out",
                                           kernels[ b ].get(), "in",
                                           raft::in_order } );
            }
        }
    }
};

void bm_partition_speed( benchmark::State &state )
{
    const auto n = static_cast<std::size_t>( state.range( 0 ) );
    random_app app( n, 42 );
    const auto machine =
        raft::mapping::machine_desc::synthetic( 1, 2, 8 );
    for( auto _ : state )
    {
        benchmark::DoNotOptimize(
            raft::mapping::partition( app.topo, machine ) );
    }
    state.SetItemsProcessed( state.iterations() *
                             static_cast<std::int64_t>( n ) );
}
BENCHMARK( bm_partition_speed )
    ->Arg( 8 )
    ->Arg( 32 )
    ->Arg( 128 )
    ->Unit( benchmark::kMicrosecond );

void bm_partition_quality_pipeline( benchmark::State &state )
{
    /** crossing count achieved on a pure pipeline (optimum is 1) **/
    const auto n = static_cast<std::size_t>( state.range( 0 ) );
    std::vector<std::unique_ptr<stub_kernel>> ks;
    raft::topology topo;
    for( std::size_t i = 0; i < n; ++i )
    {
        ks.push_back( std::make_unique<stub_kernel>() );
    }
    for( std::size_t i = 0; i + 1 < n; ++i )
    {
        topo.add_edge( raft::edge{ ks[ i ].get(), "out",
                                   ks[ i + 1 ].get(), "in",
                                   raft::in_order } );
    }
    const auto machine =
        raft::mapping::machine_desc::synthetic( 1, 2, 8 );
    std::vector<unsigned> socket_of( machine.cores.size() );
    for( const auto &c : machine.cores )
    {
        socket_of[ c.id ] = c.socket;
    }
    std::size_t crossings = 0;
    for( auto _ : state )
    {
        const auto a = raft::mapping::partition( topo, machine );
        crossings    = raft::mapping::crossing_count( topo, a, machine,
                                                      socket_of );
        benchmark::DoNotOptimize( crossings );
    }
    state.counters[ "socket_crossings" ] =
        static_cast<double>( crossings );
}
BENCHMARK( bm_partition_quality_pipeline )
    ->Arg( 16 )
    ->Arg( 64 )
    ->Unit( benchmark::kMicrosecond );

} /** end anonymous namespace **/
