/**
 * Table 1 — "Summary of Benchmarking Hardware."
 *
 * The paper reports: Intel Xeon E5-2650, 16 cores, 62 GB RAM,
 * Linux 2.6.32. This harness prints the same row for the machine the
 * reproduction actually runs on, plus the live calibration constants the
 * Figure 10 simulation uses (see DESIGN.md §3 for the substitution).
 */
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <sys/utsname.h>

namespace {

std::string cpu_model()
{
    std::ifstream f( "/proc/cpuinfo" );
    std::string line;
    while( std::getline( f, line ) )
    {
        if( line.rfind( "model name", 0 ) == 0 )
        {
            const auto colon = line.find( ':' );
            if( colon != std::string::npos )
            {
                return line.substr( colon + 2 );
            }
        }
    }
    return "unknown";
}

double ram_gb()
{
    std::ifstream f( "/proc/meminfo" );
    std::string key;
    long kb = 0;
    while( f >> key >> kb )
    {
        if( key == "MemTotal:" )
        {
            return static_cast<double>( kb ) / ( 1024.0 * 1024.0 );
        }
        std::string rest;
        std::getline( f, rest );
    }
    return 0.0;
}

} /** end anonymous namespace **/

int main()
{
    utsname u{};
    uname( &u );
    std::printf( "Table 1: Summary of Benchmarking Hardware\n" );
    std::printf( "%-18s %-8s %-10s %s\n", "Processor", "Cores", "RAM",
                 "OS Version" );
    std::printf( "%-18.18s %-8u %-7.1f GB Linux %s\n",
                 cpu_model().c_str(),
                 std::thread::hardware_concurrency(), ram_gb(),
                 u.release );
    std::printf( "\npaper reference: Intel Xeon E5-2650, 16 cores, "
                 "62 GB, Linux 2.6.32\n" );
    std::printf( "(see DESIGN.md: core counts beyond this host are "
                 "simulated via the calibrated DES)\n" );
    return 0;
}
