/**
 * E7 — ablation: round-robin vs least-utilized split strategies (§4.1).
 *
 * Replicated worker kernels with deliberately skewed service times: under
 * round-robin every replica receives the same share, so the slow replica
 * gates throughput; least-utilized routes work away from the backed-up
 * queue. Reports wall time and per-replica item counts for both
 * strategies.
 */
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

std::mutex count_mutex;
std::vector<std::size_t> replica_counts;

/** Worker whose first instance is 8x slower than its clones. */
class skewed_worker : public raft::kernel
{
public:
    explicit skewed_worker( const int generation = 0 )
        : generation_( generation )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
        {
            const std::lock_guard<std::mutex> lock( count_mutex );
            index_ = replica_counts.size();
            replica_counts.push_back( 0 );
        }
    }

    raft::kstatus run() override
    {
        auto v = input[ "0" ].pop_s<i64>();
        /** the original instance burns extra cycles per element **/
        const int spin = generation_ == 0 ? 400'000 : 4'000;
        volatile i64 acc = *v;
        for( int i = 0; i < spin; ++i )
        {
            acc = acc + i;
        }
        auto out = output[ "0" ].allocate_s<i64>();
        ( *out ) = acc;
        {
            const std::lock_guard<std::mutex> lock( count_mutex );
            ++replica_counts[ index_ ];
        }
        return raft::proceed;
    }

    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override
    {
        return new skewed_worker( generation_ + 1 );
    }

private:
    int generation_;
    std::size_t index_{ 0 };
};

double run_strategy( const raft::split_kind kind,
                     const std::size_t items,
                     const std::size_t width )
{
    replica_counts.clear();
    std::vector<i64> out;
    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::generate<i64>>(
            items, []( std::size_t i ) { return i64( i ); } ),
        raft::kernel::make<skewed_worker>() );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    raft::run_options o;
    o.replication_width      = width;
    o.split_strategy         = kind;
    o.initial_queue_capacity = 256;
    o.dynamic_resize         = false; /** isolate the strategy **/
    o.collect_stats          = false;
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0 )
                        .count();
    std::printf( "  replica item counts:" );
    for( const auto c : replica_counts )
    {
        std::printf( " %zu", c );
    }
    std::printf( "  (completed %zu items)\n", out.size() );
    return dt;
}

} /** end anonymous namespace **/

int main()
{
    constexpr std::size_t items = 3'000;
    constexpr std::size_t width = 4;
    std::printf( "Ablation: split strategies with a skewed replica "
                 "(replica 0 is 100x slower), %zu items, width %zu\n\n",
                 items, width );

    std::printf( "round-robin:\n" );
    const auto rr =
        run_strategy( raft::split_kind::round_robin, items, width );
    std::printf( "  wall: %.3f s\n\n", rr );

    std::printf( "least-utilized:\n" );
    const auto lu =
        run_strategy( raft::split_kind::least_utilized, items, width );
    std::printf( "  wall: %.3f s\n\n", lu );

    std::printf( "least-utilized / round-robin wall-time ratio: %.2f "
                 "(<1 means the utilization-aware strategy wins, §4.1)\n",
                 lu / rr );
    return 0;
}
