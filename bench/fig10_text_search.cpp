/**
 * Figure 10 — "performance of each string matching application in GB/s by
 * utilized cores", 1..16 cores, four systems: GNU-Parallel grep (green
 * diamonds), Apache Spark Boyer-Moore (red triangles), RaftLib
 * Aho-Corasick (blue circles), RaftLib Boyer-Moore-Horspool (gold
 * squares). Also §5's headline numbers (plain grep ~1.2 GB/s single
 * threaded; AC tops ~1.5, Spark ~2.8, BMH ~8 GB/s).
 *
 * Two parts (DESIGN.md §3 substitution):
 *  1. REAL execution on this host: every framework runs its actual code
 *     over the synthetic corpus at core counts up to the hardware; every
 *     count is validated against the naive oracle.
 *  2. SIMULATED 1..16-core series from the calibrated queueing-network
 *     models (sim/scaling.hpp) — live-measured service rates, memory
 *     bandwidth, spawn and pipe costs plugged into each framework's
 *     execution structure.
 *
 * Environment knobs: RAFT_FIG10_MB (corpus MiB, default 24),
 * RAFT_FIG10_FILE_GB (simulated file size, default 8).
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include <algo/corpus.hpp>
#include <baselines/minispark.hpp>
#include <baselines/pgrep.hpp>
#include <raft.hpp>
#include <sim/scaling.hpp>

namespace {

double env_or( const char *name, const double fallback )
{
    const char *v = std::getenv( name );
    return v != nullptr ? std::atof( v ) : fallback;
}

struct timer
{
    std::chrono::steady_clock::time_point t0{
        std::chrono::steady_clock::now() };
    double s() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0 )
            .count();
    }
};

template <class Algo>
std::uint64_t raft_run( const std::shared_ptr<const std::string> &corpus,
                        const std::string &pattern,
                        const std::size_t width )
{
    std::vector<raft::match_t> hits;
    raft::map map;
    auto kern_start = map.link<raft::out>(
        raft::kernel::make<raft::filereader>( corpus,
                                              pattern.size() - 1 ),
        raft::kernel::make<raft::search<Algo>>( pattern ) );
    map.link<raft::out>(
        &( kern_start.dst ),
        raft::kernel::make<raft::write_each<raft::match_t>>(
            std::back_inserter( hits ) ) );
    raft::run_options o;
    o.replication_width = width;
    o.collect_stats     = false;
    map.exe( o );
    return hits.size();
}

void print_series( const char *name,
                   const std::vector<raft::sim::scaling_point> &s )
{
    std::printf( "%-22s", name );
    for( const auto &p : s )
    {
        std::printf( " %6.2f", p.gbps );
    }
    std::printf( "\n" );
}

} /** end anonymous namespace **/

int main()
{
    const auto corpus_mb = env_or( "RAFT_FIG10_MB", 24.0 );
    const auto file_gb   = env_or( "RAFT_FIG10_FILE_GB", 8.0 );
    const std::string pattern = "volatile memory";

    raft::algo::corpus_options copt;
    copt.size_bytes = static_cast<std::size_t>( corpus_mb * 1024 * 1024 );
    copt.seed       = 0xF16;
    copt.pattern    = pattern;
    copt.implant_per_mib = 4.0;
    auto corpus = std::make_shared<const std::string>(
        raft::algo::make_corpus( copt ) );
    const auto oracle = raft::algo::oracle_count( *corpus, pattern );
    const auto gb =
        static_cast<double>( corpus->size() ) / 1e9;

    std::printf( "Figure 10: string-search throughput (GB/s) by "
                 "utilized cores\n" );
    std::printf( "corpus: %.0f MiB synthetic (paper: 30 GB Stack "
                 "Exchange dump), pattern '%s', %llu matches\n\n",
                 corpus_mb, pattern.c_str(),
                 static_cast<unsigned long long>( oracle ) );

    /* ---- part 1: real execution on this host ---- */
    const auto hw = std::max( 1u, std::thread::hardware_concurrency() );
    std::printf( "[real execution on this host, %u core(s)]\n", hw );
    std::printf( "%-22s %-7s %-9s %-8s\n", "system", "cores", "GB/s",
                 "correct" );
    for( unsigned n = 1; n <= hw; n *= 2 )
    {
        {
            timer t;
            const auto c = raft_run<raft::ahocorasick>( corpus, pattern,
                                                        n );
            std::printf( "%-22s %-7u %-9.3f %-8s\n", "raftlib-AC", n,
                         gb / t.s(), c == oracle ? "yes" : "NO" );
        }
        {
            timer t;
            const auto c = raft_run<raft::boyermoorehorspool>(
                corpus, pattern, n );
            std::printf( "%-22s %-7u %-9.3f %-8s\n", "raftlib-BMH", n,
                         gb / t.s(), c == oracle ? "yes" : "NO" );
        }
        {
            raft::baselines::pgrep_options o;
            o.jobs = n;
            timer t;
            const auto c =
                raft::baselines::pgrep_count( *corpus, pattern, o );
            std::printf( "%-22s %-7u %-9.3f %-8s\n", "pgrep(parallel)",
                         n, gb / t.s(), c == oracle ? "yes" : "NO" );
        }
        {
            raft::baselines::minispark_context ctx( n );
            raft::baselines::spark_job_options o;
            o.partition_bytes = 4u << 20;
            timer t;
            const auto c = raft::baselines::spark_search( ctx, *corpus,
                                                          pattern, o );
            std::printf( "%-22s %-7u %-9.3f %-8s\n", "minispark-BM", n,
                         gb / t.s(), c == oracle ? "yes" : "NO" );
        }
    }

    /* ---- part 2: calibrated 1..16-core simulation ---- */
    std::printf( "\n[calibrating live constants...]\n" );
    const auto cal = raft::sim::calibrate( *corpus, pattern );
    std::printf( "  memchr(grep-like) %.2f GB/s | AC %.2f | BMH %.2f | "
                 "BM %.2f\n",
                 cal.memchr_bps / 1e9, cal.ac_bps / 1e9,
                 cal.bmh_bps / 1e9, cal.bm_bps / 1e9 );
    std::printf( "  mem bw %.2f GB/s | pipe %.2f GB/s | spawn "
                 "%.1f us(thread) %.1f us(process)\n\n",
                 cal.mem_bw_bps / 1e9, cal.pipe_bw_bps / 1e9,
                 cal.thread_spawn_s * 1e6, cal.process_spawn_s * 1e6 );

    const auto fbytes = file_gb * 1e9;
    constexpr unsigned max_cores = 16;
    std::printf( "[simulated %u-core machine, %.1f GB file] "
                 "columns = cores 1..%u\n",
                 max_cores, file_gb, max_cores );
    std::printf( "%-22s", "cores" );
    for( unsigned i = 1; i <= max_cores; ++i )
    {
        std::printf( " %6u", i );
    }
    std::printf( "\n" );
    const auto pg = raft::sim::model_pgrep( cal, fbytes, max_cores );
    const auto sp = raft::sim::model_spark( cal, fbytes, max_cores );
    const auto ac =
        raft::sim::model_raft( cal, cal.ac_bps, fbytes, max_cores );
    const auto bmh =
        raft::sim::model_raft( cal, cal.bmh_bps, fbytes, max_cores );
    print_series( "gnu-parallel-grep", pg );
    print_series( "spark-BM", sp );
    print_series( "raftlib-AC", ac );
    print_series( "raftlib-BMH", bmh );

    /* ---- §5 headline comparison ---- */
    std::printf( "\n[§5 headline numbers: paper vs this reproduction]\n" );
    std::printf( "%-38s %-10s %-10s\n", "quantity", "paper",
                 "measured" );
    std::printf( "%-38s %-10s %-10.2f\n",
                 "plain grep single-core GB/s", "~1.2",
                 raft::sim::plain_grep_gbps( cal ) );
    std::printf( "%-38s %-10s %-10.2f\n", "raftlib-AC peak GB/s",
                 "~1.5", ac.back().gbps );
    std::printf( "%-38s %-10s %-10.2f\n", "spark peak GB/s", "~2.8",
                 sp.back().gbps );
    std::printf( "%-38s %-10s %-10.2f\n", "raftlib-BMH peak GB/s",
                 "~8", bmh.back().gbps );
    std::printf( "%-38s %-10s %-10.2f\n",
                 "BMH/AC peak ratio", "~5.3",
                 bmh.back().gbps / ac.back().gbps );
    std::printf( "%-38s %-10s %-10.2f\n",
                 "BMH/spark peak ratio", "~2.9",
                 bmh.back().gbps / sp.back().gbps );
    std::printf( "\nshape checks: BMH linear until the memory wall then "
                 "flat; spark near-linear; AC near-linear at lower "
                 "slope; parallel grep saturates at its single-threaded "
                 "distributor.\n" );
    return 0;
}
