/**
 * Link allocation types (§4.2: "Before a link allocation type is selected
 * (POSIX shared memory, heap allocated memory or TCP link)"): throughput
 * of the same typed stream over each transport, plus the compressed TCP
 * variant (§4.2 future work), for small and cache-line-sized elements.
 */
#include <benchmark/benchmark.h>

#include <thread>

#include <core/ringbuffer.hpp>
#include <net/shm.hpp>
#include <net/socket.hpp>
#include <net/tcp_kernels.hpp>
#include <unistd.h>

namespace {

struct big_pod
{
    std::uint64_t v[ 8 ]; /** one cache line **/
};

template <class T> T make_value( std::uint64_t i );
template <> std::uint64_t make_value<std::uint64_t>( std::uint64_t i )
{
    return i;
}
template <> big_pod make_value<big_pod>( std::uint64_t i )
{
    big_pod p{};
    p.v[ 0 ] = i;
    return p;
}

template <class T> void bm_heap_link( benchmark::State &state )
{
    constexpr std::uint64_t items = 50'000;
    for( auto _ : state )
    {
        raft::ring_buffer<T> q( 1024 );
        std::thread producer( [ & ]() {
            for( std::uint64_t i = 0; i < items; ++i )
            {
                q.push( make_value<T>( i ) );
            }
            q.close_write();
        } );
        std::uint64_t n = 0;
        try
        {
            for( ;; )
            {
                T v{};
                q.pop( v );
                ++n;
            }
        }
        catch( const raft::closed_port_exception & )
        {
        }
        producer.join();
        benchmark::DoNotOptimize( n );
    }
    state.SetBytesProcessed( state.iterations() *
                             static_cast<std::int64_t>( items ) *
                             static_cast<std::int64_t>( sizeof( T ) ) );
}

template <class T> void bm_shm_link( benchmark::State &state )
{
    constexpr std::uint64_t items = 50'000;
    int round = 0;
    for( auto _ : state )
    {
        const auto name = "/raft_bench_" + std::to_string( getpid() ) +
                          "_" + std::to_string( round++ );
        raft::net::shm_ring<T> writer(
            name, 1024, raft::net::shm_ring<T>::role::create );
        raft::net::shm_ring<T> reader(
            name, 1024, raft::net::shm_ring<T>::role::attach );
        std::thread producer( [ & ]() {
            for( std::uint64_t i = 0; i < items; ++i )
            {
                writer.push( make_value<T>( i ) );
            }
            writer.close_write();
        } );
        std::uint64_t n = 0;
        try
        {
            for( ;; )
            {
                T v{};
                reader.pop( v );
                ++n;
            }
        }
        catch( const raft::closed_port_exception & )
        {
        }
        producer.join();
        benchmark::DoNotOptimize( n );
    }
    state.SetBytesProcessed( state.iterations() *
                             static_cast<std::int64_t>( items ) *
                             static_cast<std::int64_t>( sizeof( T ) ) );
}

template <class T, bool compressed>
void bm_tcp_link( benchmark::State &state )
{
    constexpr std::uint64_t items = 20'000;
    for( auto _ : state )
    {
        raft::net::tcp_listener listener( 0 );
        std::uint64_t n = 0;
        std::thread consumer( [ & ]() {
            auto conn = listener.accept();
            if constexpr( compressed )
            {
                std::uint32_t header[ 2 ];
                std::vector<std::uint8_t> buf;
                while( conn.recv_all( header, sizeof( header ) ) &&
                       header[ 0 ] != 0 )
                {
                    buf.resize( header[ 1 ] );
                    conn.recv_all( buf.data(), buf.size() );
                    n += header[ 0 ];
                }
            }
            else
            {
                std::uint8_t sig = 0;
                T v{};
                while( conn.recv_all( &sig, 1 ) && sig != 0xFF &&
                       conn.recv_all( &v, sizeof( v ) ) )
                {
                    ++n;
                }
            }
        } );
        {
            auto conn = raft::net::tcp_connection::connect(
                "127.0.0.1", listener.port() );
            if constexpr( compressed )
            {
                /** batch of 256 elements per compressed frame **/
                std::vector<T> batch;
                for( std::uint64_t i = 0; i < items; ++i )
                {
                    batch.push_back( make_value<T>( i ) );
                    if( batch.size() == 256 || i + 1 == items )
                    {
                        std::vector<std::uint8_t> raw(
                            batch.size() * sizeof( T ) );
                        std::memcpy( raw.data(), batch.data(),
                                     raw.size() );
                        const auto packed = raft::net::rle_compress(
                            raw.data(), raw.size() );
                        const std::uint32_t header[ 2 ] = {
                            static_cast<std::uint32_t>( batch.size() ),
                            static_cast<std::uint32_t>( packed.size() )
                        };
                        conn.send_all( header, sizeof( header ) );
                        conn.send_all( packed.data(), packed.size() );
                        batch.clear();
                    }
                }
                const std::uint32_t eof[ 2 ] = { 0, 0 };
                conn.send_all( eof, sizeof( eof ) );
            }
            else
            {
                for( std::uint64_t i = 0; i < items; ++i )
                {
                    const std::uint8_t sig = 0;
                    const auto v           = make_value<T>( i );
                    conn.send_all( &sig, 1 );
                    conn.send_all( &v, sizeof( v ) );
                }
                const std::uint8_t eof = 0xFF;
                conn.send_all( &eof, 1 );
            }
            conn.shutdown_write();
        }
        consumer.join();
        benchmark::DoNotOptimize( n );
    }
    state.SetBytesProcessed( state.iterations() *
                             static_cast<std::int64_t>( items ) *
                             static_cast<std::int64_t>( sizeof( T ) ) );
}

void bm_heap_u64( benchmark::State &s ) { bm_heap_link<std::uint64_t>( s ); }
void bm_heap_cacheline( benchmark::State &s ) { bm_heap_link<big_pod>( s ); }
void bm_shm_u64( benchmark::State &s ) { bm_shm_link<std::uint64_t>( s ); }
void bm_shm_cacheline( benchmark::State &s ) { bm_shm_link<big_pod>( s ); }
void bm_tcp_u64( benchmark::State &s )
{
    bm_tcp_link<std::uint64_t, false>( s );
}
void bm_tcp_u64_compressed( benchmark::State &s )
{
    bm_tcp_link<std::uint64_t, true>( s );
}

BENCHMARK( bm_heap_u64 )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_heap_cacheline )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_shm_u64 )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_shm_cacheline )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_tcp_u64 )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_tcp_u64_compressed )->Unit( benchmark::kMillisecond );

} /** end anonymous namespace **/
