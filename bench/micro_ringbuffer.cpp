/**
 * Substrate micro-benchmark: raw SPSC ring-buffer throughput (E13).
 * Measures the per-element cost of the lock-free fast path — push/pop in
 * a single thread (no contention) and across a real producer/consumer
 * pair — plus the cost of a resize, and the batched window primitives
 * against their scalar equivalents.
 *
 * Modes:
 *   (default)  google-benchmark suite
 *   --quick    fast scalar-vs-batched A/B, emits one JSON object on
 *              stdout (consumed by the bench_smoke ctest entry and
 *              checked into BENCH_fifo_bulk.json)
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <thread>
#include <vector>

#include <core/ringbuffer.hpp>

namespace {

void bm_push_pop_single_thread( benchmark::State &state )
{
    raft::ring_buffer<std::uint64_t> q(
        static_cast<std::size_t>( state.range( 0 ) ) );
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        q.push( i++ );
        std::uint64_t v = 0;
        q.pop( v );
        benchmark::DoNotOptimize( v );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_push_pop_single_thread )->Arg( 8 )->Arg( 64 )->Arg( 4096 );

void bm_try_push_pop( benchmark::State &state )
{
    raft::ring_buffer<std::uint64_t> q( 64 );
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        benchmark::DoNotOptimize( q.try_push( i++ ) );
        std::uint64_t v = 0;
        benchmark::DoNotOptimize( q.try_pop( v ) );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_try_push_pop );

/** Batched counterpart of bm_try_push_pop: one try_push_n/try_pop_n
 *  handshake moves `batch` elements. Items/sec is the comparable unit. */
void bm_try_push_pop_n( benchmark::State &state )
{
    const auto batch = static_cast<std::size_t>( state.range( 0 ) );
    raft::ring_buffer<std::uint64_t> q( 256 );
    std::vector<std::uint64_t> src( batch ), dst( batch );
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        for( auto &v : src )
        {
            v = i++;
        }
        benchmark::DoNotOptimize( q.try_push_n( src.data(), batch ) );
        benchmark::DoNotOptimize( q.try_pop_n( dst.data(), batch ) );
    }
    state.SetItemsProcessed( state.iterations() *
                             static_cast<std::int64_t>( batch ) );
}
BENCHMARK( bm_try_push_pop_n )->Arg( 4 )->Arg( 16 )->Arg( 64 );

/** Zero-copy windows: claim `batch` slots, write in place, publish once;
 *  then consume through a read window. */
void bm_window_push_pop( benchmark::State &state )
{
    const auto batch = static_cast<std::size_t>( state.range( 0 ) );
    raft::ring_buffer<std::uint64_t> q( 256 );
    q.set_auto_resize( false );
    std::uint64_t i   = 0;
    std::uint64_t sum = 0;
    for( auto _ : state )
    {
        {
            auto w = q.write_window( batch );
            for( std::size_t j = 0; j < w.size(); ++j )
            {
                w[ j ] = i++;
            }
        }
        {
            auto r = q.read_window( batch );
            for( std::size_t j = 0; j < r.size(); ++j )
            {
                sum += r[ j ];
            }
        }
        benchmark::DoNotOptimize( sum );
    }
    state.SetItemsProcessed( state.iterations() *
                             static_cast<std::int64_t>( batch ) );
}
BENCHMARK( bm_window_push_pop )->Arg( 4 )->Arg( 16 )->Arg( 64 );

void bm_spsc_threaded( benchmark::State &state )
{
    const auto cap = static_cast<std::size_t>( state.range( 0 ) );
    for( auto _ : state )
    {
        state.PauseTiming();
        raft::ring_buffer<std::uint64_t> q( cap );
        constexpr std::uint64_t items = 100'000;
        state.ResumeTiming();
        std::thread producer( [ & ]() {
            for( std::uint64_t i = 0; i < items; ++i )
            {
                q.push( i + 0 );
            }
            q.close_write();
        } );
        std::uint64_t sum = 0;
        try
        {
            for( ;; )
            {
                std::uint64_t v = 0;
                q.pop( v );
                sum += v;
            }
        }
        catch( const raft::closed_port_exception & )
        {
        }
        producer.join();
        benchmark::DoNotOptimize( sum );
        state.SetItemsProcessed( state.items_processed() +
                                 static_cast<std::int64_t>( items ) );
    }
}
BENCHMARK( bm_spsc_threaded )
    ->Arg( 16 )
    ->Arg( 256 )
    ->Arg( 4096 )
    ->Unit( benchmark::kMillisecond );

/** Threaded SPSC moving data through windows on both ends. */
void bm_spsc_threaded_window( benchmark::State &state )
{
    const auto batch = static_cast<std::size_t>( state.range( 0 ) );
    for( auto _ : state )
    {
        state.PauseTiming();
        raft::ring_buffer<std::uint64_t> q( 4096 );
        constexpr std::uint64_t items = 100'000;
        state.ResumeTiming();
        std::thread producer( [ & ]() {
            std::uint64_t i = 0;
            while( i < items )
            {
                auto w = q.write_window( std::min<std::uint64_t>(
                    batch, items - i ) );
                for( std::size_t j = 0; j < w.size(); ++j )
                {
                    w[ j ] = i++;
                }
            }
            q.close_write();
        } );
        std::uint64_t sum = 0;
        try
        {
            for( ;; )
            {
                auto r = q.read_window( batch );
                for( std::size_t j = 0; j < r.size(); ++j )
                {
                    sum += r[ j ];
                }
            }
        }
        catch( const raft::closed_port_exception & )
        {
        }
        producer.join();
        benchmark::DoNotOptimize( sum );
        state.SetItemsProcessed( state.items_processed() +
                                 static_cast<std::int64_t>( items ) );
    }
}
BENCHMARK( bm_spsc_threaded_window )
    ->Arg( 16 )
    ->Arg( 64 )
    ->Unit( benchmark::kMillisecond );

void bm_resize_cost( benchmark::State &state )
{
    const auto occupancy = static_cast<std::size_t>( state.range( 0 ) );
    for( auto _ : state )
    {
        state.PauseTiming();
        raft::ring_buffer<std::uint64_t> q( occupancy * 2 );
        for( std::size_t i = 0; i < occupancy; ++i )
        {
            q.push( i );
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize( q.resize( occupancy * 4 ) );
    }
}
BENCHMARK( bm_resize_cost )->Arg( 64 )->Arg( 1024 )->Arg( 16384 );

/* ------------------------------------------------------------------ */
/* --quick A/B mode                                                     */
/* ------------------------------------------------------------------ */

double ns_per_item_best_of( const int reps, const std::size_t items,
                            void ( *body )( std::size_t ) )
{
    double best = 0.0;
    for( int r = 0; r < reps; ++r )
    {
        const auto t0 = std::chrono::steady_clock::now();
        body( items );
        const auto t1 = std::chrono::steady_clock::now();
        const auto ns =
            std::chrono::duration<double, std::nano>( t1 - t0 ).count() /
            static_cast<double>( items );
        if( r == 0 || ns < best )
        {
            best = ns;
        }
    }
    return best;
}

constexpr std::size_t ab_cap   = 256;
constexpr std::size_t ab_batch = 64;

void ab_scalar_single( const std::size_t items )
{
    raft::ring_buffer<std::uint64_t> q( ab_cap );
    q.set_auto_resize( false );
    std::uint64_t i   = 0;
    std::uint64_t sum = 0;
    while( i < items )
    {
        for( std::size_t j = 0; j < ab_batch; ++j )
        {
            q.push( i++ );
        }
        for( std::size_t j = 0; j < ab_batch; ++j )
        {
            std::uint64_t v = 0;
            q.pop( v );
            sum += v;
        }
    }
    benchmark::DoNotOptimize( sum );
}

void ab_batched_single( const std::size_t items )
{
    raft::ring_buffer<std::uint64_t> q( ab_cap );
    q.set_auto_resize( false );
    std::uint64_t i   = 0;
    std::uint64_t sum = 0;
    while( i < items )
    {
        {
            auto w = q.write_window( ab_batch );
            for( std::size_t j = 0; j < w.size(); ++j )
            {
                w[ j ] = i++;
            }
        }
        {
            auto r = q.read_window( ab_batch );
            for( std::size_t j = 0; j < r.size(); ++j )
            {
                sum += r[ j ];
            }
        }
    }
    benchmark::DoNotOptimize( sum );
}

void ab_scalar_threaded( const std::size_t items )
{
    raft::ring_buffer<std::uint64_t> q( 1024 );
    q.set_auto_resize( false );
    std::thread producer( [ & ]() {
        for( std::uint64_t i = 0; i < items; ++i )
        {
            q.push( i );
        }
        q.close_write();
    } );
    std::uint64_t sum = 0;
    try
    {
        for( ;; )
        {
            std::uint64_t v = 0;
            q.pop( v );
            sum += v;
        }
    }
    catch( const raft::closed_port_exception & )
    {
    }
    producer.join();
    benchmark::DoNotOptimize( sum );
}

void ab_batched_threaded( const std::size_t items )
{
    raft::ring_buffer<std::uint64_t> q( 1024 );
    q.set_auto_resize( false );
    std::thread producer( [ & ]() {
        std::uint64_t i = 0;
        while( i < items )
        {
            auto w = q.write_window(
                std::min<std::size_t>( ab_batch, items - i ) );
            for( std::size_t j = 0; j < w.size(); ++j )
            {
                w[ j ] = i++;
            }
        }
        q.close_write();
    } );
    std::uint64_t sum = 0;
    try
    {
        for( ;; )
        {
            auto r = q.read_window( ab_batch );
            for( std::size_t j = 0; j < r.size(); ++j )
            {
                sum += r[ j ];
            }
        }
    }
    catch( const raft::closed_port_exception & )
    {
    }
    producer.join();
    benchmark::DoNotOptimize( sum );
}

int run_quick_ab()
{
    constexpr int reps               = 3;
    constexpr std::size_t st_items   = std::size_t{ 1 } << 22;
    constexpr std::size_t spsc_items = std::size_t{ 1 } << 20;

    const auto st_scalar =
        ns_per_item_best_of( reps, st_items, ab_scalar_single );
    const auto st_batched =
        ns_per_item_best_of( reps, st_items, ab_batched_single );
    const auto th_scalar =
        ns_per_item_best_of( reps, spsc_items, ab_scalar_threaded );
    const auto th_batched =
        ns_per_item_best_of( reps, spsc_items, ab_batched_threaded );

    std::printf(
        "{\n"
        "  \"bench\": \"fifo_bulk_ab\",\n"
        "  \"batch\": %zu,\n"
        "  \"single_thread\": {\n"
        "    \"capacity\": %zu,\n"
        "    \"items\": %zu,\n"
        "    \"scalar_ns_per_item\": %.3f,\n"
        "    \"batched_ns_per_item\": %.3f,\n"
        "    \"speedup\": %.3f\n"
        "  },\n"
        "  \"threaded_spsc\": {\n"
        "    \"capacity\": 1024,\n"
        "    \"items\": %zu,\n"
        "    \"scalar_ns_per_item\": %.3f,\n"
        "    \"batched_ns_per_item\": %.3f,\n"
        "    \"speedup\": %.3f\n"
        "  }\n"
        "}\n",
        ab_batch, ab_cap, st_items, st_scalar, st_batched,
        st_scalar / st_batched, spsc_items, th_scalar, th_batched,
        th_scalar / th_batched );
    return 0;
}

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    for( int i = 1; i < argc; ++i )
    {
        if( std::string_view( argv[ i ] ) == "--quick" )
        {
            return run_quick_ab();
        }
    }
    benchmark::Initialize( &argc, argv );
    if( benchmark::ReportUnrecognizedArguments( argc, argv ) )
    {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
