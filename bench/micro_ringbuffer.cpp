/**
 * Substrate micro-benchmark: raw SPSC ring-buffer throughput (E13).
 * Measures the per-element cost of the lock-free fast path — push/pop in
 * a single thread (no contention) and across a real producer/consumer
 * pair — plus the cost of a resize.
 */
#include <benchmark/benchmark.h>

#include <thread>

#include <core/ringbuffer.hpp>

namespace {

void bm_push_pop_single_thread( benchmark::State &state )
{
    raft::ring_buffer<std::uint64_t> q(
        static_cast<std::size_t>( state.range( 0 ) ) );
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        q.push( i++ );
        std::uint64_t v = 0;
        q.pop( v );
        benchmark::DoNotOptimize( v );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_push_pop_single_thread )->Arg( 8 )->Arg( 64 )->Arg( 4096 );

void bm_try_push_pop( benchmark::State &state )
{
    raft::ring_buffer<std::uint64_t> q( 64 );
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        benchmark::DoNotOptimize( q.try_push( i++ ) );
        std::uint64_t v = 0;
        benchmark::DoNotOptimize( q.try_pop( v ) );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_try_push_pop );

void bm_spsc_threaded( benchmark::State &state )
{
    const auto cap = static_cast<std::size_t>( state.range( 0 ) );
    for( auto _ : state )
    {
        state.PauseTiming();
        raft::ring_buffer<std::uint64_t> q( cap );
        constexpr std::uint64_t items = 100'000;
        state.ResumeTiming();
        std::thread producer( [ & ]() {
            for( std::uint64_t i = 0; i < items; ++i )
            {
                q.push( i + 0 );
            }
            q.close_write();
        } );
        std::uint64_t sum = 0;
        try
        {
            for( ;; )
            {
                std::uint64_t v = 0;
                q.pop( v );
                sum += v;
            }
        }
        catch( const raft::closed_port_exception & )
        {
        }
        producer.join();
        benchmark::DoNotOptimize( sum );
        state.SetItemsProcessed( state.items_processed() +
                                 static_cast<std::int64_t>( items ) );
    }
}
BENCHMARK( bm_spsc_threaded )
    ->Arg( 16 )
    ->Arg( 256 )
    ->Arg( 4096 )
    ->Unit( benchmark::kMillisecond );

void bm_resize_cost( benchmark::State &state )
{
    const auto occupancy = static_cast<std::size_t>( state.range( 0 ) );
    for( auto _ : state )
    {
        state.PauseTiming();
        raft::ring_buffer<std::uint64_t> q( occupancy * 2 );
        for( std::size_t i = 0; i < occupancy; ++i )
        {
            q.push( i );
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize( q.resize( occupancy * 4 ) );
    }
}
BENCHMARK( bm_resize_cost )->Arg( 64 )->Arg( 1024 )->Arg( 16384 );

} /** end anonymous namespace **/
