/**
 * E11 — ablation: monitoring overhead (§4.1: "The data collection process
 * itself is optimized to reduce overhead"). Runs the same pipeline with
 * (a) no monitor, (b) resize-only, (c) full statistics collection, across
 * monitor δ values, and reports the wall-time penalty of instrumentation.
 */
#include <chrono>
#include <cstdio>
#include <iterator>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

double run_once( const bool dynamic_resize, const bool collect_stats,
                 const std::chrono::nanoseconds delta )
{
    const std::size_t items = 400'000;
    std::vector<i64> out;
    out.reserve( items );
    raft::map m;
    auto p = m.link(
        raft::kernel::make<raft::generate<i64>>(
            items, []( std::size_t i ) { return i64( i ); } ),
        raft::kernel::make<raft::write_each<i64>>(
            std::back_inserter( out ) ) );
    (void) p;
    raft::run_options o;
    /** queue big enough that resizing never fires: what remains is the
     *  pure instrumentation cost **/
    o.initial_queue_capacity = 1u << 16;
    o.dynamic_resize = dynamic_resize;
    o.collect_stats  = collect_stats;
    o.monitor_delta  = delta;
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0 )
        .count();
}

double best_of( const int reps, const bool resize, const bool stats,
                const std::chrono::nanoseconds delta )
{
    double best = 1e9;
    for( int r = 0; r < reps; ++r )
    {
        best = std::min( best, run_once( resize, stats, delta ) );
    }
    return best;
}

} /** end anonymous namespace **/

int main()
{
    using namespace std::chrono_literals;
    constexpr int reps = 5;
    std::printf( "Ablation: monitor overhead on a 400k-element "
                 "pipeline (best of %d runs)\n\n", reps );
    std::printf( "%-34s %-10s %-10s\n", "configuration", "wall_s",
                 "overhead" );

    const auto off = best_of( reps, false, false, 10us );
    std::printf( "%-34s %-10.4f %-10s\n", "monitor off", off, "-" );

    struct row
    {
        const char *name;
        bool resize;
        bool stats;
        std::chrono::nanoseconds delta;
    };
    const row rows[] = {
        { "resize-only, delta=10us", true, false, 10us },
        { "resize+stats, delta=10us", true, true, 10us },
        { "resize+stats, delta=100us", true, true, 100us },
        { "resize+stats, delta=1ms", true, true, 1ms },
    };
    for( const auto &r : rows )
    {
        const auto t = best_of( reps, r.resize, r.stats, r.delta );
        std::printf( "%-34s %-10.4f %+.1f%%\n", r.name, t,
                     ( t - off ) / off * 100.0 );
    }
    std::printf( "\nnote: on this single-core host the monitor thread "
                 "steals cycles from the pipeline itself, so the "
                 "delta=10us overhead is inflated; on a multicore (the "
                 "paper's setting) the monitor runs beside the "
                 "pipeline and the residual cost is the per-stream "
                 "sampling shown shrinking with delta above.\n" );
    return 0;
}
