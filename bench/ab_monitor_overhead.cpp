/**
 * E11 — ablation: monitoring overhead (§4.1: "The data collection process
 * itself is optimized to reduce overhead"). Runs the same pipeline with
 * (a) no monitor, (b) resize-only, (c) full statistics collection, across
 * monitor δ values, and reports the wall-time penalty of instrumentation.
 *
 * Extended with the elastic-runtime A/B (runtime/elastic/):
 *   - control-loop overhead: the same pipeline with the elastic controller
 *     riding the monitor thread vs. plain monitoring (target < 2%);
 *   - skewed-pipeline speedup: a slow clonable middle kernel under the
 *     elastic controller (replicas activated online) vs. a static single
 *     replica. Sleeping replicas overlap even on one core, so the speedup
 *     is visible on this single-core host.
 *
 * `--quick` emits the two A/Bs as one JSON object (checked in as
 * BENCH_elastic.json and smoke-validated by ctest -L bench_smoke).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <thread>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

double run_once( const bool dynamic_resize, const bool collect_stats,
                 const std::chrono::nanoseconds delta )
{
    const std::size_t items = 400'000;
    std::vector<i64> out;
    out.reserve( items );
    raft::map m;
    auto p = m.link(
        raft::kernel::make<raft::generate<i64>>(
            items, []( std::size_t i ) { return i64( i ); } ),
        raft::kernel::make<raft::write_each<i64>>(
            std::back_inserter( out ) ) );
    (void) p;
    raft::run_options o;
    /** queue big enough that resizing never fires: what remains is the
     *  pure instrumentation cost **/
    o.initial_queue_capacity = 1u << 16;
    o.dynamic_resize = dynamic_resize;
    o.collect_stats  = collect_stats;
    o.monitor_delta  = delta;
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0 )
        .count();
}

double best_of( const int reps, const bool resize, const bool stats,
                const std::chrono::nanoseconds delta )
{
    double best = 1e9;
    for( int r = 0; r < reps; ++r )
    {
        best = std::min( best, run_once( resize, stats, delta ) );
    }
    return best;
}

/* ------------------------------------------------------------------ */
/* elastic runtime A/B                                                  */
/* ------------------------------------------------------------------ */

/** Same pipeline as run_once, with the elastic controller attached (it
 *  finds no replica group here, so what is measured is the pure cost of
 *  the control loop: per-δ stream probes + per-period estimate/policy). */
double run_elastic_overhead_once( const bool elastic )
{
    const std::size_t items = 2'000'000;
    std::vector<i64> out;
    out.reserve( items );
    raft::map m;
    auto p = m.link(
        raft::kernel::make<raft::generate<i64>>(
            items, []( std::size_t i ) { return i64( i ); } ),
        raft::kernel::make<raft::write_each<i64>>(
            std::back_inserter( out ) ) );
    (void) p;
    raft::run_options o;
    o.initial_queue_capacity = 1u << 16;
    o.monitor_delta          = std::chrono::microseconds( 10 );
    o.elastic.enabled        = elastic;
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0 )
        .count();
}

/** Slow clonable middle kernel: fixed per-element service time. */
class sleepy_worker : public raft::kernel
{
public:
    explicit sleepy_worker( const std::chrono::microseconds delay )
        : delay_( delay )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
    }
    raft::kstatus run() override
    {
        auto v = input[ "0" ].pop_s<i64>();
        std::this_thread::sleep_for( delay_ );
        auto out = output[ "0" ].allocate_s<i64>();
        ( *out ) = *v;
        return raft::proceed;
    }
    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override
    {
        return new sleepy_worker( delay_ );
    }

private:
    std::chrono::microseconds delay_;
};

/** Skewed pipeline: fast source → 300 µs/element worker → sink. Elastic
 *  mode pre-provisions 4 lanes and lets the controller activate them;
 *  static mode runs the paper-default single replica. */
double run_skewed_once( const bool elastic, const std::size_t items,
                        std::size_t *peak_active )
{
    std::vector<i64> out;
    out.reserve( items );
    raft::runtime::elastic_report rep;
    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::generate<i64>>(
            items, []( std::size_t i ) { return i64( i ); } ),
        raft::kernel::make<sleepy_worker>(
            std::chrono::microseconds( 300 ) ) );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    raft::run_options o;
    o.enable_auto_parallel = true;
    if( elastic )
    {
        o.elastic.enabled        = true;
        o.elastic.max_replicas   = 4;
        o.elastic.control_period = std::chrono::milliseconds( 2 );
        o.elastic.hysteresis     = 2;
        o.elastic.report_out     = &rep;
    }
    else
    {
        o.replication_width = 1; /** static single replica **/
    }
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    const auto wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0 )
                          .count();
    if( peak_active != nullptr )
    {
        *peak_active =
            rep.groups.empty() ? 1 : rep.groups[ 0 ].peak_active;
    }
    return wall;
}

struct elastic_ab_result
{
    double base_wall{ 0.0 };
    double elastic_wall{ 0.0 };
    double overhead_pct{ 0.0 };
    std::size_t skew_items{ 0 };
    double static_wall{ 0.0 };
    double adaptive_wall{ 0.0 };
    double speedup{ 0.0 };
    std::size_t peak_active{ 1 };
};

elastic_ab_result run_elastic_ab( const int reps )
{
    elastic_ab_result r;
    r.base_wall    = 1e9;
    r.elastic_wall = 1e9;
    /** the control-loop cost (~1%) is below this host's run-to-run noise
     *  (±3%), so measure back-to-back pairs — alternating which config
     *  goes first, since the second run of a pair is cache-warm — and
     *  take the median of the per-pair overheads, robust where best-of
     *  is not **/
    std::vector<double> overheads;
    for( int i = 0; i < reps; ++i )
    {
        double b = 0.0, e = 0.0;
        if( ( i & 1 ) == 0 )
        {
            b = run_elastic_overhead_once( false );
            e = run_elastic_overhead_once( true );
        }
        else
        {
            e = run_elastic_overhead_once( true );
            b = run_elastic_overhead_once( false );
        }
        r.base_wall    = std::min( r.base_wall, b );
        r.elastic_wall = std::min( r.elastic_wall, e );
        overheads.push_back( ( e - b ) / b * 100.0 );
    }
    std::sort( overheads.begin(), overheads.end() );
    r.overhead_pct = overheads[ overheads.size() / 2 ];

    r.skew_items    = 600;
    r.static_wall   = 1e9;
    r.adaptive_wall = 1e9;
    for( int i = 0; i < reps; ++i )
    {
        r.static_wall = std::min(
            r.static_wall, run_skewed_once( false, r.skew_items,
                                            nullptr ) );
        std::size_t peak = 1;
        const auto w = run_skewed_once( true, r.skew_items, &peak );
        if( w < r.adaptive_wall )
        {
            r.adaptive_wall = w;
            r.peak_active   = peak;
        }
    }
    r.speedup = r.static_wall / r.adaptive_wall;
    return r;
}

int run_quick()
{
    const auto r = run_elastic_ab( 9 );
    std::printf( "{\n" );
    std::printf( "  \"elastic\":\n  {\n" );
    std::printf( "    \"bench\": \"elastic_ab\",\n" );
    std::printf( "    \"control_loop_overhead\": {\n" );
    std::printf( "      \"items\": 2000000,\n" );
    std::printf( "      \"monitor_wall_s\": %.4f,\n", r.base_wall );
    std::printf( "      \"elastic_wall_s\": %.4f,\n", r.elastic_wall );
    std::printf( "      \"overhead_pct\": %.2f\n", r.overhead_pct );
    std::printf( "    },\n" );
    std::printf( "    \"skewed_pipeline\": {\n" );
    std::printf( "      \"items\": %zu,\n", r.skew_items );
    std::printf( "      \"service_us\": 300,\n" );
    std::printf( "      \"max_replicas\": 4,\n" );
    std::printf( "      \"static_wall_s\": %.4f,\n", r.static_wall );
    std::printf( "      \"elastic_wall_s\": %.4f,\n", r.adaptive_wall );
    std::printf( "      \"peak_active\": %zu,\n", r.peak_active );
    std::printf( "      \"speedup\": %.3f\n", r.speedup );
    std::printf( "    }\n" );
    std::printf( "  }\n" );
    std::printf( "}\n" );
    return 0;
}

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    if( argc > 1 && std::strcmp( argv[ 1 ], "--quick" ) == 0 )
    {
        return run_quick();
    }
    using namespace std::chrono_literals;
    constexpr int reps = 5;
    std::printf( "Ablation: monitor overhead on a 400k-element "
                 "pipeline (best of %d runs)\n\n", reps );
    std::printf( "%-34s %-10s %-10s\n", "configuration", "wall_s",
                 "overhead" );

    const auto off = best_of( reps, false, false, 10us );
    std::printf( "%-34s %-10.4f %-10s\n", "monitor off", off, "-" );

    struct row
    {
        const char *name;
        bool resize;
        bool stats;
        std::chrono::nanoseconds delta;
    };
    const row rows[] = {
        { "resize-only, delta=10us", true, false, 10us },
        { "resize+stats, delta=10us", true, true, 10us },
        { "resize+stats, delta=100us", true, true, 100us },
        { "resize+stats, delta=1ms", true, true, 1ms },
    };
    for( const auto &r : rows )
    {
        const auto t = best_of( reps, r.resize, r.stats, r.delta );
        std::printf( "%-34s %-10.4f %+.1f%%\n", r.name, t,
                     ( t - off ) / off * 100.0 );
    }
    std::printf( "\nnote: on this single-core host the monitor thread "
                 "steals cycles from the pipeline itself, so the "
                 "delta=10us overhead is inflated; on a multicore (the "
                 "paper's setting) the monitor runs beside the "
                 "pipeline and the residual cost is the per-stream "
                 "sampling shown shrinking with delta above.\n" );

    std::printf( "\nElastic runtime A/B (best of %d runs)\n\n", reps );
    const auto e = run_elastic_ab( reps );
    std::printf( "%-34s %-10.4f\n", "monitor only", e.base_wall );
    std::printf( "%-34s %-10.4f %+.1f%%\n", "monitor + elastic controller",
                 e.elastic_wall, e.overhead_pct );
    std::printf( "\nskewed pipeline (%zu items, 300us service)\n",
                 e.skew_items );
    std::printf( "%-34s %-10.4f\n", "static 1 replica", e.static_wall );
    std::printf( "%-34s %-10.4f %.2fx (peak %zu replicas)\n",
                 "elastic (max 4)", e.adaptive_wall, e.speedup,
                 e.peak_active );
    return 0;
}
