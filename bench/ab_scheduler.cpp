/**
 * Ablation: scheduler substitution (§4.1: "RaftLib, of course, allows the
 * substitution of any scheduler desired"; cache-conscious scheduling of
 * pipelined computations is the anticipated follow-on [3]).
 *
 * The same 4-stage pipeline under the default thread-per-kernel
 * scheduler, the cooperative pool (1 invocation per dispatch), and the
 * pool with batched dispatch — batching keeps a kernel's code and queue
 * segment cache-hot across consecutive elements.
 */
#include <chrono>
#include <cstdio>
#include <iterator>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

raft::kernel *make_stage()
{
    return raft::kernel::make<raft::lambdak<i64>>(
        1, 1, []( raft::Port &in, raft::Port &out ) {
            auto v           = in[ "0" ].pop_s<i64>();
            volatile i64 acc = *v;
            for( int i = 0; i < 60; ++i )
            {
                acc = acc + i;
            }
            out[ "0" ].push<i64>( static_cast<i64>( acc ) );
        } );
}

double run_once( const raft::run_options &opts )
{
    const std::size_t items = 150'000;
    std::vector<i64> out;
    out.reserve( items );
    raft::map m;
    auto a = m.link( raft::kernel::make<raft::generate<i64>>(
                         items,
                         []( std::size_t i ) { return i64( i ); } ),
                     make_stage() );
    auto b = m.link( &( a.dst ), make_stage() );
    auto c = m.link( &( b.dst ), make_stage() );
    m.link( &( c.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( opts );
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0 )
        .count();
}

double best_of( const int reps, const raft::run_options &opts )
{
    double best = 1e9;
    for( int r = 0; r < reps; ++r )
    {
        best = std::min( best, run_once( opts ) );
    }
    return best;
}

} /** end anonymous namespace **/

int main()
{
    std::printf( "Ablation: scheduler substitution on a 5-kernel "
                 "pipeline, 150k elements (best of 3)\n\n" );
    std::printf( "%-38s %-10s %s\n", "scheduler", "wall_s",
                 "vs default" );

    raft::run_options base;
    base.collect_stats  = false;
    base.dynamic_resize = true;

    auto thread_opts      = base;
    thread_opts.scheduler = raft::scheduler_kind::thread_per_kernel;
    const auto t_thread   = best_of( 3, thread_opts );
    std::printf( "%-38s %-10.3f %s\n", "thread-per-kernel (default)",
                 t_thread, "-" );

    for( const std::size_t batch : { 1u, 16u, 256u } )
    {
        auto pool_opts            = base;
        pool_opts.scheduler       = raft::scheduler_kind::pool;
        pool_opts.pool_threads    = 2;
        pool_opts.pool_batch_size = batch;
        const auto t              = best_of( 3, pool_opts );
        std::printf( "pool (2 workers, batch %-4zu)           %-10.3f "
                     "%+.1f%%\n",
                     batch, t, ( t - t_thread ) / t_thread * 100.0 );
    }
    std::printf( "\nbatched dispatch amortizes the pool's readiness "
                 "scan and keeps each kernel's stream segment cache-"
                 "resident — the direction of cache-conscious pipeline "
                 "scheduling the paper anticipates.\n" );
    return 0;
}
