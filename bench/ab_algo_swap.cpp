/**
 * E14 — ablation: runtime algorithm swapping via synonymous kernel
 * groupings (§4.2 / §5).
 *
 * §5 observes that manually replacing Aho–Corasick with
 * Boyer–Moore–Horspool "improved [performance] drastically", and notes
 * the runtime can do that swap automatically ("RaftLib has the ability to
 * quickly swap out algorithms during execution, this was disabled for
 * this benchmark"). This harness enables it: the same search pipeline run
 * with (a) AC pinned, (b) BMH pinned, (c) a synonym group holding both,
 * probed and committed by the runtime. The adaptive run should land near
 * the better algorithm's time, paying only the probe window.
 */
#include <chrono>
#include <cstdio>
#include <iterator>
#include <memory>
#include <vector>

#include <algo/corpus.hpp>
#include <raft.hpp>

namespace {

struct outcome
{
    double wall_s;
    std::uint64_t matches;
    std::string committed;
};

template <class KernelMaker>
outcome run_pipeline( const std::shared_ptr<const std::string> &corpus,
                      const std::string &pattern, KernelMaker make_k )
{
    std::vector<raft::match_t> hits;
    raft::map m;
    raft::kernel *k = make_k();
    auto p          = m.link(
        raft::kernel::make<raft::filereader>( corpus,
                                              pattern.size() - 1 ),
        k );
    m.link( &( p.dst ),
            raft::kernel::make<raft::write_each<raft::match_t>>(
                std::back_inserter( hits ) ) );
    raft::run_options o;
    o.collect_stats = false;
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0 )
                        .count();
    std::string committed;
    if( auto *g = dynamic_cast<raft::synonym_kernel *>( k ) )
    {
        committed = g->active_name();
    }
    return outcome{ dt, hits.size(), committed };
}

} /** end anonymous namespace **/

int main()
{
    const std::string pattern = "pipeline parallel";
    raft::algo::corpus_options copt;
    copt.size_bytes      = 24u << 20;
    copt.pattern         = pattern;
    copt.implant_per_mib = 4.0;
    auto corpus = std::make_shared<const std::string>(
        raft::algo::make_corpus( copt ) );
    const auto oracle = raft::algo::oracle_count( *corpus, pattern );

    std::printf( "Ablation: runtime algorithm swap (synonym kernels, "
                 "§4.2) on a %zu MiB corpus\n\n",
                 corpus->size() >> 20 );
    std::printf( "%-26s %-10s %-10s %-9s %s\n", "configuration",
                 "wall_s", "GB/s", "correct", "committed-to" );
    const auto gb = static_cast<double>( corpus->size() ) / 1e9;

    const auto ac = run_pipeline( corpus, pattern, [ & ]() {
        return raft::kernel::make<raft::search<raft::ahocorasick>>(
            pattern );
    } );
    std::printf( "%-26s %-10.3f %-10.2f %-9s %s\n", "aho-corasick only",
                 ac.wall_s, gb / ac.wall_s,
                 ac.matches == oracle ? "yes" : "NO", "-" );

    const auto bmh = run_pipeline( corpus, pattern, [ & ]() {
        return raft::kernel::make<
            raft::search<raft::boyermoorehorspool>>( pattern );
    } );
    std::printf( "%-26s %-10.3f %-10.2f %-9s %s\n",
                 "boyer-moore-horspool only", bmh.wall_s,
                 gb / bmh.wall_s,
                 bmh.matches == oracle ? "yes" : "NO", "-" );

    const auto adaptive = run_pipeline( corpus, pattern, [ & ]() {
        std::vector<std::unique_ptr<raft::kernel>> alts;
        alts.push_back(
            std::make_unique<raft::search<raft::ahocorasick>>(
                pattern ) );
        alts.push_back( std::make_unique<
                        raft::search<raft::boyermoorehorspool>>(
            pattern ) );
        raft::swap_policy policy;
        policy.probe_window     = 16;
        policy.recheck_interval = 0;
        return raft::kernel::make<raft::synonym_kernel>(
            std::move( alts ), policy );
    } );
    std::printf( "%-26s %-10.3f %-10.2f %-9s %s\n",
                 "adaptive synonym group", adaptive.wall_s,
                 gb / adaptive.wall_s,
                 adaptive.matches == oracle ? "yes" : "NO",
                 adaptive.committed.c_str() );

    std::printf( "\nadaptive vs pinned-best overhead: %.1f%% "
                 "(the probe window); vs pinned-worst speedup: "
                 "%.2fx — the §5 algorithm-swap result, automated.\n",
                 ( adaptive.wall_s - bmh.wall_s ) / bmh.wall_s * 100.0,
                 ac.wall_s / adaptive.wall_s );
    return 0;
}
