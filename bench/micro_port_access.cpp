/**
 * E8 — port access-method overhead (§4.2: "There are multiple calls to
 * perform push and pop style operations, each embodies some type of copy
 * semantic"). Compares raw pop/push against the RAII pop_s/allocate_s
 * accessors of Figure 2, the peek_range sliding window of §3, and the
 * batched allocate_range/pop_s(n) windows.
 *
 * Modes:
 *   (default)  google-benchmark suite
 *   --quick    port-layer scalar-vs-batched A/B, emits one JSON object
 *              on stdout (bench_smoke ctest entry validates it)
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string_view>

#include <core/kernel.hpp>
#include <core/ringbuffer.hpp>

namespace {

struct harness
{
    raft::ring_buffer<std::uint64_t> q{ 256 };
};

void bm_raw_pop( benchmark::State &state )
{
    harness h;
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        h.q.push( i++ );
        std::uint64_t v = 0;
        h.q.pop( v );
        benchmark::DoNotOptimize( v );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_raw_pop );

void bm_pop_s_autorelease( benchmark::State &state )
{
    harness h;
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        h.q.push( i++ );
        {
            auto a = h.q.pop_s();
            benchmark::DoNotOptimize( *a );
        }
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_pop_s_autorelease );

void bm_allocate_s_vs_push( benchmark::State &state )
{
    harness h;
    std::uint64_t drain = 0;
    for( auto _ : state )
    {
        {
            auto w = h.q.allocate_s();
            *w     = 42;
        }
        h.q.pop( drain );
        benchmark::DoNotOptimize( drain );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_allocate_s_vs_push );

void bm_peek_range_window( benchmark::State &state )
{
    const auto window = static_cast<std::size_t>( state.range( 0 ) );
    raft::ring_buffer<std::uint64_t> q( 512 );
    for( std::size_t i = 0; i < 256; ++i )
    {
        q.push( i );
    }
    for( auto _ : state )
    {
        auto w            = q.peek_range( window );
        std::uint64_t sum = 0;
        for( std::size_t i = 0; i < window; ++i )
        {
            sum += w[ i ];
        }
        benchmark::DoNotOptimize( sum );
    }
    state.SetItemsProcessed( state.iterations() *
                             static_cast<std::int64_t>( window ) );
}
BENCHMARK( bm_peek_range_window )->Arg( 4 )->Arg( 32 )->Arg( 128 );

/** Writer-side dual of peek_range: claim a window, fill in place,
 *  publish once, then drain through a read window. */
void bm_write_read_window( benchmark::State &state )
{
    const auto window = static_cast<std::size_t>( state.range( 0 ) );
    raft::ring_buffer<std::uint64_t> q( 512 );
    q.set_auto_resize( false );
    std::uint64_t i   = 0;
    std::uint64_t sum = 0;
    for( auto _ : state )
    {
        {
            auto w = q.write_window( window );
            for( std::size_t j = 0; j < w.size(); ++j )
            {
                w[ j ] = i++;
            }
        }
        {
            auto r = q.read_window( window );
            for( std::size_t j = 0; j < r.size(); ++j )
            {
                sum += r[ j ];
            }
        }
        benchmark::DoNotOptimize( sum );
    }
    state.SetItemsProcessed( state.iterations() *
                             static_cast<std::int64_t>( window ) );
}
BENCHMARK( bm_write_read_window )->Arg( 4 )->Arg( 32 )->Arg( 128 );

class probe : public raft::kernel
{
public:
    probe()
    {
        input.addPort<std::uint64_t>( "0" );
        output.addPort<std::uint64_t>( "0" );
    }
    raft::kstatus run() override { return raft::stop; }
};

void bm_port_typed_access_overhead( benchmark::State &state )
{
    /** cost of going through the named-port runtime type check **/
    probe k;
    raft::ring_buffer<std::uint64_t> qi( 256 ), qo( 256 );
    k.input[ "0" ].bind( &qi );
    k.output[ "0" ].bind( &qo );
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        k.output[ "0" ].push<std::uint64_t>( i++ );
        std::uint64_t v = 0;
        qo.pop( v );
        qi.push( v );
        benchmark::DoNotOptimize( k.input[ "0" ].pop<std::uint64_t>() );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_port_typed_access_overhead );

/** Same loop through allocate_range / bulk pop_s: the type check and
 *  virtual dispatch are paid once per window instead of per element. */
void bm_port_batched_access( benchmark::State &state )
{
    const auto window = static_cast<std::size_t>( state.range( 0 ) );
    probe k;
    raft::ring_buffer<std::uint64_t> q( 256 );
    q.set_auto_resize( false );
    k.input[ "0" ].bind( &q );
    k.output[ "0" ].bind( &q );
    std::uint64_t i   = 0;
    std::uint64_t sum = 0;
    for( auto _ : state )
    {
        {
            auto w =
                k.output[ "0" ].allocate_range<std::uint64_t>( window );
            for( std::size_t j = 0; j < w.size(); ++j )
            {
                w[ j ] = i++;
            }
        }
        {
            auto r = k.input[ "0" ].pop_s<std::uint64_t>( window );
            for( std::size_t j = 0; j < r.size(); ++j )
            {
                sum += r[ j ];
            }
        }
        benchmark::DoNotOptimize( sum );
    }
    state.SetItemsProcessed( state.iterations() *
                             static_cast<std::int64_t>( window ) );
}
BENCHMARK( bm_port_batched_access )->Arg( 4 )->Arg( 32 )->Arg( 64 );

/* ------------------------------------------------------------------ */
/* --quick A/B mode                                                     */
/* ------------------------------------------------------------------ */

int run_quick_ab()
{
    constexpr int reps          = 3;
    constexpr std::size_t batch = 64;
    constexpr std::size_t items = std::size_t{ 1 } << 21;

    probe k;
    raft::ring_buffer<std::uint64_t> q( 256 );
    q.set_auto_resize( false );
    k.input[ "0" ].bind( &q );
    k.output[ "0" ].bind( &q );

    const auto time_mode = [ & ]( const bool batched ) {
        double best = 0.0;
        for( int r = 0; r < reps; ++r )
        {
            std::uint64_t i   = 0;
            std::uint64_t sum = 0;
            const auto t0     = std::chrono::steady_clock::now();
            while( i < items )
            {
                if( batched )
                {
                    {
                        auto w = k.output[ "0" ]
                                     .allocate_range<std::uint64_t>(
                                         batch );
                        for( std::size_t j = 0; j < w.size(); ++j )
                        {
                            w[ j ] = i++;
                        }
                    }
                    auto rd =
                        k.input[ "0" ].pop_s<std::uint64_t>( batch );
                    for( std::size_t j = 0; j < rd.size(); ++j )
                    {
                        sum += rd[ j ];
                    }
                }
                else
                {
                    for( std::size_t j = 0; j < batch; ++j )
                    {
                        k.output[ "0" ].push<std::uint64_t>( i++ );
                    }
                    for( std::size_t j = 0; j < batch; ++j )
                    {
                        sum +=
                            k.input[ "0" ].pop<std::uint64_t>();
                    }
                }
            }
            const auto t1 = std::chrono::steady_clock::now();
            benchmark::DoNotOptimize( sum );
            const auto ns = std::chrono::duration<double, std::nano>(
                                t1 - t0 )
                                .count() /
                            static_cast<double>( items );
            if( r == 0 || ns < best )
            {
                best = ns;
            }
        }
        return best;
    };

    const auto scalar  = time_mode( false );
    const auto batched = time_mode( true );
    std::printf( "{\n"
                 "  \"bench\": \"port_bulk_ab\",\n"
                 "  \"batch\": %zu,\n"
                 "  \"items\": %zu,\n"
                 "  \"scalar_ns_per_item\": %.3f,\n"
                 "  \"batched_ns_per_item\": %.3f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 batch, items, scalar, batched, scalar / batched );
    return 0;
}

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    for( int i = 1; i < argc; ++i )
    {
        if( std::string_view( argv[ i ] ) == "--quick" )
        {
            return run_quick_ab();
        }
    }
    benchmark::Initialize( &argc, argv );
    if( benchmark::ReportUnrecognizedArguments( argc, argv ) )
    {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
