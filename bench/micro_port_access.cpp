/**
 * E8 — port access-method overhead (§4.2: "There are multiple calls to
 * perform push and pop style operations, each embodies some type of copy
 * semantic"). Compares raw pop/push against the RAII pop_s/allocate_s
 * accessors of Figure 2 and the peek_range sliding window of §3.
 */
#include <benchmark/benchmark.h>

#include <core/kernel.hpp>
#include <core/ringbuffer.hpp>

namespace {

struct harness
{
    raft::ring_buffer<std::uint64_t> q{ 256 };
};

void bm_raw_pop( benchmark::State &state )
{
    harness h;
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        h.q.push( i++ );
        std::uint64_t v = 0;
        h.q.pop( v );
        benchmark::DoNotOptimize( v );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_raw_pop );

void bm_pop_s_autorelease( benchmark::State &state )
{
    harness h;
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        h.q.push( i++ );
        {
            auto a = h.q.pop_s();
            benchmark::DoNotOptimize( *a );
        }
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_pop_s_autorelease );

void bm_allocate_s_vs_push( benchmark::State &state )
{
    harness h;
    std::uint64_t drain = 0;
    for( auto _ : state )
    {
        {
            auto w = h.q.allocate_s();
            *w     = 42;
        }
        h.q.pop( drain );
        benchmark::DoNotOptimize( drain );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_allocate_s_vs_push );

void bm_peek_range_window( benchmark::State &state )
{
    const auto window = static_cast<std::size_t>( state.range( 0 ) );
    raft::ring_buffer<std::uint64_t> q( 512 );
    for( std::size_t i = 0; i < 256; ++i )
    {
        q.push( i );
    }
    for( auto _ : state )
    {
        auto w            = q.peek_range( window );
        std::uint64_t sum = 0;
        for( std::size_t i = 0; i < window; ++i )
        {
            sum += w[ i ];
        }
        benchmark::DoNotOptimize( sum );
    }
    state.SetItemsProcessed( state.iterations() *
                             static_cast<std::int64_t>( window ) );
}
BENCHMARK( bm_peek_range_window )->Arg( 4 )->Arg( 32 )->Arg( 128 );

void bm_port_typed_access_overhead( benchmark::State &state )
{
    /** cost of going through the named-port runtime type check **/
    class probe : public raft::kernel
    {
    public:
        probe()
        {
            input.addPort<std::uint64_t>( "0" );
            output.addPort<std::uint64_t>( "0" );
        }
        raft::kstatus run() override { return raft::stop; }
    };
    probe k;
    raft::ring_buffer<std::uint64_t> qi( 256 ), qo( 256 );
    k.input[ "0" ].bind( &qi );
    k.output[ "0" ].bind( &qo );
    std::uint64_t i = 0;
    for( auto _ : state )
    {
        k.output[ "0" ].push<std::uint64_t>( i++ );
        std::uint64_t v = 0;
        qo.pop( v );
        qi.push( v );
        benchmark::DoNotOptimize( k.input[ "0" ].pop<std::uint64_t>() );
    }
    state.SetItemsProcessed( state.iterations() );
}
BENCHMARK( bm_port_typed_access_overhead );

} /** end anonymous namespace **/
