/**
 * E9 — queueing models vs simulation vs the real runtime (§3).
 *
 * Three views of the same M/M/1-like stage: the closed-form model, the
 * discrete-event simulation, and the actual RaftLib pipeline with
 * matching (busy-loop calibrated) service rates. Also exercises the
 * model-driven buffer-sizing answer against a live stall measurement —
 * the workflow the paper proposes for buffer allocation.
 */
#include <chrono>
#include <cstdio>
#include <random>

#include <queueing/models.hpp>
#include <queueing/optimize.hpp>
#include <raft.hpp>
#include <sim/pipeline.hpp>

namespace {

using i64 = std::int64_t;

/** Kernel that busy-spins an exponentially distributed time. */
class exp_service : public raft::kernel
{
public:
    exp_service( const double rate_hz, const std::uint64_t seed,
                 const bool is_source, const std::size_t items = 0 )
        : rate_( rate_hz ), eng_( seed ), source_( is_source ),
          items_( items )
    {
        if( !source_ )
        {
            input.addPort<i64>( "0" );
        }
        output.addPort<i64>( "0" );
    }

    raft::kstatus run() override
    {
        if( source_ && sent_ >= items_ )
        {
            return raft::stop;
        }
        i64 v = 0;
        if( !source_ )
        {
            input[ "0" ].pop<i64>( v );
        }
        spin_exponential();
        output[ "0" ].push<i64>( source_ ? i64( sent_++ ) : v );
        return raft::proceed;
    }

private:
    void spin_exponential()
    {
        std::exponential_distribution<double> d( rate_ );
        const auto t = d( eng_ );
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::duration<double>( t );
        while( std::chrono::steady_clock::now() < until )
        {
        }
    }

    double rate_;
    std::mt19937_64 eng_;
    bool source_;
    std::size_t items_;
    std::size_t sent_{ 0 };
};

class null_sink : public raft::kernel
{
public:
    null_sink() { input.addPort<i64>( "0" ); }
    raft::kstatus run() override
    {
        (void) input[ "0" ].pop<i64>();
        return raft::proceed;
    }
};

} /** end anonymous namespace **/

int main()
{
    const double lambda = 3000.0, mu = 4000.0; /** rho = 0.75 **/
    const std::size_t items = 8000;

    std::printf( "Queueing model vs DES vs live RaftLib pipeline "
                 "(lambda=%.0f/s, mu=%.0f/s, rho=%.2f, %zu items)\n\n",
                 lambda, mu, lambda / mu, items );

    /** closed form **/
    const raft::queueing::mm1 model{ lambda, mu };
    std::printf( "%-28s Lq=%.3f  L=%.3f  W=%.1f us\n",
                 "M/M/1 closed form", model.mean_in_queue(),
                 model.mean_in_system(), model.mean_sojourn() * 1e6 );

    /** discrete-event simulation **/
    raft::sim::pipeline_desc d;
    d.stages.push_back( raft::sim::stage_desc{
        "src", lambda, 1, 1, raft::sim::service_dist::exponential,
        false } );
    d.stages.push_back( raft::sim::stage_desc{
        "srv", mu, 1, 1u << 18, raft::sim::service_dist::exponential,
        false } );
    d.items      = 60'000;
    d.seed       = 2718;
    const auto r = raft::sim::simulate_pipeline( d );
    std::printf( "%-28s Lq=%.3f  util=%.3f\n", "discrete-event sim",
                 r.stages[ 1 ].mean_queue_len,
                 r.stages[ 1 ].utilization );

    /** live pipeline with busy-loop exponential service **/
    raft::runtime::perf_snapshot snap;
    raft::map m;
    auto p = m.link(
        raft::kernel::make<exp_service>( lambda, 1, true, items ),
        raft::kernel::make<exp_service>( mu, 2, false ) );
    m.link( &( p.dst ), raft::kernel::make<null_sink>() );
    raft::run_options o;
    o.initial_queue_capacity = 1u << 14;
    o.dynamic_resize         = false;
    o.monitor_delta          = std::chrono::microseconds( 50 );
    o.stats_out              = &snap;
    m.exe( o );
    const auto *s = snap.find( "exp_service", "exp_service" );
    if( s != nullptr )
    {
        std::printf( "%-28s Lq=%.3f  (sampled occupancy of the live "
                     "stream; %llu items, %.2f s)\n",
                     "live RaftLib pipeline", s->mean_occupancy,
                     static_cast<unsigned long long>( s->popped ),
                     snap.wall_seconds );
    }

    /** model-driven buffer sizing **/
    std::printf( "\nmodel-driven buffer sizing (target stall "
                 "probability):\n" );
    std::printf( "%-12s %-14s %-18s\n", "target", "K (M/M/1/K)",
                 "achieved P(block)" );
    for( const double target : { 0.05, 0.01, 0.001 } )
    {
        const auto k = raft::queueing::size_buffer_for_blocking(
            lambda, mu, target );
        const auto pb =
            ( raft::queueing::mm1k{ lambda, mu, k } )
                .blocking_probability();
        std::printf( "%-12.3f %-14zu %-18.5f\n", target, k, pb );
    }

    /** annealing on a model-derived objective **/
    const auto objective =
        [ & ]( const std::vector<std::size_t> &sizes ) {
            double cost = 0.0;
            for( const auto sz : sizes )
            {
                cost += ( raft::queueing::mm1k{ lambda, mu, sz } )
                            .blocking_probability();
                cost += 1e-5 * static_cast<double>( sz ); /** memory **/
            }
            return cost;
        };
    const raft::queueing::optimize_options oo{ 2, 1u << 12, 0 };
    const auto sa =
        raft::queueing::simulated_annealing( 3, objective, oo );
    std::printf( "\nsimulated annealing over 3 queues: sizes =" );
    for( const auto sz : sa.sizes )
    {
        std::printf( " %zu", sz );
    }
    std::printf( "  cost=%.5f (%zu evaluations)\n", sa.cost,
                 sa.evaluations );

    /**
     * Branch-and-bound with the DES as the objective (§3's "branch and
     * bound search" option evaluated against the executable model): size
     * the two queues of a 3-stage bursty pipeline to minimize makespan
     * under a memory budget.
     */
    std::printf( "\nbranch-and-bound over DES-evaluated pipeline "
                 "(budget 256 slots total):\n" );
    const auto des_objective =
        []( const std::vector<std::size_t> &sizes ) {
            raft::sim::pipeline_desc d;
            d.stages.push_back( raft::sim::stage_desc{
                "src", 1000.0, 1, 1,
                raft::sim::service_dist::hyperexponential, false } );
            d.stages.push_back( raft::sim::stage_desc{
                "mid", 1100.0, 1, sizes[ 0 ],
                raft::sim::service_dist::exponential, false } );
            d.stages.push_back( raft::sim::stage_desc{
                "sink", 1200.0, 1, sizes[ 1 ],
                raft::sim::service_dist::exponential, false } );
            d.items = 20'000;
            d.seed  = 404;
            return raft::sim::simulate_pipeline( d ).makespan_s;
        };
    raft::queueing::optimize_options bo;
    bo.min_size        = 2;
    bo.max_size        = 256;
    bo.budget_elements = 256;
    const auto bb =
        raft::queueing::branch_and_bound( 2, des_objective, bo );
    std::printf( "  best sizes = [%zu, %zu], makespan %.3f s "
                 "(%zu DES evaluations); all-minimum makespan %.3f s\n",
                 bb.sizes[ 0 ], bb.sizes[ 1 ], bb.cost,
                 bb.evaluations,
                 des_objective( { 2, 2 } ) );
    return 0;
}
