/**
 * E6 — ablation: dynamic queue resizing (§3/§4).
 *
 * A bursty producer (fast bursts, then pauses) feeding a steady consumer
 * through a deliberately tiny initial queue. With the monitor's 3δ rule
 * the queue grows to absorb bursts; with resizing disabled the producer
 * stalls on every burst. Reports wall time and final capacities for both
 * configurations, plus the demand-driven (peek_range overflow) path.
 */
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

/** Bursty source: emits `burst` items back-to-back, then sleeps. */
class bursty_source : public raft::kernel
{
public:
    bursty_source( const std::size_t total, const std::size_t burst )
        : total_( total ), burst_( burst )
    {
        output.addPort<i64>( "0" );
    }
    raft::kstatus run() override
    {
        if( sent_ >= total_ )
        {
            return raft::stop;
        }
        for( std::size_t i = 0; i < burst_ && sent_ < total_; ++i )
        {
            output[ "0" ].push<i64>( static_cast<i64>( sent_++ ) );
        }
        std::this_thread::sleep_for( std::chrono::microseconds( 200 ) );
        return raft::proceed;
    }

private:
    std::size_t total_;
    std::size_t burst_;
    std::size_t sent_{ 0 };
};

/** Steady consumer: fixed per-item cost. */
class steady_sink : public raft::kernel
{
public:
    steady_sink() { input.addPort<i64>( "0" ); }
    raft::kstatus run() override
    {
        auto v           = input[ "0" ].pop_s<i64>();
        volatile i64 acc = *v;
        for( int i = 0; i < 300; ++i )
        {
            acc = acc + i;
        }
        return raft::proceed;
    }
};

struct outcome
{
    double wall_s;
    std::size_t final_capacity;
    std::size_t resizes;
};

outcome run( const bool dynamic_resize )
{
    raft::runtime::perf_snapshot snap;
    raft::map m;
    m.link( raft::kernel::make<bursty_source>( 60'000, 512 ),
            raft::kernel::make<steady_sink>() );
    raft::run_options o;
    o.initial_queue_capacity = 4;
    o.dynamic_resize         = dynamic_resize;
    o.monitor_delta          = std::chrono::microseconds( 10 );
    o.stats_out              = &snap;
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0 )
                        .count();
    return outcome{ dt, snap.streams.front().final_capacity,
                    snap.streams.front().resize_count };
}

} /** end anonymous namespace **/

int main()
{
    std::printf( "Ablation: dynamic queue resizing under a bursty "
                 "producer (60k items, 512-item bursts, initial "
                 "capacity 4)\n\n" );
    std::printf( "%-22s %-10s %-16s %-10s\n", "configuration",
                 "wall_s", "final_capacity", "resizes" );

    const auto fixed = run( false );
    std::printf( "%-22s %-10.3f %-16zu %-10zu\n", "fixed (no monitor)",
                 fixed.wall_s, fixed.final_capacity, fixed.resizes );

    const auto dyn = run( true );
    std::printf( "%-22s %-10.3f %-16zu %-10zu\n",
                 "dynamic (3-delta rule)", dyn.wall_s,
                 dyn.final_capacity, dyn.resizes );

    std::printf( "\nspeedup from dynamic resizing: %.2fx "
                 "(queue grew %zu -> %zu across %zu resizes)\n",
                 fixed.wall_s / dyn.wall_s, std::size_t{ 4 },
                 dyn.final_capacity, dyn.resizes );

    /** demand-driven path: a reader asking for more than capacity **/
    {
        raft::ring_buffer<i64> q( 8 );
        raft::run_options o;
        o.dynamic_resize = true;
        raft::monitor mon( o );
        mon.register_stream(
            &q, raft::monitor::stream_info{ "w", "r", "0", "0",
                                            "i64" } );
        mon.start();
        std::thread writer( [ & ]() {
            for( i64 i = 0; i < 4096; ++i )
            {
                q.push( i + 0 );
            }
        } );
        const auto t0 = std::chrono::steady_clock::now();
        {
            auto w = q.peek_range( 4096 ); /** 512x capacity **/
            (void) w[ 4095 ];
        }
        const auto dt = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0 )
                            .count();
        writer.join();
        mon.stop();
        std::printf( "\nreader-overflow path: peek_range(4096) on a "
                     "capacity-8 queue satisfied in %.1f ms "
                     "(final capacity %zu)\n",
                     dt * 1e3, q.capacity() );
    }
    return 0;
}
