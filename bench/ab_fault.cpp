/**
 * A/B: fault-tolerance machinery overhead on the failure-free path.
 *
 * The fault subsystem (graph-wide cancellation, supervised restart,
 * injection sites) is designed so the happy path pays nothing: abort
 * checks live only on blocked retry paths, injection sites are a single
 * relaxed atomic load when disabled, and the supervisor rides the
 * existing monitor thread. This bench guards that claim:
 *
 *   - supervision: the same pipeline with supervision + watchdog enabled
 *     (no faults ever occur) vs. plain execution;
 *   - injection: the same pipeline with the injection harness enabled and
 *     a plan armed that never matches, vs. the harness disabled (the
 *     per-element cost of an armed-but-idle site).
 *
 * Overheads are measured as back-to-back pairs, alternating order, median
 * of per-pair deltas (same rationale as ab_monitor_overhead: the effect
 * is below this host's run-to-run noise, so best-of lies).
 *
 * `--quick` emits one JSON object (checked in as BENCH_fault.json and
 * smoke-validated by ctest -L bench_smoke).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;
using namespace std::chrono_literals;

constexpr std::size_t items = 1'000'000;

double run_once( const bool supervised, const bool injection_armed )
{
    if( injection_armed )
    {
        raft::runtime::inject::enable( 1 );
        raft::runtime::inject::plan p;
        p.site  = "kernel.run";
        p.match = "no-such-kernel"; /** armed, never fires **/
        raft::runtime::inject::arm( p );
    }
    std::vector<i64> out;
    out.reserve( items );
    raft::map m;
    m.link( raft::kernel::make<raft::generate<i64>>(
                items, []( std::size_t i ) { return i64( i ); } ),
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( out ) ) );
    raft::run_options o;
    o.initial_queue_capacity = 1u << 16;
    if( supervised )
    {
        o.supervision.enabled           = true;
        o.supervision.watchdog_deadline = 5s; /** armed, never fires **/
    }
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    const auto wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0 )
                          .count();
    if( injection_armed )
    {
        raft::runtime::inject::disable();
    }
    return wall;
}

struct ab_result
{
    double base_wall{ 1e9 };
    double test_wall{ 1e9 };
    double overhead_pct{ 0.0 };
};

template <class BaseFn, class TestFn>
ab_result paired_ab( const int reps, BaseFn base, TestFn test )
{
    ab_result r;
    std::vector<double> overheads;
    for( int i = 0; i < reps; ++i )
    {
        double b = 0.0, t = 0.0;
        if( ( i & 1 ) == 0 )
        {
            b = base();
            t = test();
        }
        else
        {
            t = test();
            b = base();
        }
        r.base_wall = std::min( r.base_wall, b );
        r.test_wall = std::min( r.test_wall, t );
        overheads.push_back( ( t - b ) / b * 100.0 );
    }
    std::sort( overheads.begin(), overheads.end() );
    r.overhead_pct = overheads[ overheads.size() / 2 ];
    return r;
}

int run_quick()
{
    const auto sup = paired_ab(
        7, []() { return run_once( false, false ); },
        []() { return run_once( true, false ); } );
    const auto inj = paired_ab(
        7, []() { return run_once( false, false ); },
        []() { return run_once( false, true ); } );
    std::printf( "{\n" );
    std::printf( "  \"fault\":\n  {\n" );
    std::printf( "    \"bench\": \"fault_ab\",\n" );
    std::printf( "    \"items\": %zu,\n", items );
    std::printf( "    \"supervision_overhead\": {\n" );
    std::printf( "      \"plain_wall_s\": %.4f,\n", sup.base_wall );
    std::printf( "      \"supervised_wall_s\": %.4f,\n", sup.test_wall );
    std::printf( "      \"overhead_pct\": %.2f\n", sup.overhead_pct );
    std::printf( "    },\n" );
    std::printf( "    \"injection_armed_overhead\": {\n" );
    std::printf( "      \"disabled_wall_s\": %.4f,\n", inj.base_wall );
    std::printf( "      \"armed_idle_wall_s\": %.4f,\n", inj.test_wall );
    std::printf( "      \"overhead_pct\": %.2f\n", inj.overhead_pct );
    std::printf( "    }\n" );
    std::printf( "  }\n" );
    std::printf( "}\n" );
    return 0;
}

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    if( argc > 1 && std::strcmp( argv[ 1 ], "--quick" ) == 0 )
    {
        return run_quick();
    }
    constexpr int reps = 9;
    std::printf( "A/B: fault-tolerance machinery on the failure-free "
                 "path (%zu elements, median of %d pairs)\n\n", items,
                 reps );
    const auto sup = paired_ab(
        reps, []() { return run_once( false, false ); },
        []() { return run_once( true, false ); } );
    std::printf( "%-34s %-10.4f\n", "plain execution", sup.base_wall );
    std::printf( "%-34s %-10.4f %+.1f%%\n",
                 "supervision + watchdog armed", sup.test_wall,
                 sup.overhead_pct );
    const auto inj = paired_ab(
        reps, []() { return run_once( false, false ); },
        []() { return run_once( false, true ); } );
    std::printf( "%-34s %-10.4f\n", "injection disabled", inj.base_wall );
    std::printf( "%-34s %-10.4f %+.1f%%\n",
                 "injection armed, never firing", inj.test_wall,
                 inj.overhead_pct );
    return 0;
}
