/**
 * A/B: telemetry layer overhead.
 *
 * The telemetry layer (runtime/telemetry/) promises that with
 * run_options::telemetry.enabled == false every instrumentation site —
 * tracer spans, metric counters, the per-kernel probe — costs exactly one
 * relaxed atomic load (or one null pointer check). This bench guards that
 * claim and records what the *enabled* path costs, so regressions in
 * either direction are visible:
 *
 *   - disabled: two identical telemetry-off arms (the gate: their
 *     measured difference is the bench's own noise floor and must stay
 *     <= 1%, which also bounds anything the disabled sites could cost);
 *   - metrics:  telemetry enabled with tracing off — registry wiring,
 *     per-kernel service accounting, occupancy gauges;
 *   - full:     metrics + tracer rings + per-run spans;
 *   - thread-scheduler metrics cost: the per-run() timing path (the pool
 *     rows above bill at batch granularity), recorded but not gated.
 *
 * Methodology: the pipeline runs on the single-worker pool scheduler
 * (deterministic kernel interleaving — the 2-thread ping-pong of the
 * thread scheduler has multi-percent wall noise on shared hosts), arms
 * alternate B,T,B,T,... and each arm scores its MINIMUM wall time. Wall
 * noise on a loaded host is strictly additive, so interleaved minima
 * converge to the true floor of each arm; medians of per-pair ratios do
 * not at this noise level.
 *
 * `--quick` emits one JSON object (checked in as BENCH_telemetry.json and
 * smoke-validated by ctest -L bench_smoke). `--trace-out PATH` makes the
 * last full-telemetry rep export its Chrome trace so CI can validate it.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

constexpr std::size_t items = 4'000'000;

enum class mode
{
    off,     /** telemetry_options::enabled == false (the hot default) **/
    metrics, /** registry + kernel probes, tracer off                  **/
    full     /** metrics + event tracer                                **/
};

/** Allocation-free sink: accumulates into a member, so a run's memory
 *  traffic is the ring alone (a growing output vector adds tens of MB of
 *  page faults whose timing varies run to run — noise this A/B can't
 *  afford). */
class xor_sink : public raft::kernel
{
public:
    xor_sink()
    {
        input.addPort<i64>( "0" );
        set_name( "xor_sink" );
    }
    raft::kstatus run() override
    {
        i64 v = 0;
        input[ "0" ].pop( v );
        acc_ ^= v;
        return raft::proceed;
    }
    i64 acc() const noexcept { return acc_; }

private:
    i64 acc_{ 0 };
};

double run_once( const mode m_, const bool pool_sched = true,
                 const std::string &trace_out = "" )
{
    raft::map m;
    m.link( raft::kernel::make<raft::generate<i64>>(
                items, []( std::size_t i ) { return i64( i ); } ),
            raft::kernel::make<xor_sink>() );
    raft::run_options o;
    o.initial_queue_capacity = 1u << 16;
    /** calm the monitor: its default 10 µs tick thread adds measurable
     *  scheduling noise to a 0.3 s single-worker run, and resize
     *  reactivity is irrelevant to this A/B (both arms identical) **/
    o.monitor_delta = std::chrono::milliseconds( 1 );
    if( pool_sched )
    {
        o.scheduler       = raft::scheduler_kind::pool;
        o.pool_threads    = 1;
        o.pool_batch_size = 64;
    }
    o.telemetry.enabled = m_ != mode::off;
    o.telemetry.trace   = m_ == mode::full;
    o.telemetry.trace_out = m_ == mode::full ? trace_out : "";
    const auto t0 = std::chrono::steady_clock::now();
    m.exe( o );
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0 )
        .count();
}

struct ab_result
{
    double base_wall{ 1e9 };
    double test_wall{ 1e9 };
    double overhead_pct{ 0.0 };
};

/** interleaved min-per-arm A/B (see header comment); the within-pair
 *  order flips halfway so neither arm systematically rides the warmer
 *  half of the measurement window **/
template <class BaseFn, class TestFn>
ab_result interleaved_ab( const int per_arm, BaseFn base, TestFn test )
{
    ab_result r;
    for( int i = 0; i < per_arm; ++i )
    {
        if( i < per_arm / 2 )
        {
            r.base_wall = std::min( r.base_wall, base() );
            r.test_wall = std::min( r.test_wall, test() );
        }
        else
        {
            r.test_wall = std::min( r.test_wall, test() );
            r.base_wall = std::min( r.base_wall, base() );
        }
    }
    r.overhead_pct =
        ( r.test_wall - r.base_wall ) / r.base_wall * 100.0;
    return r;
}

void print_quick_json( const ab_result &off, const ab_result &metrics,
                       const ab_result &full, const ab_result &thr )
{
    std::printf( "{\n" );
    std::printf( "  \"telemetry\":\n  {\n" );
    std::printf( "    \"bench\": \"telemetry_ab\",\n" );
    std::printf( "    \"items\": %zu,\n", items );
    std::printf( "    \"disabled_overhead\": {\n" );
    std::printf( "      \"plain_wall_s\": %.4f,\n", off.base_wall );
    std::printf( "      \"telemetry_off_wall_s\": %.4f,\n",
                 off.test_wall );
    std::printf( "      \"overhead_pct\": %.2f\n", off.overhead_pct );
    std::printf( "    },\n" );
    std::printf( "    \"metrics_enabled_cost\": {\n" );
    std::printf( "      \"plain_wall_s\": %.4f,\n", metrics.base_wall );
    std::printf( "      \"metrics_wall_s\": %.4f,\n", metrics.test_wall );
    std::printf( "      \"overhead_pct\": %.2f\n", metrics.overhead_pct );
    std::printf( "    },\n" );
    std::printf( "    \"full_telemetry_cost\": {\n" );
    std::printf( "      \"plain_wall_s\": %.4f,\n", full.base_wall );
    std::printf( "      \"traced_wall_s\": %.4f,\n", full.test_wall );
    std::printf( "      \"overhead_pct\": %.2f\n", full.overhead_pct );
    std::printf( "    },\n" );
    std::printf( "    \"thread_scheduler_metrics_cost\": {\n" );
    std::printf( "      \"plain_wall_s\": %.4f,\n", thr.base_wall );
    std::printf( "      \"metrics_wall_s\": %.4f,\n", thr.test_wall );
    std::printf( "      \"overhead_pct\": %.2f\n", thr.overhead_pct );
    std::printf( "    }\n" );
    std::printf( "  }\n" );
    std::printf( "}\n" );
}

ab_result measure_off( const int per_arm )
{
    return interleaved_ab(
        per_arm, []() { return run_once( mode::off ); },
        []() { return run_once( mode::off ); } );
}

ab_result measure_metrics( const int per_arm )
{
    return interleaved_ab(
        per_arm, []() { return run_once( mode::off ); },
        []() { return run_once( mode::metrics ); } );
}

ab_result measure_full( const int per_arm, const std::string &trace_out )
{
    return interleaved_ab(
        per_arm, []() { return run_once( mode::off ); },
        [ & ]() { return run_once( mode::full, true, trace_out ); } );
}

ab_result measure_thread_sched( const int per_arm )
{
    return interleaved_ab(
        per_arm, []() { return run_once( mode::off, false ); },
        []() { return run_once( mode::metrics, false ); } );
}

int run_quick( const std::string &trace_out )
{
    ( void ) run_once( mode::full ); /** prime lazy globals **/
    ( void ) run_once( mode::off );  /** warm the off path   **/
    ( void ) run_once( mode::off );
    const auto off     = measure_off( 14 );
    const auto metrics = measure_metrics( 4 );
    const auto full    = measure_full( 4, trace_out );
    const auto thr     = measure_thread_sched( 2 );
    print_quick_json( off, metrics, full, thr );
    return 0;
}

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    std::string trace_out;
    bool quick = false;
    for( int i = 1; i < argc; ++i )
    {
        if( std::strcmp( argv[ i ], "--quick" ) == 0 )
        {
            quick = true;
        }
        else if( std::strcmp( argv[ i ], "--trace-out" ) == 0 &&
                 i + 1 < argc )
        {
            trace_out = argv[ ++i ];
        }
    }
    if( quick )
    {
        return run_quick( trace_out );
    }
    std::printf( "A/B: telemetry layer (%zu elements, interleaved "
                 "min-per-arm)\n\n", items );
    ( void ) run_once( mode::full ); /** prime lazy globals **/
    const auto off = measure_off( 10 );
    std::printf( "%-36s %-10.4f\n", "telemetry disabled (A)",
                 off.base_wall );
    std::printf( "%-36s %-10.4f %+.1f%%  (noise floor)\n",
                 "telemetry disabled (B)", off.test_wall,
                 off.overhead_pct );
    const auto metrics = measure_metrics( 6 );
    std::printf( "%-36s %-10.4f %+.1f%%\n", "metrics registry enabled",
                 metrics.test_wall, metrics.overhead_pct );
    const auto full = measure_full( 6, trace_out );
    std::printf( "%-36s %-10.4f %+.1f%%\n", "metrics + event tracer",
                 full.test_wall, full.overhead_pct );
    const auto thr = measure_thread_sched( 5 );
    std::printf( "%-36s %-10.4f %+.1f%%\n",
                 "thread scheduler, metrics enabled", thr.test_wall,
                 thr.overhead_pct );
    return 0;
}
