/**
 * Single-core service rates of the string-matching algorithms over the
 * synthetic corpus — the calibration quantities behind Figure 10 and the
 * §5 observation that swapping Aho–Corasick for Boyer–Moore–Horspool
 * "improved performance drastically" (the algorithm, not the framework,
 * was the bottleneck).
 */
#include <benchmark/benchmark.h>

#include <memory>

#include <algo/corpus.hpp>
#include <algo/strmatch.hpp>

namespace {

const std::string &corpus()
{
    static const std::string c = []() {
        raft::algo::corpus_options o;
        o.size_bytes      = 4 * 1024 * 1024;
        o.seed            = 77;
        o.pattern         = "volatile memory";
        o.implant_per_mib = 4.0;
        return raft::algo::make_corpus( o );
    }();
    return c;
}

template <class M> void run_matcher( benchmark::State &state )
{
    const M m( "volatile memory" );
    const auto &text = corpus();
    for( auto _ : state )
    {
        benchmark::DoNotOptimize(
            m.count( text.data(), text.size() ) );
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<std::int64_t>( text.size() ) );
}

void bm_aho_corasick( benchmark::State &state )
{
    run_matcher<raft::algo::aho_corasick_matcher>( state );
}
void bm_boyer_moore_horspool( benchmark::State &state )
{
    run_matcher<raft::algo::bmh_matcher>( state );
}
void bm_boyer_moore( benchmark::State &state )
{
    run_matcher<raft::algo::bm_matcher>( state );
}
void bm_memchr_grep_like( benchmark::State &state )
{
    run_matcher<raft::algo::memchr_matcher>( state );
}
void bm_naive( benchmark::State &state )
{
    run_matcher<raft::algo::naive_matcher>( state );
}

BENCHMARK( bm_aho_corasick )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_boyer_moore_horspool )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_boyer_moore )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_memchr_grep_like )->Unit( benchmark::kMillisecond );
BENCHMARK( bm_naive )->Unit( benchmark::kMillisecond );

void bm_pattern_length_sweep( benchmark::State &state )
{
    /** BMH skip distance grows with pattern length **/
    const auto len = static_cast<std::size_t>( state.range( 0 ) );
    const std::string pattern( len, 'q' );
    const raft::algo::bmh_matcher m( pattern );
    const auto &text = corpus();
    for( auto _ : state )
    {
        benchmark::DoNotOptimize(
            m.count( text.data(), text.size() ) );
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<std::int64_t>( text.size() ) );
}
BENCHMARK( bm_pattern_length_sweep )
    ->Arg( 2 )
    ->Arg( 8 )
    ->Arg( 32 )
    ->Unit( benchmark::kMillisecond );

void bm_ac_multi_pattern( benchmark::State &state )
{
    /** AC's selling point: simultaneous multi-pattern search **/
    const auto n = static_cast<std::size_t>( state.range( 0 ) );
    std::vector<std::string> patterns;
    for( std::size_t i = 0; i < n; ++i )
    {
        patterns.push_back( "pattern" + std::to_string( i ) + "xyz" );
    }
    const raft::algo::aho_corasick_matcher m( patterns );
    const auto &text = corpus();
    for( auto _ : state )
    {
        benchmark::DoNotOptimize(
            m.count( text.data(), text.size() ) );
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<std::int64_t>( text.size() ) );
}
BENCHMARK( bm_ac_multi_pattern )
    ->Arg( 1 )
    ->Arg( 8 )
    ->Arg( 64 )
    ->Unit( benchmark::kMillisecond );

} /** end anonymous namespace **/
