/**
 * Lambda-kernel replication (§4.2: lambda kernels "can be duplicated and
 * distributed" when captures are safe): set_clonable opt-in, replication
 * under raft::out, and the default (non-clonable) protection against the
 * by-reference-capture hazard the paper calls out.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include <raft.hpp>

namespace {
using i64 = std::int64_t;
} /** end anonymous namespace **/

TEST( lambdak_clone, not_clonable_by_default )
{
    raft::lambdak<i64> k( 1, 1, []( raft::Port &in, raft::Port &out ) {
        auto v = in[ "0" ].pop_s<i64>();
        out[ "0" ].push<i64>( *v );
    } );
    EXPECT_FALSE( k.clone_supported() );
    EXPECT_EQ( k.clone(), nullptr );
}

TEST( lambdak_clone, opt_in_produces_equivalent_kernels )
{
    raft::lambdak<i64> k( 1, 1, []( raft::Port &in, raft::Port &out ) {
        auto v = in[ "0" ].pop_s<i64>();
        out[ "0" ].push<i64>( *v * 7 );
    } );
    k.set_clonable();
    ASSERT_TRUE( k.clone_supported() );
    std::unique_ptr<raft::kernel> c( k.clone() );
    ASSERT_NE( c, nullptr );
    EXPECT_EQ( c->input.count(), 1u );
    EXPECT_EQ( c->output.count(), 1u );
    EXPECT_TRUE( c->clone_supported() ); /** clonability inherited **/
}

TEST( lambdak_clone, replicated_lambda_pipeline_correct )
{
    const std::size_t count = 6000;
    auto *lk = raft::kernel::make<raft::lambdak<i64>>(
        1, 1, []( raft::Port &in, raft::Port &out ) {
            auto v = in[ "0" ].pop_s<i64>();
            out[ "0" ].push<i64>( *v + 5 );
        } );
    lk->set_clonable(); /** value-captured (captureless): safe **/

    std::vector<i64> out;
    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::generate<i64>>(
            count, []( std::size_t i ) { return i64( i ); } ),
        lk );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    raft::run_options o;
    o.replication_width = 3;
    m.exe( o );
    EXPECT_GT( m.graph().kernels().size(), 3u );
    ASSERT_EQ( out.size(), count );
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < count; i += 97 )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( i + 5 ) );
    }
}
