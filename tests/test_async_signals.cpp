/**
 * Asynchronous signal pathway (§4.2: "Asynchronous signaling (i.e.,
 * immediately available to downstream kernels) is also available. Future
 * implementations will utilize the asynchronous signaling pathway for
 * global exception handling."): a failure in one branch terminates
 * kernels in an unrelated branch through the bus, not through stream
 * closure; kernels can also raise application-level async signals.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

/** Source that never finishes on its own — only the bus can stop it. */
class endless_source : public raft::kernel
{
public:
    std::atomic<std::uint64_t> emitted{ 0 };
    endless_source() { output.addPort<i64>( "0" ); }
    raft::kstatus run() override
    {
        output[ "0" ].push<i64>(
            static_cast<i64>( emitted.fetch_add( 1 ) ) );
        return raft::proceed;
    }
};

class swallow : public raft::kernel
{
public:
    swallow() { input.addPort<i64>( "0" ); }
    raft::kstatus run() override
    {
        (void) input[ "0" ].pop<i64>();
        return raft::proceed;
    }
};

} /** end anonymous namespace **/

TEST( async_signals, failure_in_one_branch_terminates_the_other )
{
    /** two disjoint branches joined only by graph connectivity via a
     *  shared fan-in sink; branch A throws quickly, branch B is
     *  endless — only the bus's term signal can stop it **/
    class bomb : public raft::kernel
    {
    public:
        bomb() { input.addPort<i64>( "0" ); }
        raft::kstatus run() override
        {
            (void) input[ "0" ].pop<i64>();
            throw std::runtime_error( "branch A failed" );
        }
    };
    raft::map m;
    auto *src   = raft::kernel::make<endless_source>();
    auto *t     = raft::kernel::make<raft::tee<i64>>( 2 );
    auto *boom  = raft::kernel::make<bomb>();
    auto *drain = raft::kernel::make<swallow>();
    m.link( src, t );
    m.link( t, "0", boom, "0" );
    m.link( t, "1", drain, "0" );
    /** the bomb's branch fails after 1 element; the endless source and
     *  the drain branch must be brought down by the bus's term signal
     *  (plus the resulting stream closures), and the error must
     *  surface to the caller **/
    EXPECT_THROW( m.exe(), std::runtime_error );
}

TEST( async_signals, application_raised_term_stops_endless_pipeline )
{
    raft::map m;
    auto *src = raft::kernel::make<endless_source>();

    class stopper : public raft::kernel
    {
    public:
        stopper() { input.addPort<i64>( "0" ); }
        raft::kstatus run() override
        {
            auto v = input[ "0" ].pop_s<i64>();
            if( *v >= 1000 )
            {
                /** async pathway: visible to every kernel immediately,
                 *  no in-band data needed **/
                bus()->raise( raft::term );
                return raft::stop;
            }
            return raft::proceed;
        }
    };
    m.link( src, raft::kernel::make<stopper>() );
    m.exe(); /** must terminate **/
    EXPECT_GE( src->emitted.load(), 1000u );
}

TEST( async_signals, bus_visible_to_all_kernels_during_run )
{
    raft::map m;
    auto *src = raft::kernel::make<endless_source>();
    std::atomic<bool> saw_bus{ false };

    class prober : public raft::kernel
    {
    public:
        std::atomic<bool> *saw;
        explicit prober( std::atomic<bool> *s ) : saw( s )
        {
            input.addPort<i64>( "0" );
        }
        raft::kstatus run() override
        {
            auto v = input[ "0" ].pop_s<i64>();
            if( bus() != nullptr )
            {
                saw->store( true );
            }
            if( *v >= 100 )
            {
                bus()->raise( raft::term );
                return raft::stop;
            }
            return raft::proceed;
        }
    };
    m.link( src, raft::kernel::make<prober>( &saw_bus ) );
    m.exe();
    EXPECT_TRUE( saw_bus.load() );
    /** bus detached at teardown **/
    EXPECT_EQ( src->bus(), nullptr );
}
