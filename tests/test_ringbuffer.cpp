/**
 * Unit tests for ring_buffer<T>: capacity geometry, FIFO order, signals,
 * end-of-stream semantics, try-ops, claims, peek_range windows, resizing
 * (idle and demand-driven), type-erased transfer and arithmetic raw access.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include <core/ringbuffer.hpp>

using raft::ring_buffer;

TEST( ringbuffer, capacity_rounds_to_power_of_two )
{
    ring_buffer<int> a( 3 );
    EXPECT_EQ( a.capacity(), 4u );
    ring_buffer<int> b( 64 );
    EXPECT_EQ( b.capacity(), 64u );
    ring_buffer<int> c( 65 );
    EXPECT_EQ( c.capacity(), 128u );
    ring_buffer<int> d( 0 );
    EXPECT_EQ( d.capacity(), 2u );
}

TEST( ringbuffer, fifo_order_and_counters )
{
    ring_buffer<int> q( 8 );
    for( int i = 0; i < 8; ++i )
    {
        q.push( i );
    }
    EXPECT_EQ( q.size(), 8u );
    EXPECT_EQ( q.space_avail(), 0u );
    for( int i = 0; i < 8; ++i )
    {
        int v = -1;
        q.pop( v );
        EXPECT_EQ( v, i );
    }
    EXPECT_EQ( q.total_pushed(), 8u );
    EXPECT_EQ( q.total_popped(), 8u );
    EXPECT_EQ( q.size(), 0u );
}

TEST( ringbuffer, wraparound_many_times )
{
    ring_buffer<int> q( 4 );
    for( int round = 0; round < 100; ++round )
    {
        q.push( 3 * round );
        q.push( 3 * round + 1 );
        q.push( 3 * round + 2 );
        for( int k = 0; k < 3; ++k )
        {
            int v = -1;
            q.pop( v );
            EXPECT_EQ( v, 3 * round + k );
        }
    }
    EXPECT_EQ( q.total_pushed(), 300u );
}

TEST( ringbuffer, signals_ride_with_elements )
{
    ring_buffer<int> q( 4 );
    q.push( 1, raft::none );
    q.push( 2, raft::eos );
    int v          = 0;
    raft::signal s = raft::none;
    q.pop( v, &s );
    EXPECT_EQ( s, raft::none );
    q.pop( v, &s );
    EXPECT_EQ( v, 2 );
    EXPECT_EQ( s, raft::eos );
}

TEST( ringbuffer, pop_on_drained_closed_throws )
{
    ring_buffer<int> q( 4 );
    q.push( 7 );
    q.close_write();
    int v = 0;
    q.pop( v );
    EXPECT_EQ( v, 7 );
    EXPECT_TRUE( q.drained() );
    EXPECT_THROW( q.pop( v ), raft::closed_port_exception );
}

TEST( ringbuffer, push_after_reader_closed_throws )
{
    ring_buffer<int> q( 4 );
    q.close_read();
    EXPECT_THROW( q.push( 1 ), raft::closed_port_exception );
    EXPECT_THROW( (void) q.try_push( 1 ), raft::closed_port_exception );
}

TEST( ringbuffer, try_ops_respect_bounds )
{
    ring_buffer<int> q( 2 );
    EXPECT_TRUE( q.try_push( 1 ) );
    EXPECT_TRUE( q.try_push( 2 ) );
    EXPECT_FALSE( q.try_push( 3 ) );
    int v = 0;
    EXPECT_TRUE( q.try_pop( v ) );
    EXPECT_EQ( v, 1 );
    EXPECT_TRUE( q.try_pop( v ) );
    EXPECT_FALSE( q.try_pop( v ) );
}

TEST( ringbuffer, peek_then_pop_and_unpeek )
{
    ring_buffer<std::string> q( 4 );
    q.push( std::string( "alpha" ) );
    q.push( std::string( "beta" ) );
    EXPECT_EQ( q.peek(), "alpha" );
    q.unpeek();
    /** peek does not consume **/
    EXPECT_EQ( q.size(), 2u );
    EXPECT_EQ( q.peek(), "alpha" );
    q.unpeek();
    std::string v;
    q.pop( v );
    EXPECT_EQ( v, "alpha" );
}

TEST( ringbuffer, recycle_discards_in_order )
{
    ring_buffer<int> q( 8 );
    for( int i = 0; i < 6; ++i )
    {
        q.push( i );
    }
    q.recycle( 4 );
    int v = -1;
    q.pop( v );
    EXPECT_EQ( v, 4 );
    EXPECT_EQ( q.total_popped(), 5u );
}

TEST( ringbuffer, claim_tail_publish_and_abandon )
{
    ring_buffer<int> q( 4 );
    int *slot = q.claim_tail();
    *slot     = 42;
    q.publish_tail( raft::eos );
    EXPECT_EQ( q.size(), 1u );
    int v          = 0;
    raft::signal s = raft::none;
    q.pop( v, &s );
    EXPECT_EQ( v, 42 );
    EXPECT_EQ( s, raft::eos );

    slot  = q.claim_tail();
    *slot = 43;
    q.abandon_tail();
    EXPECT_EQ( q.size(), 0u );
}

TEST( ringbuffer, autorelease_pop_s_scope )
{
    ring_buffer<int> q( 4 );
    q.push( 5, raft::eos );
    q.push( 6 );
    {
        auto a = q.pop_s();
        EXPECT_EQ( *a, 5 );
        EXPECT_EQ( a.sig(), raft::eos );
        EXPECT_EQ( q.size(), 2u ); /** not consumed while held **/
    }
    EXPECT_EQ( q.size(), 1u ); /** consumed at scope exit **/
}

TEST( ringbuffer, allocate_s_scope_publishes )
{
    ring_buffer<int> q( 4 );
    {
        auto w = q.allocate_s();
        *w     = 9;
        EXPECT_EQ( q.size(), 0u ); /** not visible while held **/
    }
    EXPECT_EQ( q.size(), 1u );
    int v = 0;
    q.pop( v );
    EXPECT_EQ( v, 9 );
}

TEST( ringbuffer, peek_range_window_spans_wrap )
{
    ring_buffer<int> q( 4 );
    /** advance head so the window wraps the ring edge **/
    q.push( 0 );
    q.push( 1 );
    int v = 0;
    q.pop( v );
    q.pop( v );
    q.push( 10 );
    q.push( 11 );
    q.push( 12 );
    q.push( 13 );
    {
        auto w = q.peek_range( 4 );
        ASSERT_EQ( w.size(), 4u );
        EXPECT_EQ( w[ 0 ], 10 );
        EXPECT_EQ( w[ 1 ], 11 );
        EXPECT_EQ( w[ 2 ], 12 );
        EXPECT_EQ( w[ 3 ], 13 );
    } /** window released **/
    EXPECT_EQ( q.size(), 4u ); /** peeking pops nothing **/
    q.recycle( 2 );            /** slide **/
    auto w2 = q.peek_range( 2 );
    EXPECT_EQ( w2[ 0 ], 12 );
}

TEST( ringbuffer, peek_range_overflow_without_monitor_throws )
{
    ring_buffer<int> q( 4 );
    q.set_auto_resize( false );
    EXPECT_THROW( (void) q.peek_range( 64 ),
                  raft::demand_exceeds_capacity_exception );
}

TEST( ringbuffer, peek_range_unsatisfiable_after_close_throws )
{
    ring_buffer<int> q( 8 );
    q.push( 1 );
    q.close_write();
    EXPECT_THROW( (void) q.peek_range( 3 ),
                  raft::closed_port_exception );
}

TEST( ringbuffer, resize_preserves_content_and_counters )
{
    ring_buffer<int> q( 4 );
    q.push( 1 );
    q.push( 2 );
    int v = 0;
    q.pop( v );
    q.push( 3 );
    q.push( 4 );
    q.push( 5 ); /** ring wrapped **/
    const auto pushed_before = q.total_pushed();
    ASSERT_TRUE( q.resize( 16 ) );
    EXPECT_EQ( q.capacity(), 16u );
    EXPECT_EQ( q.size(), 4u );
    EXPECT_EQ( q.total_pushed(), pushed_before );
    EXPECT_EQ( q.resize_count(), 1u );
    for( int want : { 2, 3, 4, 5 } )
    {
        q.pop( v );
        EXPECT_EQ( v, want );
    }
    EXPECT_EQ( q.total_popped(), 5u );
}

TEST( ringbuffer, resize_cannot_shrink_below_occupancy )
{
    ring_buffer<int> q( 8 );
    for( int i = 0; i < 6; ++i )
    {
        q.push( i );
    }
    EXPECT_FALSE( q.resize( 4 ) );
    EXPECT_EQ( q.capacity(), 8u );
    q.recycle( 4 );
    EXPECT_TRUE( q.resize( 2 ) );
    EXPECT_EQ( q.capacity(), 2u );
    int v = 0;
    q.pop( v );
    EXPECT_EQ( v, 4 );
}

TEST( ringbuffer, resize_with_nontrivial_type )
{
    ring_buffer<std::string> q( 2 );
    q.push( std::string( "first-very-long-string-beyond-sso" ) );
    q.push( std::string( "second-very-long-string-beyond-sso" ) );
    ASSERT_TRUE( q.resize( 8 ) );
    std::string v;
    q.pop( v );
    EXPECT_EQ( v, "first-very-long-string-beyond-sso" );
    q.pop( v );
    EXPECT_EQ( v, "second-very-long-string-beyond-sso" );
}

TEST( ringbuffer, move_only_elements )
{
    ring_buffer<std::unique_ptr<int>> q( 4 );
    q.push( std::make_unique<int>( 11 ) );
    std::unique_ptr<int> p;
    q.pop( p );
    ASSERT_TRUE( p );
    EXPECT_EQ( *p, 11 );
}

TEST( ringbuffer, destructor_destroys_remaining_elements )
{
    auto counter = std::make_shared<int>( 0 );
    struct tracked
    {
        std::shared_ptr<int> c;
        ~tracked()
        {
            if( c )
            {
                ++( *c );
            }
        }
    };
    {
        ring_buffer<tracked> q( 4 );
        q.push( tracked{ counter } );
        q.push( tracked{ counter } );
        *counter = 0; /** ignore temporaries' destructions **/
    }
    EXPECT_EQ( *counter, 2 );
}

TEST( ringbuffer, transfer_to_moves_element_and_signal )
{
    ring_buffer<int> a( 4 ), b( 4 );
    a.push( 99, raft::eos );
    EXPECT_TRUE( a.try_transfer_to( b ) );
    EXPECT_EQ( a.size(), 0u );
    int v          = 0;
    raft::signal s = raft::none;
    b.pop( v, &s );
    EXPECT_EQ( v, 99 );
    EXPECT_EQ( s, raft::eos );
}

TEST( ringbuffer, transfer_to_type_mismatch_refused )
{
    ring_buffer<int> a( 4 );
    ring_buffer<double> b( 4 );
    a.push( 1 );
    EXPECT_FALSE( a.try_transfer_to( b ) );
    EXPECT_EQ( a.size(), 1u );
}

TEST( ringbuffer, transfer_to_full_destination_refused )
{
    ring_buffer<int> a( 4 ), b( 2 );
    a.push( 1 );
    ASSERT_TRUE( b.try_push( 8 ) );
    ASSERT_TRUE( b.try_push( 9 ) );
    EXPECT_FALSE( a.try_transfer_to( b ) );
    EXPECT_EQ( a.size(), 1u );
}

TEST( ringbuffer, arithmetic_raw_access )
{
    ring_buffer<std::int32_t> q( 4 );
    q.push( 41, raft::eos );
    double d       = 0.0;
    raft::signal s = raft::none;
    EXPECT_TRUE( q.try_pop_as_double( d, s ) );
    EXPECT_DOUBLE_EQ( d, 41.0 );
    EXPECT_EQ( s, raft::eos );
    EXPECT_FALSE( q.try_pop_as_double( d, s ) ); /** empty **/

    ring_buffer<float> f( 4 );
    EXPECT_TRUE( f.try_push_from_double( 2.5, raft::none ) );
    float v = 0.0f;
    f.pop( v );
    EXPECT_FLOAT_EQ( v, 2.5f );
}

TEST( ringbuffer, raw_access_refused_for_non_arithmetic )
{
    ring_buffer<std::string> q( 4 );
    q.push( std::string( "x" ) );
    double d       = 0.0;
    raft::signal s = raft::none;
    EXPECT_FALSE( q.try_pop_as_double( d, s ) );
    EXPECT_FALSE( q.try_push_from_double( 1.0, raft::none ) );
}

TEST( ringbuffer, value_type_and_element_size )
{
    ring_buffer<double> q( 4 );
    EXPECT_TRUE( q.value_type() == typeid( double ) );
    EXPECT_EQ( q.element_size(), sizeof( double ) );
}

TEST( ringbuffer, blocked_writer_timestamp_set_and_cleared )
{
    ring_buffer<int> q( 2 );
    q.push( 1 );
    q.push( 2 );
    EXPECT_EQ( q.write_blocked_since(), 0 );
    std::thread writer( [ & ]() { q.push( 3 ); } );
    /** wait for the writer to note the stall **/
    while( q.write_blocked_since() == 0 )
    {
        std::this_thread::yield();
    }
    int v = 0;
    q.pop( v );
    writer.join();
    EXPECT_EQ( q.write_blocked_since(), 0 ); /** cleared on success **/
    EXPECT_EQ( q.size(), 2u );
}

/** parameterized geometry sweep: push/pop integrity across capacities **/
class ringbuffer_geometry
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P( ringbuffer_geometry, integrity_under_interleaving )
{
    const auto cap = GetParam();
    ring_buffer<std::uint64_t> q( cap );
    std::uint64_t pushed = 0, popped = 0;
    const std::uint64_t total = 1000;
    while( popped < total )
    {
        while( pushed < total && q.try_push( pushed + 0 ) )
        {
            ++pushed;
        }
        std::uint64_t v = 0;
        while( q.try_pop( v ) )
        {
            EXPECT_EQ( v, popped );
            ++popped;
        }
    }
    EXPECT_EQ( q.total_pushed(), total );
    EXPECT_EQ( q.total_popped(), total );
}

INSTANTIATE_TEST_SUITE_P( geometries, ringbuffer_geometry,
                          ::testing::Values( 2, 4, 8, 16, 64, 256,
                                             1024 ) );
