/**
 * Integration tests for the paper's benchmark application (Figures 8/9):
 * filereader → search<Algo> (replicated) → write_each<match_t>, validated
 * against the naive oracle, including matches that straddle segment
 * boundaries and corpus-generator plumbing.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <set>
#include <vector>

#include <algo/corpus.hpp>
#include <raft.hpp>

namespace {

/** Count with the full RaftLib topology. */
template <class Algo>
std::vector<raft::match_t>
raft_search( const std::shared_ptr<const std::string> &corpus,
             const std::string &pattern,
             const std::size_t segment,
             const std::size_t width )
{
    std::vector<raft::match_t> total_hits;
    raft::map map;
    auto kern_start = map.link<raft::out>(
        raft::kernel::make<raft::filereader>( corpus, pattern.size() - 1,
                                              segment ),
        raft::kernel::make<raft::search<Algo>>( pattern ) );
    map.link<raft::out>(
        &( kern_start.dst ),
        raft::kernel::make<raft::write_each<raft::match_t>>(
            std::back_inserter( total_hits ) ) );
    raft::run_options opts;
    opts.replication_width = width;
    map.exe( opts );
    return total_hits;
}

std::vector<std::size_t> oracle_positions( const std::string &text,
                                           const std::string &pattern )
{
    std::vector<std::size_t> out;
    raft::algo::naive_matcher m( pattern );
    m.find( text.data(), text.size(),
            [ & ]( std::size_t p, std::uint32_t ) {
                out.push_back( p );
            } );
    return out;
}

} /** end anonymous namespace **/

TEST( search_app, matches_straddling_segment_boundaries )
{
    /** pattern implanted exactly across every segment boundary **/
    std::string text( 512, '.' );
    const std::string pattern = "WXYZ";
    const std::size_t segment = 64;
    for( std::size_t b = segment; b < text.size(); b += segment )
    {
        text.replace( b - 2, pattern.size(), pattern );
    }
    auto corpus = std::make_shared<const std::string>( text );
    const auto expect = oracle_positions( text, pattern );
    ASSERT_FALSE( expect.empty() );

    auto hits = raft_search<raft::boyermoorehorspool>( corpus, pattern,
                                                       segment, 1 );
    std::vector<std::size_t> got;
    for( const auto &h : hits )
    {
        got.push_back( h.offset );
    }
    std::sort( got.begin(), got.end() );
    EXPECT_EQ( got, expect );
}

TEST( search_app, no_duplicate_matches_inside_overlap )
{
    /** a match fully inside the overlap must be counted exactly once **/
    std::string text( 256, '-' );
    const std::string pattern = "abc";
    text.replace( 63, 3, pattern );  /** straddles 64-boundary       **/
    text.replace( 64, 3, "abc" );    /** wholly in second segment,
                                          also in first's overlap    **/
    auto corpus = std::make_shared<const std::string>( text );
    const auto expect = oracle_positions( text, pattern );
    auto hits = raft_search<raft::ahocorasick>( corpus, pattern, 64, 1 );
    EXPECT_EQ( hits.size(), expect.size() );
}

class search_app_sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P( search_app_sweep, counts_match_oracle_for_both_algorithms )
{
    const auto [ segment, width ] = GetParam();
    raft::algo::corpus_options copt;
    copt.size_bytes      = 96 * 1024;
    copt.seed            = 42 + segment + width;
    copt.pattern         = "streamkernel";
    copt.implant_per_mib = 300.0;
    auto corpus = std::make_shared<const std::string>(
        raft::algo::make_corpus( copt ) );
    const auto expect =
        raft::algo::oracle_count( *corpus, copt.pattern );
    ASSERT_GT( expect, 0u );

    const auto ac_hits = raft_search<raft::ahocorasick>(
        corpus, copt.pattern, segment, width );
    EXPECT_EQ( ac_hits.size(), expect );

    const auto bmh_hits = raft_search<raft::boyermoorehorspool>(
        corpus, copt.pattern, segment, width );
    EXPECT_EQ( bmh_hits.size(), expect );

    const auto bm_hits = raft_search<raft::boyermoore>(
        corpus, copt.pattern, segment, width );
    EXPECT_EQ( bm_hits.size(), expect );
}

INSTANTIATE_TEST_SUITE_P(
    params, search_app_sweep,
    ::testing::Values( std::make_tuple( std::size_t{ 4096 },
                                        std::size_t{ 1 } ),
                       std::make_tuple( std::size_t{ 4096 },
                                        std::size_t{ 4 } ),
                       std::make_tuple( std::size_t{ 1024 },
                                        std::size_t{ 2 } ),
                       std::make_tuple( std::size_t{ 65536 },
                                        std::size_t{ 3 } ) ) );

TEST( search_app, match_offsets_are_global_and_unique )
{
    raft::algo::corpus_options copt;
    copt.size_bytes      = 64 * 1024;
    copt.pattern         = "uniquetoken";
    copt.implant_per_mib = 160.0;
    auto corpus = std::make_shared<const std::string>(
        raft::algo::make_corpus( copt ) );
    auto hits = raft_search<raft::boyermoorehorspool>(
        corpus, copt.pattern, 2048, 4 );
    std::set<std::size_t> unique;
    for( const auto &h : hits )
    {
        EXPECT_LT( h.offset, corpus->size() );
        EXPECT_EQ( corpus->compare( h.offset, copt.pattern.size(),
                                    copt.pattern ),
                   0 );
        unique.insert( h.offset );
    }
    EXPECT_EQ( unique.size(), hits.size() );
}

TEST( search_app, search_kernel_clone_is_independent )
{
    raft::search<raft::ahocorasick> k( "pattern" );
    EXPECT_TRUE( k.clone_supported() );
    std::unique_ptr<raft::kernel> c( k.clone() );
    ASSERT_NE( c, nullptr );
    EXPECT_NE( c->get_id(), k.get_id() );
    auto *cs = dynamic_cast<raft::search<raft::ahocorasick> *>( c.get() );
    ASSERT_NE( cs, nullptr );
    EXPECT_STREQ( cs->engine().name(), "aho-corasick" );
}

TEST( corpus_generator, deterministic_and_sized )
{
    raft::algo::corpus_options o;
    o.size_bytes = 10'000;
    o.seed       = 7;
    o.pattern    = "needle";
    const auto a = raft::algo::make_corpus( o );
    const auto b = raft::algo::make_corpus( o );
    EXPECT_EQ( a.size(), 10'000u );
    EXPECT_EQ( a, b );
    o.seed       = 8;
    const auto c = raft::algo::make_corpus( o );
    EXPECT_NE( a, c );
}

TEST( corpus_generator, implants_reach_requested_density )
{
    raft::algo::corpus_options o;
    o.size_bytes      = 1 << 20;
    o.pattern         = "zqxjkvbn"; /** unlikely by chance **/
    o.implant_per_mib = 50.0;
    const auto text   = raft::algo::make_corpus( o );
    const auto n      = raft::algo::oracle_count( text, o.pattern );
    /** implants can overwrite each other: allow some slack **/
    EXPECT_GE( n, 40u );
    EXPECT_LE( n, 50u );
}

TEST( corpus_generator, text_is_line_structured )
{
    raft::algo::corpus_options o;
    o.size_bytes = 50'000;
    const auto t = raft::algo::make_corpus( o );
    const auto newlines =
        std::count( t.begin(), t.end(), '\n' );
    EXPECT_GT( newlines, 50 ); /** looks like lines of text **/
    const auto spaces = std::count( t.begin(), t.end(), ' ' );
    EXPECT_GT( spaces, 1000 );
}
