/**
 * Automatic parallelization (§4.1): clone-based replication behind
 * split/reduce adapters, strategy selection, ordering semantics and the
 * seq_tag/reorder re-ordering paradigm.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

/** Clonable stateless transform: doubles its input. */
class doubler : public raft::kernel
{
public:
    doubler()
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
    }
    raft::kstatus run() override
    {
        auto v   = input[ "0" ].pop_s<i64>();
        auto out = output[ "0" ].allocate_s<i64>();
        ( *out ) = 2 * ( *v );
        return raft::proceed;
    }
    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override { return new doubler(); }
};

raft::generate<i64> *seq_source( const std::size_t n )
{
    return raft::kernel::make<raft::generate<i64>>(
        n, []( std::size_t i ) { return static_cast<i64>( i ); } );
}

raft::run_options replicated_opts( const std::size_t width,
                                   const raft::split_kind strat )
{
    raft::run_options o;
    o.enable_auto_parallel = true;
    o.replication_width    = width;
    o.split_strategy       = strat;
    return o;
}

} /** end anonymous namespace **/

class autoparallel_strategies
    : public ::testing::TestWithParam<raft::split_kind>
{
};

TEST_P( autoparallel_strategies, replicated_results_correct )
{
    const std::size_t count = 20000;
    std::vector<i64> out;
    raft::map m;
    auto p = m.link<raft::out>( seq_source( count ),
                                raft::kernel::make<doubler>() );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    m.exe( replicated_opts( 4, GetParam() ) );

    ASSERT_EQ( out.size(), count );
    /** out-of-order permitted: compare as a multiset **/
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < count; ++i )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( 2 * i ) );
    }
}

INSTANTIATE_TEST_SUITE_P(
    strategies, autoparallel_strategies,
    ::testing::Values( raft::split_kind::round_robin,
                       raft::split_kind::least_utilized ) );

TEST( autoparallel, graph_rewritten_with_adapters_and_clones )
{
    std::vector<i64> sink;
    raft::map m;
    auto p = m.link<raft::out>( seq_source( 10 ),
                                raft::kernel::make<doubler>() );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( sink ) ) );
    m.exe( replicated_opts( 3, raft::split_kind::least_utilized ) );
    /** source + split + 3 doublers + reduce + sink = 7 kernels **/
    EXPECT_EQ( m.graph().kernels().size(), 7u );
    /** 1 + 3 + 3 + 1 = 8 streams **/
    EXPECT_EQ( m.graph().edges().size(), 8u );
}

TEST( autoparallel, in_order_link_prevents_replication )
{
    std::vector<i64> out;
    raft::map m;
    auto p = m.link( seq_source( 100 ),
                     raft::kernel::make<doubler>() ); /** in_order **/
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe( replicated_opts( 4, raft::split_kind::round_robin ) );
    EXPECT_EQ( m.graph().kernels().size(), 3u ); /** untouched **/
    /** strictly in order **/
    for( std::size_t i = 0; i < out.size(); ++i )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( 2 * i ) );
    }
}

TEST( autoparallel, width_one_is_a_noop )
{
    std::vector<i64> out;
    raft::map m;
    auto p = m.link<raft::out>( seq_source( 100 ),
                                raft::kernel::make<doubler>() );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    m.exe( replicated_opts( 1, raft::split_kind::round_robin ) );
    EXPECT_EQ( m.graph().kernels().size(), 3u );
    EXPECT_EQ( out.size(), 100u );
}

TEST( autoparallel, disabled_flag_is_a_noop )
{
    std::vector<i64> sink;
    raft::map m;
    auto p = m.link<raft::out>( seq_source( 100 ),
                                raft::kernel::make<doubler>() );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( sink ) ) );
    raft::run_options o;
    o.enable_auto_parallel = false;
    o.replication_width    = 8;
    m.exe( o );
    EXPECT_EQ( m.graph().kernels().size(), 3u );
}

TEST( autoparallel, non_clonable_kernel_not_replicated )
{
    std::vector<i64> out;
    raft::map m;
    /** write_each is not clonable even on raft::out links **/
    m.link<raft::out>( seq_source( 50 ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    m.exe( replicated_opts( 4, raft::split_kind::round_robin ) );
    EXPECT_EQ( m.graph().kernels().size(), 2u );
    EXPECT_EQ( out.size(), 50u );
}

TEST( autoparallel, seq_tag_reorder_restores_order )
{
    /** paradigm 3 of §4.1: process out of order, re-order later **/
    const std::size_t count = 5000;
    std::vector<i64> out;

    class tagged_doubler : public raft::kernel
    {
    public:
        tagged_doubler()
        {
            input.addPort<raft::seq_item<i64>>( "0" );
            output.addPort<raft::seq_item<i64>>( "0" );
        }
        raft::kstatus run() override
        {
            auto v   = input[ "0" ].pop_s<raft::seq_item<i64>>();
            auto o   = output[ "0" ].allocate_s<raft::seq_item<i64>>();
            o->seq   = v->seq;
            o->value = 2 * v->value;
            return raft::proceed;
        }
        bool clone_supported() const override { return true; }
        raft::kernel *clone() const override
        {
            return new tagged_doubler();
        }
    };

    raft::map m;
    auto a = m.link( seq_source( count ),
                     raft::kernel::make<raft::seq_tag<i64>>() );
    auto b = m.link<raft::out>( &( a.dst ),
                                raft::kernel::make<tagged_doubler>() );
    auto c = m.link<raft::out>( &( b.dst ),
                                raft::kernel::make<raft::reorder<i64>>() );
    m.link( &( c.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe( replicated_opts( 4, raft::split_kind::least_utilized ) );

    ASSERT_EQ( out.size(), count );
    for( std::size_t i = 0; i < count; ++i )
    {
        ASSERT_EQ( out[ i ], static_cast<i64>( 2 * i ) )
            << "order broken at " << i;
    }
}

TEST( autoparallel, two_stage_replication_composes )
{
    const std::size_t count = 8000;
    std::vector<i64> out;
    raft::map m;
    auto a = m.link<raft::out>( seq_source( count ),
                                raft::kernel::make<doubler>() );
    auto b = m.link<raft::out>( &( a.dst ),
                                raft::kernel::make<doubler>() );
    m.link<raft::out>( &( b.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    m.exe( replicated_opts( 2, raft::split_kind::round_robin ) );
    ASSERT_EQ( out.size(), count );
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < count; ++i )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( 4 * i ) );
    }
}

TEST( split_strategy, round_robin_cycles )
{
    raft::round_robin_strategy rr;
    raft::ring_buffer<int> a( 4 ), b( 4 ), c( 4 );
    std::vector<raft::fifo_base *> outs{ &a, &b, &c };
    EXPECT_EQ( rr.choose( outs ), 0u );
    EXPECT_EQ( rr.choose( outs ), 1u );
    EXPECT_EQ( rr.choose( outs ), 2u );
    EXPECT_EQ( rr.choose( outs ), 0u );
}

TEST( split_strategy, least_utilized_picks_emptiest )
{
    /** stride 1 = rescan on every element **/
    raft::least_utilized_strategy lu( 1 );
    raft::ring_buffer<int> a( 4 ), b( 4 ), c( 4 );
    a.push( 1 );
    a.push( 2 );
    b.push( 1 );
    std::vector<raft::fifo_base *> outs{ &a, &b, &c };
    EXPECT_EQ( lu.choose( outs ), 2u );
    c.push( 1 );
    c.push( 2 );
    c.push( 3 );
    EXPECT_EQ( lu.choose( outs ), 1u );
}

TEST( split_strategy, least_utilized_caches_choice_for_stride )
{
    raft::least_utilized_strategy lu( 4 );
    raft::ring_buffer<int> a( 4 ), b( 4 );
    a.push( 1 );
    std::vector<raft::fifo_base *> outs{ &a, &b };
    /** rescan ranks b; the next 3 calls reuse the cached choice even
     *  though b becomes the fuller queue in between **/
    EXPECT_EQ( lu.choose( outs ), 1u );
    b.push( 1 );
    b.push( 2 );
    b.push( 3 );
    EXPECT_EQ( lu.choose( outs ), 1u );
    EXPECT_EQ( lu.choose( outs ), 1u );
    EXPECT_EQ( lu.choose( outs ), 1u );
    /** stride exhausted: the rescan sees a (1/4) < b (4/4) **/
    EXPECT_EQ( lu.choose( outs ), 0u );
}

TEST( split_strategy, least_utilized_cached_choice_survives_lane_shrink )
{
    raft::least_utilized_strategy lu( 8 );
    raft::ring_buffer<int> a( 4 ), b( 4 ), c( 4 );
    a.push( 1 );
    b.push( 1 );
    std::vector<raft::fifo_base *> outs{ &a, &b, &c };
    EXPECT_EQ( lu.choose( outs ), 2u ); /** cached: lane 2 **/
    /** the elastic controller retired lane 2: the cached index is out of
     *  range for the shrunk lane set, so the strategy rescans **/
    std::vector<raft::fifo_base *> shrunk{ &a, &b };
    const auto pick = lu.choose( shrunk );
    EXPECT_LT( pick, shrunk.size() );
}

TEST( split_strategy, factory_maps_kinds )
{
    auto rr = raft::make_split_strategy( raft::split_kind::round_robin );
    EXPECT_STREQ( rr->name(), "round-robin" );
    auto lu =
        raft::make_split_strategy( raft::split_kind::least_utilized );
    EXPECT_STREQ( lu->name(), "least-utilized" );
}
