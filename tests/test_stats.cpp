/**
 * Monitoring data model: histogram arithmetic and snapshot helpers.
 */
#include <gtest/gtest.h>

#include <runtime/stats.hpp>

using raft::runtime::occupancy_histogram;
using raft::runtime::perf_snapshot;
using raft::runtime::stream_stats;

TEST( histogram, buckets_partition_unit_interval )
{
    occupancy_histogram h;
    h.add( 0.0 );
    h.add( 0.05 );
    h.add( 0.15 );
    h.add( 0.95 );
    h.add( 1.0 ); /** clamps into the last bucket **/
    h.add( 2.0 ); /** out-of-range clamps too **/
    EXPECT_EQ( h.bucket( 0 ), 2u );
    EXPECT_EQ( h.bucket( 1 ), 1u );
    EXPECT_EQ( h.bucket( 9 ), 3u );
    EXPECT_EQ( h.total(), 6u );
    EXPECT_DOUBLE_EQ( h.fraction( 0 ), 2.0 / 6.0 );
}

TEST( histogram, empty_fraction_is_zero )
{
    occupancy_histogram h;
    EXPECT_DOUBLE_EQ( h.fraction( 0 ), 0.0 );
    EXPECT_EQ( h.total(), 0u );
}

TEST( histogram, merge_adds_counts )
{
    occupancy_histogram a, b;
    a.add( 0.1 );
    a.add( 0.9 );
    b.add( 0.9 );
    a.merge( b );
    EXPECT_EQ( a.total(), 3u );
    EXPECT_EQ( a.bucket( 9 ), 2u );
}

TEST( perf_snapshot, find_by_substring )
{
    perf_snapshot s;
    stream_stats a;
    a.src_kernel = "raft::generate<long>#3";
    a.dst_kernel = "raft::sum<long,long,long>#4";
    s.streams.push_back( a );
    EXPECT_NE( s.find( "generate", "sum" ), nullptr );
    EXPECT_EQ( s.find( "print", "sum" ), nullptr );
    EXPECT_EQ( s.find( "generate", "print" ), nullptr );
}

TEST( perf_snapshot, total_bytes_sums_streams )
{
    perf_snapshot s;
    stream_stats a, b;
    a.popped       = 100;
    a.element_size = 8;
    b.popped       = 10;
    b.element_size = 4;
    s.streams.push_back( a );
    s.streams.push_back( b );
    EXPECT_DOUBLE_EQ( s.total_bytes_moved(), 840.0 );
}
