/**
 * Buffer-size optimizers (§3/§4.1): branch-and-bound exactness, budget
 * feasibility, monotone pruning, and simulated annealing quality on
 * model-derived objectives.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include <queueing/models.hpp>
#include <queueing/optimize.hpp>

using namespace raft::queueing;

namespace {

/** Figure-4-shaped objective: stalls dominate when small, paging-like
 *  penalty grows when large — minimum at an interior size. */
double fig4_like_cost( const std::vector<std::size_t> &sizes )
{
    double cost = 0.0;
    for( const auto s : sizes )
    {
        const auto x = static_cast<double>( s );
        cost += 100.0 / x + 0.01 * x;
    }
    return cost;
}

/** Pure blocking objective: non-increasing in every size. */
double blocking_cost( const std::vector<std::size_t> &sizes )
{
    double cost = 0.0;
    for( const auto s : sizes )
    {
        cost += mm1k{ 0.9, 1.0, s }.blocking_probability();
    }
    return cost;
}

} /** end anonymous namespace **/

TEST( size_ladder, powers_of_two_within_bounds )
{
    optimize_options o;
    o.min_size = 4;
    o.max_size = 64;
    const auto l = size_ladder( o );
    EXPECT_EQ( l, ( std::vector<std::size_t>{ 4, 8, 16, 32, 64 } ) );
    o.max_size = 63;
    EXPECT_EQ( size_ladder( o ).back(), 32u );
    o.min_size = 0;
    EXPECT_THROW( size_ladder( o ), std::invalid_argument );
}

TEST( branch_and_bound, finds_interior_optimum )
{
    optimize_options o;
    o.min_size = 2;
    o.max_size = 4096;
    const auto r = branch_and_bound( 2, fig4_like_cost, o );
    /** per queue: min of 100/x + 0.01x over the ladder is x = 128 **/
    EXPECT_EQ( r.sizes,
               ( std::vector<std::size_t>{ 128, 128 } ) );
    EXPECT_GT( r.evaluations, 0u );
}

TEST( branch_and_bound, respects_memory_budget )
{
    optimize_options o;
    o.min_size        = 2;
    o.max_size        = 4096;
    o.budget_elements = 96; /** cannot afford 128 + 128 **/
    const auto r = branch_and_bound( 2, fig4_like_cost, o );
    const auto total = std::accumulate( r.sizes.begin(), r.sizes.end(),
                                        std::size_t{ 0 } );
    EXPECT_LE( total, 96u );
    /** best split under the budget: 64 + 32 or 32 + 64 **/
    EXPECT_EQ( total, 96u );
}

TEST( branch_and_bound, infeasible_budget_throws )
{
    optimize_options o;
    o.min_size        = 8;
    o.max_size        = 64;
    o.budget_elements = 4;
    EXPECT_THROW( branch_and_bound( 1, fig4_like_cost, o ),
                  std::runtime_error );
}

TEST( branch_and_bound, monotone_pruning_matches_exhaustive )
{
    optimize_options o;
    o.min_size = 2;
    o.max_size = 256;
    const auto exact  = branch_and_bound( 3, blocking_cost, o, false );
    const auto pruned = branch_and_bound( 3, blocking_cost, o, true );
    EXPECT_DOUBLE_EQ( exact.cost, pruned.cost );
    EXPECT_EQ( exact.sizes, pruned.sizes );
    /** pruning must not cost more objective evaluations than brute **/
    EXPECT_LE( pruned.evaluations, exact.evaluations * 2 );
}

TEST( simulated_annealing, near_optimal_on_fig4_objective )
{
    optimize_options o;
    o.min_size = 2;
    o.max_size = 4096;
    annealing_options ann;
    ann.iterations = 4000;
    const auto exact = branch_and_bound( 2, fig4_like_cost, o );
    const auto sa    = simulated_annealing( 2, fig4_like_cost, o, ann );
    EXPECT_LE( sa.cost, exact.cost * 1.10 ); /** within 10% **/
}

TEST( simulated_annealing, scales_to_many_queues )
{
    optimize_options o;
    o.min_size = 2;
    o.max_size = 1024;
    annealing_options ann;
    ann.iterations = 6000;
    const auto r = simulated_annealing( 12, fig4_like_cost, o, ann );
    /** per-queue optimum is 128 (cost ≈ 2.06); allow slack **/
    const double per_queue_opt = 100.0 / 128.0 + 0.01 * 128.0;
    EXPECT_LE( r.cost, 12 * per_queue_opt * 1.25 );
    EXPECT_EQ( r.sizes.size(), 12u );
}

TEST( simulated_annealing, honours_budget_throughout )
{
    optimize_options o;
    o.min_size        = 2;
    o.max_size        = 1024;
    o.budget_elements = 256;
    annealing_options ann;
    ann.iterations = 3000;
    const auto r = simulated_annealing( 4, fig4_like_cost, o, ann );
    EXPECT_LE( std::accumulate( r.sizes.begin(), r.sizes.end(),
                                std::size_t{ 0 } ),
               256u );
}

TEST( simulated_annealing, deterministic_for_seed )
{
    optimize_options o;
    o.min_size = 2;
    o.max_size = 512;
    annealing_options ann;
    ann.iterations = 500;
    ann.seed       = 11;
    const auto a = simulated_annealing( 3, fig4_like_cost, o, ann );
    const auto b = simulated_annealing( 3, fig4_like_cost, o, ann );
    EXPECT_EQ( a.sizes, b.sizes );
    EXPECT_DOUBLE_EQ( a.cost, b.cost );
}
