/**
 * Baseline frameworks (§5 comparators): the GNU-Parallel-style pgrep and
 * the Spark-like minispark must both produce oracle-exact counts under
 * every parallelism and partitioning configuration.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include <algo/corpus.hpp>
#include <baselines/minispark.hpp>
#include <baselines/pgrep.hpp>

using namespace raft::baselines;

namespace {

struct fixture
{
    std::string corpus;
    std::string pattern{ "pipelinekernel" };
    std::uint64_t expect{ 0 };

    fixture()
    {
        raft::algo::corpus_options o;
        o.size_bytes      = 192 * 1024;
        o.seed            = 2024;
        o.pattern         = pattern;
        o.implant_per_mib = 250.0;
        corpus            = raft::algo::make_corpus( o );
        expect            = raft::algo::oracle_count( corpus, pattern );
    }
};

const fixture &shared_fixture()
{
    static const fixture f;
    return f;
}

} /** end anonymous namespace **/

class pgrep_sweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>>
{
};

TEST_P( pgrep_sweep, oracle_exact_counts )
{
    const auto &f             = shared_fixture();
    const auto [ jobs, block ] = GetParam();
    ASSERT_GT( f.expect, 0u );
    pgrep_options o;
    o.jobs        = jobs;
    o.block_bytes = block;
    EXPECT_EQ( pgrep_count( f.corpus, f.pattern, o ), f.expect );
}

INSTANTIATE_TEST_SUITE_P(
    configs, pgrep_sweep,
    ::testing::Combine( ::testing::Values( 1u, 2u, 4u ),
                        ::testing::Values( std::size_t{ 4096 },
                                           std::size_t{ 64 * 1024 },
                                           std::size_t{ 1 << 20 } ) ) );

TEST( pgrep, direct_mode_matches_piped_mode )
{
    const auto &f = shared_fixture();
    pgrep_options piped;
    piped.jobs = 2;
    pgrep_options direct          = piped;
    direct.copy_through_pipe_buffer = false;
    EXPECT_EQ( pgrep_count( f.corpus, f.pattern, piped ),
               pgrep_count( f.corpus, f.pattern, direct ) );
}

TEST( pgrep, block_boundary_matches_counted_once )
{
    std::string text( 8192, '.' );
    const std::string pattern = "SPLIT";
    /** implant exactly across every 1024-byte block boundary **/
    for( std::size_t b = 1024; b < text.size(); b += 1024 )
    {
        text.replace( b - 2, pattern.size(), pattern );
    }
    const auto expect = raft::algo::oracle_count( text, pattern );
    pgrep_options o;
    o.jobs        = 3;
    o.block_bytes = 1024;
    EXPECT_EQ( pgrep_count( text, pattern, o ), expect );
}

TEST( executor_pool, runs_every_task_once )
{
    executor_pool pool( 4 );
    std::atomic<int> ran{ 0 };
    std::vector<std::future<void>> futs;
    for( int i = 0; i < 100; ++i )
    {
        futs.push_back( pool.submit( [ & ]() { ++ran; } ) );
    }
    for( auto &fu : futs )
    {
        fu.get();
    }
    EXPECT_EQ( ran.load(), 100 );
}

TEST( executor_pool, task_exceptions_surface_via_future )
{
    executor_pool pool( 2 );
    auto fu = pool.submit(
        []() { throw std::runtime_error( "task failed" ); } );
    EXPECT_THROW( fu.get(), std::runtime_error );
}

TEST( minispark, run_partitions_preserves_order )
{
    minispark_context ctx( 4 );
    const auto r = ctx.run_partitions<std::size_t>(
        32, []( std::size_t p ) { return p * p; } );
    ASSERT_EQ( r.size(), 32u );
    for( std::size_t p = 0; p < 32; ++p )
    {
        EXPECT_EQ( r[ p ], p * p );
    }
}

class minispark_sweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>>
{
};

TEST_P( minispark_sweep, search_job_oracle_exact )
{
    const auto &f                  = shared_fixture();
    const auto [ execs, partition ] = GetParam();
    minispark_context ctx( execs );
    spark_job_options o;
    o.partition_bytes = partition;
    EXPECT_EQ( spark_search( ctx, f.corpus, f.pattern, o ), f.expect );
}

INSTANTIATE_TEST_SUITE_P(
    configs, minispark_sweep,
    ::testing::Combine( ::testing::Values( 1u, 2u, 4u ),
                        ::testing::Values( std::size_t{ 8 * 1024 },
                                           std::size_t{ 32 * 1024 },
                                           std::size_t{ 1 << 20 } ) ) );

TEST( minispark, partition_boundary_matches_counted_once )
{
    std::string text( 4096, '-' );
    const std::string pattern = "EDGE";
    for( std::size_t b = 512; b < text.size(); b += 512 )
    {
        text.replace( b - 1, pattern.size(), pattern );
    }
    const auto expect = raft::algo::oracle_count( text, pattern );
    minispark_context ctx( 2 );
    spark_job_options o;
    o.partition_bytes = 512;
    EXPECT_EQ( spark_search( ctx, text, pattern, o ), expect );
}

TEST( minispark, task_overhead_slows_but_stays_correct )
{
    const auto &f = shared_fixture();
    minispark_context ctx( 2 );
    spark_job_options o;
    o.partition_bytes = 16 * 1024;
    o.task_overhead_s = 0.0002;
    EXPECT_EQ( spark_search( ctx, f.corpus, f.pattern, o ), f.expect );
}
