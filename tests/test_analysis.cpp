/**
 * Static analysis layer: raft::analyze diagnostics over seeded bad graphs
 * (deadlock cycles, unconnected ports, out-of-order-unsafe replica lanes,
 * lossy conversions, restart/elastic misconfiguration), fail-fast behaviour
 * of map::exe() with its run_options::analysis opt-out, exact diagnostic
 * text on the map::link()/exe() error paths, and silence on healthy graphs.
 */
#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

raft::generate<i64> *seq_source( const std::size_t n )
{
    return raft::kernel::make<raft::generate<i64>>(
        n, []( std::size_t i ) { return static_cast<i64>( i ); } );
}

/** pass-through with one in / one out port — building block for cycles */
class relay : public raft::kernel
{
public:
    relay()
    {
        input.addPort<int>( "in" );
        output.addPort<int>( "out" );
    }
    raft::kstatus run() override { return raft::stop; }
};

/** clonable (replication candidate) but order-sensitive — exactly the
 *  combination auto-parallelization must not replicate */
class ooo_worker : public raft::kernel
{
public:
    ooo_worker()
    {
        input.addPort<int>( "in" );
        output.addPort<int>( "out" );
    }
    raft::kstatus run() override
    {
        int v = 0;
        input[ "in" ].pop( v );
        output[ "out" ].push( v );
        return raft::proceed;
    }
    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override
    {
        return raft::kernel::make<ooo_worker>();
    }
    bool order_sensitive() const override { return true; }
};

const raft::analysis::diagnostic *find_diag(
    const raft::analysis::report &r, const std::string &id )
{
    for( const auto &d : r.diagnostics )
    {
        if( d.id == id )
        {
            return &d;
        }
    }
    return nullptr;
}

} /** end anonymous namespace **/

TEST( analysis, deadlock_cycle_is_error_without_dynamic_resize )
{
    raft::map m;
    auto *a = raft::kernel::make<relay>();
    auto *b = raft::kernel::make<relay>();
    m.link( a, "out", b, "in" );
    m.link( b, "out", a, "in" );
    raft::run_options o;
    o.dynamic_resize         = false;
    o.initial_queue_capacity = 4;
    const auto rep           = raft::analyze( m, o );
    const auto *d            = find_diag( rep, "deadlock-cycle" );
    ASSERT_NE( d, nullptr );
    EXPECT_EQ( d->sev, raft::analysis::severity::error );
    /** capacity-aware: 2 FIFOs x 4 slots bound the loop **/
    EXPECT_NE( d->message.find( "8 total slots" ), std::string::npos )
        << d->message;
    EXPECT_FALSE( rep.ok() );
}

TEST( analysis, deadlock_cycle_downgrades_to_warning_with_resize )
{
    raft::map m;
    auto *a = raft::kernel::make<relay>();
    auto *b = raft::kernel::make<relay>();
    m.link( a, "out", b, "in" );
    m.link( b, "out", a, "in" );
    raft::run_options o; /** dynamic_resize defaults to true **/
    const auto rep = raft::analyze( m, o );
    const auto *d  = find_diag( rep, "deadlock-cycle" );
    ASSERT_NE( d, nullptr );
    EXPECT_EQ( d->sev, raft::analysis::severity::warning );
    EXPECT_NE( d->message.find( "resize rule" ), std::string::npos )
        << d->message;
}

TEST( analysis, unconnected_port_flagged_with_exact_text )
{
    raft::map m;
    auto *s = raft::kernel::make<raft::sum<i64, i64, i64>>();
    m.link( seq_source( 4 ), s, "input_a" );
    m.link( s, raft::kernel::make<raft::print<i64>>() );
    const auto rep = raft::analyze( m );
    const auto *d  = find_diag( rep, "unconnected-port" );
    ASSERT_NE( d, nullptr );
    EXPECT_EQ( d->sev, raft::analysis::severity::error );
    EXPECT_EQ( d->port, "input_b" );
    EXPECT_EQ( d->message,
               "input port 'input_b' of " + d->kernel +
                   " is not linked; the kernel would block on it forever" );
}

TEST( analysis, exe_fails_fast_on_error_diagnostics )
{
    raft::map m;
    auto *s = raft::kernel::make<raft::sum<i64, i64, i64>>();
    m.link( seq_source( 4 ), s, "input_a" );
    m.link( s, raft::kernel::make<raft::print<i64>>() );
    try
    {
        m.exe();
        FAIL() << "exe() must refuse an unconnected-port graph";
    }
    catch( const raft::analysis_error &e )
    {
        const std::string msg = e.what();
        EXPECT_NE( msg.find( "graph analysis failed" ), std::string::npos );
        EXPECT_NE( msg.find( "unconnected-port" ), std::string::npos );
        EXPECT_NE( msg.find( "raft::analyze" ), std::string::npos );
    }
}

TEST( analysis, exe_opt_out_restores_legacy_error_path )
{
    raft::map m;
    auto *s = raft::kernel::make<raft::sum<i64, i64, i64>>();
    m.link( seq_source( 4 ), s, "input_a" );
    m.link( s, raft::kernel::make<raft::print<i64>>() );
    raft::run_options o;
    o.analysis.enabled = false;
    try
    {
        m.exe( o );
        FAIL() << "the legacy per-port check must still throw";
    }
    catch( const raft::analysis_error & )
    {
        FAIL() << "analysis ran despite the opt-out";
    }
    catch( const raft::graph_exception &e )
    {
        EXPECT_NE( std::string( e.what() ).find( "is not linked" ),
                   std::string::npos );
    }
}

TEST( analysis, ooo_unsafe_replica_lane_flagged )
{
    raft::map m;
    auto *w = raft::kernel::make<ooo_worker>();
    m.link<raft::out>( raft::kernel::make<raft::generate<int>>(
                           8, []( std::size_t i )
                           { return static_cast<int>( i ); } ),
                       w, "in" );
    std::vector<int> out;
    m.link<raft::out>( w, raft::kernel::make<raft::write_each<int>>(
                              std::back_inserter( out ) ) );
    const auto rep = raft::analyze( m );
    const auto *d  = find_diag( rep, "ooo-unsafe-replica-lane" );
    ASSERT_NE( d, nullptr );
    EXPECT_EQ( d->sev, raft::analysis::severity::error );
    EXPECT_NE( d->message.find( "order-sensitive" ), std::string::npos );

    /** with auto-parallelization off the same shape is only advisory **/
    raft::run_options o;
    o.enable_auto_parallel = false;
    const auto rep2        = raft::analyze( m, o );
    const auto *d2         = find_diag( rep2, "ooo-unsafe-replica-lane" );
    ASSERT_NE( d2, nullptr );
    EXPECT_EQ( d2->sev, raft::analysis::severity::note );
}

TEST( analysis, in_order_links_keep_order_sensitive_kernel_silent )
{
    raft::map m;
    auto *w = raft::kernel::make<ooo_worker>();
    m.link( raft::kernel::make<raft::generate<int>>(
                8, []( std::size_t i ) { return static_cast<int>( i ); } ),
            w, "in" );
    std::vector<int> out;
    m.link( w, raft::kernel::make<raft::write_each<int>>(
                   std::back_inserter( out ) ) );
    const auto rep = raft::analyze( m );
    EXPECT_EQ( find_diag( rep, "ooo-unsafe-replica-lane" ), nullptr );
    EXPECT_TRUE( rep.ok() );
}

TEST( analysis, lossy_conversion_warns )
{
    raft::map m;
    std::vector<int> out;
    m.link( raft::kernel::make<raft::generate<double>>(
                4, []( std::size_t i )
                { return static_cast<double>( i ) + 0.5; } ),
            raft::kernel::make<raft::write_each<int>>(
                std::back_inserter( out ) ) );
    const auto rep = raft::analyze( m );
    const auto *d  = find_diag( rep, "lossy-conversion" );
    ASSERT_NE( d, nullptr );
    EXPECT_EQ( d->sev, raft::analysis::severity::warning );
    EXPECT_NE( d->message.find( "fractional values are truncated" ),
               std::string::npos );
    /** warnings never block execution by default **/
    EXPECT_TRUE( rep.ok() );
    m.exe();
    ASSERT_EQ( out.size(), 4u );
}

TEST( analysis, healthy_graph_is_clean_and_report_out_populated )
{
    const std::size_t count = 1000;
    std::vector<i64> out;
    raft::map m;
    auto linked = m.link( seq_source( count ),
                          raft::kernel::make<raft::sum<i64, i64, i64>>(),
                          "input_a" );
    m.link( seq_source( count ), &( linked.dst ), "input_b" );
    m.link( &( linked.dst ),
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( out ) ) );
    EXPECT_TRUE( raft::analyze( m ).clean() );
    raft::analysis::report rep;
    raft::run_options o;
    o.analysis.report_out = &rep;
    m.exe( o );
    EXPECT_TRUE( rep.clean() );
    EXPECT_EQ( out.size(), count );
}

TEST( analysis, json_and_text_rendering )
{
    raft::map m;
    auto *a = raft::kernel::make<relay>();
    auto *b = raft::kernel::make<relay>();
    m.link( a, "out", b, "in" );
    m.link( b, "out", a, "in" );
    raft::run_options o;
    o.dynamic_resize = false;
    const auto rep   = raft::analyze( m, o );
    const auto text  = rep.to_string();
    EXPECT_NE( text.find( "[error] deadlock-cycle" ), std::string::npos );
    const auto json = rep.to_json();
    EXPECT_NE( json.find( "\"version\": 1" ), std::string::npos );
    EXPECT_NE( json.find( "\"id\": \"deadlock-cycle\"" ),
               std::string::npos );
    EXPECT_NE( json.find( "\"severity\": \"error\"" ), std::string::npos );
    EXPECT_NE( json.find( "\"summary\"" ), std::string::npos );
    /** diagnostics are ranked most severe first **/
    ASSERT_FALSE( rep.diagnostics.empty() );
    EXPECT_EQ( rep.diagnostics.front().sev,
               raft::analysis::severity::error );
}

TEST( analysis, empty_and_disconnected_graphs )
{
    raft::map empty;
    const auto rep = raft::analyze( empty );
    ASSERT_NE( find_diag( rep, "empty-graph" ), nullptr );

    raft::map m;
    m.link( seq_source( 1 ), raft::kernel::make<raft::print<i64>>() );
    m.link( seq_source( 1 ), raft::kernel::make<raft::print<i64>>() );
    const auto rep2 = raft::analyze( m );
    const auto *d   = find_diag( rep2, "disconnected-graph" );
    ASSERT_NE( d, nullptr );
    EXPECT_EQ( d->sev, raft::analysis::severity::error );
    /** the legacy exe()-time message is preserved verbatim **/
    try
    {
        m.exe();
        FAIL() << "disconnected graph must not execute";
    }
    catch( const raft::graph_exception &e )
    {
        EXPECT_STREQ( e.what(),
                      "application graph is not fully connected" );
    }
}

TEST( analysis, restart_and_elastic_configuration_checks )
{
    raft::map m;
    m.link( seq_source( 8 ), raft::kernel::make<raft::print<i64>>() );
    raft::run_options o;
    o.supervision.enabled                      = true;
    o.supervision.default_restart.max_restarts = 2;
    const auto rep = raft::analyze( m, o );
    const auto *d  = find_diag( rep, "restart-no-reset" );
    ASSERT_NE( d, nullptr );
    EXPECT_EQ( d->sev, raft::analysis::severity::warning );
    EXPECT_NE( d->message.find( "restart_safe" ), std::string::npos );

    raft::run_options bad;
    bad.elastic.enabled      = true;
    bad.elastic.min_replicas = 4;
    bad.elastic.max_replicas = 2;
    const auto rep2          = raft::analyze( m, bad );
    const auto *e            = find_diag( rep2, "elastic-bounds" );
    ASSERT_NE( e, nullptr );
    EXPECT_EQ( e->sev, raft::analysis::severity::error );
}

TEST( analysis, warnings_as_errors_promotes_failure )
{
    raft::map m;
    std::vector<int> out;
    m.link( raft::kernel::make<raft::generate<double>>(
                4, []( std::size_t i )
                { return static_cast<double>( i ); } ),
            raft::kernel::make<raft::write_each<int>>(
                std::back_inserter( out ) ) );
    raft::run_options o;
    o.analysis.warnings_as_errors = true;
    EXPECT_THROW( m.exe( o ), raft::analysis_error );
}

/** @name map::link()/exe() error paths — exact diagnostic text */
///@{
TEST( analysis, link_null_kernel_exact_text )
{
    raft::map m;
    try
    {
        m.link( nullptr, seq_source( 1 ) );
        FAIL() << "null kernel must be rejected";
    }
    catch( const raft::graph_exception &e )
    {
        EXPECT_STREQ( e.what(), "link() given a null kernel" );
    }
}

TEST( analysis, double_link_exact_text )
{
    raft::map m;
    auto *src = seq_source( 1 );
    m.link( src, raft::kernel::make<raft::print<i64>>() );
    try
    {
        /** name the port explicitly: the no-name overload would fail the
         *  unlinked-port resolution first with a different message */
        m.link( src, "0", raft::kernel::make<raft::print<i64>>(), "0" );
        FAIL() << "double link must be rejected";
    }
    catch( const raft::port_exception &e )
    {
        EXPECT_EQ( std::string( e.what() ),
                   "output port '0' of " + src->name() +
                       " already linked" );
    }
}

TEST( analysis, incompatible_types_keep_link_type_exception )
{
    struct payload
    {
        int x;
    };
    class payload_sink : public raft::kernel
    {
    public:
        payload_sink() { input.addPort<payload>( "0" ); }
        raft::kstatus run() override { return raft::stop; }
    };
    raft::map m;
    m.link( seq_source( 1 ), raft::kernel::make<payload_sink>() );
    /** the analyzer reports it... **/
    const auto rep = raft::analyze( m );
    ASSERT_NE( find_diag( rep, "incompatible-link-types" ), nullptr );
    /** ...but exe() still throws the detailed link_type_exception **/
    try
    {
        m.exe();
        FAIL() << "incompatible types must be rejected";
    }
    catch( const raft::link_type_exception &e )
    {
        EXPECT_NE( std::string( e.what() )
                       .find( "types differ and are not convertible" ),
                   std::string::npos );
    }
}
///@}
