/**
 * The Figure 4 workload: streaming blocked matrix multiply. The pipeline's
 * result must equal the reference multiply for every shape (including
 * non-tile-multiple dimensions), with and without automatic
 * parallelization, across queue sizes.
 */
#include <gtest/gtest.h>

#include <cmath>

#include <algo/matmul.hpp>
#include <raft.hpp>

using raft::algo::matrix;

namespace {

matrix run_pipeline( const matrix &A, const matrix &B,
                     const raft::run_options &opts )
{
    matrix C( A.n );
    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::algo::mm_source>( A.n ),
        raft::kernel::make<raft::algo::mm_multiply>( &A, &B ) );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::algo::mm_sink>( &C ) );
    m.exe( opts );
    return C;
}

void expect_equal( const matrix &X, const matrix &Y )
{
    ASSERT_EQ( X.n, Y.n );
    for( std::size_t i = 0; i < X.n; ++i )
    {
        for( std::size_t j = 0; j < X.n; ++j )
        {
            ASSERT_NEAR( X.at( i, j ), Y.at( i, j ), 1e-9 )
                << "at (" << i << "," << j << ")";
        }
    }
}

} /** end anonymous namespace **/

TEST( matmul, reference_identity )
{
    matrix I( 8 );
    for( std::size_t i = 0; i < 8; ++i )
    {
        I.at( i, i ) = 1.0;
    }
    const auto A = matrix::random( 8, 123 );
    expect_equal( multiply_reference( A, I ), A );
}

TEST( matmul, reference_dimension_mismatch_throws )
{
    matrix A( 4 ), B( 8 );
    EXPECT_THROW( raft::algo::multiply_reference( A, B ),
                  std::invalid_argument );
}

class matmul_shapes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P( matmul_shapes, pipeline_equals_reference )
{
    const auto n = GetParam();
    const auto A = matrix::random( n, 1000 + n );
    const auto B = matrix::random( n, 2000 + n );
    const auto ref = raft::algo::multiply_reference( A, B );

    raft::run_options serial;
    serial.enable_auto_parallel = false;
    expect_equal( run_pipeline( A, B, serial ), ref );

    raft::run_options parallel;
    parallel.replication_width = 3;
    expect_equal( run_pipeline( A, B, parallel ), ref );
}

/** includes non-multiples of the 16-wide tile **/
INSTANTIATE_TEST_SUITE_P( shapes, matmul_shapes,
                          ::testing::Values( 1, 7, 16, 17, 32, 48,
                                             50 ) );

TEST( matmul, queue_size_does_not_affect_result )
{
    const auto A   = matrix::random( 33, 5 );
    const auto B   = matrix::random( 33, 6 );
    const auto ref = raft::algo::multiply_reference( A, B );
    for( const std::size_t cap : { 2u, 8u, 512u } )
    {
        raft::run_options o;
        o.initial_queue_capacity = cap;
        o.replication_width      = 2;
        expect_equal( run_pipeline( A, B, o ), ref );
    }
}

TEST( matmul, tile_payload_is_inline_and_sizeable )
{
    /** Figure 4 sweeps megabytes: the element must be ~2 KiB inline **/
    EXPECT_GE( sizeof( raft::algo::mm_tile ),
               raft::algo::mm_tile_dim * raft::algo::mm_tile_dim *
                   sizeof( double ) );
    EXPECT_TRUE(
        std::is_trivially_copyable_v<raft::algo::mm_tile> );
}
