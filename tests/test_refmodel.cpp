/**
 * Reference-model property test: random operation sequences applied to
 * ring_buffer<T> and to a trivially correct std::deque model must agree
 * on every observable (contents, sizes, counters, exceptions), across
 * seeds, capacities and interleaved resizes.
 */
#include <gtest/gtest.h>

#include <deque>
#include <random>

#include <core/ringbuffer.hpp>

namespace {

struct ref_model
{
    std::deque<std::pair<int, raft::signal>> q;
    std::size_t capacity;
    bool write_closed{ false };
    std::uint64_t pushed{ 0 }, popped{ 0 };
};

} /** end anonymous namespace **/

class refmodel_fuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P( refmodel_fuzz, ring_buffer_matches_deque_model )
{
    std::mt19937_64 eng( GetParam() );
    std::uniform_int_distribution<int> op_pick( 0, 99 );
    std::uniform_int_distribution<int> val_pick( -1000, 1000 );

    const std::size_t cap0 = 1u << ( 1 + ( GetParam() % 6 ) );
    raft::ring_buffer<int> rb( cap0 );
    ref_model ref;
    ref.capacity = rb.capacity();

    for( int step = 0; step < 4000; ++step )
    {
        const int op = op_pick( eng );
        if( op < 40 ) /** try_push **/
        {
            const int v        = val_pick( eng );
            const raft::signal s =
                ( v % 3 == 0 ) ? raft::eos : raft::none;
            bool ref_ok = false;
            if( ref.q.size() < ref.capacity )
            {
                ref.q.emplace_back( v, s );
                ++ref.pushed;
                ref_ok = true;
            }
            EXPECT_EQ( rb.try_push( v + 0, s ), ref_ok ) << "step "
                                                         << step;
        }
        else if( op < 80 ) /** try_pop **/
        {
            int v          = 0;
            raft::signal s = raft::none;
            const bool got = rb.try_pop( v, &s );
            EXPECT_EQ( got, !ref.q.empty() ) << "step " << step;
            if( got )
            {
                EXPECT_EQ( v, ref.q.front().first );
                EXPECT_EQ( s, ref.q.front().second );
                ref.q.pop_front();
                ++ref.popped;
            }
        }
        else if( op < 85 ) /** peek **/
        {
            if( !ref.q.empty() )
            {
                raft::signal s = raft::none;
                EXPECT_EQ( rb.peek( &s ), ref.q.front().first );
                EXPECT_EQ( s, ref.q.front().second );
                rb.unpeek();
            }
        }
        else if( op < 90 ) /** recycle k **/
        {
            const auto k =
                std::min<std::size_t>( ref.q.size(), 1 + op % 3 );
            if( k > 0 )
            {
                rb.recycle( k );
                for( std::size_t i = 0; i < k; ++i )
                {
                    ref.q.pop_front();
                }
                ref.popped += k;
            }
        }
        else if( op < 96 ) /** resize **/
        {
            const std::size_t new_cap = 1u << ( 1 + ( op % 8 ) );
            const bool expect_ok = new_cap >= 2 &&
                                   raft::detail::pow2_ceil( new_cap ) >=
                                       ref.q.size();
            const bool ok = rb.resize( new_cap );
            EXPECT_EQ( ok, expect_ok ) << "step " << step;
            if( ok )
            {
                ref.capacity = rb.capacity();
            }
        }
        else /** window peek over everything queued **/
        {
            const auto n = ref.q.size();
            if( n > 0 )
            {
                auto w = rb.peek_range( n );
                for( std::size_t i = 0; i < n; ++i )
                {
                    ASSERT_EQ( w[ i ], ref.q[ i ].first )
                        << "window idx " << i << " step " << step;
                }
            }
        }

        /** invariants after every operation **/
        ASSERT_EQ( rb.size(), ref.q.size() );
        ASSERT_EQ( rb.total_pushed(), ref.pushed );
        ASSERT_EQ( rb.total_popped(), ref.popped );
        ASSERT_EQ( rb.capacity(), ref.capacity );
    }

    /** drain and verify the tail contents **/
    rb.close_write();
    while( !ref.q.empty() )
    {
        int v = 0;
        rb.pop( v );
        EXPECT_EQ( v, ref.q.front().first );
        ref.q.pop_front();
    }
    EXPECT_THROW( { int v; rb.pop( v ); },
                  raft::closed_port_exception );
}

INSTANTIATE_TEST_SUITE_P( seeds, refmodel_fuzz,
                          ::testing::Values( 1u, 2u, 3u, 5u, 8u, 13u,
                                             21u, 34u, 55u, 89u ) );
