/**
 * Telemetry layer (runtime/telemetry/): the lock-free tracer (ring
 * overflow + drop accounting, Chrome trace_event JSON shape), the metrics
 * registry (concurrent wait-free updates — the TSan target — ownership
 * scoping, Prometheus text exposition), the HTTP exporter round-trip
 * (scrape → parse → match against live registry state), and the
 * end-to-end acceptance runs: a live scrape during map::exe() and a
 * fault-injected elastic run whose exported trace shows the supervisor
 * restart and the replica activations.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;
using namespace std::chrono_literals;
namespace tele = raft::telemetry;

raft::generate<i64> *seq_source( const std::size_t n )
{
    return raft::kernel::make<raft::generate<i64>>(
        n, []( std::size_t i ) { return static_cast<i64>( i ); } );
}

/** Minimal recursive-descent JSON validator: enough to reject anything
 *  chrome://tracing or python's json module would reject (unbalanced
 *  structure, bad literals, trailing garbage). Values are not retained. */
class json_checker
{
public:
    static bool valid( const std::string &text )
    {
        json_checker c( text );
        c.skip_ws();
        if( !c.value() )
        {
            return false;
        }
        c.skip_ws();
        return c.pos_ == c.s_.size();
    }

private:
    explicit json_checker( const std::string &s ) : s_( s ) {}

    void skip_ws()
    {
        while( pos_ < s_.size() &&
               ( s_[ pos_ ] == ' ' || s_[ pos_ ] == '\t' ||
                 s_[ pos_ ] == '\n' || s_[ pos_ ] == '\r' ) )
        {
            ++pos_;
        }
    }

    bool literal( const char *lit )
    {
        const auto n = std::strlen( lit );
        if( s_.compare( pos_, n, lit ) != 0 )
        {
            return false;
        }
        pos_ += n;
        return true;
    }

    bool string()
    {
        if( pos_ >= s_.size() || s_[ pos_ ] != '"' )
        {
            return false;
        }
        ++pos_;
        while( pos_ < s_.size() && s_[ pos_ ] != '"' )
        {
            if( s_[ pos_ ] == '\\' )
            {
                ++pos_; /** skip the escaped char **/
            }
            ++pos_;
        }
        if( pos_ >= s_.size() )
        {
            return false;
        }
        ++pos_; /** closing quote **/
        return true;
    }

    bool number()
    {
        const auto start = pos_;
        if( pos_ < s_.size() && s_[ pos_ ] == '-' )
        {
            ++pos_;
        }
        while( pos_ < s_.size() &&
               ( std::isdigit( static_cast<unsigned char>( s_[ pos_ ] ) ) ||
                 s_[ pos_ ] == '.' || s_[ pos_ ] == 'e' ||
                 s_[ pos_ ] == 'E' || s_[ pos_ ] == '+' ||
                 s_[ pos_ ] == '-' ) )
        {
            ++pos_;
        }
        return pos_ > start;
    }

    bool value()
    {
        skip_ws();
        if( pos_ >= s_.size() )
        {
            return false;
        }
        switch( s_[ pos_ ] )
        {
            case '{':
                return object();
            case '[':
                return array();
            case '"':
                return string();
            case 't':
                return literal( "true" );
            case 'f':
                return literal( "false" );
            case 'n':
                return literal( "null" );
            default:
                return number();
        }
    }

    bool object()
    {
        ++pos_; /** '{' **/
        skip_ws();
        if( pos_ < s_.size() && s_[ pos_ ] == '}' )
        {
            ++pos_;
            return true;
        }
        for( ;; )
        {
            skip_ws();
            if( !string() )
            {
                return false;
            }
            skip_ws();
            if( pos_ >= s_.size() || s_[ pos_ ] != ':' )
            {
                return false;
            }
            ++pos_;
            if( !value() )
            {
                return false;
            }
            skip_ws();
            if( pos_ >= s_.size() )
            {
                return false;
            }
            if( s_[ pos_ ] == ',' )
            {
                ++pos_;
                continue;
            }
            if( s_[ pos_ ] == '}' )
            {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; /** '[' **/
        skip_ws();
        if( pos_ < s_.size() && s_[ pos_ ] == ']' )
        {
            ++pos_;
            return true;
        }
        for( ;; )
        {
            if( !value() )
            {
                return false;
            }
            skip_ws();
            if( pos_ >= s_.size() )
            {
                return false;
            }
            if( s_[ pos_ ] == ',' )
            {
                ++pos_;
                continue;
            }
            if( s_[ pos_ ] == ']' )
            {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    std::size_t pos_{ 0 };
};

/** Pull one sample's value out of exposition text: the line starting with
 *  `series` (full name incl. any {labels} prefix match). NaN when absent. */
double scrape_value( const std::string &body, const std::string &series )
{
    std::istringstream is( body );
    std::string line;
    while( std::getline( is, line ) )
    {
        if( line.rfind( series, 0 ) != 0 || line.empty() ||
            line[ 0 ] == '#' )
        {
            continue;
        }
        const auto sp = line.rfind( ' ' );
        if( sp == std::string::npos )
        {
            continue;
        }
        return std::stod( line.substr( sp + 1 ) );
    }
    return std::numeric_limits<double>::quiet_NaN();
}

/** Clonable relay with a fixed per-element service time (elastic load).
 *  `on_first_run` fires once from the scheduler thread — its execution
 *  happens-after everything map::exe() did before spawning kernels (the
 *  telemetry session constructor included), so the callback can read
 *  plain state the session wrote, e.g. bound_port_out. */
class sleepy_worker : public raft::kernel
{
public:
    explicit sleepy_worker( const std::chrono::microseconds delay,
                            std::function<void()> on_first_run = {} )
        : delay_( delay ), first_( std::move( on_first_run ) )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
        set_name( "sleepy" );
    }
    raft::kstatus run() override
    {
        if( first_ )
        {
            first_();
            first_ = nullptr;
        }
        auto v = input[ "0" ].pop_s<i64>();
        std::this_thread::sleep_for( delay_ );
        auto out = output[ "0" ].allocate_s<i64>();
        ( *out ) = *v;
        return raft::proceed;
    }
    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override
    {
        return new sleepy_worker( delay_ );
    }

private:
    std::chrono::microseconds delay_;
    std::function<void()> first_;
};

/** Relay whose first `failures` run() calls throw before any queue op. */
class flaky_relay : public raft::kernel
{
public:
    explicit flaky_relay( const std::size_t failures )
        : kernel(), fails_left_( failures )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
        set_name( "flaky" );
    }
    raft::kstatus run() override
    {
        if( fails_left_ > 0 )
        {
            --fails_left_;
            throw std::runtime_error( "flaky: transient failure" );
        }
        i64 v = 0;
        input[ "0" ].pop( v );
        output[ "0" ].push( v );
        return raft::proceed;
    }

private:
    std::size_t fails_left_;
};

} /** end anonymous namespace **/

/* ------------------------------------------------------------------ */
/* tracer                                                               */
/* ------------------------------------------------------------------ */

TEST( telemetry_trace, disabled_sites_record_nothing )
{
    ASSERT_FALSE( tele::tracing() );
    const auto before = tele::trace_counters();
    const auto id     = tele::intern( "noop" );
    tele::span( id, tele::cat::kernel, 0, 100 );
    tele::instant( id, tele::cat::kernel );
    const auto after = tele::trace_counters();
    EXPECT_EQ( after.recorded, before.recorded );
    EXPECT_EQ( after.dropped, before.dropped );
}

TEST( telemetry_trace, ring_overflow_drops_and_counts )
{
    tele::trace_enable( 64 ); /** rounded to 64 slots per thread **/
    const auto id = tele::intern( "spam" );
    constexpr std::uint64_t total = 1000;
    for( std::uint64_t i = 0; i < total; ++i )
    {
        tele::instant( id, tele::cat::kernel, i );
    }
    const auto s = tele::trace_counters();
    EXPECT_EQ( s.recorded + s.dropped, total );
    EXPECT_EQ( s.recorded, 64u ); /** exactly one full ring **/
    EXPECT_EQ( s.dropped, total - 64u );
    EXPECT_GE( s.threads, 1u );
    tele::trace_disable();
    EXPECT_FALSE( tele::tracing() );
}

TEST( telemetry_trace, interning_is_stable )
{
    const auto a = tele::intern( "alpha" );
    const auto b = tele::intern( "beta" );
    EXPECT_NE( a, 0u );
    EXPECT_NE( b, 0u );
    EXPECT_NE( a, b );
    EXPECT_EQ( tele::intern( "alpha" ), a );
}

TEST( telemetry_trace, chrome_json_shape_and_validity )
{
    tele::trace_enable( 256 );
    tele::name_thread( "test \"main\"" ); /** quote needs escaping **/
    const auto id = tele::intern( "work span" );
    tele::span( id, tele::cat::kernel, 1000, 51000, 7 );
    tele::instant_str( "marker", tele::cat::supervisor, 3 );
    const auto json = tele::trace_to_json();
    tele::trace_disable();

    EXPECT_TRUE( json_checker::valid( json ) ) << json;
    EXPECT_NE( json.find( "\"traceEvents\"" ), std::string::npos );
    EXPECT_NE( json.find( "\"ph\": \"X\"" ), std::string::npos );
    EXPECT_NE( json.find( "\"ph\": \"i\"" ), std::string::npos );
    EXPECT_NE( json.find( "\"work span\"" ), std::string::npos );
    EXPECT_NE( json.find( "\"marker\"" ), std::string::npos );
    /** span duration: 50 µs **/
    EXPECT_NE( json.find( "\"dur\": 50.000" ), std::string::npos );
    /** thread-name metadata with the quote escaped **/
    EXPECT_NE( json.find( "thread_name" ), std::string::npos );
    EXPECT_NE( json.find( "test \\\"main\\\"" ), std::string::npos );
}

TEST( telemetry_trace, multithreaded_rings_are_independent )
{
    tele::trace_enable( 1024 );
    const auto id = tele::intern( "mt" );
    constexpr int threads  = 4;
    constexpr int per_thread = 500;
    std::vector<std::thread> pool;
    for( int t = 0; t < threads; ++t )
    {
        pool.emplace_back( [ & ]() {
            tele::name_thread( "worker" );
            for( int i = 0; i < per_thread; ++i )
            {
                tele::instant( id, tele::cat::stream );
            }
        } );
    }
    for( auto &th : pool )
    {
        th.join();
    }
    const auto s = tele::trace_counters();
    EXPECT_EQ( s.recorded, static_cast<std::uint64_t>( threads ) *
                               per_thread );
    EXPECT_EQ( s.dropped, 0u );
    EXPECT_GE( s.threads, static_cast<std::uint64_t>( threads ) );
    const auto json = tele::trace_to_json();
    tele::trace_disable();
    EXPECT_TRUE( json_checker::valid( json ) );
}

/* ------------------------------------------------------------------ */
/* metrics registry                                                     */
/* ------------------------------------------------------------------ */

TEST( telemetry_metrics, counter_gauge_histogram_concurrent_updates )
{
    auto &reg   = tele::registry::instance();
    const auto owner = reg.make_owner();
    auto &c = reg.get_counter( "test_conc_total", {}, "", owner );
    auto &g = reg.get_gauge( "test_conc_gauge", {}, "", owner );
    auto &h = reg.get_histogram( "test_conc_hist",
                                 { 10, 100, 1000 }, 1.0, {}, "", owner );
    constexpr int threads = 4;
    constexpr std::uint64_t per_thread = 50000;
    std::vector<std::thread> pool;
    for( int t = 0; t < threads; ++t )
    {
        pool.emplace_back( [ & ]() {
            for( std::uint64_t i = 0; i < per_thread; ++i )
            {
                c.add();
                g.set( static_cast<double>( i ) );
                h.observe( i % 2000 );
            }
        } );
    }
    for( auto &th : pool )
    {
        th.join();
    }
    EXPECT_EQ( c.value(), threads * per_thread );
    EXPECT_EQ( h.count(), threads * per_thread );
    EXPECT_LT( g.value(), static_cast<double>( per_thread ) );
    reg.release( owner );
}

TEST( telemetry_metrics, get_or_create_is_keyed_by_name_and_labels )
{
    auto &reg   = tele::registry::instance();
    const auto owner = reg.make_owner();
    auto &a = reg.get_counter( "test_keyed", { { "k", "1" } }, "", owner );
    auto &b = reg.get_counter( "test_keyed", { { "k", "2" } }, "", owner );
    auto &c = reg.get_counter( "test_keyed", { { "k", "1" } }, "", owner );
    EXPECT_NE( &a, &b );
    EXPECT_EQ( &a, &c );
    reg.release( owner );
}

TEST( telemetry_metrics, owner_release_removes_series )
{
    auto &reg        = tele::registry::instance();
    const auto before = reg.size();
    const auto owner = reg.make_owner();
    reg.get_counter( "test_scoped_a", {}, "", owner );
    reg.get_gauge( "test_scoped_b", {}, "", owner );
    reg.add_callback_gauge( "test_scoped_c", {}, []() { return 1.0; },
                            "", owner );
    EXPECT_EQ( reg.size(), before + 3 );
    reg.release( owner );
    EXPECT_EQ( reg.size(), before );
}

TEST( telemetry_metrics, prometheus_exposition_shape )
{
    auto &reg   = tele::registry::instance();
    const auto owner = reg.make_owner();
    auto &c = reg.get_counter( "test_expo_total", { { "path", "a\"b\\c" } },
                               "counts things", owner );
    c.add( 42 );
    auto &g = reg.get_gauge( "test_expo_gauge", {}, "a gauge", owner );
    g.set( 2.5 );
    /** ns-bounds histogram exported in seconds **/
    auto &h = reg.get_histogram( "test_expo_seconds",
                                 { 1000, 1000000 }, 1e-9, {}, "", owner );
    h.observe( 500 );      /** le 1e-6  **/
    h.observe( 500000 );   /** le 1e-3  **/
    h.observe( 2000000 );  /** +Inf     **/
    const auto body = reg.render_prometheus();
    reg.release( owner );

    EXPECT_NE( body.find( "# HELP test_expo_total counts things" ),
               std::string::npos );
    EXPECT_NE( body.find( "# TYPE test_expo_total counter" ),
               std::string::npos );
    /** label escaping: " -> \" and \ -> \\ **/
    EXPECT_NE( body.find( "test_expo_total{path=\"a\\\"b\\\\c\"} 42" ),
               std::string::npos );
    EXPECT_NE( body.find( "# TYPE test_expo_gauge gauge" ),
               std::string::npos );
    EXPECT_NE( body.find( "test_expo_gauge 2.5" ), std::string::npos );
    EXPECT_NE( body.find( "# TYPE test_expo_seconds histogram" ),
               std::string::npos );
    /** cumulative buckets **/
    EXPECT_NE( body.find( "test_expo_seconds_bucket{le=\"1e-06\"} 1" ),
               std::string::npos );
    EXPECT_NE( body.find( "test_expo_seconds_bucket{le=\"0.001\"} 2" ),
               std::string::npos );
    EXPECT_NE( body.find( "test_expo_seconds_bucket{le=\"+Inf\"} 3" ),
               std::string::npos );
    EXPECT_NE( body.find( "test_expo_seconds_count 3" ),
               std::string::npos );
}

/* ------------------------------------------------------------------ */
/* exporter round-trip                                                  */
/* ------------------------------------------------------------------ */

TEST( telemetry_exporter, scrape_round_trip_matches_registry )
{
    auto &reg   = tele::registry::instance();
    const auto owner = reg.make_owner();
    auto &c = reg.get_counter( "test_rt_total", {}, "", owner );
    c.add( 123 );
    std::atomic<double> live{ 7.0 };
    reg.add_callback_gauge( "test_rt_live", {},
                            [ & ]() { return live.load(); }, "", owner );

    tele::prometheus_endpoint ep( 0 );
    ASSERT_NE( ep.port(), 0 );
    const auto body1 = tele::scrape_prometheus( "127.0.0.1", ep.port() );
    EXPECT_DOUBLE_EQ( scrape_value( body1, "test_rt_total" ), 123.0 );
    EXPECT_DOUBLE_EQ( scrape_value( body1, "test_rt_live" ), 7.0 );

    /** a second scrape sees updated state (fresh render per request) **/
    c.add( 1 );
    live.store( 9.5 );
    const auto body2 = tele::scrape_prometheus( "127.0.0.1", ep.port() );
    EXPECT_DOUBLE_EQ( scrape_value( body2, "test_rt_total" ), 124.0 );
    EXPECT_DOUBLE_EQ( scrape_value( body2, "test_rt_live" ), 9.5 );
    EXPECT_GE( ep.scrapes(), 2u );
    ep.stop();
    reg.release( owner );
}

/* ------------------------------------------------------------------ */
/* perf_snapshot satellites                                             */
/* ------------------------------------------------------------------ */

TEST( telemetry_snapshot, histogram_quantiles )
{
    raft::runtime::occupancy_histogram h;
    for( int i = 0; i < 90; ++i )
    {
        h.add( 0.05 ); /** bucket 0: [0, 0.1) **/
    }
    for( int i = 0; i < 10; ++i )
    {
        h.add( 0.95 ); /** bucket 9 **/
    }
    EXPECT_DOUBLE_EQ( h.p50(), 0.1 );  /** upper edge of bucket 0 **/
    EXPECT_DOUBLE_EQ( h.p95(), 1.0 );  /** upper edge of bucket 9 **/
    EXPECT_DOUBLE_EQ( h.p99(), 1.0 );
    raft::runtime::occupancy_histogram empty;
    EXPECT_DOUBLE_EQ( empty.p50(), 0.0 );
}

TEST( telemetry_snapshot, to_json_and_stream_operator )
{
    const std::size_t count = 20000;
    std::vector<i64> out;
    raft::runtime::perf_snapshot snap;
    raft::map m;
    auto kp = m.link( seq_source( count ),
                      raft::kernel::make<sleepy_worker>( 0us ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.stats_out = &snap;
    m.exe( o );
    ASSERT_FALSE( snap.streams.empty() );

    const auto json = snap.to_json();
    EXPECT_TRUE( json_checker::valid( json ) ) << json;
    EXPECT_NE( json.find( "\"wall_seconds\"" ), std::string::npos );
    EXPECT_NE( json.find( "\"streams\"" ), std::string::npos );
    EXPECT_NE( json.find( "\"p95_utilization\"" ), std::string::npos );
    EXPECT_NE( json.find( "\"occupancy_histogram\"" ), std::string::npos );

    std::ostringstream os;
    os << snap;
    EXPECT_NE( os.str().find( "perf_snapshot" ), std::string::npos );
    EXPECT_NE( os.str().find( "->" ), std::string::npos );
}

/* ------------------------------------------------------------------ */
/* end-to-end: live scrape during exe()                                 */
/* ------------------------------------------------------------------ */

TEST( telemetry_e2e, live_scrape_during_run_sees_kernel_and_stream_series )
{
    const std::size_t count = 40000;
    std::vector<i64> out;
    std::atomic<std::uint16_t> port{ 0 };
    std::uint16_t bound = 0;
    tele::telemetry_report report;

    std::string body;
    std::thread scraper( [ & ]() {
        while( port.load() == 0 )
        {
            std::this_thread::sleep_for( 200us );
        }
        /** scrape mid-run until per-kernel series turn nonzero (the
         *  graph is large enough that we always catch it live) **/
        for( int i = 0; i < 400; ++i )
        {
            try
            {
                const auto b = tele::scrape_prometheus( "127.0.0.1",
                                                        port.load() );
                body = b;
                if( scrape_value( b, "raft_kernel_runs_total" ) > 0.0 )
                {
                    return;
                }
            }
            catch( const raft::net_exception & )
            {
                /** endpoint gone: exe() finished, keep what we have **/
                return;
            }
            std::this_thread::sleep_for( 500us );
        }
    } );

    raft::map m;
    /** the session writes bound_port_out in its constructor, before any
     *  kernel runs — the worker's first run() publishes it **/
    auto kp = m.link(
        seq_source( count ),
        raft::kernel::make<sleepy_worker>(
            5us, [ & ]() { port.store( bound ); } ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.telemetry.enabled          = true;
    o.telemetry.serve_prometheus = true;
    o.telemetry.bound_port_out   = &bound;
    o.telemetry.report_out       = &report;
    m.exe( o );
    scraper.join();

    EXPECT_EQ( out.size(), count );
    EXPECT_EQ( report.prometheus_port, bound );
    EXPECT_GT( report.trace_events_recorded, 0u );
    ASSERT_FALSE( body.empty() );
    /** per-kernel service accounting and per-stream occupancy series
     *  were live while the graph ran **/
    EXPECT_GT( scrape_value( body, "raft_kernel_runs_total" ), 0.0 );
    EXPECT_NE( body.find( "raft_kernel_service_rate_hz" ),
               std::string::npos );
    EXPECT_NE( body.find( "raft_stream_occupancy" ), std::string::npos );
    EXPECT_NE( body.find( "raft_stream_capacity" ), std::string::npos );
    EXPECT_FALSE( std::isnan(
        scrape_value( body, "raft_monitor_ticks_total" ) ) );

    /** the registry is clean again: session-scoped series are gone **/
    const auto after = tele::registry::instance().render_prometheus();
    EXPECT_EQ( after.find( "raft_kernel_service_rate_hz" ),
               std::string::npos );
    EXPECT_FALSE( tele::tracing() );
    EXPECT_FALSE( tele::metrics_on() );
}

/* ------------------------------------------------------------------ */
/* end-to-end: fault-injected elastic run emits the full trace          */
/* ------------------------------------------------------------------ */

TEST( telemetry_e2e, fault_injected_elastic_trace_has_restart_and_activation )
{
    const std::string trace_path = "telemetry_e2e_trace.json";
    const std::size_t count      = 1500;
    std::vector<i64> out;
    tele::telemetry_report report;

    raft::map m;
    auto *flaky = raft::kernel::make<flaky_relay>( 2 );
    flaky->set_restart_policy( raft::restart_policy::up_to( 5 ) );
    /** unordered links so the slow middle kernel is split-eligible **/
    auto kp  = m.link<raft::out>( seq_source( count ),
                                  raft::kernel::make<sleepy_worker>(
                                      300us ) );
    auto kp2 = m.link<raft::out>( &kp.dst, flaky );
    m.link<raft::out>( &kp2.dst,
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );

    raft::run_options o;
    o.enable_auto_parallel     = true;
    o.elastic.enabled          = true;
    o.elastic.min_replicas     = 1;
    o.elastic.max_replicas     = 4;
    o.elastic.control_period   = 2ms;
    o.elastic.hysteresis       = 2;
    o.supervision.enabled      = true;
    o.telemetry.enabled        = true;
    o.telemetry.trace_out      = trace_path;
    o.telemetry.report_out     = &report;
    m.exe( o );

    EXPECT_EQ( out.size(), count );
    EXPECT_GT( report.trace_events_recorded, 0u );

    std::ifstream f( trace_path );
    ASSERT_TRUE( f.good() );
    std::stringstream ss;
    ss << f.rdbuf();
    const auto json = ss.str();
    std::remove( trace_path.c_str() );

    EXPECT_TRUE( json_checker::valid( json ) );
    /** supervisor restart of the flaky kernel **/
    EXPECT_NE( json.find( "restart flaky" ), std::string::npos );
    /** elastic controller activated replica lanes under load **/
    EXPECT_NE( json.find( "replica_activate" ), std::string::npos );
    /** kernel lifecycle spans made it out too **/
    EXPECT_NE( json.find( "\"ph\": \"X\"" ), std::string::npos );
}

TEST( telemetry_e2e, injected_fault_counter_and_trace_event )
{
    const auto before = tele::inject_faults_total().value();
    tele::trace_enable( 256 );
    tele::metrics_enable();
    raft::runtime::inject::enable( 7 );
    raft::runtime::inject::plan p;
    p.site  = "kernel.run";
    p.match = "flaky";
    p.after = 10;
    raft::runtime::inject::arm( p );

    std::vector<i64> out;
    raft::map m;
    auto *flaky = raft::kernel::make<flaky_relay>( 0 );
    flaky->set_restart_policy( raft::restart_policy::up_to( 2 ) );
    auto kp = m.link( seq_source( 20000 ), flaky );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.supervision.enabled = true; /** restart through the injection **/
    m.exe( o );
    raft::runtime::inject::disable();

    EXPECT_GE( tele::inject_faults_total().value(), before + 1 );
    const auto json = tele::trace_to_json();
    tele::metrics_disable();
    tele::trace_disable();
    EXPECT_NE( json.find( "injected_fault kernel.run" ),
               std::string::npos );
}
