/**
 * Network robustness: EINTR-safe socket I/O, connect retry with backoff,
 * heartbeat frames in the scalar codec, and the reliable (sequence-
 * numbered, reconnecting) TCP kernels — exactly-once delivery across a
 * link killed mid-stream by the fault-injection harness.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <iterator>
#include <numeric>
#include <thread>
#include <vector>

#include <pthread.h>

#include <net/codec.hpp>
#include <net/reliable.hpp>
#include <net/socket.hpp>
#include <net/tcp_kernels.hpp>
#include <raft.hpp>

using namespace std::chrono_literals;
using i64 = std::int64_t;

/* ------------------------------------------------------------------ */
/* EINTR                                                                */
/* ------------------------------------------------------------------ */

namespace {
extern "C" void noop_handler( int ) {}
} /** end anonymous namespace **/

TEST( net_robust, recv_and_send_survive_eintr )
{
    /** install a non-restarting handler so blocking syscalls really do
     *  return EINTR **/
    struct sigaction sa{};
    struct sigaction old{};
    sa.sa_handler = noop_handler;
    sa.sa_flags   = 0; /** no SA_RESTART **/
    ASSERT_EQ( sigaction( SIGUSR1, &sa, &old ), 0 );

    raft::net::tcp_listener server( 0 );
    auto client =
        raft::net::tcp_connection::connect( "127.0.0.1", server.port() );
    auto conn = server.accept();

    std::vector<char> payload( 1 << 20, 'x' );
    std::vector<char> rx( payload.size() );
    std::atomic<bool> ok{ false };
    std::thread receiver( [ & ]() {
        ok.store( conn.recv_all( rx.data(), rx.size() ) );
    } );
    /** hammer the blocked receiver with signals while data trickles in **/
    for( int i = 0; i < 50; ++i )
    {
        pthread_kill( receiver.native_handle(), SIGUSR1 );
        std::this_thread::sleep_for( 1ms );
        if( i % 10 == 0 )
        {
            client.send_all( payload.data() + ( i / 10 ) * 1000, 1000 );
        }
    }
    client.send_all( payload.data() + 5000, payload.size() - 5000 );
    receiver.join();
    EXPECT_TRUE( ok.load() );
    EXPECT_EQ( rx.back(), 'x' );

    sigaction( SIGUSR1, &old, nullptr );
}

/* ------------------------------------------------------------------ */
/* connect retry                                                        */
/* ------------------------------------------------------------------ */

TEST( net_robust, connect_retries_until_listener_appears )
{
    /** find a free port, leave it dark, bring the listener up late: the
     *  retrying connect must bridge the gap **/
    std::uint16_t port;
    {
        raft::net::tcp_listener probe( 0 );
        port = probe.port();
    }
    std::atomic<bool> connected{ false };
    std::thread dialer( [ & ]() {
        raft::net::connect_options co;
        co.max_attempts    = 50;
        co.initial_backoff = 10ms;
        co.max_backoff     = 50ms;
        auto c = raft::net::tcp_connection::connect( "127.0.0.1", port,
                                                     co );
        connected.store( c.valid() );
    } );
    std::this_thread::sleep_for( 150ms );
    raft::net::tcp_listener late( port );
    auto conn = late.accept();
    dialer.join();
    EXPECT_TRUE( connected.load() );
}

TEST( net_robust, connect_retry_exhaustion_throws )
{
    std::uint16_t dead_port;
    {
        raft::net::tcp_listener probe( 0 );
        dead_port = probe.port();
    }
    raft::net::connect_options co;
    co.max_attempts    = 3;
    co.initial_backoff = 1ms;
    EXPECT_THROW( raft::net::tcp_connection::connect( "127.0.0.1",
                                                      dead_port, co ),
                  raft::net_exception );
}

/* ------------------------------------------------------------------ */
/* heartbeat frames                                                     */
/* ------------------------------------------------------------------ */

TEST( net_robust, scanner_skips_heartbeats )
{
    std::vector<std::uint8_t> wire;
    wire.push_back( raft::net::scalar_heartbeat_frame );
    const i64 a = 7, b = 9;
    raft::net::append_scalar_frame( wire, 0, &a, sizeof( a ) );
    wire.push_back( raft::net::scalar_heartbeat_frame );
    wire.push_back( raft::net::scalar_heartbeat_frame );
    raft::net::append_scalar_frame( wire, 0, &b, sizeof( b ) );
    wire.push_back( raft::net::scalar_eof_frame );

    const auto scan = raft::net::scan_scalar_frames(
        wire.data(), wire.size(), sizeof( i64 ) );
    EXPECT_EQ( scan.frames, 2u );
    EXPECT_TRUE( scan.eof );
    EXPECT_EQ( scan.consumed, wire.size() );

    const auto packed = raft::net::compact_scalar_frames(
        wire.data(), wire.size(), sizeof( i64 ) );
    EXPECT_EQ( packed, 2 * ( 1 + sizeof( i64 ) ) + 1 );
    i64 va = 0, vb = 0;
    std::memcpy( &va, wire.data() + 1, sizeof( va ) );
    std::memcpy( &vb, wire.data() + 2 + sizeof( i64 ), sizeof( vb ) );
    EXPECT_EQ( va, 7 );
    EXPECT_EQ( vb, 9 );
}

TEST( net_robust, tcp_source_tolerates_heartbeats )
{
    raft::net::tcp_listener listener( 0 );
    const auto port = listener.port();

    std::vector<i64> received;
    std::thread node_b( [ & ]() {
        auto conn = listener.accept();
        raft::map m;
        m.link( raft::kernel::make<raft::net::tcp_source<i64>>(
                    std::move( conn ) ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( received ) ) );
        m.exe();
    } );

    auto conn =
        raft::net::tcp_connection::connect( "127.0.0.1", port );
    /** handcrafted wire: keep-alives interleaved with real elements **/
    std::vector<std::uint8_t> wire;
    for( i64 v = 0; v < 100; ++v )
    {
        wire.push_back( raft::net::scalar_heartbeat_frame );
        raft::net::append_scalar_frame( wire, 0, &v, sizeof( v ) );
    }
    wire.push_back( raft::net::scalar_eof_frame );
    conn.send_all( wire.data(), wire.size() );
    conn.shutdown_write();
    node_b.join();

    ASSERT_EQ( received.size(), 100u );
    for( i64 v = 0; v < 100; ++v )
    {
        EXPECT_EQ( received[ static_cast<std::size_t>( v ) ], v );
    }
}

/* ------------------------------------------------------------------ */
/* reliable TCP kernels                                                 */
/* ------------------------------------------------------------------ */

namespace {

/** Run generate(count) → reliable sink ⇢ reliable source → collect and
 *  return what arrived. */
std::vector<i64> reliable_roundtrip( const std::size_t count,
                                     const std::string &link_name )
{
    auto *src_k =
        raft::kernel::make<raft::net::reliable_tcp_source<i64>>();
    const auto port = src_k->port();

    std::vector<i64> received;
    std::thread node_b( [ & ]() {
        raft::map m;
        m.link( src_k, raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( received ) ) );
        m.exe();
    } );

    raft::map m;
    m.link( raft::kernel::make<raft::generate<i64>>(
                count, []( std::size_t i ) { return i64( i ); } ),
            raft::kernel::make<raft::net::reliable_tcp_sink<i64>>(
                "127.0.0.1", port,
                raft::net::connect_options::retry( 10 ), link_name ) );
    m.exe();
    node_b.join();
    return received;
}

void expect_exactly_once( const std::vector<i64> &received,
                          const std::size_t count )
{
    ASSERT_EQ( received.size(), count );
    for( std::size_t i = 0; i < count; ++i )
    {
        ASSERT_EQ( received[ i ], static_cast<i64>( i ) )
            << "element " << i << " lost, duplicated or reordered";
    }
}

} /** end anonymous namespace **/

TEST( net_reliable, exactly_once_clean_link )
{
    const std::size_t count = 20000;
    expect_exactly_once( reliable_roundtrip( count, "clean" ), count );
}

TEST( net_reliable, exactly_once_across_killed_link )
{
    /** the harness kills the sender's live socket mid-stream; the sink
     *  must reconnect, replay, and the receiver must dedup — no element
     *  lost, duplicated or reordered **/
    raft::runtime::inject::enable( 7 );
    raft::runtime::inject::plan p;
    p.site  = "net.link";
    p.match = "chaos";
    p.act   = raft::runtime::inject::action::kill_link;
    p.after = 20; /** let ~20 transmit batches through first **/
    p.count = 1;
    raft::runtime::inject::arm( p );

    const std::size_t count = 50000;
    const auto received     = reliable_roundtrip( count, "chaos" );
    EXPECT_EQ( raft::runtime::inject::fired( "net.link" ), 1u );
    raft::runtime::inject::disable();
    expect_exactly_once( received, count );
}

TEST( net_reliable, repeated_kills_still_exactly_once )
{
    raft::runtime::inject::enable( 11 );
    raft::runtime::inject::plan p;
    p.site  = "net.link";
    p.match = "storm";
    p.act   = raft::runtime::inject::action::kill_link;
    p.after = 5;
    p.count = 3; /** three separate partitions over one stream **/
    raft::runtime::inject::arm( p );

    const std::size_t count = 30000;
    const auto received     = reliable_roundtrip( count, "storm" );
    EXPECT_EQ( raft::runtime::inject::fired( "net.link" ), 3u );
    raft::runtime::inject::disable();
    expect_exactly_once( received, count );
}
