/**
 * The dynamic queue monitor (§3/§4): the 3δ write-block growth rule, the
 * reader-overflow growth rule, the shrink heuristic and statistics
 * sampling. Tests drive monitor::tick() directly where determinism
 * matters, and run the real thread where timing is the subject.
 */
#include <gtest/gtest.h>

#include <thread>

#include <core/monitor.hpp>
#include <core/ringbuffer.hpp>

using namespace std::chrono_literals;

namespace {

raft::monitor::stream_info info( const char *src, const char *dst )
{
    return raft::monitor::stream_info{ src, dst, "0", "0", "int" };
}

} /** end anonymous namespace **/

TEST( monitor, reader_overflow_demand_grows_queue )
{
    raft::run_options opts;
    opts.dynamic_resize = true;
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 4 );
    mon.register_stream( &q, info( "a", "b" ) );
    EXPECT_TRUE( q.auto_resize() ); /** registration enabled growth **/

    std::thread reader( [ & ]() {
        auto w = q.peek_range( 32 ); /** > capacity: posts demand **/
        EXPECT_EQ( w[ 0 ], 0 );
    } );
    std::thread writer( [ & ]() {
        for( int i = 0; i < 32; ++i )
        {
            q.push( i );
        }
    } );
    /** drive ticks until the demand is honoured **/
    while( q.capacity() < 32 )
    {
        mon.tick();
        std::this_thread::yield();
    }
    reader.join();
    writer.join();
    EXPECT_GE( q.capacity(), 32u );
    EXPECT_GE( q.resize_count(), 1u );
}

TEST( monitor, overflow_demand_overrides_max_capacity )
{
    raft::run_options opts;
    opts.dynamic_resize     = true;
    opts.max_queue_capacity = 8; /** demand is correctness: wins **/
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 4 );
    mon.register_stream( &q, info( "a", "b" ) );
    std::thread reader( [ & ]() {
        auto w = q.peek_range( 64 );
        EXPECT_EQ( w[ 63 ], 63 );
    } );
    std::thread writer( [ & ]() {
        for( int i = 0; i < 64; ++i )
        {
            q.push( i );
        }
    } );
    while( q.capacity() < 64 )
    {
        mon.tick();
        std::this_thread::yield();
    }
    reader.join();
    writer.join();
    EXPECT_GE( q.capacity(), 64u );
}

TEST( monitor, write_block_3delta_rule_grows_queue )
{
    raft::run_options opts;
    opts.dynamic_resize = true;
    opts.monitor_delta  = 5ms;
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 4 );
    mon.register_stream( &q, info( "a", "b" ) );

    for( int i = 0; i < 4; ++i )
    {
        q.push( i );
    }
    std::thread writer( [ & ]() { q.push( 99 ); } ); /** blocks: full **/
    while( q.write_blocked_since() == 0 )
    {
        std::this_thread::yield();
    }
    /** before 3δ: no resize **/
    mon.tick();
    EXPECT_EQ( q.capacity(), 4u );
    /** after 3δ: grow **/
    std::this_thread::sleep_for( 25ms );
    mon.tick();
    writer.join();
    EXPECT_EQ( q.capacity(), 8u );
    EXPECT_EQ( q.size(), 5u );
}

TEST( monitor, growth_respects_max_capacity )
{
    raft::run_options opts;
    opts.dynamic_resize     = true;
    opts.monitor_delta      = 2ms;
    opts.max_queue_capacity = 8;
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 8 );
    mon.register_stream( &q, info( "a", "b" ) );
    for( int i = 0; i < 8; ++i )
    {
        q.push( i );
    }
    std::thread writer( [ & ]() {
        try
        {
            q.push( 9 );
        }
        catch( const raft::closed_port_exception & )
        {
        }
    } );
    while( q.write_blocked_since() == 0 )
    {
        std::this_thread::yield();
    }
    std::this_thread::sleep_for( 10ms );
    mon.tick();
    EXPECT_EQ( q.capacity(), 8u ); /** at the cap: no growth **/
    q.close_read();
    writer.join();
}

TEST( monitor, shrink_heuristic_with_hysteresis )
{
    raft::run_options opts;
    opts.dynamic_resize    = true;
    opts.allow_shrink      = true;
    opts.shrink_hysteresis = 5;
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 4 );
    mon.register_stream( &q, info( "a", "b" ) );
    ASSERT_TRUE( q.resize( 64 ) ); /** grown earlier in its life **/

    /** below-threshold occupancy for `hysteresis` consecutive ticks **/
    for( int t = 0; t < 4; ++t )
    {
        mon.tick();
    }
    EXPECT_EQ( q.capacity(), 64u ); /** not yet **/
    mon.tick();
    EXPECT_EQ( q.capacity(), 32u ); /** halved **/

    /** never shrinks below the initial capacity **/
    for( int t = 0; t < 200; ++t )
    {
        mon.tick();
    }
    EXPECT_GE( q.capacity(), 4u );
}

TEST( monitor, occupancy_spike_resets_shrink_streak )
{
    raft::run_options opts;
    opts.dynamic_resize    = true;
    opts.allow_shrink      = true;
    opts.shrink_hysteresis = 4;
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 4 );
    mon.register_stream( &q, info( "a", "b" ) );
    ASSERT_TRUE( q.resize( 64 ) );
    mon.tick();
    mon.tick();
    mon.tick();
    for( int i = 0; i < 32; ++i )
    {
        q.push( i ); /** busy again **/
    }
    mon.tick(); /** streak resets **/
    q.recycle( 32 );
    mon.tick();
    mon.tick();
    mon.tick();
    EXPECT_EQ( q.capacity(), 64u ); /** 3 < hysteresis: no shrink **/
    mon.tick();
    EXPECT_EQ( q.capacity(), 32u );
}

TEST( monitor, statistics_accumulate_per_tick )
{
    raft::run_options opts;
    opts.dynamic_resize = false;
    opts.collect_stats  = true;
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 8 );
    mon.register_stream( &q, info( "src_k", "dst_k" ) );
    q.push( 1 );
    q.push( 2 );
    mon.tick(); /** occupancy 2/8 **/
    q.push( 3 );
    q.push( 4 );
    mon.tick(); /** occupancy 4/8 **/

    raft::runtime::perf_snapshot snap;
    mon.collect( snap, 1.0 );
    ASSERT_EQ( snap.streams.size(), 1u );
    const auto &s = snap.streams.front();
    EXPECT_EQ( s.samples, 2u );
    EXPECT_DOUBLE_EQ( s.mean_occupancy, 3.0 );
    EXPECT_DOUBLE_EQ( s.mean_utilization, 0.375 );
    EXPECT_EQ( s.pushed, 4u );
    EXPECT_EQ( s.src_kernel, "src_k" );
    EXPECT_EQ( s.occupancy.total(), 2u );
    EXPECT_DOUBLE_EQ( s.throughput_bytes_per_s, 0.0 ); /** no pops **/
}

TEST( monitor, disabled_resize_keeps_queue_fixed )
{
    raft::run_options opts;
    opts.dynamic_resize = false;
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 4 );
    mon.register_stream( &q, info( "a", "b" ) );
    EXPECT_FALSE( q.auto_resize() );
    EXPECT_THROW( (void) q.peek_range( 16 ),
                  raft::demand_exceeds_capacity_exception );
}

TEST( monitor, background_thread_ticks )
{
    raft::run_options opts;
    opts.dynamic_resize = true;
    opts.monitor_delta  = 100us;
    raft::monitor mon( opts );
    raft::ring_buffer<int> q( 4 );
    mon.register_stream( &q, info( "a", "b" ) );
    mon.start();
    std::this_thread::sleep_for( 20ms );
    mon.stop();
    EXPECT_GT( mon.ticks(), 10u );
}
