/**
 * Batched FIFO transfer: try_push_n/try_pop_n and the RAII
 * write_window/read_window claims (DESIGN.md "Batched transfer").
 * Covers wrap-around, move-only element types, in-band signal
 * propagation, partial publication, closed-end edges, and correctness
 * under a concurrent monitor-style resizer.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include <core/exceptions.hpp>
#include <core/ringbuffer.hpp>

namespace {

TEST( fifo_bulk, try_push_n_pop_n_roundtrip_with_wraparound )
{
    raft::ring_buffer<std::uint64_t> q( 8 );
    std::uint64_t next_in  = 0;
    std::uint64_t next_out = 0;
    /** batch of 5 against capacity 8: the indices wrap every other call **/
    for( int round = 0; round < 100; ++round )
    {
        std::uint64_t src[ 5 ];
        for( auto &v : src )
        {
            v = next_in++;
        }
        ASSERT_EQ( q.try_push_n( src, 5 ), 5u );
        std::uint64_t dst[ 5 ] = {};
        ASSERT_EQ( q.try_pop_n( dst, 5 ), 5u );
        for( const auto v : dst )
        {
            ASSERT_EQ( v, next_out++ );
        }
    }
    EXPECT_EQ( q.size(), 0u );
}

TEST( fifo_bulk, try_push_n_is_partial_when_nearly_full )
{
    raft::ring_buffer<int> q( 8 );
    for( int i = 0; i < 6; ++i )
    {
        q.push( i );
    }
    int src[ 5 ] = { 10, 11, 12, 13, 14 };
    EXPECT_EQ( q.try_push_n( src, 5 ), 2u ); /** only 2 slots free **/
    EXPECT_EQ( q.size(), 8u );
    int v = -1;
    for( int i = 0; i < 6; ++i )
    {
        q.pop( v );
        EXPECT_EQ( v, i );
    }
    q.pop( v );
    EXPECT_EQ( v, 10 );
    q.pop( v );
    EXPECT_EQ( v, 11 );
}

TEST( fifo_bulk, try_pop_n_is_partial_when_nearly_empty )
{
    raft::ring_buffer<int> q( 8 );
    int dst[ 4 ] = {};
    EXPECT_EQ( q.try_pop_n( dst, 4 ), 0u );
    q.push( 7 );
    q.push( 8 );
    EXPECT_EQ( q.try_pop_n( dst, 4 ), 2u );
    EXPECT_EQ( dst[ 0 ], 7 );
    EXPECT_EQ( dst[ 1 ], 8 );
}

TEST( fifo_bulk, windows_carry_data_across_wraparound )
{
    raft::ring_buffer<std::uint64_t> q( 8 );
    /** advance head/tail to 5 so an 8-wide window must wrap **/
    for( int i = 0; i < 5; ++i )
    {
        q.push( 0 );
        std::uint64_t sink = 0;
        q.pop( sink );
    }
    {
        auto w = q.write_window( 8 );
        ASSERT_EQ( w.size(), 8u );
        for( std::size_t i = 0; i < w.size(); ++i )
        {
            w[ i ] = 100 + i;
        }
    }
    EXPECT_EQ( q.size(), 8u );
    {
        auto r = q.read_window( 8 );
        ASSERT_EQ( r.size(), 8u );
        for( std::size_t i = 0; i < r.size(); ++i )
        {
            EXPECT_EQ( r[ i ], 100 + i );
        }
    }
    EXPECT_EQ( q.size(), 0u );
}

TEST( fifo_bulk, move_only_elements_through_bulk_paths )
{
    raft::ring_buffer<std::unique_ptr<int>> q( 8 );
    std::unique_ptr<int> src[ 4 ];
    for( int i = 0; i < 4; ++i )
    {
        src[ i ] = std::make_unique<int>( i );
    }
    ASSERT_EQ( q.try_push_n( src, 4 ), 4u );
    for( const auto &p : src )
    {
        EXPECT_EQ( p, nullptr ); /** moved out of the source array **/
    }
    std::unique_ptr<int> dst[ 4 ];
    ASSERT_EQ( q.try_pop_n( dst, 4 ), 4u );
    for( int i = 0; i < 4; ++i )
    {
        ASSERT_NE( dst[ i ], nullptr );
        EXPECT_EQ( *dst[ i ], i );
    }

    /** windows: write in place, move out of the read window **/
    {
        auto w = q.write_window( 3 );
        ASSERT_EQ( w.size(), 3u );
        for( std::size_t i = 0; i < w.size(); ++i )
        {
            w[ i ] = std::make_unique<int>( 40 + static_cast<int>( i ) );
        }
    }
    {
        auto r = q.read_window( 3 );
        ASSERT_EQ( r.size(), 3u );
        for( std::size_t i = 0; i < r.size(); ++i )
        {
            auto p = std::move( r[ i ] );
            EXPECT_EQ( *p, 40 + static_cast<int>( i ) );
        }
    }
    EXPECT_EQ( q.size(), 0u );
}

TEST( fifo_bulk, signals_travel_with_their_elements )
{
    raft::ring_buffer<int> q( 16 );
    int src[ 3 ]                = { 1, 2, 3 };
    const raft::signal sigs[ 3 ] = { raft::none, raft::sos, raft::eos };
    ASSERT_EQ( q.try_push_n( src, 3, sigs ), 3u );
    int dst[ 3 ]          = {};
    raft::signal out[ 3 ] = {};
    ASSERT_EQ( q.try_pop_n( dst, 3, out ), 3u );
    EXPECT_EQ( out[ 0 ], raft::none );
    EXPECT_EQ( out[ 1 ], raft::sos );
    EXPECT_EQ( out[ 2 ], raft::eos );

    /** window route: set_signal on a slot, read back via sig(i) **/
    {
        auto w = q.write_window( 4 );
        ASSERT_EQ( w.size(), 4u );
        for( std::size_t i = 0; i < w.size(); ++i )
        {
            w[ i ] = static_cast<int>( i );
        }
        w.set_signal( raft::eos ); /** marks the last published slot **/
    }
    {
        auto r = q.read_window( 4 );
        ASSERT_EQ( r.size(), 4u );
        EXPECT_EQ( r.sig( 0 ), raft::none );
        EXPECT_EQ( r.sig( 3 ), raft::eos );
    }
}

TEST( fifo_bulk, partial_publish_and_partial_consume )
{
    raft::ring_buffer<int> q( 16 );
    {
        auto w = q.write_window( 6 );
        ASSERT_EQ( w.size(), 6u );
        for( std::size_t i = 0; i < 3; ++i )
        {
            w[ i ] = static_cast<int>( i );
        }
        w.publish( 3 ); /** hand back the other 3 slots **/
    }
    EXPECT_EQ( q.size(), 3u );
    {
        auto r = q.read_window( 3 );
        ASSERT_EQ( r.size(), 3u );
        EXPECT_EQ( r[ 0 ], 0 );
        r.consume( 1 ); /** leave 2 elements queued **/
    }
    EXPECT_EQ( q.size(), 2u );
    int v = -1;
    q.pop( v );
    EXPECT_EQ( v, 1 );
    q.pop( v );
    EXPECT_EQ( v, 2 );
}

TEST( fifo_bulk, read_window_throws_once_writer_closes_and_drains )
{
    raft::ring_buffer<int> q( 8 );
    q.push( 5 );
    q.close_write();
    {
        auto r = q.read_window( 8 ); /** residual data still readable **/
        ASSERT_EQ( r.size(), 1u );
        EXPECT_EQ( r[ 0 ], 5 );
    }
    EXPECT_THROW( (void) q.read_window( 1 ),
                  raft::closed_port_exception );
    int dst[ 2 ] = {};
    EXPECT_EQ( q.try_pop_n( dst, 2 ), 0u ); /** non-throwing variant **/
}

TEST( fifo_bulk, write_paths_throw_once_reader_closes )
{
    raft::ring_buffer<int> q( 8 );
    q.close_read();
    int src[ 2 ] = { 1, 2 };
    EXPECT_THROW( (void) q.try_push_n( src, 2 ),
                  raft::closed_port_exception );
    EXPECT_THROW( (void) q.write_window( 2 ),
                  raft::closed_port_exception );
}

TEST( fifo_bulk, bulk_traffic_survives_concurrent_monitor_resizes )
{
    constexpr std::uint64_t items = 200'000;
    raft::ring_buffer<std::uint64_t> q( 64 );
    std::atomic<bool> done{ false };

    std::thread monitor( [ & ]() {
        std::size_t cap = 64;
        while( !done.load( std::memory_order_acquire ) )
        {
            cap = ( cap == 64 ) ? 256 : 64;
            q.resize( cap );
            std::this_thread::yield();
        }
    } );

    std::thread producer( [ & ]() {
        std::uint64_t i = 0;
        while( i < items )
        {
            auto w = q.write_window(
                std::min<std::uint64_t>( 32, items - i ) );
            for( std::size_t j = 0; j < w.size(); ++j )
            {
                w[ j ] = i++;
            }
        }
        q.close_write();
    } );

    std::uint64_t expect = 0;
    try
    {
        for( ;; )
        {
            auto r = q.read_window( 32 );
            for( std::size_t j = 0; j < r.size(); ++j )
            {
                ASSERT_EQ( r[ j ], expect++ );
            }
        }
    }
    catch( const raft::closed_port_exception & )
    {
    }
    done.store( true, std::memory_order_release );
    producer.join();
    monitor.join();
    EXPECT_EQ( expect, items );
    EXPECT_GE( q.resize_count(), 1u );
}

TEST( fifo_bulk, static_stream_fast_path_roundtrip )
{
    /** set_auto_resize(false) takes the Dekker-free fast path; traffic
     *  must still be exact (no resizer may run in this mode) **/
    constexpr std::uint64_t items = 100'000;
    raft::ring_buffer<std::uint64_t> q( 128 );
    q.set_auto_resize( false );
    std::thread producer( [ & ]() {
        std::uint64_t src[ 16 ];
        std::uint64_t i = 0;
        while( i < items )
        {
            const auto n =
                std::min<std::uint64_t>( 16, items - i );
            for( std::uint64_t j = 0; j < n; ++j )
            {
                src[ j ] = i + j;
            }
            i += q.try_push_n( src, n );
        }
        q.close_write();
    } );
    std::uint64_t expect = 0;
    std::uint64_t dst[ 16 ];
    while( expect < items )
    {
        const auto n = q.try_pop_n( dst, 16 );
        for( std::size_t j = 0; j < n; ++j )
        {
            ASSERT_EQ( dst[ j ], expect++ );
        }
    }
    producer.join();
    EXPECT_EQ( expect, items );
}

} /** end anonymous namespace **/
