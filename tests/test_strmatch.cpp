/**
 * String-matching substrate: every matcher validated against the naive
 * oracle over randomized corpora (property tests), plus the classic edge
 * cases — overlapping matches, boundary positions, periodic patterns,
 * single-byte patterns, multi-pattern Aho–Corasick.
 */
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include <algo/strmatch.hpp>

using namespace raft::algo;

namespace {

std::vector<std::size_t> positions_of( const matcher &m,
                                       const std::string &text )
{
    std::vector<std::size_t> out;
    m.find( text.data(), text.size(),
            [ & ]( std::size_t p, std::uint32_t ) {
                out.push_back( p );
            } );
    return out;
}

enum class algo_kind
{
    naive,
    memchr_k,
    bmh,
    bm,
    ac
};

std::unique_ptr<matcher> build( const algo_kind k,
                                const std::string &pattern )
{
    switch( k )
    {
        case algo_kind::naive:
            return std::make_unique<naive_matcher>( pattern );
        case algo_kind::memchr_k:
            return std::make_unique<memchr_matcher>( pattern );
        case algo_kind::bmh:
            return std::make_unique<bmh_matcher>( pattern );
        case algo_kind::bm:
            return std::make_unique<bm_matcher>( pattern );
        case algo_kind::ac:
        default:
            return std::make_unique<aho_corasick_matcher>( pattern );
    }
}

} /** end anonymous namespace **/

class matcher_oracle : public ::testing::TestWithParam<algo_kind>
{
};

TEST_P( matcher_oracle, overlapping_matches )
{
    auto m = build( GetParam(), "aaa" );
    EXPECT_EQ( positions_of( *m, "aaaaa" ),
               ( std::vector<std::size_t>{ 0, 1, 2 } ) );
}

TEST_P( matcher_oracle, boundary_positions )
{
    auto m = build( GetParam(), "ab" );
    EXPECT_EQ( positions_of( *m, "abxxab" ),
               ( std::vector<std::size_t>{ 0, 4 } ) );
}

TEST_P( matcher_oracle, pattern_equals_text )
{
    auto m = build( GetParam(), "exact" );
    EXPECT_EQ( positions_of( *m, "exact" ),
               ( std::vector<std::size_t>{ 0 } ) );
}

TEST_P( matcher_oracle, pattern_longer_than_text )
{
    auto m = build( GetParam(), "longpattern" );
    EXPECT_TRUE( positions_of( *m, "short" ).empty() );
    EXPECT_EQ( m->count( "short", 5 ), 0u );
}

TEST_P( matcher_oracle, empty_text )
{
    auto m = build( GetParam(), "x" );
    EXPECT_EQ( m->count( "", 0 ), 0u );
}

TEST_P( matcher_oracle, single_byte_pattern )
{
    auto m = build( GetParam(), "z" );
    EXPECT_EQ( positions_of( *m, "zazbz" ),
               ( std::vector<std::size_t>{ 0, 2, 4 } ) );
}

TEST_P( matcher_oracle, periodic_pattern )
{
    auto m = build( GetParam(), "abab" );
    EXPECT_EQ( positions_of( *m, "abababab" ),
               ( std::vector<std::size_t>{ 0, 2, 4 } ) );
}

TEST_P( matcher_oracle, no_match_in_similar_text )
{
    auto m = build( GetParam(), "needle" );
    EXPECT_EQ( m->count( "needla needls neadle", 20 ), 0u );
}

TEST_P( matcher_oracle, count_equals_find_cardinality )
{
    auto m = build( GetParam(), "th" );
    const std::string text =
        "the quick brown fox thought the thermals throbbed";
    EXPECT_EQ( m->count( text.data(), text.size() ),
               positions_of( *m, text ).size() );
}

TEST_P( matcher_oracle, randomized_small_alphabet_vs_naive )
{
    /** small alphabet maximizes overlap/periodicity corner cases **/
    std::mt19937_64 eng( 0xC0FFEE );
    std::uniform_int_distribution<int> ch( 0, 2 );
    std::uniform_int_distribution<std::size_t> plen( 1, 6 );
    for( int trial = 0; trial < 60; ++trial )
    {
        std::string text( 400, 'a' );
        for( auto &c : text )
        {
            c = static_cast<char>( 'a' + ch( eng ) );
        }
        std::string pattern( plen( eng ), 'a' );
        for( auto &c : pattern )
        {
            c = static_cast<char>( 'a' + ch( eng ) );
        }
        const naive_matcher oracle( pattern );
        auto m = build( GetParam(), pattern );
        EXPECT_EQ( positions_of( *m, text ),
                   positions_of( oracle, text ) )
            << "trial " << trial << " pattern '" << pattern << "'";
    }
}

TEST_P( matcher_oracle, randomized_binary_bytes_vs_naive )
{
    std::mt19937_64 eng( 0xFACADE );
    std::uniform_int_distribution<int> ch( 0, 255 );
    for( int trial = 0; trial < 30; ++trial )
    {
        std::string text( 600, '\0' );
        for( auto &c : text )
        {
            c = static_cast<char>( ch( eng ) );
        }
        /** pattern sampled from the text so matches exist **/
        const std::string pattern = text.substr( 17, 4 );
        const naive_matcher oracle( pattern );
        auto m = build( GetParam(), pattern );
        EXPECT_EQ( m->count( text.data(), text.size() ),
                   oracle.count( text.data(), text.size() ) );
    }
}

TEST_P( matcher_oracle, empty_pattern_rejected )
{
    EXPECT_THROW( build( GetParam(), "" ), std::invalid_argument );
}

INSTANTIATE_TEST_SUITE_P( algorithms, matcher_oracle,
                          ::testing::Values( algo_kind::naive,
                                             algo_kind::memchr_k,
                                             algo_kind::bmh,
                                             algo_kind::bm,
                                             algo_kind::ac ) );

TEST( aho_corasick, multi_pattern_rules_reported )
{
    aho_corasick_matcher m(
        std::vector<std::string>{ "he", "she", "his", "hers" } );
    std::vector<std::pair<std::size_t, std::uint32_t>> hits;
    const std::string text = "ushers";
    m.find( text.data(), text.size(),
            [ & ]( std::size_t p, std::uint32_t r ) {
                hits.emplace_back( p, r );
            } );
    /** "she"@1, "he"@2, "hers"@2 **/
    ASSERT_EQ( hits.size(), 3u );
    EXPECT_EQ( m.count( text.data(), text.size() ), 3u );
    bool saw_she = false, saw_he = false, saw_hers = false;
    for( const auto &[ p, r ] : hits )
    {
        if( p == 1 && r == 1 )
        {
            saw_she = true;
        }
        if( p == 2 && r == 0 )
        {
            saw_he = true;
        }
        if( p == 2 && r == 3 )
        {
            saw_hers = true;
        }
    }
    EXPECT_TRUE( saw_she && saw_he && saw_hers );
}

TEST( aho_corasick, nested_patterns )
{
    aho_corasick_matcher m(
        std::vector<std::string>{ "a", "aa", "aaa" } );
    EXPECT_EQ( m.count( "aaaa", 4 ), 4u + 3u + 2u );
}

TEST( aho_corasick, state_count_reflects_trie )
{
    aho_corasick_matcher m( std::vector<std::string>{ "ab", "ac" } );
    /** root + a + b + c **/
    EXPECT_EQ( m.state_count(), 4u );
}

TEST( matchers, max_pattern_len_drives_overlap )
{
    bmh_matcher m( "hello" );
    EXPECT_EQ( m.max_pattern_len(), 5u );
    aho_corasick_matcher ac(
        std::vector<std::string>{ "ab", "abcdef" } );
    EXPECT_EQ( ac.max_pattern_len(), 6u );
}

TEST( matchers, factory_dispatches_tags )
{
    auto ac = make_matcher<ahocorasick>( "xyz" );
    EXPECT_STREQ( ac->name(), "aho-corasick" );
    auto bm = make_matcher<boyermoore>( "xyz" );
    EXPECT_STREQ( bm->name(), "boyer-moore" );
    auto bmh = make_matcher<boyermoorehorspool>( "xyz" );
    EXPECT_STREQ( bmh->name(), "boyer-moore-horspool" );
}
