/**
 * Cross-module integration: diamond and multi-stage topologies, sliding
 * windows (peek_range) inside real kernels, the pool scheduler driving
 * adapters, exception propagation out of replicated pipelines, and
 * re-running applications from fresh maps.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <numeric>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

raft::generate<i64> *seq_source( const std::size_t n )
{
    return raft::kernel::make<raft::generate<i64>>(
        n, []( std::size_t i ) { return static_cast<i64>( i ); } );
}

/** 1-in-2-out fan: routes evens to "even", odds to "odd". */
class parity_fan : public raft::kernel
{
public:
    parity_fan()
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "even", "odd" );
    }
    raft::kstatus run() override
    {
        auto v = input[ "0" ].pop_s<i64>();
        output[ ( *v % 2 == 0 ) ? "even" : "odd" ].push<i64>( *v );
        return raft::proceed;
    }
};

/** 2-in-1-out zip: alternately forwards from each input. */
class interleave : public raft::kernel
{
public:
    interleave()
    {
        input.addPort<i64>( "a", "b" );
        output.addPort<i64>( "0" );
    }
    raft::kstatus run() override
    {
        /** drain whichever has data; end when both close **/
        bool moved = false;
        for( const char *name : { "a", "b" } )
        {
            i64 v = 0;
            if( input[ name ].size() > 0 )
            {
                input[ name ].pop<i64>( v );
                output[ "0" ].push<i64>( v );
                moved = true;
            }
        }
        if( !moved )
        {
            if( input[ "a" ].drained() && input[ "b" ].drained() )
            {
                return raft::stop;
            }
        }
        return raft::proceed;
    }
};

} /** end anonymous namespace **/

TEST( integration, diamond_topology_routes_everything )
{
    const std::size_t count = 10'000;
    std::vector<i64> out;
    raft::map m;
    auto *fan = raft::kernel::make<parity_fan>();
    auto *zip = raft::kernel::make<interleave>();
    m.link( seq_source( count ), fan );
    m.link( fan, "even", zip, "a" );
    m.link( fan, "odd", zip, "b" );
    m.link( zip, raft::kernel::make<raft::write_each<i64>>(
                     std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), count );
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < count; ++i )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( i ) );
    }
}

TEST( integration, sliding_window_moving_average )
{
    /** §3's sliding-window access pattern through peek_range **/
    constexpr std::size_t window = 8;
    class moving_average : public raft::kernel
    {
    public:
        moving_average()
        {
            input.addPort<i64>( "0" );
            output.addPort<double>( "0" );
        }
        raft::kstatus run() override
        {
            auto w = input[ "0" ].peek_range<i64>( window );
            double sum = 0.0;
            for( std::size_t i = 0; i < window; ++i )
            {
                sum += static_cast<double>( w[ i ] );
            }
            output[ "0" ].push<double>( sum /
                                        static_cast<double>( window ) );
            input[ "0" ].recycle( 1 ); /** slide by one **/
            return raft::proceed;
        }
    };

    const std::size_t count = 1000;
    std::vector<double> out;
    raft::map m;
    auto p = m.link( seq_source( count ),
                     raft::kernel::make<moving_average>() );
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<double>>(
                            std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), count - window + 1 );
    for( std::size_t i = 0; i < out.size(); ++i )
    {
        /** mean of i..i+7 = i + 3.5 **/
        EXPECT_DOUBLE_EQ( out[ i ], static_cast<double>( i ) + 3.5 );
    }
}

TEST( integration, five_stage_pipeline_composes )
{
    const std::size_t count = 5000;
    std::vector<i64> out;
    raft::map m;
    auto make_inc = []() {
        return raft::kernel::make<raft::lambdak<i64>>(
            1, 1, []( raft::Port &in, raft::Port &o ) {
                auto v = in[ "0" ].pop_s<i64>();
                o[ "0" ].push<i64>( *v + 1 );
            } );
    };
    auto a = m.link( seq_source( count ), make_inc() );
    auto b = m.link( &( a.dst ), make_inc() );
    auto c = m.link( &( b.dst ), make_inc() );
    m.link( &( c.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), count );
    for( std::size_t i = 0; i < count; i += 61 )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( i + 3 ) );
    }
}

TEST( integration, pool_scheduler_drives_replicated_pipeline )
{
    class doubler : public raft::kernel
    {
    public:
        doubler()
        {
            input.addPort<i64>( "0" );
            output.addPort<i64>( "0" );
        }
        raft::kstatus run() override
        {
            auto v   = input[ "0" ].pop_s<i64>();
            auto out = output[ "0" ].allocate_s<i64>();
            ( *out ) = 2 * ( *v );
            return raft::proceed;
        }
        bool clone_supported() const override { return true; }
        raft::kernel *clone() const override { return new doubler(); }
    };
    const std::size_t count = 3000;
    std::vector<i64> out;
    raft::map m;
    auto p = m.link<raft::out>( seq_source( count ),
                                raft::kernel::make<doubler>() );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    raft::run_options o;
    o.scheduler         = raft::scheduler_kind::pool;
    o.pool_threads      = 3;
    o.replication_width = 3;
    m.exe( o );
    ASSERT_EQ( out.size(), count );
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < count; ++i )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( 2 * i ) );
    }
}

TEST( integration, exception_from_replica_reaches_caller )
{
    class fragile : public raft::kernel
    {
    public:
        fragile()
        {
            input.addPort<i64>( "0" );
            output.addPort<i64>( "0" );
        }
        raft::kstatus run() override
        {
            auto v = input[ "0" ].pop_s<i64>();
            if( *v == 1234 )
            {
                throw std::runtime_error( "replica exploded" );
            }
            output[ "0" ].push<i64>( *v );
            return raft::proceed;
        }
        bool clone_supported() const override { return true; }
        raft::kernel *clone() const override { return new fragile(); }
    };
    std::vector<i64> out;
    raft::map m;
    auto p = m.link<raft::out>( seq_source( 5000 ),
                                raft::kernel::make<fragile>() );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    raft::run_options o;
    o.replication_width = 3;
    EXPECT_THROW( m.exe( o ), std::runtime_error );
}

TEST( integration, repeated_fresh_maps_are_independent )
{
    for( int round = 0; round < 5; ++round )
    {
        std::vector<i64> out;
        raft::map m;
        m.link( seq_source( 100 ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( out ) ) );
        m.exe();
        ASSERT_EQ( out.size(), 100u ) << "round " << round;
    }
}

TEST( integration, wide_fan_out_with_multiple_sinks )
{
    const std::size_t count = 2000;
    class fanout3 : public raft::kernel
    {
    public:
        fanout3()
        {
            input.addPort<i64>( "0" );
            output.addPort<i64>( "0", "1", "2" );
        }
        raft::kstatus run() override
        {
            auto v = input[ "0" ].pop_s<i64>();
            for( const auto *name : { "0", "1", "2" } )
            {
                output[ name ].push<i64>( *v );
            }
            return raft::proceed;
        }
    };
    std::vector<i64> a, b, c;
    raft::map m;
    auto *fan = raft::kernel::make<fanout3>();
    m.link( seq_source( count ), fan );
    m.link( fan, "0",
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( a ) ),
            "0" );
    m.link( fan, "1",
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( b ) ),
            "0" );
    m.link( fan, "2",
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( c ) ),
            "0" );
    m.exe();
    EXPECT_EQ( a.size(), count );
    EXPECT_EQ( b, a );
    EXPECT_EQ( c, a );
}

TEST( integration, sum_tree_reduction )
{
    /** 4 sources summed pairwise then together: 3 sum kernels **/
    const std::size_t count = 4000;
    std::vector<i64> out;
    raft::map m;
    auto *s1 = raft::kernel::make<raft::sum<i64, i64, i64>>();
    auto *s2 = raft::kernel::make<raft::sum<i64, i64, i64>>();
    auto *s3 = raft::kernel::make<raft::sum<i64, i64, i64>>();
    m.link( seq_source( count ), s1, "input_a" );
    m.link( seq_source( count ), s1, "input_b" );
    m.link( seq_source( count ), s2, "input_a" );
    m.link( seq_source( count ), s2, "input_b" );
    m.link( s1, "sum", s3, "input_a" );
    m.link( s2, "sum", s3, "input_b" );
    m.link( s3, raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), count );
    for( std::size_t i = 0; i < count; i += 119 )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( 4 * i ) );
    }
}
