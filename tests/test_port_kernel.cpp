/**
 * Ports, port containers and the kernel base class: declaration rules,
 * type-checked access, binding lifecycle, kernel::make ownership plumbing
 * and the default pool-scheduler readiness predicate.
 */
#include <gtest/gtest.h>

#include <core/kernel.hpp>
#include <core/ringbuffer.hpp>

namespace {

class two_in_one_out : public raft::kernel
{
public:
    two_in_one_out()
    {
        input.addPort<int>( "a", "b" );
        output.addPort<double>( "out" );
    }
    raft::kstatus run() override { return raft::stop; }
};

} /** end anonymous namespace **/

TEST( port_container, variadic_addport_declares_all )
{
    two_in_one_out k;
    EXPECT_EQ( k.input.count(), 2u );
    EXPECT_EQ( k.output.count(), 1u );
    EXPECT_TRUE( k.input.has( "a" ) );
    EXPECT_TRUE( k.input.has( "b" ) );
    EXPECT_FALSE( k.input.has( "out" ) );
}

TEST( port_container, duplicate_name_throws )
{
    two_in_one_out k;
    EXPECT_THROW( k.input.addPort<int>( "a" ), raft::port_exception );
}

TEST( port_container, unknown_name_throws )
{
    two_in_one_out k;
    EXPECT_THROW( k.input[ "zzz" ], raft::port_exception );
}

TEST( port_container, iteration_in_declaration_order )
{
    two_in_one_out k;
    std::vector<std::string> names;
    for( auto &p : k.input )
    {
        names.push_back( p.name() );
    }
    ASSERT_EQ( names.size(), 2u );
    EXPECT_EQ( names[ 0 ], "a" );
    EXPECT_EQ( names[ 1 ], "b" );
}

TEST( port, access_before_binding_throws )
{
    two_in_one_out k;
    EXPECT_THROW( k.input[ "a" ].pop<int>(), raft::port_exception );
    EXPECT_THROW( k.input[ "a" ].raw(), raft::port_exception );
}

TEST( port, type_mismatch_throws )
{
    two_in_one_out k;
    raft::ring_buffer<int> q( 4 );
    k.input[ "a" ].bind( &q );
    q.push( 3 );
    EXPECT_THROW( k.input[ "a" ].pop<double>(),
                  raft::type_mismatch_exception );
    EXPECT_EQ( k.input[ "a" ].pop<int>(), 3 );
}

TEST( port, occupancy_views_through_binding )
{
    two_in_one_out k;
    raft::ring_buffer<int> q( 8 );
    k.input[ "a" ].bind( &q );
    q.push( 1 );
    q.push( 2 );
    EXPECT_EQ( k.input[ "a" ].size(), 2u );
    EXPECT_EQ( k.input[ "a" ].capacity(), 8u );
    EXPECT_EQ( k.input[ "a" ].space_avail(), 6u );
    k.input[ "a" ].recycle( 1 );
    EXPECT_EQ( k.input[ "a" ].size(), 1u );
    k.input[ "a" ].unbind();
    EXPECT_EQ( k.input[ "a" ].size(), 0u ); /** unbound: empty view **/
}

TEST( port, meta_captures_type_identity )
{
    two_in_one_out k;
    EXPECT_EQ( k.input[ "a" ].type(),
               std::type_index( typeid( int ) ) );
    EXPECT_TRUE( k.input[ "a" ].meta().arithmetic );
    EXPECT_EQ( k.input[ "a" ].meta().size, sizeof( int ) );
}

TEST( port, meta_fifo_factory_builds_matching_ring )
{
    two_in_one_out k;
    auto f = k.output[ "out" ].meta().make_fifo( 16 );
    EXPECT_TRUE( f->value_type() == typeid( double ) );
    EXPECT_EQ( f->capacity(), 16u );
}

TEST( kernel, ids_are_unique_and_names_informative )
{
    two_in_one_out a, b;
    EXPECT_NE( a.get_id(), b.get_id() );
    EXPECT_NE( a.name().find( "two_in_one_out" ), std::string::npos );
    a.set_name( "custom" );
    EXPECT_EQ( a.name(), "custom" );
}

TEST( kernel, make_marks_internal_allocation )
{
    auto *k = raft::kernel::make<two_in_one_out>();
    EXPECT_TRUE( k->internally_allocated() );
    delete k;
    two_in_one_out on_stack;
    EXPECT_FALSE( on_stack.internally_allocated() );
}

TEST( kernel, default_ready_accounts_inputs_and_outputs )
{
    two_in_one_out k;
    raft::ring_buffer<int> qa( 4 ), qb( 4 );
    raft::ring_buffer<double> qo( 4 );
    k.input[ "a" ].bind( &qa );
    k.input[ "b" ].bind( &qb );
    k.output[ "out" ].bind( &qo );

    EXPECT_FALSE( k.ready() ); /** both inputs empty **/
    qa.push( 1 );
    EXPECT_FALSE( k.ready() ); /** b still empty **/
    qb.push( 2 );
    EXPECT_TRUE( k.ready() );

    /** full output blocks readiness **/
    for( int i = 0; i < 4; ++i )
    {
        qo.push( 0.0 );
    }
    EXPECT_FALSE( k.ready() );
    double d = 0.0;
    qo.pop( d );
    EXPECT_TRUE( k.ready() );

    /** drained input counts as ready (run() will terminate) **/
    int v = 0;
    qb.pop( v );
    qb.close_write();
    EXPECT_TRUE( k.ready() );
}

TEST( kernel, clone_default_unsupported )
{
    two_in_one_out k;
    EXPECT_FALSE( k.clone_supported() );
    EXPECT_EQ( k.clone(), nullptr );
}

TEST( signal_bus, raise_and_sticky_term )
{
    raft::async_signal_bus bus;
    EXPECT_EQ( bus.current(), raft::none );
    bus.raise( raft::eos );
    EXPECT_EQ( bus.current(), raft::eos );
    bus.raise( raft::term );
    EXPECT_TRUE( bus.termination_requested() );
    bus.raise( raft::none ); /** term is sticky **/
    EXPECT_TRUE( bus.termination_requested() );
    bus.reset();
    EXPECT_EQ( bus.current(), raft::none );
}
