/**
 * The standard kernel library: generate, print, read_each/write_each
 * (Figure 5), for_each + range_reduce (Figure 6), reduce, lambdak
 * (Figure 7), seq_tag/reorder and filereader.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <list>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include <raft.hpp>

namespace {
using u32 = std::uint32_t;
using i64 = std::int64_t;
} /** end anonymous namespace **/

TEST( kernels, generate_deterministic_function )
{
    std::vector<i64> out;
    raft::map m;
    m.link( raft::kernel::make<raft::generate<i64>>(
                5, []( std::size_t i ) { return i64( i * i ); } ),
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( out ) ) );
    m.exe();
    EXPECT_EQ( out, ( std::vector<i64>{ 0, 1, 4, 9, 16 } ) );
}

TEST( kernels, generate_default_random_is_seeded_per_instance )
{
    std::vector<i64> a, b;
    {
        raft::map m;
        m.link( raft::kernel::make<raft::generate<i64>>( 8 ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( a ) ) );
        m.exe();
    }
    {
        raft::map m;
        m.link( raft::kernel::make<raft::generate<i64>>( 8 ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( b ) ) );
        m.exe();
    }
    EXPECT_EQ( a.size(), 8u );
    EXPECT_EQ( b.size(), 8u );
    EXPECT_NE( a, b ); /** different kernel ids → different streams **/
}

TEST( kernels, figure5_container_roundtrip )
{
    /** data source container **/
    std::vector<u32> v;
    int i = 0;
    auto func = [ & ]() { return i++; };
    while( i < 1000 )
    {
        v.push_back( func() );
    }
    /** receiver container **/
    std::vector<u32> o;
    raft::map map;
    map.link( raft::kernel::make<raft::read_each<u32>>( v.begin(),
                                                        v.end() ),
              raft::kernel::make<raft::write_each<u32>>(
                  std::back_inserter( o ) ) );
    map.exe();
    /** data is now copied to 'o' **/
    EXPECT_EQ( o, v );
}

TEST( kernels, read_each_works_with_non_random_access_iterators )
{
    std::list<int> src{ 5, 4, 3, 2, 1 };
    std::vector<int> out;
    raft::map m;
    m.link( raft::kernel::make<raft::read_each<int>>( src.begin(),
                                                      src.end() ),
            raft::kernel::make<raft::write_each<int>>(
                std::back_inserter( out ) ) );
    m.exe();
    EXPECT_EQ( out, ( std::vector<int>{ 5, 4, 3, 2, 1 } ) );
}

TEST( kernels, read_each_empty_range )
{
    std::vector<int> src, out;
    raft::map m;
    m.link( raft::kernel::make<raft::read_each<int>>( src.begin(),
                                                      src.end() ),
            raft::kernel::make<raft::write_each<int>>(
                std::back_inserter( out ) ) );
    m.exe();
    EXPECT_TRUE( out.empty() );
}

TEST( kernels, figure6_for_each_zero_copy_reduce )
{
    /** int *arr = { 0, ..., N }; reduce to a single value **/
    std::vector<int> arr( 4096 );
    std::iota( arr.begin(), arr.end(), 0 );
    int val = 0;
    raft::map map;
    map.link( raft::kernel::make<raft::for_each<int>>( arr.data(),
                                                       arr.size(), 256 ),
              raft::kernel::make<raft::range_reduce<int>>( val ) );
    map.exe();
    /** val now has the result **/
    EXPECT_EQ( val, std::accumulate( arr.begin(), arr.end(), 0 ) );
}

TEST( kernels, for_each_segments_point_into_user_memory )
{
    std::vector<double> arr( 100, 1.5 );
    std::vector<raft::range<double>> segs;
    raft::map m;
    m.link( raft::kernel::make<raft::for_each<double>>( arr.data(),
                                                        arr.size(), 32 ),
            raft::kernel::make<raft::write_each<raft::range<double>>>(
                std::back_inserter( segs ) ) );
    m.exe();
    ASSERT_EQ( segs.size(), 4u ); /** 32+32+32+4 **/
    std::size_t covered = 0;
    for( const auto &s : segs )
    {
        /** zero copy: descriptors point into the caller's array **/
        EXPECT_EQ( s.data, arr.data() + s.offset );
        covered += s.len;
    }
    EXPECT_EQ( covered, arr.size() );
    EXPECT_EQ( segs.back().len, 4u );
}

TEST( kernels, reduce_with_custom_functor )
{
    i64 result = 1;
    raft::map m;
    m.link( raft::kernel::make<raft::generate<i64>>(
                5, []( std::size_t i ) { return i64( i + 1 ); } ),
            raft::kernel::make<
                raft::reduce<i64, std::multiplies<i64>>>( result ) );
    m.exe();
    EXPECT_EQ( result, 120 ); /** 5! **/
}

TEST( kernels, figure7_lambda_kernel )
{
    std::ostringstream os;
    raft::map map;
    std::size_t emitted = 0;
    map.link(
        raft::kernel::make<raft::lambdak<u32>>(
            0, 1,
            [ &emitted ]( raft::Port &, raft::Port &output )
                -> raft::kstatus {
                if( emitted == 4 )
                {
                    return raft::stop;
                }
                auto out = output[ "0" ].allocate_s<u32>();
                ( *out ) = static_cast<u32>( 7 * emitted++ );
                return raft::proceed;
            } ),
        raft::kernel::make<raft::print<u32, ' '>>( os ) );
    map.exe();
    EXPECT_EQ( os.str(), "0 7 14 21 " );
}

TEST( kernels, lambdak_void_callable_proceeds_until_upstream_ends )
{
    std::vector<int> out;
    raft::map m;
    auto p = m.link(
        raft::kernel::make<raft::generate<int>>(
            6, []( std::size_t i ) { return int( i ); } ),
        raft::kernel::make<raft::lambdak<int>>(
            1, 1, []( raft::Port &in, raft::Port &o ) {
                auto v   = in[ "0" ].pop_s<int>();
                auto w   = o[ "0" ].allocate_s<int>();
                ( *w )   = *v + 100;
            } ) );
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<int>>(
                            std::back_inserter( out ) ) );
    m.exe();
    EXPECT_EQ( out, ( std::vector<int>{ 100, 101, 102, 103, 104,
                                        105 } ) );
}

TEST( kernels, lambdak_multi_type_ports )
{
    std::vector<double> out;
    raft::map m;
    auto p = m.link(
        raft::kernel::make<raft::generate<int>>(
            3, []( std::size_t i ) { return int( i ); } ),
        raft::kernel::make<raft::lambdak<int, double>>(
            1, 1, []( raft::Port &in, raft::Port &o ) {
                auto v = in[ "0" ].pop_s<int>();
                o[ "0" ].push<double>( *v + 0.5 );
            } ) );
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<double>>(
                            std::back_inserter( out ) ) );
    m.exe();
    EXPECT_EQ( out, ( std::vector<double>{ 0.5, 1.5, 2.5 } ) );
}

TEST( kernels, lambdak_type_count_mismatch_throws )
{
    using bad = raft::lambdak<int, double>;
    EXPECT_THROW( bad( 2, 1,
                       []( raft::Port &, raft::Port & ) {
                           return raft::stop;
                       } ),
                  raft::port_exception );
}

TEST( kernels, seq_item_roundtrip_preserves_order_without_parallel )
{
    std::vector<int> out;
    raft::map m;
    auto a = m.link( raft::kernel::make<raft::generate<int>>(
                         50, []( std::size_t i ) { return int( i ); } ),
                     raft::kernel::make<raft::seq_tag<int>>() );
    auto b = m.link( &( a.dst ),
                     raft::kernel::make<raft::reorder<int>>() );
    m.link( &( b.dst ), raft::kernel::make<raft::write_each<int>>(
                            std::back_inserter( out ) ) );
    m.exe();
    for( int i = 0; i < 50; ++i )
    {
        EXPECT_EQ( out[ static_cast<std::size_t>( i ) ], i );
    }
}

TEST( kernels, filereader_covers_file_with_overlap )
{
    auto corpus = std::make_shared<const std::string>(
        std::string( 1000, 'x' ) );
    std::vector<raft::mem_range> segs;
    raft::map m;
    m.link( raft::kernel::make<raft::filereader>( corpus, 3, 256 ),
            raft::kernel::make<raft::write_each<raft::mem_range>>(
                std::back_inserter( segs ) ) );
    m.exe();
    ASSERT_EQ( segs.size(), 4u );
    std::size_t covered = 0;
    for( std::size_t i = 0; i < segs.size(); ++i )
    {
        EXPECT_EQ( segs[ i ].data, corpus->data() + segs[ i ].offset );
        EXPECT_EQ( segs[ i ].offset, covered );
        covered += segs[ i ].body_len;
        if( i + 1 < segs.size() )
        {
            EXPECT_EQ( segs[ i ].len, segs[ i ].body_len + 3 );
        }
        else
        {
            EXPECT_EQ( segs[ i ].len, segs[ i ].body_len );
        }
    }
    EXPECT_EQ( covered, corpus->size() );
}

TEST( kernels, filereader_reads_real_file )
{
    const std::string path = "/tmp/raft_test_corpus.txt";
    {
        std::ofstream f( path, std::ios::binary );
        f << "hello stream world";
    }
    std::vector<raft::mem_range> segs;
    raft::map m;
    auto *fr = raft::kernel::make<raft::filereader>( path, 0, 7 );
    EXPECT_EQ( fr->total_bytes(), 18u );
    m.link( fr, raft::kernel::make<raft::write_each<raft::mem_range>>(
                    std::back_inserter( segs ) ) );
    m.exe();
    std::string rebuilt;
    for( const auto &s : segs )
    {
        rebuilt.append( s.data, s.body_len );
    }
    EXPECT_EQ( rebuilt, "hello stream world" );
    std::remove( path.c_str() );
}

TEST( kernels, filereader_missing_file_throws )
{
    EXPECT_THROW(
        raft::filereader( std::string( "/nonexistent/raft.txt" ), 0 ),
        raft::raft_exception );
}

TEST( kernels, eos_signal_delivered_with_final_element )
{
    raft::ring_buffer<int> probe( 8 );
    class prober : public raft::kernel
    {
    public:
        raft::signal last_sig{ raft::none };
        prober() { input.addPort<int>( "0" ); }
        raft::kstatus run() override
        {
            auto v    = input[ "0" ].pop_s<int>();
            last_sig  = v.sig();
            return raft::proceed;
        }
    };
    raft::map m;
    auto *pk = raft::kernel::make<prober>();
    m.link( raft::kernel::make<raft::generate<int>>(
                3, []( std::size_t i ) { return int( i ); } ),
            pk );
    m.exe();
    EXPECT_EQ( pk->last_sig, raft::eos );
}
