/**
 * The calibrated Figure-10 scaling models: live calibration sanity and the
 * structural shape properties the paper reports — near-linear Spark and
 * RaftLib-BMH scaling (BMH flattening at the memory wall), AC slower than
 * BMH, and GNU-Parallel grep saturating at its distribution bottleneck.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include <algo/corpus.hpp>
#include <sim/scaling.hpp>

using namespace raft::sim;

namespace {

const calibration &cal()
{
    static const calibration c = []() {
        raft::algo::corpus_options o;
        o.size_bytes      = 4 * 1024 * 1024;
        o.seed            = 31337;
        o.pattern         = "distributedstream";
        o.implant_per_mib = 8.0;
        const auto corpus = raft::algo::make_corpus( o );
        return calibrate( corpus, o.pattern );
    }();
    return c;
}

constexpr double file_bytes = 8e9; /** 8 GB simulated file **/
constexpr unsigned max_cores = 16;

} /** end anonymous namespace **/

TEST( calibration, rates_positive_and_ordered )
{
    const auto &c = cal();
    EXPECT_GT( c.memchr_bps, 1e7 );
    EXPECT_GT( c.ac_bps, 1e6 );
    EXPECT_GT( c.bmh_bps, 1e6 );
    EXPECT_GT( c.bm_bps, 1e6 );
    EXPECT_GT( c.mem_bw_bps, 1e8 );
    EXPECT_GT( c.thread_spawn_s, 0.0 );
    EXPECT_GT( c.process_spawn_s, 0.0 );
    EXPECT_GT( c.pipe_bw_bps, 1e6 );
    /** the skip-based single-pattern matchers beat the automaton —
     *  the premise of the paper's algorithm-swap result (§5) **/
    EXPECT_GT( c.bmh_bps, c.ac_bps );
    EXPECT_GT( c.memchr_bps, c.ac_bps );
}

TEST( scaling, raft_bmh_dominates_raft_ac_everywhere )
{
    const auto ac  = model_raft( cal(), cal().ac_bps, file_bytes,
                                 max_cores );
    const auto bmh = model_raft( cal(), cal().bmh_bps, file_bytes,
                                 max_cores );
    ASSERT_EQ( ac.size(), max_cores );
    for( unsigned i = 0; i < max_cores; ++i )
    {
        EXPECT_GE( bmh[ i ].gbps, ac[ i ].gbps * 0.99 )
            << "cores=" << i + 1;
    }
}

TEST( scaling, raft_scales_near_linearly_at_low_core_counts )
{
    const auto ac = model_raft( cal(), cal().ac_bps, file_bytes,
                                max_cores );
    EXPECT_GT( ac[ 3 ].gbps, 3.0 * ac[ 0 ].gbps );
    EXPECT_GT( ac[ 7 ].gbps, 5.5 * ac[ 0 ].gbps );
}

TEST( scaling, bmh_hits_memory_wall_before_16_cores )
{
    const auto &c  = cal();
    const auto bmh = model_raft( c, c.bmh_bps, file_bytes, max_cores );
    /** the paper: linear to ~10 cores, then "the memory system itself
     *  becomes the bottleneck" — the last doubling of cores must yield
     *  much less than double the throughput **/
    const auto t8  = bmh[ 7 ].gbps;
    const auto t16 = bmh[ 15 ].gbps;
    EXPECT_LT( t16, 1.9 * t8 );
    /** and the ceiling is the measured memory bandwidth **/
    EXPECT_LE( t16, c.mem_bw_bps / 1e9 * 1.10 );
}

TEST( scaling, pgrep_saturates_at_distribution_bottleneck )
{
    const auto &c = cal();
    const auto pg = model_pgrep( c, file_bytes, max_cores );
    /** scaling stalls: 16 cores buys little over 4 **/
    EXPECT_LT( pg[ 15 ].gbps, pg[ 3 ].gbps * 2.0 );
    /** and the ceiling is the distribution path **/
    EXPECT_LE( pg[ 15 ].gbps,
               std::min( c.pipe_bw_bps, c.parallel_split_bps ) / 1e9 *
                   1.15 );
}

TEST( scaling, plain_grep_wins_single_core )
{
    const auto &c   = cal();
    const auto ac   = model_raft( c, c.ac_bps, file_bytes, 1 );
    const auto sp   = model_spark( c, file_bytes, 1 );
    const auto grep = plain_grep_gbps( c );
    /** §5: single-threaded grep "handily beats all the other
     *  algorithms for single core performance" **/
    EXPECT_GT( grep, ac[ 0 ].gbps );
    EXPECT_GT( grep, sp[ 0 ].gbps );
}

TEST( scaling, spark_scales_near_linearly )
{
    const auto sp = model_spark( cal(), file_bytes, max_cores );
    EXPECT_GT( sp[ 7 ].gbps, 6.0 * sp[ 0 ].gbps );
    EXPECT_GT( sp[ 15 ].gbps, 10.0 * sp[ 0 ].gbps );
}

TEST( scaling, paper_ordering_at_16_cores )
{
    /** Figure 10's right edge: BMH > Spark ≳ AC > parallel grep **/
    const auto &c  = cal();
    const auto bmh = model_raft( c, c.bmh_bps, file_bytes, max_cores );
    const auto ac  = model_raft( c, c.ac_bps, file_bytes, max_cores );
    const auto sp  = model_spark( c, file_bytes, max_cores );
    const auto pg  = model_pgrep( c, file_bytes, max_cores );
    EXPECT_GT( bmh[ 15 ].gbps, sp[ 15 ].gbps );
    EXPECT_GT( sp[ 15 ].gbps, pg[ 15 ].gbps );
    EXPECT_GT( ac[ 15 ].gbps, pg[ 15 ].gbps );
}

TEST( scaling, throughput_never_negative_or_wildly_nonmonotone )
{
    const auto &c = cal();
    for( const auto &series :
         { model_raft( c, c.ac_bps, file_bytes, max_cores ),
           model_spark( c, file_bytes, max_cores ),
           model_pgrep( c, file_bytes, max_cores ) } )
    {
        for( unsigned i = 0; i < series.size(); ++i )
        {
            EXPECT_GT( series[ i ].gbps, 0.0 );
            if( i > 0 )
            {
                /** adding a core never costs >25% throughput **/
                EXPECT_GT( series[ i ].gbps,
                           0.75 * series[ i - 1 ].gbps );
            }
        }
    }
}
