/**
 * Synonymous kernel groupings (§4.2): signature validation, convergence
 * of the explore-then-commit policy onto the fastest alternative,
 * correctness under mid-stream swapping, cloning, and the §5 scenario —
 * a search kernel group holding both Aho–Corasick and
 * Boyer–Moore–Horspool.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <iterator>
#include <memory>
#include <vector>

#include <algo/corpus.hpp>
#include <core/kernels/synonym.hpp>
#include <raft.hpp>

namespace {

using i64 = std::int64_t;

/** Transform with a configurable per-element busy cost. */
class costed_scaler : public raft::kernel
{
public:
    costed_scaler( const i64 scale, const int spin )
        : scale_( scale ), spin_( spin )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
    }
    raft::kstatus run() override
    {
        auto v           = input[ "0" ].pop_s<i64>();
        volatile i64 acc = 0;
        for( int i = 0; i < spin_; ++i )
        {
            acc = acc + i;
        }
        (void) acc;
        auto out = output[ "0" ].allocate_s<i64>();
        ( *out ) = *v * scale_;
        return raft::proceed;
    }
    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override
    {
        return new costed_scaler( scale_, spin_ );
    }

private:
    i64 scale_;
    int spin_;
};

std::unique_ptr<raft::kernel> alt( const i64 scale, const int spin )
{
    return std::make_unique<costed_scaler>( scale, spin );
}

} /** end anonymous namespace **/

TEST( synonym, rejects_empty_and_mismatched_groups )
{
    std::vector<std::unique_ptr<raft::kernel>> none;
    EXPECT_THROW( raft::synonym_kernel( std::move( none ) ),
                  raft::port_exception );

    class other_shape : public raft::kernel
    {
    public:
        other_shape() { input.addPort<double>( "0" ); }
        raft::kstatus run() override { return raft::stop; }
    };
    std::vector<std::unique_ptr<raft::kernel>> alts;
    alts.push_back( alt( 1, 0 ) );
    alts.push_back( std::make_unique<other_shape>() );
    EXPECT_THROW( raft::synonym_kernel( std::move( alts ) ),
                  raft::port_exception );
}

TEST( synonym, mirrors_port_signature )
{
    std::vector<std::unique_ptr<raft::kernel>> alts;
    alts.push_back( alt( 1, 0 ) );
    alts.push_back( alt( 1, 10 ) );
    raft::synonym_kernel group( std::move( alts ) );
    EXPECT_EQ( group.input.count(), 1u );
    EXPECT_EQ( group.output.count(), 1u );
    EXPECT_EQ( group.input[ "0" ].type(),
               std::type_index( typeid( i64 ) ) );
    EXPECT_EQ( group.alternative_count(), 2u );
}

TEST( synonym, converges_to_fastest_alternative )
{
    /** alternative 1 is ~100x cheaper; results identical (scale 3) **/
    std::vector<std::unique_ptr<raft::kernel>> alts;
    alts.push_back( alt( 3, 50'000 ) );
    alts.push_back( alt( 3, 500 ) );
    raft::swap_policy policy;
    policy.probe_window     = 16;
    policy.recheck_interval = 0; /** commit once **/
    auto *group = raft::kernel::make<raft::synonym_kernel>(
        std::move( alts ), policy );

    const std::size_t count = 500;
    std::vector<i64> out;
    raft::map m;
    auto p = m.link( raft::kernel::make<raft::generate<i64>>(
                         count,
                         []( std::size_t i ) { return i64( i ); } ),
                     group );
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe();

    EXPECT_EQ( group->active(), 1u ); /** committed to the cheap one **/
    EXPECT_GE( group->swap_count(), 1u );
    EXPECT_GT( group->mean_invocation_ns( 0 ),
               group->mean_invocation_ns( 1 ) );
    ASSERT_EQ( out.size(), count );
    for( std::size_t i = 0; i < count; ++i )
    {
        EXPECT_EQ( out[ i ], i64( 3 * i ) ); /** swap never corrupted **/
    }
}

TEST( synonym, recheck_interval_triggers_reprobe )
{
    std::vector<std::unique_ptr<raft::kernel>> alts;
    alts.push_back( alt( 2, 100 ) );
    alts.push_back( alt( 2, 100 ) );
    raft::swap_policy policy;
    policy.probe_window     = 4;
    policy.recheck_interval = 32;
    auto *group = raft::kernel::make<raft::synonym_kernel>(
        std::move( alts ), policy );
    std::vector<i64> out;
    raft::map m;
    auto p = m.link( raft::kernel::make<raft::generate<i64>>(
                         400,
                         []( std::size_t i ) { return i64( i ); } ),
                     group );
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe();
    /** several probe rounds must have happened over 400 elements **/
    EXPECT_GE( group->swap_count(), 3u );
    EXPECT_EQ( out.size(), 400u );
}

TEST( synonym, clone_clones_all_alternatives )
{
    std::vector<std::unique_ptr<raft::kernel>> alts;
    alts.push_back( alt( 5, 0 ) );
    alts.push_back( alt( 5, 0 ) );
    raft::synonym_kernel group( std::move( alts ) );
    EXPECT_TRUE( group.clone_supported() );
    std::unique_ptr<raft::kernel> c( group.clone() );
    ASSERT_NE( c, nullptr );
    auto *cs = dynamic_cast<raft::synonym_kernel *>( c.get() );
    ASSERT_NE( cs, nullptr );
    EXPECT_EQ( cs->alternative_count(), 2u );
}

TEST( synonym, non_clonable_alternative_blocks_cloning )
{
    class fixed : public raft::kernel
    {
    public:
        fixed()
        {
            input.addPort<i64>( "0" );
            output.addPort<i64>( "0" );
        }
        raft::kstatus run() override { return raft::stop; }
    };
    std::vector<std::unique_ptr<raft::kernel>> alts;
    alts.push_back( alt( 1, 0 ) );
    alts.push_back( std::make_unique<fixed>() );
    raft::synonym_kernel group( std::move( alts ) );
    EXPECT_FALSE( group.clone_supported() );
    EXPECT_EQ( group.clone(), nullptr );
}

TEST( synonym, search_group_finds_every_match )
{
    /** the §5 scenario: one "search" kernel, two algorithms inside **/
    raft::algo::corpus_options copt;
    copt.size_bytes      = 256 * 1024;
    copt.pattern         = "adaptivekernel";
    copt.implant_per_mib = 200.0;
    auto corpus = std::make_shared<const std::string>(
        raft::algo::make_corpus( copt ) );
    const auto expect =
        raft::algo::oracle_count( *corpus, copt.pattern );
    ASSERT_GT( expect, 0u );

    std::vector<std::unique_ptr<raft::kernel>> alts;
    alts.push_back(
        std::make_unique<raft::search<raft::ahocorasick>>(
            copt.pattern ) );
    alts.push_back(
        std::make_unique<raft::search<raft::boyermoorehorspool>>(
            copt.pattern ) );
    raft::swap_policy policy;
    policy.probe_window = 8;
    auto *group = raft::kernel::make<raft::synonym_kernel>(
        std::move( alts ), policy );

    std::vector<raft::match_t> hits;
    raft::map m;
    auto p = m.link(
        raft::kernel::make<raft::filereader>( corpus,
                                              copt.pattern.size() - 1,
                                              4096 ),
        group );
    m.link( &( p.dst ),
            raft::kernel::make<raft::write_each<raft::match_t>>(
                std::back_inserter( hits ) ) );
    m.exe();
    EXPECT_EQ( hits.size(), expect );
    /** with BMH much faster than AC it should have committed to it **/
    EXPECT_EQ( group->active_name().find( "ahocorasick" ),
               std::string::npos );
}
