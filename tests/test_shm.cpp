/**
 * POSIX shared-memory streams (§4.2 link allocation types): region
 * lifecycle, ring semantics, cross-PROCESS transport via fork, and the
 * shm_source/shm_sink kernel pair bridging two maps.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include <net/shm.hpp>
#include <raft.hpp>

using raft::net::shm_region;
using raft::net::shm_ring;

namespace {

std::string unique_name( const char *tag )
{
    return std::string( "/raft_test_" ) + tag + "_" +
           std::to_string( ::getpid() );
}

} /** end anonymous namespace **/

TEST( shm_region, create_attach_share_bytes )
{
    const auto name = unique_name( "region" );
    auto a          = shm_region::create( name, 4096 );
    auto b          = shm_region::attach( name, 4096 );
    std::strcpy( static_cast<char *>( a.data() ), "hello shm" );
    EXPECT_STREQ( static_cast<const char *>( b.data() ), "hello shm" );
    EXPECT_EQ( a.size(), 4096u );
}

TEST( shm_region, double_create_throws )
{
    const auto name = unique_name( "dup" );
    auto a          = shm_region::create( name, 1024 );
    EXPECT_THROW( shm_region::create( name, 1024 ),
                  raft::net_exception );
}

TEST( shm_region, attach_missing_throws )
{
    EXPECT_THROW(
        shm_region::attach( unique_name( "missing" ), 1024 ),
        raft::net_exception );
}

TEST( shm_ring, fifo_order_and_signals_same_process )
{
    const auto name = unique_name( "ring" );
    shm_ring<int> writer( name, 8, shm_ring<int>::role::create );
    shm_ring<int> reader( name, 8, shm_ring<int>::role::attach );
    EXPECT_EQ( writer.capacity(), 8u );
    writer.push( 1 );
    writer.push( 2, raft::eos );
    int v          = 0;
    raft::signal s = raft::none;
    reader.pop( v, &s );
    EXPECT_EQ( v, 1 );
    EXPECT_EQ( s, raft::none );
    reader.pop( v, &s );
    EXPECT_EQ( v, 2 );
    EXPECT_EQ( s, raft::eos );
    EXPECT_FALSE( reader.try_pop( v ) );
}

TEST( shm_ring, bounded_and_closable )
{
    const auto name = unique_name( "bounds" );
    shm_ring<int> ring( name, 2, shm_ring<int>::role::create );
    EXPECT_TRUE( ring.try_push( 1 ) );
    EXPECT_TRUE( ring.try_push( 2 ) );
    EXPECT_FALSE( ring.try_push( 3 ) ); /** full **/
    ring.close_write();
    int v = 0;
    ring.pop( v );
    ring.pop( v );
    EXPECT_THROW( ring.pop( v ), raft::closed_port_exception );
}

TEST( shm_ring, attach_to_wrong_region_rejected )
{
    const auto name = unique_name( "nothdr" );
    auto raw        = shm_region::create( name, 1u << 16 );
    std::memset( raw.data(), 0, 64 );
    EXPECT_THROW(
        ( shm_ring<int>( name, 8, shm_ring<int>::role::attach ) ),
        raft::net_exception );
}

TEST( shm_ring, cross_process_transport_via_fork )
{
    const auto name = unique_name( "fork" );
    constexpr int items = 5000;
    shm_ring<int> parent_ring( name, 64,
                               shm_ring<int>::role::create );
    const pid_t pid = fork();
    ASSERT_GE( pid, 0 );
    if( pid == 0 )
    {
        /** child: the producing process **/
        try
        {
            shm_ring<int> child_ring( name, 64,
                                      shm_ring<int>::role::attach );
            for( int i = 0; i < items; ++i )
            {
                child_ring.push( i );
            }
            child_ring.close_write();
            _exit( 0 );
        }
        catch( ... )
        {
            _exit( 1 );
        }
    }
    int expect = 0;
    bool ok    = true;
    try
    {
        for( ;; )
        {
            int v = -1;
            parent_ring.pop( v );
            ok = ok && ( v == expect );
            ++expect;
        }
    }
    catch( const raft::closed_port_exception & )
    {
    }
    int status = 0;
    waitpid( pid, &status, 0 );
    EXPECT_EQ( WEXITSTATUS( status ), 0 );
    EXPECT_TRUE( ok );
    EXPECT_EQ( expect, items );
}

TEST( shm_kernels, stream_bridges_two_maps )
{
    using i64       = std::int64_t;
    const auto name = unique_name( "kern" );
    const std::size_t count = 4000;
    auto ring = std::make_shared<shm_ring<i64>>(
        name, 256, shm_ring<i64>::role::create );
    auto ring2 = std::make_shared<shm_ring<i64>>(
        name, 256, shm_ring<i64>::role::attach );

    std::vector<i64> received;
    std::thread consumer( [ & ]() {
        raft::map m;
        m.link( raft::kernel::make<raft::net::shm_source<i64>>( ring2 ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( received ) ) );
        m.exe();
    } );

    raft::map m;
    auto p = m.link(
        raft::kernel::make<raft::generate<i64>>(
            count, []( std::size_t i ) { return i64( i ); } ),
        raft::kernel::make<raft::sum<i64, i64, i64>>(), "input_a" );
    m.link( raft::kernel::make<raft::generate<i64>>(
                count, []( std::size_t i ) { return i64( i * 4 ); } ),
            &( p.dst ), "input_b" );
    m.link( &( p.dst ),
            raft::kernel::make<raft::net::shm_sink<i64>>( ring ) );
    m.exe();
    consumer.join();

    ASSERT_EQ( received.size(), count );
    for( std::size_t i = 0; i < count; i += 37 )
    {
        EXPECT_EQ( received[ i ], i64( 5 * i ) );
    }
}
