/**
 * Small utilities and remaining corners: power-of-two math, demangling,
 * topology introspection, the buffer-cap "engineering solution" (§3), and
 * conversion-adapter value fidelity.
 */
#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include <raft.hpp>

TEST( defs, pow2_helpers )
{
    using raft::detail::is_pow2;
    using raft::detail::pow2_ceil;
    EXPECT_EQ( pow2_ceil( 0 ), 1u );
    EXPECT_EQ( pow2_ceil( 1 ), 1u );
    EXPECT_EQ( pow2_ceil( 3 ), 4u );
    EXPECT_EQ( pow2_ceil( 4 ), 4u );
    EXPECT_EQ( pow2_ceil( 1000 ), 1024u );
    EXPECT_TRUE( is_pow2( 1 ) );
    EXPECT_TRUE( is_pow2( 64 ) );
    EXPECT_FALSE( is_pow2( 0 ) );
    EXPECT_FALSE( is_pow2( 12 ) );
}

TEST( defs, demangle_produces_readable_names )
{
    const auto name =
        raft::detail::demangle( typeid( std::vector<int> ) );
    EXPECT_NE( name.find( "vector" ), std::string::npos );
}

TEST( topology, edge_queries )
{
    class stub : public raft::kernel
    {
    public:
        stub()
        {
            input.addPort<int>( "in" );
            output.addPort<int>( "out" );
        }
        raft::kstatus run() override { return raft::stop; }
    };
    stub a, b, c;
    raft::topology t;
    t.add_edge( raft::edge{ &a, "out", &b, "in", raft::in_order } );
    t.add_edge( raft::edge{ &b, "out", &c, "in", raft::out } );
    EXPECT_EQ( t.kernels().size(), 3u );
    EXPECT_EQ( t.out_edges( &b ).size(), 1u );
    EXPECT_EQ( t.in_edges( &b ).size(), 1u );
    EXPECT_EQ( t.out_edges( &c ).size(), 0u );
    EXPECT_TRUE( t.connected() );
    EXPECT_EQ( t.index_of( &c ), 2u );
    EXPECT_EQ( t.out_edges( &b ).front()->ord, raft::out );

    raft::topology empty;
    EXPECT_FALSE( empty.connected() );
    EXPECT_TRUE( empty.empty() );
}

TEST( buffer_cap, max_capacity_is_the_infinite_queue_answer )
{
    /** §3: "If the queue is destined to be of infinite size, a simple
     *  engineering solution presents itself in the form of a buffer
     *  cap." A source far outpacing its sink must not grow past the
     *  configured cap. **/
    using i64 = std::int64_t;
    raft::runtime::perf_snapshot snap;
    raft::run_options o;
    o.initial_queue_capacity = 4;
    o.max_queue_capacity     = 64;
    o.monitor_delta          = std::chrono::microseconds( 20 );
    o.stats_out              = &snap;

    class slow_sink : public raft::kernel
    {
    public:
        slow_sink() { input.addPort<i64>( "0" ); }
        raft::kstatus run() override
        {
            auto v           = input[ "0" ].pop_s<i64>();
            volatile i64 acc = *v;
            for( int i = 0; i < 2000; ++i )
            {
                acc = acc + i;
            }
            return raft::proceed;
        }
    };
    raft::map m;
    m.link( raft::kernel::make<raft::generate<i64>>(
                30'000, []( std::size_t i ) { return i64( i ); } ),
            raft::kernel::make<slow_sink>() );
    m.exe( o );
    ASSERT_EQ( snap.streams.size(), 1u );
    EXPECT_LE( snap.streams.front().final_capacity, 64u );
    EXPECT_GE( snap.streams.front().final_capacity, 4u );
    EXPECT_EQ( snap.streams.front().popped, 30'000u );
}

TEST( convert_kernel, float_values_survive_conversion )
{
    std::vector<float> out;
    raft::map m;
    m.link( raft::kernel::make<raft::generate<double>>(
                16,
                []( std::size_t i ) {
                    return 0.5 * static_cast<double>( i );
                } ),
            raft::kernel::make<raft::write_each<float>>(
                std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), 16u );
    for( std::size_t i = 0; i < out.size(); ++i )
    {
        EXPECT_FLOAT_EQ( out[ i ],
                         0.5f * static_cast<float>( i ) );
    }
}

TEST( convert_kernel, narrowing_integer_conversion )
{
    std::vector<std::int16_t> out;
    raft::map m;
    m.link( raft::kernel::make<raft::generate<std::int64_t>>(
                8,
                []( std::size_t i ) {
                    return static_cast<std::int64_t>( i * 100 );
                } ),
            raft::kernel::make<raft::write_each<std::int16_t>>(
                std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), 8u );
    EXPECT_EQ( out[ 7 ], 700 );
}

TEST( run_options, defaults_match_paper )
{
    const raft::run_options o;
    EXPECT_EQ( o.monitor_delta, std::chrono::microseconds( 10 ) );
    EXPECT_TRUE( o.dynamic_resize );
    EXPECT_TRUE( o.enable_auto_parallel );
    EXPECT_EQ( o.scheduler, raft::scheduler_kind::thread_per_kernel );
    EXPECT_EQ( o.split_strategy, raft::split_kind::least_utilized );
}

TEST( kernel_pair, references_are_reusable_across_links )
{
    using i64 = std::int64_t;
    raft::map m;
    auto p = m.link(
        raft::kernel::make<raft::generate<i64>>(
            4, []( std::size_t i ) { return i64( i ); } ),
        raft::kernel::make<raft::sum<i64, i64, i64>>(), "input_a" );
    /** both src and dst of the pair are usable later, Figure 3 style **/
    EXPECT_NE( p.src.name().find( "generate" ), std::string::npos );
    m.link( raft::kernel::make<raft::generate<i64>>(
                4, []( std::size_t i ) { return i64( i ); } ),
            &( p.dst ), "input_b" );
    std::vector<i64> out;
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe();
    EXPECT_EQ( out, ( std::vector<i64>{ 0, 2, 4, 6 } ) );
}
