/**
 * Link data compression (§4.2 future work): RLE and delta/varint codec
 * roundtrips (including fuzzed inputs and malformed-stream rejection),
 * plus the compressed TCP kernels end to end across two maps.
 */
#include <gtest/gtest.h>

#include <iterator>
#include <random>
#include <thread>
#include <vector>

#include <net/codec.hpp>
#include <net/tcp_kernels.hpp>
#include <raft.hpp>

using namespace raft::net;

TEST( rle, roundtrip_simple )
{
    const std::vector<std::uint8_t> data{ 1, 1, 1, 1, 2, 3, 3, 0 };
    const auto packed = rle_compress( data.data(), data.size() );
    const auto back =
        rle_decompress( packed.data(), packed.size(), data.size() );
    EXPECT_EQ( back, data );
}

TEST( rle, long_runs_compress_well )
{
    std::vector<std::uint8_t> data( 10'000, 0x7F );
    const auto packed = rle_compress( data.data(), data.size() );
    EXPECT_LT( packed.size(), data.size() / 50 );
    EXPECT_EQ( rle_decompress( packed.data(), packed.size(),
                               data.size() ),
               data );
}

TEST( rle, empty_input )
{
    const auto packed = rle_compress( nullptr, 0 );
    EXPECT_TRUE( packed.empty() );
    EXPECT_TRUE( rle_decompress( packed.data(), 0, 0 ).empty() );
}

TEST( rle, worst_case_bounded_to_2x )
{
    std::vector<std::uint8_t> data( 1000 );
    for( std::size_t i = 0; i < data.size(); ++i )
    {
        data[ i ] = static_cast<std::uint8_t>( i );
    }
    const auto packed = rle_compress( data.data(), data.size() );
    EXPECT_LE( packed.size(), 2 * data.size() );
}

TEST( rle, malformed_streams_rejected )
{
    const std::uint8_t odd[ 3 ]  = { 1, 2, 3 };
    EXPECT_THROW( rle_decompress( odd, 3, 100 ),
                  raft::net_exception );
    const std::uint8_t zero[ 2 ] = { 1, 0 };
    EXPECT_THROW( rle_decompress( zero, 2, 100 ),
                  raft::net_exception );
    const std::uint8_t big[ 2 ] = { 1, 200 };
    EXPECT_THROW( rle_decompress( big, 2, 100 ),
                  raft::net_exception ); /** exceeds max_output **/
}

TEST( rle, fuzz_roundtrip )
{
    std::mt19937_64 eng( 99 );
    for( int trial = 0; trial < 50; ++trial )
    {
        std::uniform_int_distribution<int> len( 0, 2000 );
        std::uniform_int_distribution<int> byte( 0, 3 ); /** runs **/
        std::vector<std::uint8_t> data(
            static_cast<std::size_t>( len( eng ) ) );
        for( auto &b : data )
        {
            b = static_cast<std::uint8_t>( byte( eng ) );
        }
        const auto packed = rle_compress( data.data(), data.size() );
        EXPECT_EQ( rle_decompress( packed.data(), packed.size(),
                                   data.size() ),
                   data );
    }
}

TEST( varint, roundtrip_boundaries )
{
    for( const std::uint64_t v :
         { 0ull, 1ull, 127ull, 128ull, 16'383ull, 16'384ull,
           ~0ull } )
    {
        std::vector<std::uint8_t> buf;
        put_varint( buf, v );
        std::uint64_t out = 0;
        const auto *end =
            get_varint( buf.data(), buf.data() + buf.size(), out );
        EXPECT_EQ( out, v );
        EXPECT_EQ( end, buf.data() + buf.size() );
    }
}

TEST( varint, truncation_rejected )
{
    std::vector<std::uint8_t> buf;
    put_varint( buf, 1u << 20 );
    std::uint64_t out = 0;
    EXPECT_THROW(
        get_varint( buf.data(), buf.data() + buf.size() - 1, out ),
        raft::net_exception );
}

TEST( zigzag, symmetric )
{
    for( const std::int64_t v :
         { 0ll, 1ll, -1ll, 63ll, -64ll, 1'000'000ll, -1'000'000ll } )
    {
        EXPECT_EQ( zigzag_decode( zigzag_encode( v ) ), v );
    }
}

TEST( delta_codec, near_sequential_values_compress )
{
    std::vector<std::int64_t> values;
    for( std::int64_t i = 0; i < 5000; ++i )
    {
        values.push_back( 1'000'000 + i * 3 );
    }
    const auto packed =
        delta_compress( values.data(), values.size() );
    /** 8-byte values become ~1-byte deltas **/
    EXPECT_LT( packed.size(), values.size() * 2 );
    const auto back = delta_decompress<std::int64_t>(
        packed.data(), packed.size(), values.size() );
    EXPECT_EQ( back, values );
}

TEST( delta_codec, fuzz_roundtrip_random_values )
{
    std::mt19937_64 eng( 5 );
    std::uniform_int_distribution<std::int64_t> val(
        std::numeric_limits<std::int32_t>::min(),
        std::numeric_limits<std::int32_t>::max() );
    std::vector<std::int64_t> values( 777 );
    for( auto &v : values )
    {
        v = val( eng );
    }
    const auto packed =
        delta_compress( values.data(), values.size() );
    EXPECT_EQ( delta_decompress<std::int64_t>(
                   packed.data(), packed.size(), values.size() ),
               values );
}

TEST( delta_codec, oversize_claim_rejected )
{
    std::vector<std::int64_t> values( 100, 7 );
    const auto packed =
        delta_compress( values.data(), values.size() );
    EXPECT_THROW( delta_decompress<std::int64_t>( packed.data(),
                                                  packed.size(), 50 ),
                  raft::net_exception );
}

TEST( compressed_tcp, stream_roundtrips_with_signals )
{
    using i64 = std::int64_t;
    const std::size_t count = 10'000;
    tcp_listener listener( 0 );

    std::vector<i64> received;
    raft::signal last_sig = raft::none;
    std::thread consumer( [ & ]() {
        auto conn = listener.accept();
        class sig_tail : public raft::kernel
        {
        public:
            std::vector<i64> *out;
            raft::signal *last;
            sig_tail( std::vector<i64> *o, raft::signal *l )
                : out( o ), last( l )
            {
                input.addPort<i64>( "0" );
            }
            raft::kstatus run() override
            {
                auto v = input[ "0" ].pop_s<i64>();
                out->push_back( *v );
                *last = v.sig();
                return raft::proceed;
            }
        };
        raft::map m;
        m.link( raft::kernel::make<tcp_source_compressed<i64>>(
                    std::move( conn ) ),
                raft::kernel::make<sig_tail>( &received, &last_sig ) );
        m.exe();
    } );

    raft::map m;
    auto conn = tcp_connection::connect( "127.0.0.1",
                                         listener.port() );
    m.link( raft::kernel::make<raft::generate<i64>>(
                count, []( std::size_t i ) { return i64( i / 7 ); } ),
            raft::kernel::make<tcp_sink_compressed<i64>>(
                std::move( conn ), 128 ) );
    m.exe();
    consumer.join();

    ASSERT_EQ( received.size(), count );
    for( std::size_t i = 0; i < count; i += 211 )
    {
        EXPECT_EQ( received[ i ], i64( i / 7 ) );
    }
    EXPECT_EQ( last_sig, raft::eos ); /** in-band signal survived **/
}

TEST( compressed_tcp, partial_final_batch_flushed )
{
    using i64 = std::int64_t;
    tcp_listener listener( 0 );
    std::vector<i64> received;
    std::thread consumer( [ & ]() {
        auto conn = listener.accept();
        raft::map m;
        m.link( raft::kernel::make<tcp_source_compressed<i64>>(
                    std::move( conn ) ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( received ) ) );
        m.exe();
    } );
    raft::map m;
    auto conn = tcp_connection::connect( "127.0.0.1",
                                         listener.port() );
    /** 10 elements with batch 256: everything rides the EOF flush **/
    m.link( raft::kernel::make<raft::generate<i64>>(
                10, []( std::size_t i ) { return i64( i ); } ),
            raft::kernel::make<tcp_sink_compressed<i64>>(
                std::move( conn ), 256 ) );
    m.exe();
    consumer.join();
    EXPECT_EQ( received,
               ( std::vector<i64>{ 0, 1, 2, 3, 4, 5, 6, 7, 8, 9 } ) );
}

TEST( pool_batching, batched_dispatch_preserves_results )
{
    using i64 = std::int64_t;
    const std::size_t count = 4000;
    for( const std::size_t batch : { 1u, 8u, 64u } )
    {
        std::vector<i64> out;
        raft::map m;
        auto p = m.link(
            raft::kernel::make<raft::generate<i64>>(
                count, []( std::size_t i ) { return i64( i ); } ),
            raft::kernel::make<raft::lambdak<i64>>(
                1, 1, []( raft::Port &in, raft::Port &o ) {
                    auto v = in[ "0" ].pop_s<i64>();
                    o[ "0" ].push<i64>( *v + 1 );
                } ) );
        m.link( &( p.dst ), raft::kernel::make<raft::write_each<i64>>(
                                std::back_inserter( out ) ) );
        raft::run_options o;
        o.scheduler       = raft::scheduler_kind::pool;
        o.pool_threads    = 2;
        o.pool_batch_size = batch;
        m.exe( o );
        ASSERT_EQ( out.size(), count ) << "batch " << batch;
        for( std::size_t i = 0; i < count; i += 101 )
        {
            EXPECT_EQ( out[ i ], i64( i + 1 ) );
        }
    }
}
