/**
 * Functional standard kernels: transform, filter (including replication
 * under raft::out), tee, merge, batch/unbatch roundtrips and the
 * flush-at-end-of-stream rule.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include <core/kernels/functional.hpp>
#include <raft.hpp>

namespace {

using i64 = std::int64_t;

raft::generate<i64> *seq_source( const std::size_t n )
{
    return raft::kernel::make<raft::generate<i64>>(
        n, []( std::size_t i ) { return static_cast<i64>( i ); } );
}

} /** end anonymous namespace **/

TEST( transform_kernel, applies_function_per_element )
{
    std::vector<double> out;
    raft::map m;
    auto p = m.link( seq_source( 100 ),
                     raft::kernel::make<raft::transform<i64, double>>(
                         []( const i64 &v ) { return v * 0.5; } ) );
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<double>>(
                            std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), 100u );
    EXPECT_DOUBLE_EQ( out[ 7 ], 3.5 );
}

TEST( transform_kernel, replicates_under_out_of_order_links )
{
    std::vector<i64> out;
    raft::map m;
    auto p = m.link<raft::out>(
        seq_source( 5000 ),
        raft::kernel::make<raft::transform<i64>>(
            []( const i64 &v ) { return v + 1000; } ) );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );
    raft::run_options o;
    o.replication_width = 4;
    m.exe( o );
    EXPECT_GT( m.graph().kernels().size(), 3u ); /** replicated **/
    ASSERT_EQ( out.size(), 5000u );
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < out.size(); i += 37 )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( i + 1000 ) );
    }
}

TEST( filter_kernel, drops_failing_elements )
{
    std::vector<i64> out;
    raft::map m;
    auto p = m.link( seq_source( 1000 ),
                     raft::kernel::make<raft::filter<i64>>(
                         []( const i64 &v ) { return v % 3 == 0; } ) );
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), 334u );
    for( const auto v : out )
    {
        EXPECT_EQ( v % 3, 0 );
    }
}

TEST( filter_kernel, filtering_rate_visible_in_stats )
{
    /** §3's dynamic downstream volume: 1000 in, ~10 out **/
    raft::runtime::perf_snapshot snap;
    raft::run_options o;
    o.stats_out     = &snap;
    o.monitor_delta = std::chrono::microseconds( 50 );
    std::vector<i64> out;
    raft::map m;
    auto p = m.link( seq_source( 1000 ),
                     raft::kernel::make<raft::filter<i64>>(
                         []( const i64 &v ) { return v % 100 == 0; } ) );
    m.link( &( p.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe( o );
    const auto *up   = snap.find( "generate", "filter" );
    const auto *down = snap.find( "filter", "write_each" );
    ASSERT_NE( up, nullptr );
    ASSERT_NE( down, nullptr );
    EXPECT_EQ( up->popped, 1000u );
    EXPECT_EQ( down->popped, 10u );
}

TEST( tee_kernel, duplicates_to_every_output )
{
    std::vector<i64> a, b;
    raft::map m;
    auto *t = raft::kernel::make<raft::tee<i64>>( 2 );
    m.link( seq_source( 50 ), t );
    m.link( t, "0",
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( a ) ),
            "0" );
    m.link( t, "1",
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( b ) ),
            "0" );
    m.exe();
    EXPECT_EQ( a.size(), 50u );
    EXPECT_EQ( a, b );
}

TEST( merge_kernel, combines_all_inputs )
{
    std::vector<i64> out;
    raft::map m;
    auto *mg = raft::kernel::make<raft::merge<i64>>( 3 );
    m.link( seq_source( 100 ), mg, "0" );
    m.link( seq_source( 100 ), mg, "1" );
    m.link( seq_source( 100 ), mg, "2" );
    m.link( mg, raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), 300u );
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < 100; ++i )
    {
        /** each value appears exactly three times **/
        EXPECT_EQ( out[ 3 * i ], static_cast<i64>( i ) );
        EXPECT_EQ( out[ 3 * i + 2 ], static_cast<i64>( i ) );
    }
}

TEST( batch_kernel, groups_and_flushes_partial_tail )
{
    std::vector<std::vector<i64>> groups;
    raft::map m;
    auto p = m.link( seq_source( 10 ),
                     raft::kernel::make<raft::batch<i64>>( 4 ) );
    m.link( &( p.dst ),
            raft::kernel::make<raft::write_each<std::vector<i64>>>(
                std::back_inserter( groups ) ) );
    m.exe();
    ASSERT_EQ( groups.size(), 3u ); /** 4 + 4 + 2 **/
    EXPECT_EQ( groups[ 0 ], ( std::vector<i64>{ 0, 1, 2, 3 } ) );
    EXPECT_EQ( groups[ 2 ], ( std::vector<i64>{ 8, 9 } ) );
}

TEST( batch_kernel, batch_unbatch_roundtrip )
{
    std::vector<i64> out;
    raft::map m;
    auto a = m.link( seq_source( 1000 ),
                     raft::kernel::make<raft::batch<i64>>( 32 ) );
    auto b = m.link( &( a.dst ),
                     raft::kernel::make<raft::unbatch<i64>>() );
    m.link( &( b.dst ), raft::kernel::make<raft::write_each<i64>>(
                            std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), 1000u );
    for( std::size_t i = 0; i < 1000; ++i )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( i ) );
    }
}

TEST( functional_kernels, compose_into_word_pipeline )
{
    /** transform → filter → batch in one application **/
    std::vector<std::vector<i64>> groups;
    raft::map m;
    auto a = m.link( seq_source( 64 ),
                     raft::kernel::make<raft::transform<i64>>(
                         []( const i64 &v ) { return v * v; } ) );
    auto b = m.link( &( a.dst ),
                     raft::kernel::make<raft::filter<i64>>(
                         []( const i64 &v ) { return v % 2 == 0; } ) );
    auto c = m.link( &( b.dst ),
                     raft::kernel::make<raft::batch<i64>>( 8 ) );
    m.link( &( c.dst ),
            raft::kernel::make<raft::write_each<std::vector<i64>>>(
                std::back_inserter( groups ) ) );
    m.exe();
    std::size_t total = 0;
    for( const auto &g : groups )
    {
        for( const auto v : g )
        {
            EXPECT_EQ( v % 2, 0 );
            ++total;
        }
    }
    EXPECT_EQ( total, 32u ); /** even squares of 0..63 **/
}
