/**
 * Remote kernel execution (§4.1's oar "remotely ... execute kernels"):
 * named streaming services built from raft maps over full-duplex
 * connections, unknown-job rejection, concurrent clients, and a remote
 * search service mirroring the paper's grep-as-a-service idea.
 */
#include <gtest/gtest.h>

#include <iterator>
#include <thread>
#include <vector>

#include <algo/corpus.hpp>
#include <net/remote.hpp>
#include <net/tcp_kernels.hpp>
#include <raft.hpp>

using namespace raft::net;

namespace {

using i64 = std::int64_t;

/** Service: read i64s from the connection, double them, write back. */
void doubler_service( std::shared_ptr<tcp_connection> conn )
{
    raft::map m;
    auto p = m.link(
        raft::kernel::make<tcp_source<i64>>( conn ),
        raft::kernel::make<raft::transform<i64>>(
            []( const i64 &v ) { return 2 * v; } ) );
    m.link( &( p.dst ),
            raft::kernel::make<tcp_sink<i64>>( conn ) );
    m.exe();
}

/** Drive one client exchange of `count` values against `port`. */
std::vector<i64> run_client( const std::uint16_t port,
                             const std::string &job,
                             const std::size_t count )
{
    auto conn = request_job( "127.0.0.1", port, job );
    std::vector<i64> results;
    std::thread receiver( [ & ]() {
        raft::map m;
        m.link( raft::kernel::make<tcp_source<i64>>( conn ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( results ) ) );
        m.exe();
    } );
    {
        raft::map m;
        m.link( raft::kernel::make<raft::generate<i64>>(
                    count, []( std::size_t i ) { return i64( i ); } ),
                raft::kernel::make<tcp_sink<i64>>( conn ) );
        m.exe();
    }
    receiver.join();
    return results;
}

} /** end anonymous namespace **/

TEST( remote_jobs, full_duplex_service_roundtrip )
{
    job_server server;
    server.register_job( "double", doubler_service );

    const auto results = run_client( server.port(), "double", 2000 );
    ASSERT_EQ( results.size(), 2000u );
    for( std::size_t i = 0; i < results.size(); i += 53 )
    {
        EXPECT_EQ( results[ i ], i64( 2 * i ) );
    }
    server.stop();
    EXPECT_EQ( server.served(), 1u );
}

TEST( remote_jobs, unknown_job_rejected )
{
    job_server server;
    server.register_job( "real", doubler_service );
    EXPECT_THROW( request_job( "127.0.0.1", server.port(), "fake" ),
                  raft::net_exception );
    /** the server keeps serving after a rejection **/
    const auto results = run_client( server.port(), "real", 10 );
    EXPECT_EQ( results.size(), 10u );
    server.stop();
}

TEST( remote_jobs, sequential_clients_share_one_server )
{
    job_server server;
    server.register_job( "double", doubler_service );
    for( int round = 0; round < 3; ++round )
    {
        const auto results =
            run_client( server.port(), "double", 500 );
        ASSERT_EQ( results.size(), 500u ) << "round " << round;
        EXPECT_EQ( results[ 499 ], 998 );
    }
    server.stop();
    EXPECT_EQ( server.served(), 3u );
}

TEST( remote_jobs, remote_search_service )
{
    /** grep-as-a-service: the server holds the corpus; the client ships
     *  nothing but the request and receives match offsets **/
    raft::algo::corpus_options copt;
    copt.size_bytes      = 128 * 1024;
    copt.pattern         = "remotequery";
    copt.implant_per_mib = 400.0;
    auto corpus = std::make_shared<const std::string>(
        raft::algo::make_corpus( copt ) );
    const auto expect =
        raft::algo::oracle_count( *corpus, copt.pattern );
    ASSERT_GT( expect, 0u );

    job_server server;
    server.register_job(
        "search", [ corpus, pattern = copt.pattern ](
                      std::shared_ptr<tcp_connection> conn ) {
            raft::map m;
            auto p = m.link(
                raft::kernel::make<raft::filereader>(
                    corpus, pattern.size() - 1, 8192 ),
                raft::kernel::make<
                    raft::search<raft::boyermoorehorspool>>( pattern ) );
            m.link( &( p.dst ),
                    raft::kernel::make<tcp_sink<raft::match_t>>(
                        conn ) );
            m.exe();
        } );

    auto conn = request_job( "127.0.0.1", server.port(), "search" );
    std::vector<raft::match_t> hits;
    raft::map m;
    m.link( raft::kernel::make<tcp_source<raft::match_t>>( conn ),
            raft::kernel::make<raft::write_each<raft::match_t>>(
                std::back_inserter( hits ) ) );
    m.exe();
    EXPECT_EQ( hits.size(), expect );
    server.stop();
}
