/**
 * Model-reliability classification (the paper's "fast automatic model
 * selection" future work, after Beard et al. ICPE'15): the from-scratch
 * linear SVM on synthetic separable data, the DES-labelled dataset, and
 * the trained classifier recovering queueing-theory ground truth —
 * M/M/1 trusted for Poisson-like streams, distrusted for deterministic
 * or bursty ones.
 */
#include <gtest/gtest.h>

#include <queueing/classifier.hpp>
#include <sim/pipeline.hpp>

using namespace raft::queueing;

TEST( svm, separates_synthetic_linear_data )
{
    /** label by rho threshold — trivially separable after lifting **/
    std::vector<model_features> X;
    std::vector<int> y;
    for( int i = 0; i < 200; ++i )
    {
        model_features f;
        f.rho         = 0.01 * ( i % 100 );
        f.arrival_scv = 1.0;
        f.service_scv = 1.0;
        X.push_back( f );
        y.push_back( f.rho < 0.5 ? +1 : -1 );
    }
    svm_classifier clf;
    clf.train( X, y );
    EXPECT_TRUE( clf.trained() );
    EXPECT_GE( clf.accuracy( X, y ), 0.97 );
}

TEST( svm, rejects_empty_or_mismatched_input )
{
    svm_classifier clf;
    EXPECT_THROW( clf.train( {}, {} ), std::invalid_argument );
    std::vector<model_features> X( 3 );
    std::vector<int> y( 2, 1 );
    EXPECT_THROW( clf.train( X, y ), std::invalid_argument );
}

TEST( svm, decision_margin_orders_confidence )
{
    std::vector<model_features> X;
    std::vector<int> y;
    for( int i = 0; i < 100; ++i )
    {
        model_features f;
        f.service_scv = i < 50 ? 1.0 : 4.0;
        X.push_back( f );
        y.push_back( i < 50 ? +1 : -1 );
    }
    svm_classifier clf;
    clf.train( X, y );
    model_features poisson, bursty;
    poisson.service_scv = 1.0;
    bursty.service_scv  = 4.0;
    EXPECT_GT( clf.decision( poisson ), clf.decision( bursty ) );
}

namespace {

/** Dataset/classifier fixtures are expensive (DES sweep): share them. */
const std::vector<reliability_sample> &dataset()
{
    static const auto d = []() {
        dataset_options o;
        o.items_per_run = 20'000;
        return make_reliability_dataset( o );
    }();
    return d;
}

const svm_classifier &classifier()
{
    static const auto c = []() {
        dataset_options o;
        o.items_per_run = 20'000;
        return train_reliability_classifier( o );
    }();
    return c;
}

} /** end anonymous namespace **/

TEST( reliability_dataset, covers_both_labels )
{
    const auto &d  = dataset();
    std::size_t pos = 0, neg = 0;
    for( const auto &s : d )
    {
        ( s.label > 0 ? pos : neg )++;
    }
    EXPECT_GT( pos, d.size() / 10 );
    EXPECT_GT( neg, d.size() / 10 );
    EXPECT_EQ( d.size(), 4u * 4u * 5u * 2u );
}

TEST( reliability_dataset, exp_exp_large_buffer_is_reliable )
{
    for( const auto &s : dataset() )
    {
        if( s.features.arrival_scv == 1.0 &&
            s.features.service_scv == 1.0 &&
            s.features.log2_buffer > 8.0 && s.features.rho <= 0.9 )
        {
            EXPECT_EQ( s.label, +1 )
                << "rho=" << s.features.rho
                << " model=" << s.model_lq << " sim=" << s.sim_lq;
        }
    }
}

TEST( reliability_dataset, deterministic_service_misleads_mm1 )
{
    /** M/D/1 has half the M/M/1 queue: the label must flag it **/
    std::size_t checked = 0;
    for( const auto &s : dataset() )
    {
        if( s.features.arrival_scv == 1.0 &&
            s.features.service_scv == 0.0 &&
            s.features.rho >= 0.7 && s.features.log2_buffer > 8.0 )
        {
            EXPECT_EQ( s.label, -1 )
                << "rho=" << s.features.rho
                << " model=" << s.model_lq << " sim=" << s.sim_lq;
            ++checked;
        }
    }
    EXPECT_GT( checked, 0u );
}

TEST( reliability_classifier, accurate_on_training_distribution )
{
    const auto &d = dataset();
    std::vector<model_features> X;
    std::vector<int> y;
    for( const auto &s : d )
    {
        X.push_back( s.features );
        y.push_back( s.label );
    }
    EXPECT_GE( classifier().accuracy( X, y ), 0.80 );
}

TEST( reliability_classifier, recovers_queueing_theory_boundary )
{
    const auto &clf = classifier();
    /** canonical M/M/1 setting: trust the model **/
    model_features mm1_case;
    mm1_case.rho         = 0.7;
    mm1_case.arrival_scv = 1.0;
    mm1_case.service_scv = 1.0;
    mm1_case.log2_buffer = 12.0;
    EXPECT_EQ( clf.predict( mm1_case ), +1 );

    /** heavy burstiness: distrust it **/
    model_features bursty = mm1_case;
    bursty.arrival_scv    = 4.0;
    bursty.service_scv    = 4.0;
    EXPECT_EQ( clf.predict( bursty ), -1 );

    /** fully deterministic pipeline: distrust it **/
    model_features det = mm1_case;
    det.arrival_scv    = 0.0;
    det.service_scv    = 0.0;
    EXPECT_EQ( clf.predict( det ), -1 );
}

TEST( des_distributions, scv_constants_match_samples )
{
    /** validate the new service distributions via the simulator: a
     *  single-stage pipeline's makespan with n items has mean n/rate
     *  regardless of distribution **/
    for( const auto d : { raft::sim::service_dist::uniform,
                          raft::sim::service_dist::hyperexponential } )
    {
        raft::sim::pipeline_desc p;
        p.stages.push_back(
            raft::sim::stage_desc{ "only", 100.0, 1, 1, d, false } );
        p.items      = 40'000;
        p.seed       = 123;
        const auto r = raft::sim::simulate_pipeline( p );
        EXPECT_NEAR( r.throughput_items_per_s, 100.0, 3.0 )
            << "dist " << static_cast<int>( d );
    }
    EXPECT_DOUBLE_EQ(
        raft::sim::service_scv( raft::sim::service_dist::uniform ),
        1.0 / 3.0 );
    EXPECT_DOUBLE_EQ( raft::sim::service_scv(
                          raft::sim::service_dist::deterministic ),
                      0.0 );
}
