/**
 * Concurrency properties of the SPSC ring buffer: order preservation under
 * a real producer/consumer pair, correctness while a third (monitor-like)
 * thread resizes through the gate protocol, and end-of-stream races.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <core/ringbuffer.hpp>

using raft::ring_buffer;

namespace {

struct spsc_param
{
    std::size_t capacity;
    std::uint64_t items;
};

} /** end anonymous namespace **/

class spsc_stress : public ::testing::TestWithParam<spsc_param>
{
};

TEST_P( spsc_stress, order_preserved )
{
    const auto p = GetParam();
    ring_buffer<std::uint64_t> q( p.capacity );
    std::thread producer( [ & ]() {
        for( std::uint64_t i = 0; i < p.items; ++i )
        {
            q.push( i + 0 );
        }
        q.close_write();
    } );
    std::uint64_t expect = 0;
    bool in_order        = true;
    try
    {
        for( ;; )
        {
            std::uint64_t v = 0;
            q.pop( v );
            in_order = in_order && ( v == expect );
            ++expect;
        }
    }
    catch( const raft::closed_port_exception & )
    {
    }
    producer.join();
    EXPECT_TRUE( in_order );
    EXPECT_EQ( expect, p.items );
}

INSTANTIATE_TEST_SUITE_P(
    sweep, spsc_stress,
    ::testing::Values( spsc_param{ 2, 20'000 },
                       spsc_param{ 8, 50'000 },
                       spsc_param{ 64, 100'000 },
                       spsc_param{ 1024, 100'000 } ) );

TEST( fifo_concurrency, resize_during_traffic_preserves_stream )
{
    ring_buffer<std::uint64_t> q( 4 );
    constexpr std::uint64_t items = 150'000;
    std::atomic<bool> done{ false };

    std::thread producer( [ & ]() {
        for( std::uint64_t i = 0; i < items; ++i )
        {
            q.push( i + 0 );
        }
        q.close_write();
    } );

    /** monitor-like thread: grow and shrink while both ends run **/
    std::thread resizer( [ & ]() {
        std::size_t cap = 4;
        while( !done.load( std::memory_order_acquire ) )
        {
            cap = ( cap >= 4096 ) ? 8 : cap * 2;
            q.resize( cap ); /** may fail under contention: fine **/
            std::this_thread::yield();
        }
    } );

    std::uint64_t expect = 0;
    bool in_order        = true;
    try
    {
        for( ;; )
        {
            std::uint64_t v = 0;
            q.pop( v );
            in_order = in_order && ( v == expect );
            ++expect;
        }
    }
    catch( const raft::closed_port_exception & )
    {
    }
    done.store( true, std::memory_order_release );
    producer.join();
    resizer.join();
    EXPECT_TRUE( in_order );
    EXPECT_EQ( expect, items );
    EXPECT_EQ( q.total_popped(), items );
}

TEST( fifo_concurrency, resize_during_traffic_nontrivial_type )
{
    ring_buffer<std::string> q( 2 );
    constexpr std::uint64_t items = 20'000;
    std::atomic<bool> done{ false };

    std::thread producer( [ & ]() {
        for( std::uint64_t i = 0; i < items; ++i )
        {
            q.push( "payload-" + std::to_string( i ) );
        }
        q.close_write();
    } );
    std::thread resizer( [ & ]() {
        bool big = true;
        while( !done.load( std::memory_order_acquire ) )
        {
            q.resize( big ? 256 : 4 );
            big = !big;
            std::this_thread::yield();
        }
    } );

    std::uint64_t expect = 0;
    bool matched         = true;
    try
    {
        for( ;; )
        {
            std::string v;
            q.pop( v );
            matched =
                matched && ( v == "payload-" + std::to_string( expect ) );
            ++expect;
        }
    }
    catch( const raft::closed_port_exception & )
    {
    }
    done.store( true, std::memory_order_release );
    producer.join();
    resizer.join();
    EXPECT_TRUE( matched );
    EXPECT_EQ( expect, items );
}

TEST( fifo_concurrency, consumer_waiting_then_close_unblocks )
{
    ring_buffer<int> q( 4 );
    std::atomic<bool> threw{ false };
    std::thread consumer( [ & ]() {
        try
        {
            int v = 0;
            q.pop( v );
        }
        catch( const raft::closed_port_exception & )
        {
            threw.store( true );
        }
    } );
    /** let the consumer block, then close **/
    while( q.read_blocked_since() == 0 )
    {
        std::this_thread::yield();
    }
    q.close_write();
    consumer.join();
    EXPECT_TRUE( threw.load() );
}

TEST( fifo_concurrency, producer_blocked_then_reader_close_unblocks )
{
    ring_buffer<int> q( 2 );
    q.push( 1 );
    q.push( 2 );
    std::atomic<bool> threw{ false };
    std::thread producer( [ & ]() {
        try
        {
            q.push( 3 ); /** full: blocks **/
        }
        catch( const raft::closed_port_exception & )
        {
            threw.store( true );
        }
    } );
    while( q.write_blocked_since() == 0 )
    {
        std::this_thread::yield();
    }
    q.close_read();
    producer.join();
    EXPECT_TRUE( threw.load() );
}

TEST( fifo_concurrency, peek_range_defers_resize_but_survives )
{
    ring_buffer<int> q( 8 );
    for( int i = 0; i < 8; ++i )
    {
        q.push( i );
    }
    std::atomic<bool> resized{ false };
    {
        auto w = q.peek_range( 8 );
        std::thread resizer( [ & ]() {
            /** consumer claim held: bounded wait must fail **/
            resized.store( q.resize( 64 ) );
        } );
        resizer.join();
        EXPECT_FALSE( resized.load() );
        EXPECT_EQ( w[ 7 ], 7 ); /** window untouched **/
    }
    /** claim released: resize now succeeds **/
    EXPECT_TRUE( q.resize( 64 ) );
    EXPECT_EQ( q.capacity(), 64u );
}

TEST( fifo_concurrency, demand_driven_growth_via_external_monitor )
{
    ring_buffer<int> q( 4 );
    q.set_auto_resize( true );
    std::thread monitorish( [ & ]() {
        /** emulate the monitor: grant any posted overflow demand **/
        for( ;; )
        {
            const auto req = q.resize_request();
            if( req > q.capacity() )
            {
                q.resize( req );
                return;
            }
            std::this_thread::yield();
        }
    } );
    std::thread producer( [ & ]() {
        for( int i = 0; i < 32; ++i )
        {
            q.push( i );
        }
    } );
    {
        auto w = q.peek_range( 32 ); /** > initial capacity **/
        EXPECT_EQ( w[ 31 ], 31 );
    }
    producer.join();
    monitorish.join();
    EXPECT_GE( q.capacity(), 32u );
}

TEST( fifo_concurrency, batched_producer_scalar_consumer_stress )
{
    /** windows on the producer side, one-element pops on the consumer
     *  side, a monitor-like thread resizing throughout: exercises the
     *  mixed scalar/batched handshake plus shadow-cache re-seeding **/
    constexpr std::uint64_t items = 150'000;
    ring_buffer<std::uint64_t> q( 32 );
    std::atomic<bool> done{ false };

    std::thread resizer( [ & ]() {
        std::size_t cap = 32;
        while( !done.load( std::memory_order_acquire ) )
        {
            cap = ( cap == 32 ) ? 128 : 32;
            q.resize( cap );
            std::this_thread::yield();
        }
    } );

    std::thread producer( [ & ]() {
        std::uint64_t i = 0;
        while( i < items )
        {
            auto w = q.write_window(
                std::min<std::uint64_t>( 24, items - i ) );
            for( std::size_t j = 0; j < w.size(); ++j )
            {
                w[ j ] = i++;
            }
        }
        q.close_write();
    } );

    std::uint64_t expect = 0;
    try
    {
        for( ;; )
        {
            std::uint64_t v = 0;
            q.pop( v );
            ASSERT_EQ( v, expect++ );
        }
    }
    catch( const raft::closed_port_exception & )
    {
    }
    done.store( true, std::memory_order_release );
    producer.join();
    resizer.join();
    EXPECT_EQ( expect, items );
}
