/**
 * Protocol model checker (src/analysis/mc/): the exhaustive-interleaving
 * explorer itself (it must find a textbook load/store race and prove the
 * RMW fix), then the re-instantiated ring-buffer protocol: SPSC transfer
 * with shadow-index caching under sequential consistency and under bounded
 * store reordering, the cooperative resize handshake, abort semantics on
 * blocked ends, abort-beats-EOS ordering — and the two deliberately broken
 * variants (weakened Dekker fence, swapped abort/EOS checks) that the
 * checker must catch.
 */
#include <gtest/gtest.h>

#include <vector>

#include "analysis/mc/mc.hpp"
#include "analysis/mc/ring_model.hpp"

namespace {

using raft::mc::model_ring;
using pop_status = raft::mc::model_ring::pop_status;

raft::mc::options quick( const int store_buffer = 0 )
{
    raft::mc::options o;
    o.store_buffer = store_buffer;
    return o;
}

} /** end anonymous namespace **/

TEST( model_checker, finds_textbook_increment_race )
{
    raft::mc::atomic<int> x( 0, "x" );
    auto body = [ & ]()
    {
        const int v = x.load( std::memory_order_relaxed );
        x.store( v + 1, std::memory_order_relaxed );
    };
    const auto r = raft::mc::explore(
        quick(), [ & ] { x.raw_reset( 0 ); }, { body, body },
        [ & ]( const auto &fail )
        {
            if( x.raw_get() != 2 )
            {
                fail( "increments lost: x == " +
                      std::to_string( x.raw_get() ) );
            }
        } );
    ASSERT_FALSE( r.ok() );
    EXPECT_NE( r.violations.front().message.find( "increments lost" ),
               std::string::npos );
    /** the trace names the interleaving that lost the update **/
    EXPECT_FALSE( r.violations.front().trace.empty() );
}

TEST( model_checker, rmw_increment_passes_exhaustively )
{
    raft::mc::atomic<int> x( 0, "x" );
    auto body = [ & ]() { x.fetch_add( 1, std::memory_order_relaxed ); };
    const auto r = raft::mc::explore(
        quick(), [ & ] { x.raw_reset( 0 ); }, { body, body },
        [ & ]( const auto &fail )
        {
            if( x.raw_get() != 2 )
            {
                fail( "increments lost" );
            }
        } );
    EXPECT_TRUE( r.ok() ) << r.summary();
    EXPECT_TRUE( r.complete ) << r.summary();
    EXPECT_GT( r.executions, 1 );
}

TEST( model_checker, detects_deadlock )
{
    model_ring ring;
    const auto r = raft::mc::explore(
        quick(), [ & ] { ring.reset( 2 ); },
        { [ & ]()
          {
              int v = 0;
              /** nobody ever pushes, closes or aborts: this must block
               *  forever, and the checker must say so */
              (void) ring.pop( v );
          } } );
    ASSERT_FALSE( r.ok() );
    EXPECT_NE( r.violations.front().message.find( "deadlock" ),
               std::string::npos );
}

TEST( model_checker, spsc_transfer_correct_under_sc )
{
    /** n = 2 with capacity 2 still exercises wrap-around, the shadow-cache
     *  refresh on both ends and the EOS path, while keeping the (pruned)
     *  tree small enough to exhaust in seconds */
    constexpr int n = 2;
    model_ring ring;
    std::vector<int> popped;
    const auto r = raft::mc::explore(
        quick(),
        [ & ]
        {
            ring.reset( 2 );
            popped.clear();
        },
        { [ & ]()
          {
              for( int i = 1; i <= n; ++i )
              {
                  raft::mc::check( ring.push( i ), "push aborted" );
              }
              ring.close_write();
          },
          [ & ]()
          {
              for( ;; )
              {
                  int v        = 0;
                  const auto s = ring.pop( v );
                  if( s == pop_status::eos )
                  {
                      return;
                  }
                  raft::mc::check( s == pop_status::got,
                                   "unexpected pop status" );
                  popped.push_back( v );
              }
          } },
        [ & ]( const auto &fail )
        {
            if( popped.size() != static_cast<std::size_t>( n ) )
            {
                fail( "lost or duplicated elements: popped " +
                      std::to_string( popped.size() ) );
                return;
            }
            for( int i = 0; i < n; ++i )
            {
                if( popped[ static_cast<std::size_t>( i ) ] != i + 1 )
                {
                    fail( "elements reordered" );
                    return;
                }
            }
        } );
    EXPECT_TRUE( r.ok() ) << r.summary();
    EXPECT_TRUE( r.complete ) << r.summary();
    EXPECT_GT( r.executions, 1 );
}

TEST( model_checker, spsc_transfer_correct_under_store_reordering )
{
    /** store buffering explodes the tree (every buffered store adds a
     *  flush action, and every commit re-enables the blocked end), so the
     *  weak-memory variant is a bounded sweep: 10k executions of the
     *  smallest transfer that crosses the buffer. The companion
     *  broken-variant tests show the same bound finds seeded ordering
     *  bugs in well under 5k executions. */
    constexpr int n = 1;
    model_ring ring;
    std::vector<int> popped;
    auto opt           = quick( /*store_buffer=*/1 );
    opt.max_executions = 10000;
    const auto r       = raft::mc::explore(
        opt,
        [ & ]
        {
            ring.reset( 2 );
            popped.clear();
        },
        { [ & ]()
          {
              for( int i = 1; i <= n; ++i )
              {
                  raft::mc::check( ring.push( i ), "push aborted" );
              }
              ring.close_write();
          },
          [ & ]()
          {
              for( ;; )
              {
                  int v        = 0;
                  const auto s = ring.pop( v );
                  if( s == pop_status::eos )
                  {
                      return;
                  }
                  raft::mc::check( s == pop_status::got,
                                   "unexpected pop status" );
                  popped.push_back( v );
              }
          } },
        [ & ]( const auto &fail )
        {
            if( popped.size() != static_cast<std::size_t>( n ) )
            {
                fail( "lost or duplicated elements" );
            }
            else if( popped[ 0 ] != 1 )
            {
                fail( "element corrupted" );
            }
        } );
    EXPECT_TRUE( r.ok() ) << r.summary();
    EXPECT_EQ( r.executions, 10000 ) << r.summary();
}

TEST( model_checker, resize_handshake_correct_under_sc )
{
    /** exhaustive under sequential consistency: producer pushes into a
     *  wrapped ring while the monitor relocates it — every interleaving
     *  of the Dekker handshake, the shadow-cache reseed and the
     *  relocation is explored to completion */
    model_ring ring;
    const auto r = raft::mc::explore(
        quick(),
        [ & ]
        {
            ring.reset( 2 );
            ring.raw_seed( 1U, { 10 } );
        },
        { [ & ]()
          { raft::mc::check( ring.push( 20 ), "push aborted" ); },
          [ & ]() { (void) ring.try_resize( 4 ); } },
        [ & ]( const auto &fail )
        {
            if( ring.raw_size() != 2U )
            {
                fail( "element lost or duplicated across resize: size " +
                      std::to_string( ring.raw_size() ) );
                return;
            }
            if( ring.raw_at( 0 ) != 10 || ring.raw_at( 1 ) != 20 )
            {
                fail( "FIFO order broken across resize" );
            }
        } );
    EXPECT_TRUE( r.ok() ) << r.summary();
    EXPECT_TRUE( r.complete ) << r.summary();
}

TEST( model_checker, resize_handshake_correct_under_store_reordering )
{
    /** bounded sweep under TSO (see the SPSC weak-memory test for why);
     *  the broken-Dekker twin below proves this bound is more than enough
     *  to expose a weakened handshake */
    model_ring ring;
    auto opt           = quick( /*store_buffer=*/1 );
    opt.max_executions = 10000;
    const auto r       = raft::mc::explore(
        opt,
        [ & ]
        {
            ring.reset( 2 );
            ring.raw_seed( 1U, { 10 } );
        },
        { /** producer pushes one element while... */
          [ & ]()
          { raft::mc::check( ring.push( 20 ), "push aborted" ); },
          /** ...the monitor grows the (wrapped) ring */
          [ & ]() { (void) ring.try_resize( 4 ); } },
        [ & ]( const auto &fail )
        {
            if( ring.raw_size() != 2U )
            {
                fail( "element lost or duplicated across resize: size " +
                      std::to_string( ring.raw_size() ) );
                return;
            }
            if( ring.raw_at( 0 ) != 10 || ring.raw_at( 1 ) != 20 )
            {
                fail( "FIFO order broken across resize" );
            }
        } );
    EXPECT_TRUE( r.ok() ) << r.summary();
    EXPECT_EQ( r.executions, 10000 ) << r.summary();
}

TEST( model_checker, broken_dekker_caught_under_store_reordering )
{
    model_ring ring( raft::mc::ring_opts{ /*broken_dekker=*/true,
                                          /*broken_abort_order=*/false } );
    auto opt = quick( /*store_buffer=*/1 );
    const auto r = raft::mc::explore(
        opt,
        [ & ]
        {
            ring.reset( 2 );
            ring.raw_seed( 1U, { 10 } );
        },
        { [ & ]()
          { raft::mc::check( ring.push( 20 ), "push aborted" ); },
          [ & ]() { (void) ring.try_resize( 4 ); } },
        [ & ]( const auto &fail )
        {
            if( ring.raw_size() != 2U )
            {
                fail( "element lost or duplicated across resize" );
            }
            else if( ring.raw_at( 0 ) != 10 || ring.raw_at( 1 ) != 20 )
            {
                fail( "FIFO order broken across resize" );
            }
        } );
    /** weakening the handshake's seq_cst pair to release/acquire lets the
     *  producer's announcement hide in its store buffer while the monitor
     *  relocates — the checker must exhibit a corrupting interleaving **/
    ASSERT_FALSE( r.ok() ) << r.summary();
    EXPECT_FALSE( r.violations.front().trace.empty() );
}

TEST( model_checker, abort_wakes_blocked_consumer )
{
    model_ring ring;
    const auto r = raft::mc::explore(
        quick(), [ & ] { ring.reset( 2 ); },
        { [ & ]()
          {
              raft::mc::check( ring.push( 1 ), "push aborted" );
              ring.abort();
          },
          [ & ]()
          {
              int v = 0;
              for( ;; )
              {
                  const auto s = ring.pop( v );
                  if( s == pop_status::aborted )
                  {
                      return; /** cancellation observed **/
                  }
                  raft::mc::check( s == pop_status::got,
                                   "EOS on a stream that never closed" );
              }
          } } );
    EXPECT_TRUE( r.ok() ) << r.summary();
    EXPECT_TRUE( r.complete ) << r.summary();
}

TEST( model_checker, abort_beats_eos_when_both_visible )
{
    /** the guarantee the blocked path makes: once cancellation is visible,
     *  a drained stream reports aborted, never a clean EOS. (When abort
     *  and close land *between* the consumer's two flag loads the race is
     *  inherent — so the discriminating state has both flags committed
     *  before the pop.) */
    model_ring ring;
    const auto r = raft::mc::explore(
        quick(),
        [ & ]
        {
            ring.reset( 2 );
            ring.raw_set_flags( /*aborted=*/true, /*write_closed=*/true );
        },
        { [ & ]()
          {
              int v = 0;
              raft::mc::check( ring.pop( v ) == pop_status::aborted,
                               "consumer observed EOS despite abort" );
          } } );
    EXPECT_TRUE( r.ok() ) << r.summary();
    EXPECT_TRUE( r.complete ) << r.summary();

    /** and without an abort, drained really is a clean EOS **/
    model_ring ring2;
    const auto r2 = raft::mc::explore(
        quick(),
        [ & ]
        {
            ring2.reset( 2 );
            ring2.raw_set_flags( /*aborted=*/false, /*write_closed=*/true );
        },
        { [ & ]()
          {
              int v = 0;
              raft::mc::check( ring2.pop( v ) == pop_status::eos,
                               "drained stream did not report EOS" );
          } } );
    EXPECT_TRUE( r2.ok() ) << r2.summary();
}

TEST( model_checker, broken_abort_order_caught )
{
    model_ring ring( raft::mc::ring_opts{ /*broken_dekker=*/false,
                                          /*broken_abort_order=*/true } );
    const auto r = raft::mc::explore(
        quick(),
        [ & ]
        {
            ring.reset( 2 );
            ring.raw_set_flags( /*aborted=*/true, /*write_closed=*/true );
        },
        { [ & ]()
          {
              int v = 0;
              raft::mc::check( ring.pop( v ) == pop_status::aborted,
                               "consumer observed EOS despite abort" );
          } } );
    ASSERT_FALSE( r.ok() ) << r.summary();
    EXPECT_NE( r.violations.front().message.find( "EOS despite abort" ),
               std::string::npos );
}
