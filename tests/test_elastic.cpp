/**
 * Elastic runtime (runtime/elastic/): online rate estimation, replica
 * policy, active-lane routing / quiesce on the split adapter, the
 * controller's closed loop driven with synthetic clocks, and end-to-end
 * convergence of a skewed pipeline. The stress test at the bottom doubles
 * as the TSan target for the cross-thread actuation mailboxes.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

/** Clonable middle kernel with a fixed per-element service time — the
 *  "slow middle kernel" of the skewed pipeline. Sleeping replicas overlap
 *  even on a single core, so activating lanes raises throughput. */
class sleepy_worker : public raft::kernel
{
public:
    explicit sleepy_worker( const std::chrono::microseconds delay )
        : delay_( delay )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
    }
    raft::kstatus run() override
    {
        auto v = input[ "0" ].pop_s<i64>();
        std::this_thread::sleep_for( delay_ );
        auto out = output[ "0" ].allocate_s<i64>();
        ( *out ) = *v;
        return raft::proceed;
    }
    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override
    {
        return new sleepy_worker( delay_ );
    }

private:
    std::chrono::microseconds delay_;
};

raft::run_options elastic_opts( const std::size_t max_replicas )
{
    raft::run_options o;
    o.enable_auto_parallel    = true;
    o.elastic.enabled         = true;
    o.elastic.min_replicas    = 1;
    o.elastic.max_replicas    = max_replicas;
    o.elastic.control_period  = std::chrono::milliseconds( 2 );
    o.elastic.hysteresis      = 2;
    return o;
}

} /** end anonymous namespace **/

/* ------------------------------------------------------------------ */
/* estimator                                                            */
/* ------------------------------------------------------------------ */

TEST( elastic_estimator, ewma_seeds_then_smooths )
{
    raft::elastic::ewma e( 0.5 );
    EXPECT_FALSE( e.valid() );
    e.update( 10.0 );
    EXPECT_TRUE( e.valid() );
    EXPECT_DOUBLE_EQ( e.value(), 10.0 );
    e.update( 20.0 );
    EXPECT_DOUBLE_EQ( e.value(), 15.0 );
}

TEST( elastic_estimator, busy_fraction_corrects_service_rate )
{
    raft::elastic::rate_estimator est( 1.0 ); /** no smoothing **/
    /** queue empty half the window: the consumer was starved, so its
     *  observed drain rate is half its true service rate **/
    for( int i = 0; i < 5; ++i )
    {
        est.tick( 0, 8 );
    }
    for( int i = 0; i < 5; ++i )
    {
        est.tick( 4, 8 );
    }
    est.window( /*pushed*/ 100, /*popped*/ 50, /*dt*/ 1.0 );
    EXPECT_DOUBLE_EQ( est.busy_fraction(), 0.5 );
    EXPECT_DOUBLE_EQ( est.observed_pop_hz(), 50.0 );
    EXPECT_DOUBLE_EQ( est.service_hz(), 100.0 ); /** 50 / 0.5 **/
    EXPECT_DOUBLE_EQ( est.arrival_hz(), 100.0 ); /** not blocked **/
    EXPECT_DOUBLE_EQ( est.mean_occupancy_fraction(), 0.25 );
}

TEST( elastic_estimator, full_fraction_corrects_offered_arrival_rate )
{
    raft::elastic::rate_estimator est( 1.0 );
    /** queue full the whole window: the producer was blocked, so the
     *  observed push rate underestimates the offered load; the non-full
     *  fraction is floored at 0.05 so saturation cannot blow it up **/
    for( int i = 0; i < 10; ++i )
    {
        est.tick( 8, 8 );
    }
    est.window( /*pushed*/ 10, /*popped*/ 0, /*dt*/ 1.0 );
    EXPECT_DOUBLE_EQ( est.full_fraction(), 1.0 );
    EXPECT_DOUBLE_EQ( est.arrival_hz(), 10.0 / 0.05 );
}

TEST( elastic_estimator, window_counters_are_deltas )
{
    raft::elastic::rate_estimator est( 1.0 );
    est.tick( 1, 8 );
    est.window( 100, 100, 1.0 );
    est.tick( 1, 8 );
    est.window( 130, 120, 1.0 );
    EXPECT_DOUBLE_EQ( est.observed_push_hz(), 30.0 );
    EXPECT_DOUBLE_EQ( est.observed_pop_hz(), 20.0 );
    EXPECT_EQ( est.windows(), 2u );
}

/* ------------------------------------------------------------------ */
/* policy                                                               */
/* ------------------------------------------------------------------ */

TEST( elastic_policy, hysteresis_gates_growth )
{
    raft::elastic::policy_config cfg;
    cfg.hysteresis = 3;
    cfg.max_active = 4;
    raft::elastic::replica_policy p( cfg );

    raft::elastic::group_estimate e;
    e.input_pressure = 1.0; /** backpressure: bottleneck every window **/
    e.active         = 1;
    EXPECT_EQ( p.decide( e ), 0 );
    EXPECT_EQ( p.decide( e ), 0 );
    EXPECT_EQ( p.decide( e ), +1 ); /** third agreeing window **/
    /** actuation resets the streak **/
    e.active = 2;
    EXPECT_EQ( p.decide( e ), 0 );
    EXPECT_EQ( p.decide( e ), 0 );
    EXPECT_EQ( p.decide( e ), +1 );
}

TEST( elastic_policy, growth_capped_at_max_active )
{
    raft::elastic::policy_config cfg;
    cfg.hysteresis = 1;
    cfg.max_active = 2;
    raft::elastic::replica_policy p( cfg );
    raft::elastic::group_estimate e;
    e.input_pressure = 1.0;
    e.active         = 2;
    EXPECT_EQ( p.decide( e ), 0 );
}

TEST( elastic_policy, underutilized_group_retires_a_replica )
{
    raft::elastic::policy_config cfg;
    cfg.hysteresis = 2;
    cfg.max_active = 4;
    raft::elastic::replica_policy p( cfg );

    raft::elastic::group_estimate e;
    e.lambda         = 100.0;
    e.mu             = 200.0;
    e.active         = 3; /** ρ at 2 replicas would be 0.25 < 0.45 **/
    e.rates_valid    = true;
    e.input_pressure = 0.0;
    EXPECT_TRUE( p.is_underutilized( e ) );
    EXPECT_EQ( p.decide( e ), 0 );
    EXPECT_EQ( p.decide( e ), -1 );
}

TEST( elastic_policy, model_desired_matches_mm1_sizing )
{
    raft::elastic::policy_config cfg;
    cfg.high_utilization = 0.85;
    cfg.max_active       = 8;
    raft::elastic::replica_policy p( cfg );
    /** smallest r with λ/(μ·r) ≤ 0.85: 900/(300·r) ≤ 0.85 → r = 4 **/
    EXPECT_EQ( p.model_desired( 900.0, 300.0 ), 4u );
    EXPECT_EQ( p.model_desired( 100.0, 300.0 ), 1u );
    /** clamped to the lane ceiling **/
    EXPECT_EQ( p.model_desired( 9000.0, 300.0 ), 8u );
}

TEST( elastic_policy, predict_capacity_grows_ahead_of_blocking )
{
    /** stable queue, but predicted L = ρ/(1-ρ) = 9 crowds a cap of 8 **/
    EXPECT_EQ( raft::elastic::predict_capacity( 90.0, 100.0, 0.2, 8,
                                                1024 ),
               16u );
    /** saturated (λ ≥ μ): grow once the buffer visibly fills **/
    EXPECT_EQ( raft::elastic::predict_capacity( 200.0, 100.0, 0.8, 8,
                                                1024 ),
               16u );
    EXPECT_EQ( raft::elastic::predict_capacity( 200.0, 100.0, 0.3, 8,
                                                1024 ),
               0u );
    /** growth clamps to and stops at max capacity **/
    EXPECT_EQ( raft::elastic::predict_capacity( 90.0, 100.0, 0.9, 8,
                                                12 ),
               12u );
    EXPECT_EQ( raft::elastic::predict_capacity( 90.0, 100.0, 0.9, 12,
                                                12 ),
               0u );
}

TEST( elastic_policy, strategy_retune_needs_sustained_skew )
{
    raft::elastic::policy_config cfg;
    cfg.skew_threshold = 0.5;
    cfg.hysteresis     = 2;
    raft::elastic::strategy_policy sp( cfg );

    raft::elastic::group_estimate e;
    e.active    = 2;
    e.lane_skew = 0.9;
    EXPECT_FALSE( sp.want_least_utilized( e ) );
    EXPECT_TRUE( sp.want_least_utilized( e ) );
    /** single active lane has no skew to speak of **/
    e.active = 1;
    EXPECT_FALSE( sp.want_least_utilized( e ) );
}

/* ------------------------------------------------------------------ */
/* split adapter: active-lane routing and quiesce                       */
/* ------------------------------------------------------------------ */

TEST( elastic_split, routes_only_to_active_lanes_then_widens )
{
    const auto meta = raft::detail::type_meta::of<int>();
    raft::split_kernel sp(
        meta, 3,
        raft::make_split_strategy( raft::split_kind::round_robin ),
        /*initial_active*/ 1 );

    raft::ring_buffer<int> in( 64 ), l0( 64 ), l1( 64 ), l2( 64 );
    sp.input[ "0" ].bind( &in );
    sp.output[ "0" ].bind( &l0 );
    sp.output[ "1" ].bind( &l1 );
    sp.output[ "2" ].bind( &l2 );

    for( int i = 0; i < 6; ++i )
    {
        in.push( i );
    }
    sp.run();
    EXPECT_EQ( l0.size(), 6u ); /** one routed lane takes everything **/
    EXPECT_EQ( l1.size(), 0u );
    EXPECT_EQ( l2.size(), 0u );

    sp.set_active( 3 );
    for( int i = 0; i < 6; ++i )
    {
        in.push( 100 + i );
    }
    sp.run();
    EXPECT_EQ( l0.size(), 8u ); /** strict dealing: 2 more per lane **/
    EXPECT_EQ( l1.size(), 2u );
    EXPECT_EQ( l2.size(), 2u );

    /** quiesce back to one lane: the retired lanes stop receiving but
     *  keep their queued elements (they drain through their replicas) **/
    sp.set_active( 1 );
    for( int i = 0; i < 3; ++i )
    {
        in.push( 200 + i );
    }
    sp.run();
    EXPECT_EQ( l0.size(), 11u );
    EXPECT_EQ( l1.size(), 2u );
    EXPECT_EQ( l2.size(), 2u );
}

TEST( elastic_split, strategy_swap_applied_at_next_quantum )
{
    const auto meta = raft::detail::type_meta::of<int>();
    raft::split_kernel sp(
        meta, 2,
        raft::make_split_strategy( raft::split_kind::round_robin ), 0 );
    EXPECT_STREQ( sp.strategy_name(), "round-robin" );
    EXPECT_TRUE( sp.strategy_strict() );

    raft::ring_buffer<int> in( 8 ), l0( 8 ), l1( 8 );
    sp.input[ "0" ].bind( &in );
    sp.output[ "0" ].bind( &l0 );
    sp.output[ "1" ].bind( &l1 );

    sp.request_strategy( raft::split_kind::least_utilized );
    in.push( 1 );
    sp.run();
    EXPECT_STREQ( sp.strategy_name(), "least-utilized" );
    EXPECT_FALSE( sp.strategy_strict() );
}

/* ------------------------------------------------------------------ */
/* controller: closed loop with a synthetic clock                       */
/* ------------------------------------------------------------------ */

TEST( elastic_controller, backpressure_activates_lanes )
{
    const auto meta = raft::detail::type_meta::of<int>();
    raft::split_kernel sp(
        meta, 3,
        raft::make_split_strategy( raft::split_kind::least_utilized ),
        /*initial_active*/ 1 );
    raft::ring_buffer<int> in( 8 ), l0( 8 ), l1( 8 ), l2( 8 );
    sp.input[ "0" ].bind( &in );
    sp.output[ "0" ].bind( &l0 );
    sp.output[ "1" ].bind( &l1 );
    sp.output[ "2" ].bind( &l2 );

    raft::run_options o;
    o.elastic.enabled        = true;
    o.elastic.control_period = std::chrono::milliseconds( 1 );
    o.elastic.hysteresis     = 2;
    raft::elastic::controller ctrl( o );

    raft::replica_group g;
    g.kernel_name = "worker";
    g.splits.push_back( &sp );
    ctrl.add_group( g );
    ASSERT_EQ( ctrl.group_count(), 1u );

    /** saturate the split input: sustained backpressure is bottleneck
     *  evidence even before the rate estimates warm up **/
    for( int i = 0; i < 8; ++i )
    {
        in.push( i );
    }

    std::int64_t now = 1'000'000'000;
    ctrl.on_tick( now ); /** seeds the control clock **/
    const std::int64_t step = 1'000'001;
    for( int w = 0; w < 2; ++w )
    {
        now += step;
        ctrl.on_tick( now );
    }
    EXPECT_EQ( sp.active(), 2u ); /** one grow after 2 windows **/
    for( int w = 0; w < 2; ++w )
    {
        now += step;
        ctrl.on_tick( now );
    }
    EXPECT_EQ( sp.active(), 3u );

    const auto rep = ctrl.report();
    ASSERT_EQ( rep.groups.size(), 1u );
    EXPECT_EQ( rep.groups[ 0 ].kernel_name, "worker" );
    EXPECT_EQ( rep.groups[ 0 ].grows, 2u );
    EXPECT_EQ( rep.groups[ 0 ].final_active, 3u );
    EXPECT_EQ( rep.groups[ 0 ].peak_active, 3u );
    EXPECT_GE( rep.control_ticks, 4u );
}

TEST( elastic_controller, predictively_resizes_filling_stream )
{
    raft::ring_buffer<int> rb( 8 );
    for( int i = 0; i < 7; ++i )
    {
        rb.push( i );
    }

    raft::run_options o;
    o.elastic.enabled        = true;
    o.elastic.control_period = std::chrono::milliseconds( 1 );
    o.dynamic_resize         = true;
    raft::elastic::controller ctrl( o );
    ctrl.watch_stream( &rb, "src", "dst" );

    /** non-group streams are probed every 4th δ tick, so drive 4 ticks
     *  per control window **/
    std::int64_t now = 1'000'000'000;
    ctrl.on_tick( now );
    for( int w = 0; w < 3; ++w )
    {
        for( int t = 0; t < 4; ++t )
        {
            now += 250'001;
            ctrl.on_tick( now );
        }
    }
    /** 7/8 occupancy > 0.7 and two closed windows: capacity doubles
     *  before the writer ever blocks 3δ **/
    EXPECT_EQ( rb.capacity(), 16u );
    EXPECT_GE( ctrl.report().predictive_resizes, 1u );
}

TEST( elastic_controller, disabled_runtime_is_untouched )
{
    const std::size_t count = 5000;
    std::vector<i64> out;
    raft::runtime::elastic_report rep;
    rep.control_ticks = 777; /** sentinel: must remain untouched **/

    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::generate<i64>>(
            count, []( std::size_t i ) { return static_cast<i64>( i ); } ),
        raft::kernel::make<sleepy_worker>(
            std::chrono::microseconds( 0 ) ) );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );

    raft::run_options o;
    o.elastic.enabled    = false;
    o.elastic.report_out = &rep;
    m.exe( o );

    ASSERT_EQ( out.size(), count );
    EXPECT_EQ( rep.control_ticks, 777u );
    EXPECT_TRUE( rep.groups.empty() );
}

/* ------------------------------------------------------------------ */
/* end-to-end: skewed pipeline convergence                              */
/* ------------------------------------------------------------------ */

TEST( elastic_pipeline, skewed_pipeline_converges_to_multiple_replicas )
{
    const std::size_t count = 1500;
    std::vector<i64> out;
    raft::runtime::elastic_report rep;

    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::generate<i64>>(
            count, []( std::size_t i ) { return static_cast<i64>( i ); } ),
        raft::kernel::make<sleepy_worker>(
            std::chrono::microseconds( 300 ) ) );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );

    auto o               = elastic_opts( 4 );
    o.elastic.report_out = &rep;
    m.exe( o );

    /** correctness first: every element exactly once **/
    ASSERT_EQ( out.size(), count );
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < count; ++i )
    {
        ASSERT_EQ( out[ i ], static_cast<i64>( i ) );
    }

    /** the slow middle kernel was detected and replicas activated: a fast
     *  source against a 300 µs service time saturates one replica many
     *  times over, so the controller should reach the lane ceiling —
     *  accept ceiling-1 to absorb scheduling noise (±1 of the model) **/
    ASSERT_EQ( rep.groups.size(), 1u );
    const auto &g = rep.groups[ 0 ];
    EXPECT_GE( g.grows, 1u );
    EXPECT_GE( g.peak_active, 3u );
    EXPECT_LE( g.peak_active, 4u );
    /** the online estimates should agree the group needed widening **/
    EXPECT_GE( g.model_desired, g.peak_active - 1 );
    EXPECT_GT( rep.control_ticks, 0u );
}

TEST( elastic_pipeline, load_drop_retires_replicas )
{
    /** two-phase source: a saturating burst, then a slow trickle — the
     *  controller must scale up for the burst and back down after it **/
    const std::size_t burst   = 1200;
    const std::size_t trickle = 120;
    const std::size_t count   = burst + trickle;
    std::vector<i64> out;
    raft::runtime::elastic_report rep;

    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::generate<i64>>(
            count,
            [ burst ]( std::size_t i ) {
                if( i >= burst )
                {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds( 3 ) );
                }
                return static_cast<i64>( i );
            } ),
        raft::kernel::make<sleepy_worker>(
            std::chrono::microseconds( 300 ) ) );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::write_each<i64>>(
                           std::back_inserter( out ) ) );

    auto o               = elastic_opts( 4 );
    o.elastic.report_out = &rep;
    m.exe( o );

    ASSERT_EQ( out.size(), count );
    std::sort( out.begin(), out.end() );
    for( std::size_t i = 0; i < count; ++i )
    {
        ASSERT_EQ( out[ i ], static_cast<i64>( i ) );
    }

    ASSERT_EQ( rep.groups.size(), 1u );
    const auto &g = rep.groups[ 0 ];
    EXPECT_GE( g.peak_active, 2u );   /** scaled up for the burst      **/
    EXPECT_GE( g.shrinks, 1u );       /** retired lanes for the trickle **/
    EXPECT_LT( g.final_active, g.peak_active );
}

/* ------------------------------------------------------------------ */
/* stress: mid-run quiesce under concurrent actuation (TSan target)     */
/* ------------------------------------------------------------------ */

TEST( elastic_stress, concurrent_actuation_loses_nothing )
{
    const int count = 20000;
    const auto meta = raft::detail::type_meta::of<int>();
    raft::split_kernel sp(
        meta, 3,
        raft::make_split_strategy( raft::split_kind::round_robin ),
        /*initial_active*/ 1 );
    raft::ring_buffer<int> in( 64 ), l0( 64 ), l1( 64 ), l2( 64 );
    sp.input[ "0" ].bind( &in );
    sp.output[ "0" ].bind( &l0 );
    sp.output[ "1" ].bind( &l1 );
    sp.output[ "2" ].bind( &l2 );
    std::vector<raft::ring_buffer<int> *> lanes{ &l0, &l1, &l2 };

    std::atomic<bool> split_done{ false };

    std::thread producer( [ & ]() {
        for( int i = 0; i < count; ++i )
        {
            in.push( i );
        }
        in.close_write();
    } );

    /** the controller's role: keep flipping the active-lane count and the
     *  strategy while the split routes — every transition is a quiesce **/
    std::thread toggler( [ & ]() {
        std::size_t n = 0;
        while( !split_done.load( std::memory_order_acquire ) )
        {
            sp.set_active( 1 + ( n % 3 ) );
            sp.request_strategy( ( n & 1 ) != 0
                                     ? raft::split_kind::least_utilized
                                     : raft::split_kind::round_robin );
            ++n;
            std::this_thread::sleep_for(
                std::chrono::microseconds( 50 ) );
        }
    } );

    std::vector<std::vector<int>> received( lanes.size() );
    std::vector<std::thread> consumers;
    for( std::size_t i = 0; i < lanes.size(); ++i )
    {
        consumers.emplace_back( [ &, i ]() {
            int v = 0;
            while( true )
            {
                if( lanes[ i ]->try_pop( v ) )
                {
                    received[ i ].push_back( v );
                }
                else if( lanes[ i ]->drained() )
                {
                    break;
                }
                else
                {
                    std::this_thread::yield();
                }
            }
        } );
    }

    while( sp.run() != raft::stop )
    {
    }
    split_done.store( true, std::memory_order_release );
    for( auto *l : lanes )
    {
        l->close_write();
    }
    producer.join();
    toggler.join();
    for( auto &c : consumers )
    {
        c.join();
    }

    std::vector<int> all;
    for( const auto &r : received )
    {
        all.insert( all.end(), r.begin(), r.end() );
    }
    ASSERT_EQ( all.size(), static_cast<std::size_t>( count ) );
    std::sort( all.begin(), all.end() );
    for( int i = 0; i < count; ++i )
    {
        ASSERT_EQ( all[ static_cast<std::size_t>( i ) ], i );
    }
}
