/**
 * map assembly and execution: link resolution, the exe()-time checks the
 * paper names (connectivity, per-link type checking with arithmetic
 * conversion), scheduler selection, statistics plumbing, and the Figure 3
 * assembly style.
 */
#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;

raft::generate<i64> *seq_source( const std::size_t n,
                                 const i64 scale = 1 )
{
    return raft::kernel::make<raft::generate<i64>>(
        n, [ scale ]( std::size_t i ) {
            return static_cast<i64>( i ) * scale;
        } );
}

} /** end anonymous namespace **/

TEST( map, empty_map_throws )
{
    raft::map m;
    EXPECT_THROW( m.exe(), raft::graph_exception );
}

TEST( map, null_kernel_throws )
{
    raft::map m;
    EXPECT_THROW( m.link( nullptr, seq_source( 1 ) ),
                  raft::graph_exception );
}

TEST( map, figure3_sum_application )
{
    const std::size_t count = 100000;
    std::vector<i64> out;
    raft::map map;
    auto linked_kernels = map.link(
        seq_source( count ),
        raft::kernel::make<raft::sum<i64, i64, i64>>(), "input_a" );
    map.link( seq_source( count, 10 ), &( linked_kernels.dst ),
              "input_b" );
    map.link( &( linked_kernels.dst ),
              raft::kernel::make<raft::write_each<i64>>(
                  std::back_inserter( out ) ) );
    map.exe();
    ASSERT_EQ( out.size(), count );
    for( std::size_t i = 0; i < count; i += 997 )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( i * 11 ) );
    }
}

TEST( map, print_kernel_writes_stream )
{
    std::ostringstream os;
    raft::map m;
    m.link( seq_source( 3 ),
            raft::kernel::make<raft::print<i64, ','>>( os ) );
    m.exe();
    EXPECT_EQ( os.str(), "0,1,2," );
}

TEST( map, double_link_same_port_throws )
{
    raft::map m;
    auto *src  = seq_source( 1 );
    auto *dst1 = raft::kernel::make<raft::print<i64>>();
    m.link( src, dst1 );
    auto *dst2 = raft::kernel::make<raft::print<i64>>();
    EXPECT_THROW( m.link( src, dst2 ), raft::port_exception );
}

TEST( map, disconnected_graph_throws )
{
    raft::map m;
    m.link( seq_source( 1 ), raft::kernel::make<raft::print<i64>>() );
    m.link( seq_source( 1 ), raft::kernel::make<raft::print<i64>>() );
    EXPECT_THROW( m.exe(), raft::graph_exception );
}

TEST( map, unlinked_port_throws )
{
    raft::map m;
    auto *s = raft::kernel::make<raft::sum<i64, i64, i64>>();
    m.link( seq_source( 4 ), s, "input_a" );
    m.link( s, raft::kernel::make<raft::print<i64>>() );
    /** input_b never linked **/
    EXPECT_THROW( m.exe(), raft::graph_exception );
}

TEST( map, exe_twice_throws )
{
    std::ostringstream sink;
    raft::map m;
    m.link( seq_source( 2 ), raft::kernel::make<raft::print<i64>>(
                                 sink ) );
    raft::run_options o;
    m.exe( o );
    EXPECT_THROW( m.exe( o ), raft::graph_exception );
}

TEST( map, arithmetic_link_types_converted )
{
    /** int32 source feeding a double sink: the runtime splices a
     *  conversion adapter (§4.2 narrowest-convertible-type behaviour) **/
    std::vector<double> out;
    raft::map m;
    m.link( raft::kernel::make<raft::generate<std::int32_t>>(
                64, []( std::size_t i ) {
                    return static_cast<std::int32_t>( i );
                } ),
            raft::kernel::make<raft::write_each<double>>(
                std::back_inserter( out ) ) );
    m.exe();
    ASSERT_EQ( out.size(), 64u );
    for( std::size_t i = 0; i < out.size(); ++i )
    {
        EXPECT_DOUBLE_EQ( out[ i ], static_cast<double>( i ) );
    }
}

TEST( map, incompatible_link_types_throw )
{
    struct payload
    {
        int x;
    };
    class payload_sink : public raft::kernel
    {
    public:
        payload_sink() { input.addPort<payload>( "0" ); }
        raft::kstatus run() override { return raft::stop; }
    };
    raft::map m;
    m.link( seq_source( 1 ), raft::kernel::make<payload_sink>() );
    EXPECT_THROW( m.exe(), raft::link_type_exception );
}

TEST( map, stats_snapshot_populated )
{
    raft::runtime::perf_snapshot snap;
    raft::run_options opts;
    opts.stats_out     = &snap;
    opts.monitor_delta = std::chrono::microseconds( 50 );
    const std::size_t count = 5000;
    std::vector<i64> out;
    raft::map m;
    m.link( seq_source( count ),
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( out ) ) );
    m.exe( opts );
    ASSERT_EQ( snap.streams.size(), 1u );
    const auto &s = snap.streams.front();
    EXPECT_EQ( s.pushed, count );
    EXPECT_EQ( s.popped, count );
    EXPECT_EQ( s.element_size, sizeof( i64 ) );
    EXPECT_GT( snap.wall_seconds, 0.0 );
    EXPECT_GT( s.service_rate_hz, 0.0 );
    EXPECT_GE( s.mean_utilization, 0.0 );
    EXPECT_LE( s.mean_utilization, 1.0 );
    EXPECT_NE( s.src_kernel.find( "generate" ), std::string::npos );
}

TEST( map, pool_scheduler_runs_sum_app )
{
    const std::size_t count = 2000;
    std::vector<i64> out;
    raft::map map;
    auto linked = map.link(
        seq_source( count ),
        raft::kernel::make<raft::sum<i64, i64, i64>>(), "input_a" );
    map.link( seq_source( count, 2 ), &( linked.dst ), "input_b" );
    map.link( &( linked.dst ),
              raft::kernel::make<raft::write_each<i64>>(
                  std::back_inserter( out ) ) );
    raft::run_options opts;
    opts.scheduler    = raft::scheduler_kind::pool;
    opts.pool_threads = 3;
    map.exe( opts );
    ASSERT_EQ( out.size(), count );
    for( std::size_t i = 0; i < count; i += 101 )
    {
        EXPECT_EQ( out[ i ], static_cast<i64>( 3 * i ) );
    }
}

TEST( map, tiny_queues_without_resize_still_complete )
{
    raft::run_options opts;
    opts.initial_queue_capacity = 2;
    opts.dynamic_resize         = false;
    std::vector<i64> out;
    raft::map m;
    m.link( seq_source( 10000 ),
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( out ) ) );
    m.exe( opts );
    EXPECT_EQ( out.size(), 10000u );
}

TEST( map, kernel_exception_propagates_to_caller )
{
    class bomb : public raft::kernel
    {
    public:
        bomb() { input.addPort<i64>( "0" ); }
        raft::kstatus run() override
        {
            (void) input[ "0" ].pop<i64>();
            throw std::runtime_error( "kernel failure" );
        }
    };
    raft::map m;
    m.link( seq_source( 100 ), raft::kernel::make<bomb>() );
    EXPECT_THROW( m.exe(), std::runtime_error );
}

TEST( map, graph_introspection_reflects_links )
{
    std::ostringstream sink;
    raft::map m;
    auto p = m.link( seq_source( 1 ),
                     raft::kernel::make<raft::print<i64>>( sink ) );
    (void) p;
    EXPECT_EQ( m.graph().edges().size(), 1u );
    EXPECT_EQ( m.graph().kernels().size(), 2u );
    EXPECT_TRUE( m.graph().connected() );
    EXPECT_EQ( m.owned_kernel_count(), 2u );
}
