/**
 * Queueing models (§3): M/M/1 and M/M/1/K closed forms against known
 * values and against the discrete-event simulator; the flow model's
 * bottleneck/throughput analysis; model-based buffer sizing.
 */
#include <gtest/gtest.h>

#include <queueing/flow_model.hpp>
#include <queueing/models.hpp>
#include <sim/pipeline.hpp>

using namespace raft::queueing;

TEST( mm1, textbook_values )
{
    const mm1 q{ 0.5, 1.0 };
    EXPECT_DOUBLE_EQ( q.rho(), 0.5 );
    EXPECT_DOUBLE_EQ( q.mean_in_system(), 1.0 );
    EXPECT_DOUBLE_EQ( q.mean_in_queue(), 0.5 );
    EXPECT_DOUBLE_EQ( q.mean_sojourn(), 2.0 );
    EXPECT_DOUBLE_EQ( q.p_n( 0 ), 0.5 );
    EXPECT_DOUBLE_EQ( q.p_n( 1 ), 0.25 );
}

TEST( mm1, unstable_throws )
{
    const mm1 q{ 2.0, 1.0 };
    EXPECT_THROW( q.mean_in_system(), std::domain_error );
    EXPECT_THROW( q.mean_sojourn(), std::domain_error );
    EXPECT_THROW( utilization( 1.0, 0.0 ), std::invalid_argument );
}

TEST( mm1k, blocking_limits )
{
    /** K → ∞ recovers M/M/1-like behaviour; tiny K blocks heavily **/
    const mm1k small{ 0.9, 1.0, 1 };
    const mm1k big{ 0.9, 1.0, 1000 };
    EXPECT_GT( small.blocking_probability(), 0.3 );
    EXPECT_LT( big.blocking_probability(), 1e-3 );
    EXPECT_LT( big.mean_in_system(), 10.0 );
}

TEST( mm1k, rho_equal_one_special_case )
{
    const mm1k q{ 1.0, 1.0, 4 };
    EXPECT_NEAR( q.blocking_probability(), 0.2, 1e-9 );
    EXPECT_NEAR( q.mean_in_system(), 2.0, 1e-9 );
}

TEST( mm1k, blocking_monotone_decreasing_in_k )
{
    double prev = 1.0;
    for( std::size_t k = 1; k <= 64; k *= 2 )
    {
        const auto b = ( mm1k{ 0.8, 1.0, k } ).blocking_probability();
        EXPECT_LT( b, prev );
        prev = b;
    }
}

TEST( mm1k, throughput_saturates_at_service_rate )
{
    const mm1k q{ 5.0, 1.0, 10 }; /** overloaded **/
    EXPECT_LE( q.throughput(), 1.0 + 1e-9 );
    EXPECT_GT( q.throughput(), 0.95 );
}

TEST( buffer_sizing, meets_blocking_target )
{
    const auto k = size_buffer_for_blocking( 0.8, 1.0, 0.01 );
    EXPECT_LE( ( mm1k{ 0.8, 1.0, k } ).blocking_probability(), 0.01 );
    if( k > 1 )
    {
        const auto smaller =
            ( mm1k{ 0.8, 1.0, k - 1 } ).blocking_probability();
        EXPECT_GT( smaller, 0.01 );
    }
}

TEST( buffer_sizing, higher_utilization_needs_bigger_buffers )
{
    const auto k_low  = size_buffer_for_blocking( 0.5, 1.0, 0.001 );
    const auto k_high = size_buffer_for_blocking( 0.95, 1.0, 0.001 );
    EXPECT_GT( k_high, k_low );
}

TEST( mm1, matches_discrete_event_simulation )
{
    /** one exponential station fed at ρ=0.7; DES occupancy ≈ theory **/
    raft::sim::pipeline_desc d;
    d.stages.push_back( raft::sim::stage_desc{
        "source", 0.7, 1, 1, raft::sim::service_dist::exponential,
        false } );
    d.stages.push_back( raft::sim::stage_desc{
        "server", 1.0, 1, 1u << 20,
        raft::sim::service_dist::exponential, false } );
    d.items = 60'000;
    d.seed  = 99;
    const auto r = raft::sim::simulate_pipeline( d );
    /** arrival process ≈ Poisson(0.7): utilization of the server **/
    EXPECT_NEAR( r.stages[ 1 ].utilization, 0.7, 0.05 );
    /** mean number waiting in queue: Lq = ρ²/(1-ρ) ≈ 1.633 **/
    const auto lq = mm1{ 0.7, 1.0 }.mean_in_queue();
    EXPECT_NEAR( r.stages[ 1 ].mean_queue_len, lq, 0.45 );
}

TEST( mm1k, blocking_matches_des_with_finite_queue )
{
    /** finite queue: DES producer blocked-fraction tracks M/M/1/K **/
    raft::sim::pipeline_desc d;
    const std::size_t K = 4;
    d.stages.push_back( raft::sim::stage_desc{
        "source", 0.9, 1, 1, raft::sim::service_dist::exponential,
        false } );
    d.stages.push_back( raft::sim::stage_desc{
        "server", 1.0, 1, K, raft::sim::service_dist::exponential,
        false } );
    d.items = 60'000;
    d.seed  = 7;
    const auto r = raft::sim::simulate_pipeline( d );
    /** effective throughput < offered rate because of blocking **/
    EXPECT_LT( r.throughput_items_per_s, 0.9 );
    EXPECT_GT( r.stages[ 0 ].blocked_fraction, 0.01 );
}

TEST( flow_model, linear_chain_bottleneck )
{
    flow_model fm;
    const auto a = fm.add_kernel( "source", 100.0 );
    const auto b = fm.add_kernel( "slow", 10.0 );
    const auto c = fm.add_kernel( "fast", 1000.0 );
    fm.add_edge( a, b );
    fm.add_edge( b, c );
    const auto r = fm.solve();
    EXPECT_EQ( r.bottleneck, b );
    EXPECT_DOUBLE_EQ( r.source_rate, 10.0 );
    EXPECT_DOUBLE_EQ( r.rho[ b ], 1.0 );
    EXPECT_DOUBLE_EQ( r.arrival[ c ], 10.0 );
}

TEST( flow_model, filtering_changes_downstream_load )
{
    /** text search: bytes in, sparse matches out (§3 dynamic rates) **/
    flow_model fm;
    const auto reader = fm.add_kernel( "reader", 1000.0 );
    const auto match  = fm.add_kernel( "match", 500.0 );
    const auto sink   = fm.add_kernel( "sink", 50.0 );
    fm.add_edge( reader, match, 1.0 );
    fm.add_edge( match, sink, 0.01 ); /** 1% of elements survive **/
    const auto r = fm.solve();
    /** sink sees 1% of flow: not the bottleneck despite being slow **/
    EXPECT_EQ( r.bottleneck, match );
    EXPECT_DOUBLE_EQ( r.source_rate, 500.0 );
    EXPECT_NEAR( r.arrival[ sink ], 5.0, 1e-9 );
}

TEST( flow_model, replication_raises_capacity )
{
    flow_model fm;
    const auto src = fm.add_kernel( "src", 1000.0 );
    const auto w1  = fm.add_kernel( "worker", 10.0, 1 );
    fm.add_edge( src, w1 );
    const auto serial = fm.solve();

    flow_model fm4;
    const auto src4 = fm4.add_kernel( "src", 1000.0 );
    const auto w4   = fm4.add_kernel( "worker", 10.0, 4 );
    fm4.add_edge( src4, w4 );
    const auto parallel = fm4.solve();
    EXPECT_DOUBLE_EQ( parallel.source_rate, 4 * serial.source_rate );
}

TEST( flow_model, fan_in_accumulates_flow )
{
    flow_model fm;
    const auto s1 = fm.add_kernel( "s1", 100.0 );
    const auto s2 = fm.add_kernel( "s2", 100.0 );
    const auto j  = fm.add_kernel( "join", 150.0 );
    fm.add_edge( s1, j );
    fm.add_edge( s2, j );
    const auto r = fm.solve();
    /** both sources at rate x feed join with 2x: join limits at 75 **/
    EXPECT_EQ( r.bottleneck, j );
    EXPECT_DOUBLE_EQ( r.source_rate, 75.0 );
}

TEST( flow_model, cycle_rejected )
{
    flow_model fm;
    const auto a = fm.add_kernel( "a", 1.0 );
    const auto b = fm.add_kernel( "b", 1.0 );
    fm.add_edge( a, b );
    fm.add_edge( b, a );
    EXPECT_THROW( fm.solve(), std::invalid_argument );
}

TEST( flow_model, target_utilization_scales_linearly )
{
    flow_model fm;
    const auto a = fm.add_kernel( "a", 100.0 );
    const auto b = fm.add_kernel( "b", 10.0 );
    fm.add_edge( a, b );
    EXPECT_DOUBLE_EQ( fm.solve( 0.5 ).source_rate,
                      0.5 * fm.solve( 1.0 ).source_rate );
}

TEST( flow_model, cross_validates_against_des_pipeline )
{
    /** 3-stage pipeline, middle stage the bottleneck: the flow model's
     *  predicted throughput must match the DES within a few percent **/
    flow_model fm;
    const auto src  = fm.add_kernel( "src", 50.0 );
    const auto mid  = fm.add_kernel( "mid", 20.0 );
    const auto sink = fm.add_kernel( "sink", 100.0 );
    fm.add_edge( src, mid );
    fm.add_edge( mid, sink );
    const auto prediction = fm.solve();
    EXPECT_EQ( prediction.bottleneck, mid );

    raft::sim::pipeline_desc d;
    d.stages.push_back( raft::sim::stage_desc{
        "src", 50.0, 1, 1, raft::sim::service_dist::exponential,
        false } );
    d.stages.push_back( raft::sim::stage_desc{
        "mid", 20.0, 1, 1024, raft::sim::service_dist::exponential,
        false } );
    d.stages.push_back( raft::sim::stage_desc{
        "sink", 100.0, 1, 1024, raft::sim::service_dist::exponential,
        false } );
    d.items      = 40'000;
    d.seed       = 17;
    const auto r = raft::sim::simulate_pipeline( d );
    EXPECT_NEAR( r.throughput_items_per_s, prediction.source_rate,
                 prediction.source_rate * 0.05 );
    /** the bottleneck saturates, the others do not **/
    EXPECT_GT( r.stages[ 1 ].utilization, 0.95 );
    EXPECT_LT( r.stages[ 2 ].utilization, 0.5 );
}

TEST( flow_model, replication_prediction_matches_des_multiserver )
{
    /** 4-way replicated worker: flow model says 4x; DES agrees **/
    flow_model fm;
    const auto src = fm.add_kernel( "src", 1000.0 );
    const auto w   = fm.add_kernel( "worker", 10.0, 4 );
    fm.add_edge( src, w );
    const auto prediction = fm.solve();

    raft::sim::pipeline_desc d;
    d.stages.push_back( raft::sim::stage_desc{
        "src", 1000.0, 1, 1, raft::sim::service_dist::deterministic,
        false } );
    d.stages.push_back( raft::sim::stage_desc{
        "worker", 10.0, 4, 256, raft::sim::service_dist::exponential,
        false } );
    d.items      = 20'000;
    d.seed       = 23;
    const auto r = raft::sim::simulate_pipeline( d );
    EXPECT_NEAR( r.throughput_items_per_s, prediction.source_rate,
                 prediction.source_rate * 0.06 );
}
