/**
 * The distributed substrate: raw socket wrappers, TCP stream kernels
 * (distributed sum across two maps on two "nodes"), and the oar status
 * mesh.
 */
#include <gtest/gtest.h>

#include <iterator>
#include <thread>
#include <vector>

#include <net/oar.hpp>
#include <net/socket.hpp>
#include <net/tcp_kernels.hpp>
#include <raft.hpp>

using namespace std::chrono_literals;

TEST( sockets, roundtrip_and_eof )
{
    raft::net::tcp_listener server( 0 );
    ASSERT_GT( server.port(), 0 );
    std::thread peer( [ & ]() {
        auto conn = server.accept();
        int v     = 0;
        ASSERT_TRUE( conn.recv_all( &v, sizeof( v ) ) );
        v *= 2;
        conn.send_all( &v, sizeof( v ) );
        /** destructor closes: client sees EOF **/
    } );
    auto client =
        raft::net::tcp_connection::connect( "127.0.0.1", server.port() );
    int v = 21;
    client.send_all( &v, sizeof( v ) );
    ASSERT_TRUE( client.recv_all( &v, sizeof( v ) ) );
    EXPECT_EQ( v, 42 );
    EXPECT_FALSE( client.recv_all( &v, sizeof( v ) ) ); /** clean EOF **/
    peer.join();
}

TEST( sockets, connect_refused_throws )
{
    /** a freshly closed ephemeral port refuses connections **/
    std::uint16_t dead_port;
    {
        raft::net::tcp_listener l( 0 );
        dead_port = l.port();
    }
    EXPECT_THROW(
        raft::net::tcp_connection::connect( "127.0.0.1", dead_port ),
        raft::net_exception );
}

TEST( tcp_kernels, stream_spans_two_maps )
{
    using i64 = std::int64_t;
    const std::size_t count = 3000;
    raft::net::tcp_listener listener( 0 );
    const auto port = listener.port();

    /** node B: tcp_source → collect; accepts the connection **/
    std::vector<i64> received;
    std::thread node_b( [ & ]() {
        auto conn = listener.accept();
        raft::map m;
        m.link( raft::kernel::make<raft::net::tcp_source<i64>>(
                    std::move( conn ) ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( received ) ) );
        m.exe();
    } );

    /** node A: generate ×2 → sum → tcp_sink; the SAME application code
     *  as the local version, with the print swapped for a network hop **/
    raft::map m;
    auto conn =
        raft::net::tcp_connection::connect( "127.0.0.1", port );
    auto linked = m.link(
        raft::kernel::make<raft::generate<i64>>(
            count, []( std::size_t i ) { return i64( i ); } ),
        raft::kernel::make<raft::sum<i64, i64, i64>>(), "input_a" );
    m.link( raft::kernel::make<raft::generate<i64>>(
                count, []( std::size_t i ) { return i64( 2 * i ); } ),
            &( linked.dst ), "input_b" );
    m.link( &( linked.dst ),
            raft::kernel::make<raft::net::tcp_sink<i64>>(
                std::move( conn ) ) );
    m.exe();
    node_b.join();

    ASSERT_EQ( received.size(), count );
    for( std::size_t i = 0; i < count; i += 97 )
    {
        EXPECT_EQ( received[ i ], i64( 3 * i ) );
    }
}

TEST( tcp_kernels, signal_propagates_across_link )
{
    raft::net::tcp_listener listener( 0 );
    std::vector<raft::signal> sigs;
    std::thread node_b( [ & ]() {
        auto conn = listener.accept();
        class sig_probe : public raft::kernel
        {
        public:
            std::vector<raft::signal> *out;
            explicit sig_probe( std::vector<raft::signal> *o )
                : out( o )
            {
                input.addPort<int>( "0" );
            }
            raft::kstatus run() override
            {
                auto v = input[ "0" ].pop_s<int>();
                out->push_back( v.sig() );
                return raft::proceed;
            }
        };
        raft::map m;
        m.link( raft::kernel::make<raft::net::tcp_source<int>>(
                    std::move( conn ) ),
                raft::kernel::make<sig_probe>( &sigs ) );
        m.exe();
    } );
    raft::map m;
    auto conn = raft::net::tcp_connection::connect( "127.0.0.1",
                                                    listener.port() );
    m.link( raft::kernel::make<raft::generate<int>>(
                3, []( std::size_t i ) { return int( i ); } ),
            raft::kernel::make<raft::net::tcp_sink<int>>(
                std::move( conn ) ) );
    m.exe();
    node_b.join();
    ASSERT_EQ( sigs.size(), 3u );
    EXPECT_EQ( sigs.back(), raft::eos ); /** in-band signal survived **/
}

TEST( oar, mesh_exchanges_status )
{
    raft::net::oar_node a( 1, 5ms ), b( 2, 5ms ), c( 3, 5ms );
    a.connect_to( "127.0.0.1", b.port() );
    a.connect_to( "127.0.0.1", c.port() );
    b.connect_to( "127.0.0.1", c.port() );

    a.set_load( 0.9, 0.1, 12 );
    b.set_load( 0.2, 0.8, 3 );
    c.set_load( 0.5, 0.5, 7 );

    /** wait for gossip to converge **/
    const auto deadline =
        std::chrono::steady_clock::now() + 2s;
    while( std::chrono::steady_clock::now() < deadline )
    {
        if( b.registry().count( 1 ) != 0 &&
            c.registry().count( 1 ) != 0 && c.registry().count( 2 ) &&
            a.registry().count( 2 ) != 0 )
        {
            break;
        }
        std::this_thread::sleep_for( 2ms );
    }

    const auto reg_b = b.registry();
    ASSERT_TRUE( reg_b.count( 1 ) );
    EXPECT_DOUBLE_EQ( reg_b.at( 1 ).load, 0.9 );
    EXPECT_EQ( reg_b.at( 1 ).kernel_count, 12u );

    const auto reg_c = c.registry();
    ASSERT_TRUE( reg_c.count( 1 ) );
    ASSERT_TRUE( reg_c.count( 2 ) );
    EXPECT_DOUBLE_EQ( reg_c.at( 2 ).load, 0.2 );

    /** a sees b as its least loaded peer **/
    EXPECT_EQ( a.least_loaded_peer(), 2u );

    a.stop();
    b.stop();
    c.stop();
}

TEST( oar, status_updates_overwrite_older )
{
    raft::net::oar_node a( 10, 5ms ), b( 20, 5ms );
    a.connect_to( "127.0.0.1", b.port() );
    a.set_load( 0.1, 0.9, 1 );
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while( std::chrono::steady_clock::now() < deadline &&
           b.registry().count( 10 ) == 0 )
    {
        std::this_thread::sleep_for( 2ms );
    }
    a.set_load( 0.7, 0.3, 5 );
    const auto deadline2 = std::chrono::steady_clock::now() + 2s;
    while( std::chrono::steady_clock::now() < deadline2 )
    {
        const auto reg = b.registry();
        if( reg.count( 10 ) != 0 && reg.at( 10 ).load > 0.6 )
        {
            break;
        }
        std::this_thread::sleep_for( 2ms );
    }
    EXPECT_DOUBLE_EQ( b.registry().at( 10 ).load, 0.7 );
    a.stop();
    b.stop();
}

TEST( oar, no_peers_reports_self )
{
    raft::net::oar_node lonely( 42, 50ms );
    EXPECT_EQ( lonely.least_loaded_peer(), 42u );
    EXPECT_EQ( lonely.link_count(), 0u );
    lonely.stop();
}
