/**
 * Discrete-event engine and the pipeline simulator: event ordering,
 * deterministic stage math, finite-queue blocking, the shared-bandwidth
 * ceiling and scaling behaviour of multi-server stages.
 */
#include <gtest/gtest.h>

#include <vector>

#include <sim/des.hpp>
#include <sim/pipeline.hpp>

using namespace raft::sim;

TEST( des_engine, events_fire_in_time_order )
{
    des_engine e;
    std::vector<int> order;
    e.schedule_at( 3.0, [ & ]() { order.push_back( 3 ); } );
    e.schedule_at( 1.0, [ & ]() { order.push_back( 1 ); } );
    e.schedule_at( 2.0, [ & ]() { order.push_back( 2 ); } );
    e.run();
    EXPECT_EQ( order, ( std::vector<int>{ 1, 2, 3 } ) );
    EXPECT_DOUBLE_EQ( e.now(), 3.0 );
    EXPECT_EQ( e.processed(), 3u );
}

TEST( des_engine, equal_times_fifo )
{
    des_engine e;
    std::vector<int> order;
    for( int i = 0; i < 5; ++i )
    {
        e.schedule_at( 1.0, [ &order, i ]() { order.push_back( i ); } );
    }
    e.run();
    EXPECT_EQ( order, ( std::vector<int>{ 0, 1, 2, 3, 4 } ) );
}

TEST( des_engine, handlers_can_schedule_more )
{
    des_engine e;
    int fired = 0;
    std::function<void()> chain = [ & ]() {
        ++fired;
        if( fired < 10 )
        {
            e.schedule_in( 1.0, chain );
        }
    };
    e.schedule_at( 0.0, chain );
    e.run();
    EXPECT_EQ( fired, 10 );
    EXPECT_DOUBLE_EQ( e.now(), 9.0 );
}

TEST( des_engine, run_until_bound )
{
    des_engine e;
    int fired = 0;
    e.schedule_at( 1.0, [ & ]() { ++fired; } );
    e.schedule_at( 5.0, [ & ]() { ++fired; } );
    e.run( 2.0 );
    EXPECT_EQ( fired, 1 );
    EXPECT_FALSE( e.empty() );
    e.run();
    EXPECT_EQ( fired, 2 );
}

TEST( des_engine, past_scheduling_rejected )
{
    des_engine e;
    e.schedule_at( 5.0, []() {} );
    e.run();
    EXPECT_THROW( e.schedule_at( 1.0, []() {} ),
                  std::invalid_argument );
    e.reset();
    e.schedule_at( 1.0, []() {} ); /** fine after reset **/
}

TEST( pipeline_sim, deterministic_single_stage_exact_makespan )
{
    pipeline_desc d;
    d.stages.push_back( stage_desc{ "only", 10.0, 1, 1,
                                    service_dist::deterministic,
                                    false } );
    d.items = 100;
    const auto r = simulate_pipeline( d );
    EXPECT_NEAR( r.makespan_s, 10.0, 1e-9 ); /** 100 / 10 per s **/
    EXPECT_NEAR( r.throughput_items_per_s, 10.0, 1e-9 );
    EXPECT_EQ( r.stages[ 0 ].completed, 100u );
    EXPECT_NEAR( r.stages[ 0 ].utilization, 1.0, 1e-9 );
}

TEST( pipeline_sim, bottleneck_stage_saturates )
{
    pipeline_desc d;
    d.stages.push_back( stage_desc{ "fast_src", 100.0, 1, 1,
                                    service_dist::deterministic,
                                    false } );
    d.stages.push_back( stage_desc{ "slow", 10.0, 1, 16,
                                    service_dist::deterministic,
                                    false } );
    d.stages.push_back( stage_desc{ "fast_sink", 200.0, 1, 16,
                                    service_dist::deterministic,
                                    false } );
    d.items = 2000;
    const auto r = simulate_pipeline( d );
    EXPECT_NEAR( r.throughput_items_per_s, 10.0, 0.2 );
    EXPECT_GT( r.stages[ 1 ].utilization, 0.98 );
    EXPECT_LT( r.stages[ 2 ].utilization, 0.1 );
    /** the fast producer spends most of its time output-blocked **/
    EXPECT_GT( r.stages[ 0 ].blocked_fraction, 0.5 );
}

TEST( pipeline_sim, multi_server_stage_scales_throughput )
{
    auto run_with = [ & ]( const std::size_t servers ) {
        pipeline_desc d;
        d.stages.push_back( stage_desc{ "src", 1000.0, 1, 1,
                                        service_dist::deterministic,
                                        false } );
        d.stages.push_back( stage_desc{ "work", 10.0, servers, 64,
                                        service_dist::exponential,
                                        false } );
        d.items = 20'000;
        d.seed  = 5;
        return simulate_pipeline( d ).throughput_items_per_s;
    };
    const auto t1 = run_with( 1 );
    const auto t4 = run_with( 4 );
    EXPECT_NEAR( t1, 10.0, 0.5 );
    EXPECT_GT( t4, 3.2 * t1 ); /** near-linear with 4 servers **/
}

TEST( pipeline_sim, tiny_queue_throttles_variable_service )
{
    auto run_with_cap = [ & ]( const std::size_t cap ) {
        pipeline_desc d;
        d.stages.push_back( stage_desc{ "src", 10.0, 1, 1,
                                        service_dist::exponential,
                                        false } );
        d.stages.push_back( stage_desc{ "work", 10.0, 1, cap,
                                        service_dist::exponential,
                                        false } );
        d.items = 30'000;
        d.seed  = 21;
        return simulate_pipeline( d ).throughput_items_per_s;
    };
    const auto small = run_with_cap( 1 );
    const auto big   = run_with_cap( 256 );
    /** Figure 4's left side: too-small queues create a bottleneck **/
    EXPECT_LT( small, 0.85 * big );
}

TEST( pipeline_sim, shared_bandwidth_caps_aggregate_rate )
{
    pipeline_desc d;
    d.stages.push_back( stage_desc{ "src", 1e6, 1, 1,
                                    service_dist::deterministic,
                                    false } );
    d.stages.push_back( stage_desc{ "work", 100.0, 8, 64,
                                    service_dist::deterministic,
                                    true } );
    d.items                 = 20'000;
    d.shared_bandwidth_rate = 250.0; /** well below 8 × 100 **/
    const auto r            = simulate_pipeline( d );
    EXPECT_LT( r.throughput_items_per_s, 260.0 );
    EXPECT_GT( r.throughput_items_per_s, 180.0 );
}

TEST( pipeline_sim, reproducible_for_seed )
{
    pipeline_desc d;
    d.stages.push_back( stage_desc{ "src", 7.0, 1, 1,
                                    service_dist::exponential,
                                    false } );
    d.stages.push_back( stage_desc{ "work", 9.0, 2, 8,
                                    service_dist::exponential,
                                    false } );
    d.items = 5000;
    d.seed  = 1234;
    const auto a = simulate_pipeline( d );
    const auto b = simulate_pipeline( d );
    EXPECT_DOUBLE_EQ( a.makespan_s, b.makespan_s );
}

TEST( pipeline_sim, empty_pipeline_rejected )
{
    pipeline_desc d;
    EXPECT_THROW( simulate_pipeline( d ), std::invalid_argument );
}
