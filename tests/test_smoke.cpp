#include <gtest/gtest.h>
#include <raft.hpp>
#include <vector>

TEST( smoke, sum_pipeline )
{
    using T = std::int64_t;
    const std::size_t count = 1000;
    std::vector<T> results;
    raft::map m;
    auto linked = m.link(
        raft::kernel::make<raft::generate<T>>(
            count, []( std::size_t i ) { return static_cast<T>( i ); } ),
        raft::kernel::make<raft::sum<T, T, T>>(), "input_a" );
    m.link( raft::kernel::make<raft::generate<T>>(
                count, []( std::size_t i ) { return static_cast<T>( 2 * i ); } ),
            &( linked.dst ), "input_b" );
    m.link( &( linked.dst ),
            raft::kernel::make<raft::write_each<T>>(
                std::back_inserter( results ) ) );
    m.exe();
    ASSERT_EQ( results.size(), count );
    for( std::size_t i = 0; i < count; ++i )
    {
        EXPECT_EQ( results[ i ], static_cast<T>( 3 * i ) );
    }
}
