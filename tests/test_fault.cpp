/**
 * Fault-tolerant runtime: graph-wide cancellation (a mid-pipeline failure
 * must unblock every peer and surface as graph_error on both scheduler
 * kinds, including under elastic replication), failure aggregation,
 * supervised in-place restarts with backoff, the zero-progress watchdog,
 * stream abort semantics at the ring-buffer level, and the deterministic
 * raft::runtime::inject harness.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <iterator>
#include <stdexcept>
#include <thread>
#include <vector>

#include <core/ringbuffer.hpp>
#include <raft.hpp>

namespace {

using i64 = std::int64_t;
using namespace std::chrono_literals;

raft::generate<i64> *seq_source( const std::size_t n )
{
    return raft::kernel::make<raft::generate<i64>>(
        n, []( std::size_t i ) { return static_cast<i64>( i ); } );
}

/** Relay that throws (before touching its queues) once `after` elements
 *  have passed through. after == SIZE_MAX never throws. */
class thrower : public raft::kernel
{
public:
    explicit thrower( const std::size_t after ) : kernel(), after_( after )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
        set_name( "thrower" );
    }

    raft::kstatus run() override
    {
        if( seen_ >= after_ )
        {
            throw std::runtime_error( "thrower: simulated failure" );
        }
        i64 v = 0;
        input[ "0" ].pop( v );
        ++seen_;
        output[ "0" ].push( v );
        return raft::proceed;
    }

private:
    std::size_t after_;
    std::size_t seen_{ 0 };
};

/** Relay whose first `failures` run() invocations throw before any queue
 *  operation — a clean transient failure the supervisor can restart. */
class flaky_relay : public raft::kernel
{
public:
    explicit flaky_relay( const std::size_t failures )
        : kernel(), fails_left_( failures )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
        set_name( "flaky" );
    }

    raft::kstatus run() override
    {
        if( fails_left_ > 0 )
        {
            --fails_left_;
            throw std::runtime_error( "flaky: transient failure" );
        }
        i64 v = 0;
        input[ "0" ].pop( v );
        output[ "0" ].push( v );
        return raft::proceed;
    }

    void on_restart() override { ++restarts_seen_; }
    std::size_t restarts_seen() const noexcept { return restarts_seen_; }

private:
    std::size_t fails_left_;
    std::size_t restarts_seen_{ 0 };
};

/** Source that never produces anything: a stalled graph for the watchdog.
 *  (Sleeps per run so the spin is polite; returns proceed forever until
 *  the runtime cancels it.) */
class stalled_source : public raft::kernel
{
public:
    stalled_source() : kernel()
    {
        output.addPort<i64>( "0" );
        set_name( "stalled" );
    }

    raft::kstatus run() override
    {
        std::this_thread::sleep_for( 1ms );
        return raft::proceed;
    }
};

/** Rendezvous thrower: waits until `peers` kernels reached their failure
 *  point, then every one of them throws — deterministic multi-failure. */
class latch_thrower : public raft::kernel
{
public:
    latch_thrower( std::atomic<int> &latch, const int peers,
                   const std::string &name )
        : kernel(), latch_( latch ), peers_( peers )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
        set_name( name );
    }

    raft::kstatus run() override
    {
        i64 v = 0;
        input[ "0" ].pop( v );
        latch_.fetch_add( 1 );
        while( latch_.load() < peers_ )
        {
            std::this_thread::yield();
        }
        throw std::runtime_error( "latch_thrower: simultaneous failure" );
    }

private:
    std::atomic<int> &latch_;
    int peers_;
};

void run_unblock_case( const raft::scheduler_kind kind )
{
    std::vector<i64> out;
    raft::map m;
    /** enough elements that the source must block on a full queue while
     *  the thrower is already dead — cancellation has to wake it **/
    auto kp = m.link( seq_source( 1 << 20 ),
                      raft::kernel::make<thrower>( 100 ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.scheduler = kind;
    try
    {
        m.exe( o );
        FAIL() << "exe() must throw after a kernel failure";
    }
    catch( const raft::graph_error &e )
    {
        ASSERT_EQ( e.failures().size(), 1u );
        EXPECT_NE( e.failures()[ 0 ].kernel_name.find( "thrower" ),
                   std::string::npos );
        EXPECT_NE( e.failures()[ 0 ].message.find( "simulated" ),
                   std::string::npos );
    }
}

} /** end anonymous namespace **/

/* ------------------------------------------------------------------ */
/* ring-buffer abort semantics                                          */
/* ------------------------------------------------------------------ */

TEST( fault, abort_wakes_blocked_pop )
{
    raft::ring_buffer<int> q( 4 );
    std::atomic<bool> aborted{ false };
    std::thread reader( [ & ]() {
        int v = 0;
        try
        {
            q.pop( v ); /** empty queue: blocks until the abort **/
        }
        catch( const raft::stream_aborted_exception & )
        {
            aborted.store( true );
        }
    } );
    std::this_thread::sleep_for( 20ms );
    q.abort();
    reader.join();
    EXPECT_TRUE( aborted.load() );
    EXPECT_TRUE( q.aborted() );
}

TEST( fault, abort_wakes_blocked_push )
{
    raft::ring_buffer<int> q( 2 );
    q.push( 1 );
    q.push( 2 ); /** full **/
    std::atomic<bool> aborted{ false };
    std::thread writer( [ & ]() {
        try
        {
            q.push( 3 );
        }
        catch( const raft::stream_aborted_exception & )
        {
            aborted.store( true );
        }
    } );
    std::this_thread::sleep_for( 20ms );
    q.abort();
    writer.join();
    EXPECT_TRUE( aborted.load() );
}

TEST( fault, abort_beats_end_of_stream )
{
    /** a stream both aborted and closed must report the abort: poison is
     *  a failure, close is normal completion **/
    raft::ring_buffer<int> q( 4 );
    q.abort();
    q.close_write();
    int v = 0;
    EXPECT_THROW( q.pop( v ), raft::stream_aborted_exception );
}

/* ------------------------------------------------------------------ */
/* graph-wide cancellation                                              */
/* ------------------------------------------------------------------ */

TEST( fault, failing_kernel_unblocks_pipeline_thread_scheduler )
{
    run_unblock_case( raft::scheduler_kind::thread_per_kernel );
}

TEST( fault, failing_kernel_unblocks_pipeline_pool_scheduler )
{
    run_unblock_case( raft::scheduler_kind::pool );
}

TEST( fault, graph_error_is_a_runtime_error )
{
    std::vector<i64> out;
    raft::map m;
    auto kp = m.link( seq_source( 1000 ),
                      raft::kernel::make<thrower>( 0 ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    EXPECT_THROW( m.exe(), std::runtime_error );
}

TEST( fault, every_failure_is_aggregated )
{
    std::atomic<int> latch{ 0 };
    std::vector<i64> out;
    raft::map m;
    auto a = m.link( seq_source( 1000 ),
                     raft::kernel::make<latch_thrower>( latch, 2,
                                                        "bad_a" ) );
    auto s = m.link( &a.dst,
                     raft::kernel::make<raft::sum<i64, i64, i64>>(),
                     "input_a" );
    auto b = m.link( seq_source( 1000 ),
                     raft::kernel::make<latch_thrower>( latch, 2,
                                                        "bad_b" ) );
    m.link( &b.dst, &s.dst, "input_b" );
    m.link( &s.dst, raft::kernel::make<raft::write_each<i64>>(
                        std::back_inserter( out ) ) );
    try
    {
        m.exe();
        FAIL() << "exe() must throw after kernel failures";
    }
    catch( const raft::graph_error &e )
    {
        /** BOTH simultaneous failures must be reported, not first-wins **/
        ASSERT_EQ( e.failures().size(), 2u );
        bool saw_a = false, saw_b = false;
        for( const auto &f : e.failures() )
        {
            saw_a = saw_a || f.kernel_name.find( "bad_a" ) !=
                                 std::string::npos;
            saw_b = saw_b || f.kernel_name.find( "bad_b" ) !=
                                 std::string::npos;
        }
        EXPECT_TRUE( saw_a );
        EXPECT_TRUE( saw_b );
        /** the what() text names every failed kernel **/
        EXPECT_NE( std::string( e.what() ).find( "bad_a" ),
                   std::string::npos );
        EXPECT_NE( std::string( e.what() ).find( "bad_b" ),
                   std::string::npos );
    }
}

TEST( fault, cancellation_with_elastic_replicas )
{
    /** a replica of a clonable kernel fails mid-run under the elastic
     *  controller: the whole graph (split/reduce adapters, sibling lanes,
     *  source, sink) must still shut down and report **/
    std::vector<i64> out;
    raft::map m;
    auto kp = m.link<raft::out>(
        seq_source( 200000 ),
        raft::kernel::make<raft::transform<i64>>( []( const i64 &v ) {
            if( v == 100000 )
            {
                throw std::runtime_error( "replica poison pill" );
            }
            return v + 1;
        } ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.elastic.enabled      = true;
    o.elastic.max_replicas = 4;
    EXPECT_THROW( m.exe( o ), raft::graph_error );
}

/* ------------------------------------------------------------------ */
/* supervised execution                                                 */
/* ------------------------------------------------------------------ */

TEST( fault, supervised_restart_recovers_thread_scheduler )
{
    const std::size_t count = 50000;
    std::vector<i64> out;
    raft::runtime::supervision_report rep;
    raft::map m;
    auto *flaky = raft::kernel::make<flaky_relay>( 3 );
    flaky->set_restart_policy( raft::restart_policy::up_to( 5 ) );
    auto kp = m.link( seq_source( count ), flaky );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.supervision.enabled    = true;
    o.supervision.report_out = &rep;
    /** keep the test fast: milliseconds-scale backoff curve **/
    m.exe( o );
    EXPECT_EQ( out.size(), count );
    const auto *k = rep.find( "flaky" );
    ASSERT_NE( k, nullptr );
    EXPECT_EQ( k->restarts, 3u );
    EXPECT_EQ( k->failures, 3u );
    EXPECT_FALSE( k->terminal );
    EXPECT_EQ( rep.total_restarts, 3u );
    EXPECT_EQ( rep.terminal_failures, 0u );
    EXPECT_EQ( flaky->restarts_seen(), 3u );
}

TEST( fault, supervised_restart_recovers_pool_scheduler )
{
    const std::size_t count = 50000;
    std::vector<i64> out;
    raft::runtime::supervision_report rep;
    raft::map m;
    auto *flaky = raft::kernel::make<flaky_relay>( 2 );
    flaky->set_restart_policy( raft::restart_policy::up_to( 4 ) );
    auto kp = m.link( seq_source( count ), flaky );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.scheduler              = raft::scheduler_kind::pool;
    o.supervision.enabled    = true;
    o.supervision.report_out = &rep;
    m.exe( o );
    EXPECT_EQ( out.size(), count );
    const auto *k = rep.find( "flaky" );
    ASSERT_NE( k, nullptr );
    EXPECT_EQ( k->restarts, 2u );
    EXPECT_FALSE( k->terminal );
}

TEST( fault, restart_policy_exhaustion_is_terminal )
{
    raft::runtime::supervision_report rep;
    std::vector<i64> out;
    raft::map m;
    auto *bad = raft::kernel::make<thrower>( 0 ); /** always throws **/
    raft::restart_policy p;
    p.max_restarts    = 2;
    p.initial_backoff = 1ms;
    bad->set_restart_policy( p );
    auto kp = m.link( seq_source( 1000 ), bad );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.supervision.enabled    = true;
    o.supervision.report_out = &rep;
    EXPECT_THROW( m.exe( o ), raft::graph_error );
    const auto *k = rep.find( "thrower" );
    ASSERT_NE( k, nullptr );
    EXPECT_EQ( k->restarts, 2u );
    EXPECT_EQ( k->failures, 3u ); /** 2 restarted + 1 terminal **/
    EXPECT_TRUE( k->terminal );
    EXPECT_EQ( rep.terminal_failures, 1u );
}

TEST( fault, default_restart_policy_applies_to_unmarked_kernels )
{
    const std::size_t count = 20000;
    std::vector<i64> out;
    raft::map m;
    /** no per-kernel policy: supervision_options::default_restart rules **/
    auto kp = m.link( seq_source( count ),
                      raft::kernel::make<flaky_relay>( 1 ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.supervision.enabled         = true;
    o.supervision.default_restart = raft::restart_policy::up_to( 2 );
    m.exe( o );
    EXPECT_EQ( out.size(), count );
}

/* ------------------------------------------------------------------ */
/* watchdog                                                             */
/* ------------------------------------------------------------------ */

TEST( fault, watchdog_aborts_stalled_graph )
{
    raft::runtime::supervision_report rep;
    std::vector<i64> out;
    raft::map m;
    m.link( raft::kernel::make<stalled_source>(),
            raft::kernel::make<raft::write_each<i64>>(
                std::back_inserter( out ) ) );
    raft::run_options o;
    o.supervision.enabled           = true;
    o.supervision.watchdog_deadline = 100ms;
    o.supervision.report_out        = &rep;
    try
    {
        m.exe( o );
        FAIL() << "a stalled graph must be aborted by the watchdog";
    }
    catch( const raft::graph_error &e )
    {
        ASSERT_GE( e.failures().size(), 1u );
        EXPECT_NE( e.failures()[ 0 ].kernel_name.find( "watchdog" ),
                   std::string::npos );
    }
    EXPECT_GE( rep.watchdog_stalls, 1u );
    /** the stall dump names the starved stream with its counters **/
    EXPECT_NE( rep.last_stall_diagnostics.find( "stalled" ),
               std::string::npos );
    EXPECT_NE( rep.last_stall_diagnostics.find( "occupancy" ),
               std::string::npos );
}

TEST( fault, watchdog_quiet_on_healthy_graph )
{
    const std::size_t count = 100000;
    raft::runtime::supervision_report rep;
    std::vector<i64> out;
    raft::map m;
    auto kp = m.link( seq_source( count ),
                      raft::kernel::make<thrower>( count + 1 ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    raft::run_options o;
    o.supervision.enabled           = true;
    o.supervision.watchdog_deadline = 10s;
    o.supervision.report_out        = &rep;
    m.exe( o );
    EXPECT_EQ( out.size(), count );
    EXPECT_EQ( rep.watchdog_stalls, 0u );
    EXPECT_EQ( rep.total_restarts, 0u );
}

/* ------------------------------------------------------------------ */
/* fault injection                                                      */
/* ------------------------------------------------------------------ */

TEST( fault, inject_throws_at_named_kernel_deterministically )
{
    raft::runtime::inject::enable( 42 );
    raft::runtime::inject::plan p;
    p.site    = "kernel.run";
    p.match   = "thrower";
    p.after   = 50; /** let the pipeline flow, then break it **/
    p.count   = 1;
    p.message = "injected kernel fault";
    raft::runtime::inject::arm( p );

    std::vector<i64> out;
    raft::map m;
    auto kp = m.link( seq_source( 100000 ),
                      raft::kernel::make<thrower>( SIZE_MAX ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    try
    {
        m.exe();
        FAIL() << "armed injection must fail the graph";
    }
    catch( const raft::graph_error &e )
    {
        ASSERT_EQ( e.failures().size(), 1u );
        EXPECT_NE( e.failures()[ 0 ].message.find( "injected" ),
                   std::string::npos );
    }
    EXPECT_EQ( raft::runtime::inject::fired( "kernel.run" ), 1u );
    raft::runtime::inject::disable();
}

TEST( fault, inject_disabled_is_inert )
{
    ASSERT_FALSE( raft::runtime::inject::enabled() );
    const std::size_t count = 10000;
    std::vector<i64> out;
    raft::map m;
    auto kp = m.link( seq_source( count ),
                      raft::kernel::make<thrower>( SIZE_MAX ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    m.exe();
    EXPECT_EQ( out.size(), count );
}

TEST( fault, poisoned_stream_fails_graph )
{
    std::vector<i64> out;
    raft::map m;
    auto kp = m.link(
        seq_source( 1 << 20 ),
        raft::kernel::make<raft::runtime::inject::poison<i64>>( 500 ) );
    m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                         std::back_inserter( out ) ) );
    try
    {
        m.exe();
        FAIL() << "a poisoned stream must fail the graph";
    }
    catch( const raft::graph_error &e )
    {
        ASSERT_GE( e.failures().size(), 1u );
        EXPECT_NE( e.failures()[ 0 ].message.find( "aborted" ),
                   std::string::npos );
    }
    /** elements before the poison point flowed through untouched **/
    EXPECT_LE( out.size(), 500u );
}
