/**
 * The kernel-to-resource mapper (§4.1): validity of assignments, the
 * minimal-crossing objective on structured topologies, even sharing on
 * flat machines, and the machine model's latency hierarchy.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include <core/kernels/generate.hpp>
#include <core/kernels/print.hpp>
#include <mapping/partition.hpp>

using namespace raft::mapping;

namespace {

/** Minimal concrete kernel for topology-building. */
class node_kernel : public raft::kernel
{
public:
    node_kernel()
    {
        input.addPort<int>( "in" );
        output.addPort<int>( "out" );
    }
    raft::kstatus run() override { return raft::stop; }
};

/** Build a linear chain of n kernels; returns owning storage + topology. */
struct chain
{
    std::vector<std::unique_ptr<node_kernel>> kernels;
    raft::topology topo;

    explicit chain( const std::size_t n )
    {
        for( std::size_t i = 0; i < n; ++i )
        {
            kernels.push_back( std::make_unique<node_kernel>() );
        }
        for( std::size_t i = 0; i + 1 < n; ++i )
        {
            topo.add_edge( raft::edge{ kernels[ i ].get(), "out",
                                       kernels[ i + 1 ].get(), "in",
                                       raft::in_order } );
        }
    }
};

std::vector<unsigned> socket_of_core( const machine_desc &m )
{
    std::vector<unsigned> g( m.cores.size() );
    for( std::size_t i = 0; i < m.cores.size(); ++i )
    {
        g[ m.cores[ i ].id ] = m.cores[ i ].socket;
    }
    return g;
}

std::vector<unsigned> node_of_core( const machine_desc &m )
{
    std::vector<unsigned> g( m.cores.size() );
    for( std::size_t i = 0; i < m.cores.size(); ++i )
    {
        g[ m.cores[ i ].id ] = m.cores[ i ].node;
    }
    return g;
}

} /** end anonymous namespace **/

TEST( machine_model, synthetic_geometry )
{
    const auto m = machine_desc::synthetic( 2, 2, 4 );
    EXPECT_EQ( m.core_count(), 16u );
    EXPECT_EQ( m.cores[ 0 ].node, 0u );
    EXPECT_EQ( m.cores[ 15 ].node, 1u );
    EXPECT_EQ( m.cores[ 15 ].socket, 3u );
}

TEST( machine_model, latency_hierarchy_ordered )
{
    const auto m   = machine_desc::synthetic( 2, 2, 2 );
    const auto &c0 = m.cores[ 0 ];
    const auto &c1 = m.cores[ 1 ]; /** same socket **/
    const auto &c2 = m.cores[ 2 ]; /** other socket, same node **/
    const auto &c4 = m.cores[ 4 ]; /** other node **/
    EXPECT_LT( m.link_latency( c0, c0 ), m.link_latency( c0, c1 ) );
    EXPECT_LT( m.link_latency( c0, c1 ), m.link_latency( c0, c2 ) );
    EXPECT_LT( m.link_latency( c0, c2 ), m.link_latency( c0, c4 ) );
}

TEST( machine_model, detect_matches_hardware )
{
    const auto m = machine_desc::detect();
    EXPECT_GE( m.core_count(), 1u );
    EXPECT_EQ( m.cores[ 0 ].node, 0u );
}

TEST( partitioner, every_kernel_gets_a_valid_core )
{
    chain app( 9 );
    const auto m = machine_desc::synthetic( 1, 2, 4 );
    const auto a = partition( app.topo, m );
    ASSERT_EQ( a.core_of.size(), 9u );
    for( const auto c : a.core_of )
    {
        EXPECT_LT( c, m.core_count() );
    }
}

TEST( partitioner, chain_on_two_sockets_minimal_crossing )
{
    chain app( 8 );
    const auto m = machine_desc::synthetic( 1, 2, 4 );
    const auto a = partition( app.topo, m );
    /** a linear chain split across two sockets needs exactly 1 crossing **/
    EXPECT_EQ( crossing_count( app.topo, a, m, socket_of_core( m ) ),
               1u );
}

TEST( partitioner, chain_on_two_nodes_minimal_crossing )
{
    chain app( 12 );
    const auto m = machine_desc::synthetic( 2, 1, 3 );
    const auto a = partition( app.topo, m );
    EXPECT_EQ( crossing_count( app.topo, a, m, node_of_core( m ) ),
               1u );
}

TEST( partitioner, flat_machine_shares_evenly )
{
    chain app( 8 );
    const auto m = machine_desc::synthetic( 1, 1, 4 );
    const auto a = partition( app.topo, m );
    std::vector<int> per_core( 4, 0 );
    for( const auto c : a.core_of )
    {
        ++per_core[ c ];
    }
    for( const auto n : per_core )
    {
        EXPECT_EQ( n, 2 ); /** "shared evenly amongst the cores" **/
    }
}

TEST( partitioner, two_independent_chains_separate_cleanly )
{
    /** two disjoint 4-chains on 2 sockets: zero crossings possible **/
    std::vector<std::unique_ptr<node_kernel>> ks;
    raft::topology topo;
    for( int c = 0; c < 2; ++c )
    {
        for( int i = 0; i < 4; ++i )
        {
            ks.push_back( std::make_unique<node_kernel>() );
        }
    }
    for( int c = 0; c < 2; ++c )
    {
        for( int i = 0; i < 3; ++i )
        {
            topo.add_edge( raft::edge{ ks[ c * 4 + i ].get(), "out",
                                       ks[ c * 4 + i + 1 ].get(), "in",
                                       raft::in_order } );
        }
    }
    const auto m = machine_desc::synthetic( 1, 2, 2 );
    const auto a = partition( topo, m );
    EXPECT_EQ( crossing_count( topo, a, m, socket_of_core( m ) ), 0u );
}

TEST( partitioner, more_cores_than_kernels_ok )
{
    chain app( 2 );
    const auto m = machine_desc::synthetic( 1, 2, 8 );
    const auto a = partition( app.topo, m );
    ASSERT_EQ( a.core_of.size(), 2u );
    for( const auto c : a.core_of )
    {
        EXPECT_LT( c, 16u );
    }
}

TEST( partitioner, single_kernel_single_core )
{
    std::vector<std::unique_ptr<node_kernel>> ks;
    ks.push_back( std::make_unique<node_kernel>() );
    raft::topology topo;
    topo.add_edge( raft::edge{ ks[ 0 ].get(), "out", ks[ 0 ].get(),
                               "in", raft::in_order } );
    const auto m = machine_desc::synthetic( 1, 1, 1 );
    const auto a = partition( topo, m );
    ASSERT_EQ( a.core_of.size(), 1u );
    EXPECT_EQ( a.core_of[ 0 ], 0u );
}

TEST( partitioner, empty_machine_degenerates_gracefully )
{
    chain app( 3 );
    machine_desc m; /** no cores **/
    const auto a = partition( app.topo, m );
    ASSERT_EQ( a.core_of.size(), 3u );
}

TEST( partitioner, balanced_across_sockets )
{
    chain app( 16 );
    const auto m = machine_desc::synthetic( 1, 2, 8 );
    const auto a = partition( app.topo, m );
    const auto soc = socket_of_core( m );
    int s0 = 0, s1 = 0;
    for( const auto c : a.core_of )
    {
        ( soc[ c ] == 0 ? s0 : s1 )++;
    }
    EXPECT_NEAR( s0, 8, 2 );
    EXPECT_NEAR( s1, 8, 2 );
}
