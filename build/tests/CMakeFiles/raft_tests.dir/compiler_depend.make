# Empty compiler generated dependencies file for raft_tests.
# This may be replaced when dependencies are built.
