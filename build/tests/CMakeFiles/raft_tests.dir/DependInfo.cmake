
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_async_signals.cpp" "tests/CMakeFiles/raft_tests.dir/test_async_signals.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_async_signals.cpp.o.d"
  "/root/repo/tests/test_autoparallel.cpp" "tests/CMakeFiles/raft_tests.dir/test_autoparallel.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_autoparallel.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/raft_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_classifier.cpp" "tests/CMakeFiles/raft_tests.dir/test_classifier.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_classifier.cpp.o.d"
  "/root/repo/tests/test_codec.cpp" "tests/CMakeFiles/raft_tests.dir/test_codec.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_codec.cpp.o.d"
  "/root/repo/tests/test_des.cpp" "tests/CMakeFiles/raft_tests.dir/test_des.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_des.cpp.o.d"
  "/root/repo/tests/test_fifo_concurrency.cpp" "tests/CMakeFiles/raft_tests.dir/test_fifo_concurrency.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_fifo_concurrency.cpp.o.d"
  "/root/repo/tests/test_functional_kernels.cpp" "tests/CMakeFiles/raft_tests.dir/test_functional_kernels.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_functional_kernels.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/raft_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kernels_std.cpp" "tests/CMakeFiles/raft_tests.dir/test_kernels_std.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_kernels_std.cpp.o.d"
  "/root/repo/tests/test_lambdak_clone.cpp" "tests/CMakeFiles/raft_tests.dir/test_lambdak_clone.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_lambdak_clone.cpp.o.d"
  "/root/repo/tests/test_map.cpp" "tests/CMakeFiles/raft_tests.dir/test_map.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_map.cpp.o.d"
  "/root/repo/tests/test_matmul.cpp" "tests/CMakeFiles/raft_tests.dir/test_matmul.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_matmul.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/raft_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/raft_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/raft_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_optimize.cpp" "tests/CMakeFiles/raft_tests.dir/test_optimize.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_optimize.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/raft_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_port_kernel.cpp" "tests/CMakeFiles/raft_tests.dir/test_port_kernel.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_port_kernel.cpp.o.d"
  "/root/repo/tests/test_queueing.cpp" "tests/CMakeFiles/raft_tests.dir/test_queueing.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_queueing.cpp.o.d"
  "/root/repo/tests/test_refmodel.cpp" "tests/CMakeFiles/raft_tests.dir/test_refmodel.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_refmodel.cpp.o.d"
  "/root/repo/tests/test_remote.cpp" "tests/CMakeFiles/raft_tests.dir/test_remote.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_remote.cpp.o.d"
  "/root/repo/tests/test_ringbuffer.cpp" "tests/CMakeFiles/raft_tests.dir/test_ringbuffer.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_ringbuffer.cpp.o.d"
  "/root/repo/tests/test_scaling_model.cpp" "tests/CMakeFiles/raft_tests.dir/test_scaling_model.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_scaling_model.cpp.o.d"
  "/root/repo/tests/test_search_app.cpp" "tests/CMakeFiles/raft_tests.dir/test_search_app.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_search_app.cpp.o.d"
  "/root/repo/tests/test_shm.cpp" "tests/CMakeFiles/raft_tests.dir/test_shm.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_shm.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/raft_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/raft_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strmatch.cpp" "tests/CMakeFiles/raft_tests.dir/test_strmatch.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_strmatch.cpp.o.d"
  "/root/repo/tests/test_synonym.cpp" "tests/CMakeFiles/raft_tests.dir/test_synonym.cpp.o" "gcc" "tests/CMakeFiles/raft_tests.dir/test_synonym.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
