file(REMOVE_RECURSE
  "libraft.a"
)
