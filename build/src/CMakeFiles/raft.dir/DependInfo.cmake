
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/corpus.cpp" "src/CMakeFiles/raft.dir/algo/corpus.cpp.o" "gcc" "src/CMakeFiles/raft.dir/algo/corpus.cpp.o.d"
  "/root/repo/src/algo/matmul.cpp" "src/CMakeFiles/raft.dir/algo/matmul.cpp.o" "gcc" "src/CMakeFiles/raft.dir/algo/matmul.cpp.o.d"
  "/root/repo/src/algo/strmatch.cpp" "src/CMakeFiles/raft.dir/algo/strmatch.cpp.o" "gcc" "src/CMakeFiles/raft.dir/algo/strmatch.cpp.o.d"
  "/root/repo/src/baselines/minispark.cpp" "src/CMakeFiles/raft.dir/baselines/minispark.cpp.o" "gcc" "src/CMakeFiles/raft.dir/baselines/minispark.cpp.o.d"
  "/root/repo/src/baselines/pgrep.cpp" "src/CMakeFiles/raft.dir/baselines/pgrep.cpp.o" "gcc" "src/CMakeFiles/raft.dir/baselines/pgrep.cpp.o.d"
  "/root/repo/src/core/defs.cpp" "src/CMakeFiles/raft.dir/core/defs.cpp.o" "gcc" "src/CMakeFiles/raft.dir/core/defs.cpp.o.d"
  "/root/repo/src/core/kernel.cpp" "src/CMakeFiles/raft.dir/core/kernel.cpp.o" "gcc" "src/CMakeFiles/raft.dir/core/kernel.cpp.o.d"
  "/root/repo/src/core/map.cpp" "src/CMakeFiles/raft.dir/core/map.cpp.o" "gcc" "src/CMakeFiles/raft.dir/core/map.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/raft.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/raft.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/CMakeFiles/raft.dir/core/parallel.cpp.o" "gcc" "src/CMakeFiles/raft.dir/core/parallel.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/raft.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/raft.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/mapping/partition.cpp" "src/CMakeFiles/raft.dir/mapping/partition.cpp.o" "gcc" "src/CMakeFiles/raft.dir/mapping/partition.cpp.o.d"
  "/root/repo/src/net/codec.cpp" "src/CMakeFiles/raft.dir/net/codec.cpp.o" "gcc" "src/CMakeFiles/raft.dir/net/codec.cpp.o.d"
  "/root/repo/src/net/oar.cpp" "src/CMakeFiles/raft.dir/net/oar.cpp.o" "gcc" "src/CMakeFiles/raft.dir/net/oar.cpp.o.d"
  "/root/repo/src/net/remote.cpp" "src/CMakeFiles/raft.dir/net/remote.cpp.o" "gcc" "src/CMakeFiles/raft.dir/net/remote.cpp.o.d"
  "/root/repo/src/net/shm.cpp" "src/CMakeFiles/raft.dir/net/shm.cpp.o" "gcc" "src/CMakeFiles/raft.dir/net/shm.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/CMakeFiles/raft.dir/net/socket.cpp.o" "gcc" "src/CMakeFiles/raft.dir/net/socket.cpp.o.d"
  "/root/repo/src/queueing/classifier.cpp" "src/CMakeFiles/raft.dir/queueing/classifier.cpp.o" "gcc" "src/CMakeFiles/raft.dir/queueing/classifier.cpp.o.d"
  "/root/repo/src/queueing/optimize.cpp" "src/CMakeFiles/raft.dir/queueing/optimize.cpp.o" "gcc" "src/CMakeFiles/raft.dir/queueing/optimize.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "src/CMakeFiles/raft.dir/sim/pipeline.cpp.o" "gcc" "src/CMakeFiles/raft.dir/sim/pipeline.cpp.o.d"
  "/root/repo/src/sim/scaling.cpp" "src/CMakeFiles/raft.dir/sim/scaling.cpp.o" "gcc" "src/CMakeFiles/raft.dir/sim/scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
