# Empty dependencies file for raft.
# This may be replaced when dependencies are built.
