# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/example_quickstart" "25")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_text_search "/root/repo/build/examples/example_text_search" "--demo")
set_tests_properties(example_text_search PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul_pipeline "/root/repo/build/examples/example_matmul_pipeline" "128" "2")
set_tests_properties(example_matmul_pipeline PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_containers_and_lambdas "/root/repo/build/examples/example_containers_and_lambdas")
set_tests_properties(example_containers_and_lambdas PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_sum "/root/repo/build/examples/example_distributed_sum")
set_tests_properties(example_distributed_sum PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wordcount "/root/repo/build/examples/example_wordcount")
set_tests_properties(example_wordcount PROPERTIES  TIMEOUT "180" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
