file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_sum.dir/distributed_sum.cpp.o"
  "CMakeFiles/example_distributed_sum.dir/distributed_sum.cpp.o.d"
  "example_distributed_sum"
  "example_distributed_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
