# Empty dependencies file for example_distributed_sum.
# This may be replaced when dependencies are built.
