# Empty compiler generated dependencies file for example_wordcount.
# This may be replaced when dependencies are built.
