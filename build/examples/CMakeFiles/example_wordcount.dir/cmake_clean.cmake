file(REMOVE_RECURSE
  "CMakeFiles/example_wordcount.dir/wordcount.cpp.o"
  "CMakeFiles/example_wordcount.dir/wordcount.cpp.o.d"
  "example_wordcount"
  "example_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
