# Empty compiler generated dependencies file for example_containers_and_lambdas.
# This may be replaced when dependencies are built.
