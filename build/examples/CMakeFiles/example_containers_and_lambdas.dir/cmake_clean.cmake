file(REMOVE_RECURSE
  "CMakeFiles/example_containers_and_lambdas.dir/containers_and_lambdas.cpp.o"
  "CMakeFiles/example_containers_and_lambdas.dir/containers_and_lambdas.cpp.o.d"
  "example_containers_and_lambdas"
  "example_containers_and_lambdas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_containers_and_lambdas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
