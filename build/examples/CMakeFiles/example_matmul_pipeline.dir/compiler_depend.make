# Empty compiler generated dependencies file for example_matmul_pipeline.
# This may be replaced when dependencies are built.
