file(REMOVE_RECURSE
  "CMakeFiles/example_matmul_pipeline.dir/matmul_pipeline.cpp.o"
  "CMakeFiles/example_matmul_pipeline.dir/matmul_pipeline.cpp.o.d"
  "example_matmul_pipeline"
  "example_matmul_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matmul_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
