file(REMOVE_RECURSE
  "CMakeFiles/micro_algo_search.dir/micro_algo_search.cpp.o"
  "CMakeFiles/micro_algo_search.dir/micro_algo_search.cpp.o.d"
  "micro_algo_search"
  "micro_algo_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_algo_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
