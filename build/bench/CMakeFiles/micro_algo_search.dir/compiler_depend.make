# Empty compiler generated dependencies file for micro_algo_search.
# This may be replaced when dependencies are built.
