# Empty dependencies file for fig4_queue_size.
# This may be replaced when dependencies are built.
