file(REMOVE_RECURSE
  "CMakeFiles/fig4_queue_size.dir/fig4_queue_size.cpp.o"
  "CMakeFiles/fig4_queue_size.dir/fig4_queue_size.cpp.o.d"
  "fig4_queue_size"
  "fig4_queue_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_queue_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
