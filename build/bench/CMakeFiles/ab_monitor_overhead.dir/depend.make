# Empty dependencies file for ab_monitor_overhead.
# This may be replaced when dependencies are built.
