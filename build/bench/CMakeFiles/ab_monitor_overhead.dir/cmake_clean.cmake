file(REMOVE_RECURSE
  "CMakeFiles/ab_monitor_overhead.dir/ab_monitor_overhead.cpp.o"
  "CMakeFiles/ab_monitor_overhead.dir/ab_monitor_overhead.cpp.o.d"
  "ab_monitor_overhead"
  "ab_monitor_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_monitor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
