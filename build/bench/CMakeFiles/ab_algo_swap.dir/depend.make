# Empty dependencies file for ab_algo_swap.
# This may be replaced when dependencies are built.
