file(REMOVE_RECURSE
  "CMakeFiles/ab_algo_swap.dir/ab_algo_swap.cpp.o"
  "CMakeFiles/ab_algo_swap.dir/ab_algo_swap.cpp.o.d"
  "ab_algo_swap"
  "ab_algo_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_algo_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
