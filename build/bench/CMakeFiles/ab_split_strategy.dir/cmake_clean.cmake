file(REMOVE_RECURSE
  "CMakeFiles/ab_split_strategy.dir/ab_split_strategy.cpp.o"
  "CMakeFiles/ab_split_strategy.dir/ab_split_strategy.cpp.o.d"
  "ab_split_strategy"
  "ab_split_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_split_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
