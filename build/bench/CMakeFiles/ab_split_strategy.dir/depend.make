# Empty dependencies file for ab_split_strategy.
# This may be replaced when dependencies are built.
