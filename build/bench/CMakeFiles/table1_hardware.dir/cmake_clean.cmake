file(REMOVE_RECURSE
  "CMakeFiles/table1_hardware.dir/table1_hardware.cpp.o"
  "CMakeFiles/table1_hardware.dir/table1_hardware.cpp.o.d"
  "table1_hardware"
  "table1_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
