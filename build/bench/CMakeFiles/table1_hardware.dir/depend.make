# Empty dependencies file for table1_hardware.
# This may be replaced when dependencies are built.
