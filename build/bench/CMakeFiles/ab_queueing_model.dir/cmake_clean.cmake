file(REMOVE_RECURSE
  "CMakeFiles/ab_queueing_model.dir/ab_queueing_model.cpp.o"
  "CMakeFiles/ab_queueing_model.dir/ab_queueing_model.cpp.o.d"
  "ab_queueing_model"
  "ab_queueing_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_queueing_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
