# Empty dependencies file for ab_queueing_model.
# This may be replaced when dependencies are built.
