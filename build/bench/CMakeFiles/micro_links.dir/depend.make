# Empty dependencies file for micro_links.
# This may be replaced when dependencies are built.
