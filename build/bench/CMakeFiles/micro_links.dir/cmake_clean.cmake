file(REMOVE_RECURSE
  "CMakeFiles/micro_links.dir/micro_links.cpp.o"
  "CMakeFiles/micro_links.dir/micro_links.cpp.o.d"
  "micro_links"
  "micro_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
