# Empty compiler generated dependencies file for ab_scheduler.
# This may be replaced when dependencies are built.
