file(REMOVE_RECURSE
  "CMakeFiles/ab_scheduler.dir/ab_scheduler.cpp.o"
  "CMakeFiles/ab_scheduler.dir/ab_scheduler.cpp.o.d"
  "ab_scheduler"
  "ab_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
