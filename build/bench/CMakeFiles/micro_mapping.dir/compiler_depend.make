# Empty compiler generated dependencies file for micro_mapping.
# This may be replaced when dependencies are built.
