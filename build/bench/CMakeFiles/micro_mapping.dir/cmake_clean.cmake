file(REMOVE_RECURSE
  "CMakeFiles/micro_mapping.dir/micro_mapping.cpp.o"
  "CMakeFiles/micro_mapping.dir/micro_mapping.cpp.o.d"
  "micro_mapping"
  "micro_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
