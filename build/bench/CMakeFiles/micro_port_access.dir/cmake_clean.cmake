file(REMOVE_RECURSE
  "CMakeFiles/micro_port_access.dir/micro_port_access.cpp.o"
  "CMakeFiles/micro_port_access.dir/micro_port_access.cpp.o.d"
  "micro_port_access"
  "micro_port_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_port_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
