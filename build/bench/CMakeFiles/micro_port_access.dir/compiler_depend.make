# Empty compiler generated dependencies file for micro_port_access.
# This may be replaced when dependencies are built.
