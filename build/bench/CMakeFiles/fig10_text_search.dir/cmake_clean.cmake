file(REMOVE_RECURSE
  "CMakeFiles/fig10_text_search.dir/fig10_text_search.cpp.o"
  "CMakeFiles/fig10_text_search.dir/fig10_text_search.cpp.o.d"
  "fig10_text_search"
  "fig10_text_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_text_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
