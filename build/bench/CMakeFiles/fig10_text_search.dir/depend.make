# Empty dependencies file for fig10_text_search.
# This may be replaced when dependencies are built.
