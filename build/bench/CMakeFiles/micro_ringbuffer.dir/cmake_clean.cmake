file(REMOVE_RECURSE
  "CMakeFiles/micro_ringbuffer.dir/micro_ringbuffer.cpp.o"
  "CMakeFiles/micro_ringbuffer.dir/micro_ringbuffer.cpp.o.d"
  "micro_ringbuffer"
  "micro_ringbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ringbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
