# Empty dependencies file for micro_ringbuffer.
# This may be replaced when dependencies are built.
