file(REMOVE_RECURSE
  "CMakeFiles/ab_resize.dir/ab_resize.cpp.o"
  "CMakeFiles/ab_resize.dir/ab_resize.cpp.o.d"
  "ab_resize"
  "ab_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
