# Empty compiler generated dependencies file for ab_resize.
# This may be replaced when dependencies are built.
