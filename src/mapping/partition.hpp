/**
 * partition.hpp — kernel-to-resource mapping (§4.1).
 *
 * "The initial mapping algorithm provided with RaftLib is a simple one
 * (similar to a spanning tree) that attempts to place the fewest number of
 * 'streams' over high latency connections (i.e., across physical compute
 * cores or TCP links). It begins with a priority queue with the highest
 * latency link getting the highest priority, finds the partition with the
 * minimal number of links crossing it then proceeds to partition based on
 * the next highest latency link for these two partitions. If no difference
 * in latency exists (which can be the case if only a single socket core is
 * used) then computation is shared evenly amongst the cores. No claim is
 * made to optimality for this simple algorithm, however it is fast."
 *
 * Implementation: recursive bisection over the machine's latency hierarchy
 * (node boundary → socket boundary → core boundary). At each level the
 * kernel set is seeded in BFS order (pipelines stay contiguous) into parts
 * proportional to resource capacity, then improved with a greedy
 * Kernighan–Lin-style pass that moves single kernels while the crossing
 * count drops.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.hpp"
#include "mapping/machine.hpp"

namespace raft::mapping {

/** Map every kernel of `topo` to a core of `machine`. */
assignment partition( const topology &topo, const machine_desc &machine );

/** Streams whose endpoints land on different values of `group_of_core`
 *  (e.g., socket ids) — the quantity the partitioner minimizes. */
std::size_t crossing_count( const topology &topo,
                            const assignment &assign,
                            const machine_desc &machine,
                            const std::vector<unsigned> &group_of_core );

} /** end namespace raft::mapping **/
