#include "mapping/partition.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace raft::mapping {

namespace {

/** Undirected adjacency (kernel index -> neighbour indices, duplicates kept:
 *  parallel streams count once each toward the cut). */
std::vector<std::vector<std::size_t>>
adjacency( const topology &topo )
{
    std::vector<std::vector<std::size_t>> adj( topo.kernels().size() );
    for( const auto &e : topo.edges() )
    {
        const auto a = topo.index_of( e.src );
        const auto b = topo.index_of( e.dst );
        if( a == b )
        {
            continue;
        }
        adj[ a ].push_back( b );
        adj[ b ].push_back( a );
    }
    return adj;
}

/** BFS order over `members` (indices into the kernel list), seeded from the
 *  lowest-index member of each connected component — keeps pipeline chains
 *  contiguous so a prefix/suffix split crosses few streams. */
std::vector<std::size_t>
bfs_order( const std::vector<std::size_t> &members,
           const std::vector<std::vector<std::size_t>> &adj )
{
    std::vector<bool> in_set( adj.size(), false );
    for( const auto m : members )
    {
        in_set[ m ] = true;
    }
    std::vector<bool> seen( adj.size(), false );
    std::vector<std::size_t> order;
    order.reserve( members.size() );
    for( const auto seed : members )
    {
        if( seen[ seed ] )
        {
            continue;
        }
        std::deque<std::size_t> q{ seed };
        seen[ seed ] = true;
        while( !q.empty() )
        {
            const auto v = q.front();
            q.pop_front();
            order.push_back( v );
            for( const auto w : adj[ v ] )
            {
                if( in_set[ w ] && !seen[ w ] )
                {
                    seen[ w ] = true;
                    q.push_back( w );
                }
            }
        }
    }
    return order;
}

/**
 * Bisect `members` into (A, B) with |A| = size_a, minimizing streams across
 * the cut: BFS-prefix seed + greedy single-move improvement that preserves
 * the size split exactly (pairwise swaps).
 */
void bisect( const std::vector<std::size_t> &members,
             const std::vector<std::vector<std::size_t>> &adj,
             const std::size_t size_a,
             std::vector<std::size_t> &part_a,
             std::vector<std::size_t> &part_b )
{
    const auto order = bfs_order( members, adj );
    std::vector<bool> in_a( adj.size(), false );
    for( std::size_t i = 0; i < order.size(); ++i )
    {
        if( i < size_a )
        {
            in_a[ order[ i ] ] = true;
        }
    }

    /** greedy swap pass: exchange the best (a, b) pair while the cut drops */
    std::vector<bool> in_set( adj.size(), false );
    for( const auto m : members )
    {
        in_set[ m ] = true;
    }
    auto gain_of_flip = [ & ]( const std::size_t v ) {
        /** cut decrease if v switches sides: cross-neighbours minus
         *  same-side neighbours (within the member set) */
        long g = 0;
        for( const auto w : adj[ v ] )
        {
            if( !in_set[ w ] )
            {
                continue;
            }
            g += ( in_a[ v ] != in_a[ w ] ) ? 1 : -1;
        }
        return g;
    };
    for( std::size_t pass = 0; pass < members.size(); ++pass )
    {
        long best_gain   = 0;
        std::size_t best_a = 0, best_b = 0;
        bool found = false;
        for( const auto v : members )
        {
            if( !in_a[ v ] )
            {
                continue;
            }
            for( const auto w : members )
            {
                if( in_a[ w ] )
                {
                    continue;
                }
                long g = gain_of_flip( v ) + gain_of_flip( w );
                /** if v and w are adjacent the shared stream was counted
                 *  as +1 in both flips but stays crossing after a swap */
                for( const auto x : adj[ v ] )
                {
                    if( x == w )
                    {
                        g -= 2;
                    }
                }
                if( g > best_gain )
                {
                    best_gain = g;
                    best_a    = v;
                    best_b    = w;
                    found     = true;
                }
            }
        }
        if( !found )
        {
            break;
        }
        in_a[ best_a ] = false;
        in_a[ best_b ] = true;
    }

    for( const auto m : members )
    {
        ( in_a[ m ] ? part_a : part_b ).push_back( m );
    }
}

/** Group cores of the machine by a projection (node / socket / id). */
template <class Proj>
std::vector<std::vector<unsigned>>
group_cores( const std::vector<unsigned> &core_ids,
             const machine_desc &machine,
             Proj proj )
{
    std::vector<std::vector<unsigned>> groups;
    std::vector<unsigned> keys;
    for( const auto id : core_ids )
    {
        const auto key = proj( machine.cores[ id ] );
        auto it        = std::find( keys.begin(), keys.end(), key );
        if( it == keys.end() )
        {
            keys.push_back( key );
            groups.emplace_back();
            it = keys.end() - 1;
        }
        groups[ static_cast<std::size_t>( it - keys.begin() ) ].push_back(
            id );
    }
    return groups;
}

/**
 * Recursive step: assign `members` across `core_ids`, splitting along the
 * highest remaining latency boundary first (level 0 = node, 1 = socket,
 * 2 = core). When a group level has a single group, descend a level; when
 * cores run out of structure, share kernels evenly (round-robin over the
 * BFS order — "computation is shared evenly amongst the cores").
 */
void assign_recursive( const std::vector<std::size_t> &members,
                       const std::vector<unsigned> &core_ids,
                       const int level,
                       const topology &topo,
                       const machine_desc &machine,
                       const std::vector<std::vector<std::size_t>> &adj,
                       assignment &out )
{
    if( members.empty() )
    {
        return;
    }
    if( core_ids.size() == 1 || level > 2 )
    {
        for( const auto m : members )
        {
            out.core_of[ m ] = core_ids.front();
        }
        return;
    }

    std::vector<std::vector<unsigned>> groups;
    switch( level )
    {
        case 0:
            groups = group_cores( core_ids, machine,
                                  []( const core_desc &c ) { return c.node; } );
            break;
        case 1:
            groups = group_cores( core_ids, machine,
                                  []( const core_desc &c ) { return c.socket; } );
            break;
        default:
            groups = group_cores( core_ids, machine,
                                  []( const core_desc &c ) { return c.id; } );
            break;
    }

    if( groups.size() <= 1 )
    {
        assign_recursive( members, core_ids, level + 1, topo, machine, adj,
                          out );
        return;
    }

    /** repeatedly bisect: first group vs the rest, proportional to size **/
    std::vector<std::size_t> remaining = members;
    std::vector<unsigned> remaining_cores = core_ids;
    for( std::size_t g = 0; g + 1 < groups.size(); ++g )
    {
        const auto group_cores_n = groups[ g ].size();
        const auto total_cores   = remaining_cores.size();
        const auto want = std::max<std::size_t>(
            1, remaining.size() * group_cores_n / total_cores );
        std::vector<std::size_t> part_a, part_b;
        bisect( remaining, adj, std::min( want, remaining.size() ),
                part_a, part_b );
        assign_recursive( part_a, groups[ g ], level + 1, topo, machine,
                          adj, out );
        remaining = std::move( part_b );
        std::vector<unsigned> rest;
        for( const auto id : remaining_cores )
        {
            if( std::find( groups[ g ].begin(), groups[ g ].end(), id ) ==
                groups[ g ].end() )
            {
                rest.push_back( id );
            }
        }
        remaining_cores = std::move( rest );
    }
    assign_recursive( remaining, groups.back(), level + 1, topo, machine,
                      adj, out );
}

} /** end anonymous namespace **/

assignment partition( const topology &topo, const machine_desc &machine )
{
    const auto n = topo.kernels().size();
    assignment out;
    out.core_of.assign( n, 0 );
    if( machine.cores.empty() || n == 0 )
    {
        return out;
    }
    const auto adj = adjacency( topo );
    std::vector<std::size_t> all( n );
    std::iota( all.begin(), all.end(), std::size_t{ 0 } );
    std::vector<unsigned> ids;
    for( const auto &c : machine.cores )
    {
        ids.push_back( c.id );
    }
    /**
     * Even sharing when kernels outnumber structure: assign_recursive
     * bottoms out per-core; with more kernels than cores each core hosts a
     * contiguous BFS run.
     */
    assign_recursive( all, ids, 0, topo, machine, adj, out );
    return out;
}

std::size_t crossing_count( const topology &topo,
                            const assignment &assign,
                            const machine_desc &machine,
                            const std::vector<unsigned> &group_of_core )
{
    (void) machine;
    std::size_t cut = 0;
    for( const auto &e : topo.edges() )
    {
        const auto a = topo.index_of( e.src );
        const auto b = topo.index_of( e.dst );
        if( a == b )
        {
            continue;
        }
        if( group_of_core[ assign.core_of[ a ] ] !=
            group_of_core[ assign.core_of[ b ] ] )
        {
            ++cut;
        }
    }
    return cut;
}

} /** end namespace raft::mapping **/
