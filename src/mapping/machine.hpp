/**
 * machine.hpp — model of the compute platform the mapper targets.
 *
 * The paper's mapping problem (§4.1) assigns kernels to compute resources
 * so the fewest streams cross high-latency connections ("across physical
 * compute cores or TCP links"). This model captures exactly the structure
 * that algorithm consumes: a set of cores grouped into sockets grouped into
 * nodes, with a latency class per boundary.
 */
#pragma once

#include <cstddef>
#include <thread>
#include <vector>

namespace raft::mapping {

struct core_desc
{
    unsigned id{ 0 };
    unsigned socket{ 0 };
    unsigned node{ 0 };
};

struct machine_desc
{
    std::vector<core_desc> cores;

    /** Communication latency classes (ns), ordered low→high. */
    double intra_core_latency_ns{ 15.0 };    /**< same core (SMT/queue)   */
    double intra_socket_latency_ns{ 45.0 };  /**< core-to-core, one die   */
    double inter_socket_latency_ns{ 130.0 }; /**< QPI/UPI hop             */
    double tcp_latency_ns{ 25'000.0 };       /**< loopback/near TCP link  */

    /** Latency class between two cores of this machine. */
    double link_latency( const core_desc &a, const core_desc &b ) const
    {
        if( a.node != b.node )
        {
            return tcp_latency_ns;
        }
        if( a.socket != b.socket )
        {
            return inter_socket_latency_ns;
        }
        if( a.id != b.id )
        {
            return intra_socket_latency_ns;
        }
        return intra_core_latency_ns;
    }

    std::size_t core_count() const noexcept { return cores.size(); }

    /** The machine we are actually running on: hardware_concurrency cores,
     *  one socket, one node. */
    static machine_desc detect()
    {
        const auto n = std::max( 1u, std::thread::hardware_concurrency() );
        return synthetic( 1, 1, n );
    }

    /** Synthetic topology for mapper studies and the DES (e.g., the paper's
     *  Table 1 machine: synthetic(1, 2, 8)). */
    static machine_desc synthetic( const unsigned nodes,
                                   const unsigned sockets_per_node,
                                   const unsigned cores_per_socket )
    {
        machine_desc m;
        unsigned id = 0;
        for( unsigned n = 0; n < nodes; ++n )
        {
            for( unsigned s = 0; s < sockets_per_node; ++s )
            {
                for( unsigned c = 0; c < cores_per_socket; ++c )
                {
                    m.cores.push_back(
                        core_desc{ id++, n * sockets_per_node + s, n } );
                }
            }
        }
        return m;
    }
};

/** Result of mapping: kernel index (in topology order) → core id. */
struct assignment
{
    std::vector<unsigned> core_of;
};

} /** end namespace raft::mapping **/
