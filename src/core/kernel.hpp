/**
 * kernel.hpp — raft::kernel, the unit of computation.
 *
 * "A new compute kernel is defined by extending raft::kernel" (§4.2,
 * Figure 2): declare ports in the constructor, implement run() — the
 * kernel's "main" function, called repeatedly by the scheduler. Kernels are
 * sequential; the runtime supplies the parallelism.
 *
 * Kernels that can safely process streams out of order additionally
 * implement clone() (returning a fresh instance with identical
 * configuration); the runtime may then replicate them behind split/reduce
 * adapters when their links are marked raft::out (§4.1).
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <utility>

#include "core/defs.hpp"
#include "core/kstatus.hpp"
#include "core/port.hpp"
#include "core/restart.hpp"
#include "core/signal.hpp"

namespace raft {

namespace telemetry {
struct kernel_probe;
} /** end namespace telemetry **/

class kernel
{
public:
    kernel();
    virtual ~kernel() = default;

    kernel( const kernel & )            = delete;
    kernel &operator=( const kernel & ) = delete;

    /**
     * One scheduling quantum of work. Return raft::proceed to be scheduled
     * again, raft::stop when finished (sources). Blocking on a drained
     * input throws closed_port_exception, which the scheduler treats as
     * completion — kernels need no explicit end-of-stream logic.
     *
     * Contract for the cooperative pool scheduler: one invocation should
     * consume at most one element per input port and produce at most one
     * per output port (all standard kernels obey this; the default
     * thread-per-kernel scheduler imposes no such limit).
     */
    virtual kstatus run() = 0;

    /** @name replication (automatic parallelization, §4.1) */
    ///@{
    virtual bool clone_supported() const { return false; }
    /** Fresh kernel equivalent to this one; nullptr if not clonable. */
    virtual kernel *clone() const { return nullptr; }
    ///@}

    /** @name supervised execution (fault tolerance)
     * Effective only when run_options::supervision.enabled; otherwise any
     * run() exception is terminal, exactly as before.
     */
    ///@{
    /** Per-kernel restart policy; kernels without an explicit policy use
     *  supervision_options::default_restart. */
    void set_restart_policy( const restart_policy &p ) noexcept
    {
        restart_    = p;
        has_restart_ = true;
    }
    /** The explicit policy, or nullptr when none was set. */
    const restart_policy *restart() const noexcept
    {
        return has_restart_ ? &restart_ : nullptr;
    }
    /** Hook invoked (on the kernel's scheduler thread) right before a
     *  supervised restart re-enters run(): reset any internal state a
     *  half-finished invocation may have left behind. Ports are still
     *  bound and their streams still live. */
    virtual void on_restart() {}
    ///@}

    /**
     * Pool-scheduler readiness hint: true when one run() invocation can
     * make progress without indefinite blocking. Default: every input port
     * has at least one element (or is drained, so run() terminates
     * immediately) and every output port has space.
     */
    virtual bool ready() const;

    /** @name static-analysis hints (src/analysis/, raft::analyze)
     * Whole-graph properties the linter cannot derive from the code are
     * declared here. Defaults are the permissive common case; override to
     * opt in to the stricter checks.
     */
    ///@{
    /** Replication behind split/reduce adapters delivers elements to the
     *  replicas out of order. A kernel whose output depends on input
     *  arrival order (running aggregates, deduplication, sequence
     *  numbering) should return true so raft::analyze can flag it when a
     *  raft::out link would place it inside a replica lane. */
    virtual bool order_sensitive() const { return false; }
    /** True when the kernel is safe to restart in place: it either holds
     *  no cross-invocation state or overrides on_restart() to reset it.
     *  raft::analyze warns when a restart policy is attached to a kernel
     *  that does not declare this. */
    virtual bool restart_safe() const { return false; }
    ///@}

    /** @name ports */
    ///@{
    port_container input{ port_dir::in };
    port_container output{ port_dir::out };
    ///@}

    /** @name identity & runtime wiring */
    ///@{
    std::size_t get_id() const noexcept { return id_; }

    /** Diagnostic name: explicit hint or the demangled dynamic type. */
    std::string name() const;
    void set_name( std::string n ) { name_hint_ = std::move( n ); }

    /** Asynchronous signal bus of the running application (may be null
     *  outside exe()); see signal.hpp. */
    async_signal_bus *bus() const noexcept { return bus_; }
    void set_bus( async_signal_bus *b ) noexcept { bus_ = b; }

    /** Telemetry probe attached by the active telemetry session (null
     *  when telemetry is off — schedulers branch on the raw pointer, so
     *  the disabled path is a single load). */
    telemetry::kernel_probe *probe() const noexcept { return probe_; }
    void set_probe( telemetry::kernel_probe *p ) noexcept { probe_ = p; }
    ///@}

    /**
     * Factory used throughout the paper's examples:
     * `kernel::make< sum< a,b,c > >()`. Kernels created this way are
     * adopted (and eventually deleted) by the map they are linked into.
     */
    template <class K, class... Args> static K *make( Args &&...args )
    {
        auto *k = new K( std::forward<Args>( args )... );
        static_cast<kernel *>( k )->internal_alloc_ = true;
        return k;
    }

    bool internally_allocated() const noexcept { return internal_alloc_; }

private:
    std::size_t id_;
    std::string name_hint_;
    bool internal_alloc_{ false };
    async_signal_bus *bus_{ nullptr };
    telemetry::kernel_probe *probe_{ nullptr };
    restart_policy restart_{};
    bool has_restart_{ false };
};

/** Returned by map::link (Figure 3): references to the two kernels joined
 *  by the call, "so that they may be referenced in subsequent link calls." */
struct kernel_pair
{
    kernel &src;
    kernel &dst;
};

} /** end namespace raft **/
