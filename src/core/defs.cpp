#include "core/defs.hpp"

#include <cstdlib>
#include <memory>

#if defined( __GNUG__ )
#include <cxxabi.h>
#endif

namespace raft::detail {

std::string demangle( const std::type_info &ti )
{
#if defined( __GNUG__ )
    int status = 0;
    std::unique_ptr<char, void ( * )( void * )> demangled(
        abi::__cxa_demangle( ti.name(), nullptr, nullptr, &status ),
        std::free );
    if( status == 0 && demangled )
    {
        return std::string( demangled.get() );
    }
#endif
    return std::string( ti.name() );
}

} /** end namespace raft::detail **/
