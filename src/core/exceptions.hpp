/**
 * exceptions.hpp — exception hierarchy for the RaftLib reproduction.
 *
 * All library errors derive from raft::raft_exception. The scheduler uses
 * closed_port_exception as the normal end-of-stream control path for a
 * kernel blocking on a drained upstream (see scheduler.hpp).
 */
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace raft {

/** Base class of every exception thrown by the library. */
class raft_exception : public std::runtime_error
{
public:
    explicit raft_exception( const std::string &what )
        : std::runtime_error( what )
    {
    }
};

/** Read attempted on a stream whose writer closed and whose queue drained. */
class closed_port_exception : public raft_exception
{
public:
    explicit closed_port_exception( const std::string &what )
        : raft_exception( what )
    {
    }
};

/** Port accessed with a C++ type different from its declared type. */
class type_mismatch_exception : public raft_exception
{
public:
    explicit type_mismatch_exception( const std::string &what )
        : raft_exception( what )
    {
    }
};

/** Two linked ports carry incompatible (non-convertible) types. */
class link_type_exception : public raft_exception
{
public:
    explicit link_type_exception( const std::string &what )
        : raft_exception( what )
    {
    }
};

/** Port name not found, added twice, or linked twice. */
class port_exception : public raft_exception
{
public:
    explicit port_exception( const std::string &what )
        : raft_exception( what )
    {
    }
};

/** Topology invalid: unlinked ports, empty map, disconnected graph. */
class graph_exception : public raft_exception
{
public:
    explicit graph_exception( const std::string &what )
        : raft_exception( what )
    {
    }
};

/**
 * A reader demanded more items than the stream can ever hold and dynamic
 * resizing is disabled, so the program cannot continue (§4: "If a kernel
 * asks to receive five items and the buffer size is only allocated for two,
 * the program cannot continue" — with the monitor enabled the queue is
 * resized instead of throwing).
 */
class demand_exceeds_capacity_exception : public raft_exception
{
public:
    explicit demand_exceeds_capacity_exception( const std::string &what )
        : raft_exception( what )
    {
    }
};

/** Network substrate ("oar") failures: socket setup, peer loss, etc. */
class net_exception : public raft_exception
{
public:
    explicit net_exception( const std::string &what )
        : raft_exception( what )
    {
    }
};

/**
 * Blocking stream operation woken by graph-wide cancellation: some kernel
 * failed terminally (or the watchdog declared the graph stalled) and the
 * runtime poisoned every stream. Distinct from closed_port_exception —
 * end-of-stream means the data completed; an abort means it did not. The
 * scheduler treats it as cancellation, not as a new failure.
 */
class stream_aborted_exception : public raft_exception
{
public:
    explicit stream_aborted_exception( const std::string &what )
        : raft_exception( what )
    {
    }
};

/**
 * Static analysis (raft::analyze, src/analysis/) found error-severity
 * diagnostics and run_options::analysis.fail_on_error is set: the graph is
 * structurally unsafe to run (unconnected ports, deadlock-prone cycles over
 * finite FIFOs, order-sensitive kernels inside replica lanes, ...). what()
 * aggregates every error diagnostic. Derives from graph_exception so code
 * catching topology errors keeps working.
 */
class analysis_error : public graph_exception
{
public:
    explicit analysis_error( const std::string &what )
        : graph_exception( what )
    {
    }
};

/** One kernel's terminal failure, as aggregated into a graph_error. */
struct failure_info
{
    std::string kernel_name;
    std::string message;
};

/**
 * Structured failure of a whole run: every kernel that failed terminally
 * (its restart policy exhausted or absent), plus watchdog stalls, collected
 * by the scheduler after graph-wide cancellation. what() names them all —
 * no failure is silently dropped in favour of the first.
 */
class graph_error : public raft_exception
{
public:
    explicit graph_error( std::vector<failure_info> failures )
        : raft_exception( format( failures ) ),
          failures_( std::move( failures ) )
    {
    }

    const std::vector<failure_info> &failures() const noexcept
    {
        return failures_;
    }

private:
    static std::string format( const std::vector<failure_info> &fails )
    {
        std::string out = "graph failed (" +
                          std::to_string( fails.size() ) +
                          " kernel failure" +
                          ( fails.size() == 1 ? "" : "s" ) + ")";
        for( const auto &f : fails )
        {
            out += "\n  - " + f.kernel_name + ": " + f.message;
        }
        return out;
    }

    std::vector<failure_info> failures_;
};

} /** end namespace raft **/
