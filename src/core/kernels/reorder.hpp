/**
 * reorder.hpp — re-establish stream order after out-of-order processing.
 *
 * §4.1: "Some applications require data to be processed in order, others
 * are okay with data that is processed out of order, yet others can process
 * the data out of order and re-order at some later time. RaftLib
 * accommodates all of the above paradigms."
 *
 * The third paradigm: tag elements with a sequence number before the
 * parallel region (seq_tag), let replicas process them in any order, then
 * restore order afterwards (reorder) — emitting elements strictly by
 * sequence number.
 */
#pragma once

#include <cstdint>
#include <map>

#include "core/kernel.hpp"

namespace raft {

/** An element paired with its position in the original stream. */
template <class T> struct seq_item
{
    std::uint64_t seq{ 0 };
    T value{};
};

/** Wrap a T stream into a seq_item<T> stream (monotonic sequence). */
template <class T> class seq_tag : public kernel
{
public:
    seq_tag() : kernel()
    {
        input.addPort<T>( "0" );
        output.addPort<seq_item<T>>( "0" );
    }

    kstatus run() override
    {
        auto in  = input[ "0" ].template pop_s<T>();
        auto out = output[ "0" ].template allocate_s<seq_item<T>>();
        out->seq   = next_++;
        out->value = *in;
        return raft::proceed;
    }

private:
    std::uint64_t next_{ 0 };
};

/**
 * Buffer out-of-order seq_item<T> arrivals and emit values in sequence
 * order. Elements arrive from any number of replicas (after a reduce
 * adapter); holes are awaited in a bounded map.
 */
template <class T> class reorder : public kernel
{
public:
    reorder() : kernel()
    {
        input.addPort<seq_item<T>>( "0" );
        output.addPort<T>( "0" );
    }

    kstatus run() override
    {
        try
        {
            auto in = input[ "0" ].template pop_s<seq_item<T>>();
            pending_.emplace( in->seq, in->value );
        }
        catch( const closed_port_exception & )
        {
            /** upstream done: flush whatever is buffered, in order **/
            for( auto &kv : pending_ )
            {
                output[ "0" ].push<T>( std::move( kv.second ) );
            }
            pending_.clear();
            throw;
        }
        while( !pending_.empty() &&
               pending_.begin()->first == expected_ )
        {
            output[ "0" ].push<T>(
                std::move( pending_.begin()->second ) );
            pending_.erase( pending_.begin() );
            ++expected_;
        }
        return raft::proceed;
    }

    std::size_t pending_count() const noexcept { return pending_.size(); }

private:
    std::uint64_t expected_{ 0 };
    std::map<std::uint64_t, T> pending_;
};

} /** end namespace raft **/
