/**
 * reduce.hpp — terminal fold kernel (Figure 6: `reduce< int, func >( val )`;
 * "a reduction to a single output value is possible", §4.2). Folds every
 * element of the input stream into a caller-owned accumulator with a
 * user-supplied binary function; the result is complete when exe() returns.
 *
 * Also provided: range_reduce, the same fold over zero-copy range<T>
 * descriptors produced by for_each.
 */
#pragma once

#include <functional>

#include "core/kernel.hpp"
#include "core/kernels/segment.hpp"

namespace raft {

template <class T, class F = std::plus<T>> class reduce : public kernel
{
public:
    explicit reduce( T &result, F fn = F{} )
        : kernel(), result_( &result ), fn_( std::move( fn ) )
    {
        input.addPort<T>( "0" );
    }

    kstatus run() override
    {
        auto v    = input[ "0" ].pop_s<T>();
        *result_  = fn_( *result_, *v );
        return raft::proceed;
    }

private:
    T *result_;
    F fn_;
};

/** Fold over zero-copy segments: applies fn to every element of every
 *  incoming range<T> without the elements ever entering a queue. */
template <class T, class F = std::plus<T>>
class range_reduce : public kernel
{
public:
    explicit range_reduce( T &result, F fn = F{} )
        : kernel(), result_( &result ), fn_( std::move( fn ) )
    {
        input.addPort<range<T>>( "0" );
    }

    kstatus run() override
    {
        auto seg = input[ "0" ].template pop_s<range<T>>();
        for( std::size_t i = 0; i < seg->len; ++i )
        {
            *result_ = fn_( *result_, seg->data[ i ] );
        }
        return raft::proceed;
    }

private:
    T *result_;
    F fn_;
};

} /** end namespace raft **/
