/**
 * filereader.hpp — corpus source for the string-matching application
 * (Figure 8/9). Reads a file (or adopts an in-memory corpus) once, then
 * emits zero-copy mem_range descriptors: "the file read exists as an
 * independent kernel only momentarily as a notional data source since the
 * run-time utilizes zero copy, and the file is directly read into the
 * in-bound queues of each match kernel" (§5).
 *
 * Segments carry `overlap` bytes past their body so matches straddling a
 * boundary are found exactly once (see segment.hpp).
 */
#pragma once

#include <fstream>
#include <memory>
#include <string>

#include "core/exceptions.hpp"
#include "core/kernel.hpp"
#include "core/kernels/segment.hpp"

namespace raft {

class filereader : public kernel
{
public:
    static constexpr std::size_t default_segment = 1u << 16; /** 64 KiB **/

    /** Read from a file path. `overlap` should be max_pattern_len - 1. */
    filereader( const std::string &path, const std::size_t overlap,
                const std::size_t segment_bytes = default_segment )
        : filereader( load( path ), overlap, segment_bytes )
    {
    }

    /** Adopt an already-resident corpus (shared, immutable). */
    filereader( std::shared_ptr<const std::string> corpus,
                const std::size_t overlap,
                const std::size_t segment_bytes = default_segment )
        : kernel(), corpus_( std::move( corpus ) ), overlap_( overlap ),
          segment_( segment_bytes == 0 ? 1 : segment_bytes )
    {
        output.addPort<mem_range>( "0" );
    }

    /** Descriptors emitted per run(): one write-window handshake publishes
     *  a whole batch of segments. */
    static constexpr std::size_t batch = 64;

    kstatus run() override
    {
        const auto total = corpus_->size();
        if( cursor_ >= total )
        {
            return raft::stop;
        }
        auto w = output[ "0" ].allocate_range<mem_range>( batch );
        std::size_t i = 0;
        while( i < w.size() && cursor_ < total )
        {
            const auto body = std::min( segment_, total - cursor_ );
            const auto len  = std::min( body + overlap_, total - cursor_ );
            auto &d         = w[ i++ ];
            d.data          = corpus_->data() + cursor_;
            d.len           = len;
            d.body_len      = body;
            d.offset        = cursor_;
            cursor_ += body;
        }
        w.publish( i );
        if( cursor_ >= total )
        {
            w.set_signal( raft::eos );
            return raft::stop;
        }
        return raft::proceed;
    }

    std::size_t total_bytes() const noexcept { return corpus_->size(); }

private:
    static std::shared_ptr<const std::string>
    load( const std::string &path )
    {
        std::ifstream in( path, std::ios::binary );
        if( !in )
        {
            throw raft_exception( "filereader: cannot open '" + path +
                                  "'" );
        }
        auto buf = std::make_shared<std::string>(
            std::istreambuf_iterator<char>( in ),
            std::istreambuf_iterator<char>() );
        return buf;
    }

    std::shared_ptr<const std::string> corpus_;
    std::size_t overlap_;
    std::size_t segment_;
    std::size_t cursor_{ 0 };
};

} /** end namespace raft **/
