/**
 * read_each.hpp — stream the contents of any C++ iterator range into the
 * graph (Figure 5: "syntax for reading and writing to C++ standard library
 * containers from raft::kernel objects"). The iterator pair is type-erased
 * so one kernel type serves every container.
 */
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/kernel.hpp"

namespace raft {

template <class T> class read_each : public kernel
{
public:
    template <class It>
    read_each( It begin, It end ) : kernel()
    {
        output.addPort<T>( "0" );
        auto cursor = std::make_shared<It>( begin );
        auto last   = std::make_shared<It>( end );
        next_       = [ cursor, last ]() -> std::optional<T> {
            if( *cursor == *last )
            {
                return std::nullopt;
            }
            T v = **cursor;
            ++( *cursor );
            return v;
        };
    }

    kstatus run() override
    {
        auto v = next_();
        if( !v.has_value() )
        {
            return raft::stop;
        }
        output[ "0" ].push<T>( std::move( *v ) );
        return raft::proceed;
    }

private:
    std::function<std::optional<T>()> next_;
};

} /** end namespace raft **/
