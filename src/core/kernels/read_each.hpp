/**
 * read_each.hpp — stream the contents of any C++ iterator range into the
 * graph (Figure 5: "syntax for reading and writing to C++ standard library
 * containers from raft::kernel objects"). The iterator pair is type-erased
 * so one kernel type serves every container.
 */
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <type_traits>

#include "core/kernel.hpp"

namespace raft {

template <class T> class read_each : public kernel
{
public:
    /** Elements claimed per run(): one write-window handshake feeds a whole
     *  batch downstream instead of paying per-element synchronization. */
    static constexpr std::size_t batch = 64;

    template <class It>
    read_each( It begin, It end ) : kernel()
    {
        output.addPort<T>( "0" );
        auto cursor = std::make_shared<It>( begin );
        auto last   = std::make_shared<It>( end );
        next_       = [ cursor, last ]() -> std::optional<T> {
            if( *cursor == *last )
            {
                return std::nullopt;
            }
            T v = **cursor;
            ++( *cursor );
            return v;
        };
    }

    kstatus run() override
    {
        if constexpr( std::is_default_constructible_v<T> &&
                      std::is_move_assignable_v<T> )
        {
            auto w        = output[ "0" ].template allocate_range<T>( batch );
            std::size_t i = 0;
            bool more     = true;
            while( i < w.size() )
            {
                auto v = next_();
                if( !v.has_value() )
                {
                    more = false;
                    break;
                }
                w[ i++ ] = std::move( *v );
            }
            w.publish( i );
            if( more )
            {
                return raft::proceed;
            }
            if( i > 0 )
            {
                w.set_signal( raft::eos );
            }
            return raft::stop;
        }
        else
        {
            /** window slots need default construction + move assignment;
             *  fall back to element-at-a-time for exotic types **/
            auto v = next_();
            if( !v.has_value() )
            {
                return raft::stop;
            }
            output[ "0" ].push<T>( std::move( *v ) );
            return raft::proceed;
        }
    }

private:
    std::function<std::optional<T>()> next_;
};

} /** end namespace raft **/
