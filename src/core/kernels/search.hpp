/**
 * search.hpp — string-matching compute kernel (Figure 9):
 *
 *   kernel::make< search< ahocorasick > >( search_term )
 *
 * "The exact algorithm is chosen by specifying the desired algorithm as a
 * template parameter to select the correct template specialization." The
 * kernel is clonable, so linking it with raft::out lets the runtime
 * replicate it into the Figure 8 topology (read/distribute → n × match →
 * reduce). It also illustrates the paper's synonymous-kernel idea: every
 * specialization exposes the same ports, so algorithms are swappable
 * without touching the topology.
 */
#pragma once

#include <memory>
#include <string>

#include "algo/strmatch.hpp"
#include "core/kernel.hpp"
#include "core/kernels/segment.hpp"

namespace raft {

/** A pattern occurrence: global byte offset + pattern index. */
struct match_t
{
    std::size_t offset{ 0 };
    std::uint32_t rule{ 0 };

    bool operator==( const match_t &o ) const noexcept
    {
        return offset == o.offset && rule == o.rule;
    }
    bool operator<( const match_t &o ) const noexcept
    {
        return offset < o.offset ||
               ( offset == o.offset && rule < o.rule );
    }
};

template <class Algo> class search : public kernel
{
public:
    explicit search( std::string pattern )
        : kernel(), pattern_( std::move( pattern ) ),
          matcher_( algo::make_matcher<Algo>( pattern_ ) )
    {
        input.addPort<mem_range>( "0" );
        output.addPort<match_t>( "0" );
    }

    kstatus run() override
    {
        auto seg = input[ "0" ].template pop_s<mem_range>();
        matcher_->find(
            seg->data, seg->len,
            [ & ]( const std::size_t pos, const std::uint32_t rule ) {
                /** overlap discipline: a match belongs to the segment in
                 *  whose body it starts **/
                if( pos < seg->body_len )
                {
                    output[ "0" ].push<match_t>(
                        match_t{ seg->offset + pos, rule } );
                }
            } );
        return raft::proceed;
    }

    bool clone_supported() const override { return true; }

    kernel *clone() const override
    {
        return new search<Algo>( pattern_ );
    }

    const algo::matcher &engine() const noexcept { return *matcher_; }

private:
    std::string pattern_;
    std::unique_ptr<algo::matcher> matcher_;
};

/** Tag aliases in raft:: so application code reads like the paper's. */
using ahocorasick        = algo::ahocorasick;
using boyermoore         = algo::boyermoore;
using boyermoorehorspool = algo::boyermoorehorspool;

} /** end namespace raft **/
