/**
 * generate.hpp — number-stream source (Figures 1 & 3: "two random number
 * generators are instantiated, each of which sends a stream of numbers").
 */
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <random>

#include "core/kernel.hpp"

namespace raft {

/**
 * Emits `count` values of T on output port "0" and stops. The default
 * generator is a uniform pseudo-random stream seeded per kernel instance;
 * pass a function (value index → T) for deterministic streams.
 */
template <class T> class generate : public kernel
{
public:
    using gen_fn = std::function<T( std::size_t )>;

    explicit generate( const std::size_t count )
        : generate( count, gen_fn{} )
    {
    }

    generate( const std::size_t count, gen_fn fn )
        : kernel(), count_( count ), fn_( std::move( fn ) )
    {
        output.addPort<T>( "0" );
        if( !fn_ )
        {
            std::mt19937_64 eng{ 0x9e3779b97f4a7c15ull ^ get_id() };
            auto engine = std::make_shared<std::mt19937_64>( eng );
            fn_ = [ engine ]( std::size_t ) {
                return static_cast<T>( ( *engine )() % 1'000'000 );
            };
        }
    }

    kstatus run() override
    {
        if( sent_ == count_ )
        {
            return raft::stop;
        }
        auto out = output[ "0" ].allocate_s<T>();
        ( *out ) = fn_( sent_ );
        if( ++sent_ == count_ )
        {
            out.set_signal( raft::eos );
            return raft::stop;
        }
        return raft::proceed;
    }

private:
    std::size_t count_;
    std::size_t sent_{ 0 };
    gen_fn fn_;
};

} /** end namespace raft **/
