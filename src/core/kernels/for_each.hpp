/**
 * for_each.hpp — zero-copy array source (Figure 6).
 *
 * "The for_each takes a pointer value and uses its memory space directly as
 * a queue for downstream compute kernels... essentially a zero copy...
 * Unlike the C++ standard library for_each, the RaftLib version provides an
 * index to indicate position within the array... When this kernel is
 * executed, it appears as a kernel only momentarily, essentially providing
 * a data source for the downstream compute kernels to read."
 *
 * The kernel emits raft::range<T> descriptors — pointer, length, start
 * index — dividing the array into segments; downstream kernels read the
 * user's memory in place. Descriptor granularity is configurable; with
 * automatic parallelization the split adapter deals descriptors (16 bytes
 * each) to replicas while the payload never moves.
 */
#pragma once

#include <cstddef>

#include "core/kernel.hpp"
#include "core/kernels/segment.hpp"

namespace raft {

template <class T> class for_each : public kernel
{
public:
    for_each( const T *data, const std::size_t length,
              const std::size_t segment_elems = 4096 )
        : kernel(), data_( data ), length_( length ),
          segment_( segment_elems == 0 ? 1 : segment_elems )
    {
        output.addPort<range<T>>( "0" );
    }

    /** Descriptors emitted per run(): one write-window handshake publishes
     *  a whole batch of segments. */
    static constexpr std::size_t batch = 64;

    kstatus run() override
    {
        if( cursor_ >= length_ )
        {
            return raft::stop;
        }
        auto w = output[ "0" ].template allocate_range<range<T>>( batch );
        std::size_t i = 0;
        while( i < w.size() && cursor_ < length_ )
        {
            const auto n  = std::min( segment_, length_ - cursor_ );
            auto &d       = w[ i++ ];
            d.data        = data_ + cursor_;
            d.len         = n;
            d.offset      = cursor_;
            cursor_ += n;
        }
        w.publish( i );
        if( cursor_ >= length_ )
        {
            w.set_signal( raft::eos );
            return raft::stop;
        }
        return raft::proceed;
    }

private:
    const T *data_;
    std::size_t length_;
    std::size_t segment_;
    std::size_t cursor_{ 0 };
};

} /** end namespace raft **/
