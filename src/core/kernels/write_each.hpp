/**
 * write_each.hpp — drain a stream into any C++ output iterator (Figure 5 /
 * Figure 9: `write_each< match_t >( std::back_inserter( total_hits ) )`).
 */
#pragma once

#include <functional>
#include <memory>

#include "core/kernel.hpp"

namespace raft {

template <class T> class write_each : public kernel
{
public:
    template <class OutIt>
    explicit write_each( OutIt out ) : kernel()
    {
        input.addPort<T>( "0" );
        auto cursor = std::make_shared<OutIt>( out );
        sink_       = [ cursor ]( T &&v ) {
            **cursor = std::move( v );
            ++( *cursor );
        };
    }

    /** Elements drained per run(): one read-window handshake consumes a
     *  whole batch instead of paying per-element synchronization. */
    static constexpr std::size_t batch = 64;

    kstatus run() override
    {
        auto w = input[ "0" ].template pop_s<T>( batch );
        for( std::size_t i = 0; i < w.size(); ++i )
        {
            sink_( std::move( w[ i ] ) );
        }
        return raft::proceed;
    }

private:
    std::function<void( T && )> sink_;
};

} /** end namespace raft **/
