/**
 * sum.hpp — the paper's running example, verbatim API (Figure 2): pop one
 * element from each of two typed input streams, add, push on the "sum"
 * output stream. Demonstrates the pop_s / allocate_s RAII accessors.
 */
#pragma once

#include "core/kernel.hpp"

namespace raft {

template <typename A, typename B, typename C> class sum : public kernel
{
public:
    sum() : kernel()
    {
        input.addPort<A>( "input_a" );
        input.addPort<B>( "input_b" );
        output.addPort<C>( "sum" );
    }

    virtual kstatus run()
    {
        auto a( input[ "input_a" ].pop_s<A>() );
        auto b( input[ "input_b" ].pop_s<B>() );
        auto c( output[ "sum" ].allocate_s<C>() );
        ( *c ) = static_cast<C>( ( *a ) + ( *b ) );
        return ( raft::proceed );
    }
};

} /** end namespace raft **/
