/**
 * functional.hpp — functional-style standard kernels.
 *
 * The paper positions RaftLib as "interfaces similar to those found in
 * the C++ standard library" (§6) so users compose pipelines the way they
 * compose algorithms. These kernels round out the library:
 *
 *  - transform<A,B> : per-element function application (std::transform)
 *  - filter<T>      : predicate selection (std::copy_if) — the
 *                     data-dependent-rate behaviour §3 discusses
 *  - tee<T>         : duplicate a stream to N consumers
 *  - merge<T>       : combine N streams into one (arrival order)
 *  - batch<T> / unbatch<T> : group elements into vectors and back,
 *                     amortizing per-element costs over coarse links
 *
 * transform and filter are clonable when constructed from copyable
 * callables, so raft::out links replicate them automatically.
 */
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "core/kernel.hpp"

namespace raft {

/** Apply fn to every element: one in ("0"), one out ("0"). */
template <class A, class B = A> class transform : public kernel
{
public:
    using fn_t = std::function<B( const A & )>;

    explicit transform( fn_t fn ) : kernel(), fn_( std::move( fn ) )
    {
        input.addPort<A>( "0" );
        output.addPort<B>( "0" );
    }

    kstatus run() override
    {
        auto v   = input[ "0" ].template pop_s<A>();
        auto out = output[ "0" ].template allocate_s<B>();
        ( *out ) = fn_( *v );
        return raft::proceed;
    }

    bool clone_supported() const override { return true; }
    kernel *clone() const override { return new transform( fn_ ); }

private:
    fn_t fn_;
};

/** Forward elements satisfying pred; drop the rest (§3's dynamic
 *  downstream volume). */
template <class T> class filter : public kernel
{
public:
    using pred_t = std::function<bool( const T & )>;

    explicit filter( pred_t pred )
        : kernel(), pred_( std::move( pred ) )
    {
        input.addPort<T>( "0" );
        output.addPort<T>( "0" );
    }

    kstatus run() override
    {
        auto v = input[ "0" ].template pop_s<T>();
        if( pred_( *v ) )
        {
            output[ "0" ].push<T>( *v );
        }
        return raft::proceed;
    }

    bool clone_supported() const override { return true; }
    kernel *clone() const override { return new filter( pred_ ); }

private:
    pred_t pred_;
};

/** Duplicate every element to `width` output streams ("0".."w-1"). */
template <class T> class tee : public kernel
{
public:
    explicit tee( const std::size_t width ) : kernel(), width_( width )
    {
        input.addPort<T>( "0" );
        for( std::size_t i = 0; i < width_; ++i )
        {
            output.addPort<T>( std::to_string( i ) );
        }
    }

    kstatus run() override
    {
        auto v = input[ "0" ].template pop_s<T>();
        for( std::size_t i = 0; i < width_; ++i )
        {
            output[ std::to_string( i ) ].push<T>( *v );
        }
        return raft::proceed;
    }

private:
    std::size_t width_;
};

/** Combine `width` input streams ("0".."w-1") into one, in arrival
 *  order; completes when every input drains. */
template <class T> class merge : public kernel
{
public:
    explicit merge( const std::size_t width )
        : kernel(), width_( width )
    {
        for( std::size_t i = 0; i < width_; ++i )
        {
            input.addPort<T>( std::to_string( i ) );
        }
        output.addPort<T>( "0" );
    }

    kstatus run() override
    {
        bool moved       = false;
        bool all_drained = true;
        for( std::size_t i = 0; i < width_; ++i )
        {
            auto &p = input[ std::to_string( i ) ];
            T v{};
            if( p.template typed<T>().try_pop( v ) )
            {
                output[ "0" ].push<T>( std::move( v ) );
                moved = true;
            }
            all_drained = all_drained && p.drained();
        }
        if( moved )
        {
            idle_.reset();
            return raft::proceed;
        }
        if( all_drained )
        {
            return raft::stop;
        }
        idle_.pause();
        return raft::proceed;
    }

    bool ready() const override
    {
        auto *self = const_cast<merge *>( this );
        for( std::size_t i = 0; i < width_; ++i )
        {
            const auto &p = self->input[ std::to_string( i ) ];
            if( p.size() > 0 || p.drained() )
            {
                return true;
            }
        }
        return false;
    }

private:
    std::size_t width_;
    detail::backoff idle_;
};

/** Group `size` consecutive elements into a std::vector<T>; the final
 *  partial group is flushed at end of stream. */
template <class T> class batch : public kernel
{
public:
    explicit batch( const std::size_t size )
        : kernel(), size_( size == 0 ? 1 : size )
    {
        input.addPort<T>( "0" );
        output.addPort<std::vector<T>>( "0" );
        pending_.reserve( size_ );
    }

    kstatus run() override
    {
        T v{};
        try
        {
            input[ "0" ].template pop<T>( v );
        }
        catch( const closed_port_exception & )
        {
            if( !pending_.empty() )
            {
                output[ "0" ].push<std::vector<T>>(
                    std::move( pending_ ) );
                pending_ = {};
            }
            throw;
        }
        pending_.push_back( std::move( v ) );
        if( pending_.size() >= size_ )
        {
            output[ "0" ].push<std::vector<T>>( std::move( pending_ ) );
            pending_ = {};
            pending_.reserve( size_ );
        }
        return raft::proceed;
    }

private:
    std::size_t size_;
    std::vector<T> pending_;
};

/** Flatten a std::vector<T> stream back into elements. */
template <class T> class unbatch : public kernel
{
public:
    unbatch() : kernel()
    {
        input.addPort<std::vector<T>>( "0" );
        output.addPort<T>( "0" );
    }

    kstatus run() override
    {
        auto group = input[ "0" ].template pop_s<std::vector<T>>();
        for( auto &v : *group )
        {
            output[ "0" ].push<T>( std::move( v ) );
        }
        return raft::proceed;
    }

private:
};

} /** end namespace raft **/
