/**
 * print.hpp — terminal sink kernel (Figures 1 & 3: "the last kernel prints
 * the result"). `print< std::int64_t, '\n' >` writes each element followed
 * by the delimiter. The output stream is injectable for testing.
 */
#pragma once

#include <iostream>
#include <ostream>

#include "core/kernel.hpp"

namespace raft {

template <class T, char delim = '\n'> class print : public kernel
{
public:
    print() : print( std::cout ) {}

    explicit print( std::ostream &os ) : kernel(), os_( &os )
    {
        input.addPort<T>( "0" );
    }

    kstatus run() override
    {
        auto in = input[ "0" ].pop_s<T>();
        ( *os_ ) << ( *in ) << delim;
        return raft::proceed;
    }

private:
    std::ostream *os_;
};

} /** end namespace raft **/
