/**
 * segment.hpp — zero-copy stream descriptors.
 *
 * Large inputs (a memory-resident file, a user array) do not travel through
 * the ring buffers element by element; instead lightweight descriptors
 * pointing into the shared immutable buffer do. This is how "the file is
 * directly read into the in-bound queues of each match kernel" (§5) and how
 * for_each "takes a pointer value and uses its memory space directly as a
 * queue for downstream compute kernels" (§4.2) without extraneous data
 * movement.
 */
#pragma once

#include <cstddef>

namespace raft {

/**
 * A window into a shared immutable byte buffer.
 *
 * `len` covers body + overlap: segments handed to string-search kernels
 * carry `overlap` extra bytes past the body so matches straddling a
 * segment boundary are found exactly once — a match is attributed to the
 * segment in whose body (first `body_len` bytes) it starts.
 */
struct mem_range
{
    const char *data{ nullptr };
    std::size_t len{ 0 };      /**< readable bytes at data              */
    std::size_t body_len{ 0 }; /**< bytes owned by this segment         */
    std::size_t offset{ 0 };   /**< global offset of data[0]            */
};

/** Typed variant for element arrays (for_each). */
template <class T> struct range
{
    const T *data{ nullptr };
    std::size_t len{ 0 };    /**< elements                              */
    std::size_t offset{ 0 }; /**< index of data[0] in the source array —
                                  "provides an index to indicate position
                                  within the array" (§4.2) */
};

} /** end namespace raft **/
