/**
 * synonym.hpp — synonymous kernel groupings (§4.2).
 *
 * "RaftLib gives the user the ability to specify synonymous kernel
 * groupings that the run-time can swap out to optimize the computation.
 * These can be kernels that are implemented for multiple hardware types,
 * or can be differing algorithms. For instance, a version of the UNIX
 * utility grep could be implemented with multiple search algorithms...
 * they can all be expressed as a 'search' kernel."
 *
 * §5 notes the benchmark disabled this ("RaftLib has the ability to
 * quickly swap out algorithms during execution") and then demonstrates
 * manually that swapping Aho–Corasick for Boyer–Moore–Horspool "improved
 * performance drastically". synonym_kernel automates exactly that swap.
 *
 * Mechanics: the group declares the (identical) port signature of its
 * alternatives and binds every alternative's ports to the same streams;
 * only the active alternative executes. An explore-then-commit policy
 * probes each alternative for a window of invocations, commits to the
 * fastest, and periodically re-probes so phase changes in the input
 * (§3's dynamic rates) can flip the choice.
 */
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/defs.hpp"
#include "core/exceptions.hpp"
#include "core/kernel.hpp"

namespace raft {

struct swap_policy
{
    /** run() invocations measured per alternative while probing */
    std::size_t probe_window{ 32 };
    /** committed invocations between re-probe rounds (0 = never) */
    std::size_t recheck_interval{ 8192 };
};

class synonym_kernel : public kernel
{
public:
    synonym_kernel( std::vector<std::unique_ptr<kernel>> alternatives,
                    const swap_policy policy = {} )
        : kernel(), alts_( std::move( alternatives ) ), policy_( policy )
    {
        if( alts_.empty() )
        {
            throw port_exception(
                "synonym_kernel needs >= 1 alternative" );
        }
        /** mirror the first alternative's port signature and demand the
         *  rest match it exactly **/
        for( auto &p : alts_[ 0 ]->input )
        {
            input.add_with_meta( p.name(), p.meta() );
        }
        for( auto &p : alts_[ 0 ]->output )
        {
            output.add_with_meta( p.name(), p.meta() );
        }
        for( std::size_t i = 1; i < alts_.size(); ++i )
        {
            verify_signature( *alts_[ i ] );
        }
        mean_ns_.assign( alts_.size(), 0.0 );
        probes_.assign( alts_.size(), 0 );
        set_name( "raft::synonym[" + alts_[ 0 ]->name() + ",...x" +
                  std::to_string( alts_.size() ) + "]" );
    }

    kstatus run() override
    {
        if( !bound_ )
        {
            bind_alternatives();
        }
        const auto t0 = detail::now_ns();
        const auto st = alts_[ active_ ]->run();
        const auto dt = static_cast<double>( detail::now_ns() - t0 );
        observe( dt );
        return st;
    }

    /** @name introspection / research hooks */
    ///@{
    std::size_t active() const noexcept { return active_; }
    std::string active_name() const { return alts_[ active_ ]->name(); }
    std::size_t alternative_count() const noexcept
    {
        return alts_.size();
    }
    /** EWMA-free probe mean (ns per invocation) for alternative i. */
    double mean_invocation_ns( const std::size_t i ) const
    {
        return mean_ns_[ i ];
    }
    std::size_t swap_count() const noexcept { return swaps_; }
    ///@}

    bool clone_supported() const override
    {
        for( const auto &a : alts_ )
        {
            if( !a->clone_supported() )
            {
                return false;
            }
        }
        return true;
    }

    kernel *clone() const override
    {
        if( !clone_supported() )
        {
            return nullptr;
        }
        std::vector<std::unique_ptr<kernel>> copies;
        for( const auto &a : alts_ )
        {
            copies.emplace_back( a->clone() );
        }
        return new synonym_kernel( std::move( copies ), policy_ );
    }

private:
    void verify_signature( kernel &other ) const
    {
        const auto check = []( const port_container &mine,
                               port_container &theirs,
                               const char *side ) {
            if( mine.count() != theirs.count() )
            {
                throw port_exception(
                    std::string( "synonym alternatives disagree on " ) +
                    side + " port count" );
            }
            for( const auto &p : mine )
            {
                if( !theirs.has( p.name() ) ||
                    theirs[ p.name() ].type() != p.type() )
                {
                    throw port_exception(
                        "synonym alternatives disagree on port '" +
                        p.name() + "'" );
                }
            }
        };
        check( input, other.input, "input" );
        check( output, other.output, "output" );
    }

    /** Alias every alternative's ports onto this kernel's streams. */
    void bind_alternatives()
    {
        for( auto &alt : alts_ )
        {
            for( auto &p : input )
            {
                alt->input[ p.name() ].bind( &p.raw() );
            }
            for( auto &p : output )
            {
                alt->output[ p.name() ].bind( &p.raw() );
            }
            alt->set_bus( bus() );
        }
        bound_ = true;
    }

    /** Explore-then-commit with periodic re-probing. */
    void observe( const double invocation_ns )
    {
        if( probing_ )
        {
            auto &n = probes_[ active_ ];
            mean_ns_[ active_ ] =
                ( mean_ns_[ active_ ] * static_cast<double>( n ) +
                  invocation_ns ) /
                static_cast<double>( n + 1 );
            if( ++n >= policy_.probe_window )
            {
                /** advance to the next unprobed alternative **/
                std::size_t next = alts_.size();
                for( std::size_t i = 0; i < alts_.size(); ++i )
                {
                    if( probes_[ i ] < policy_.probe_window )
                    {
                        next = i;
                        break;
                    }
                }
                if( next < alts_.size() )
                {
                    switch_to( next );
                }
                else
                {
                    commit();
                }
            }
            return;
        }
        if( policy_.recheck_interval != 0 &&
            ++committed_runs_ >= policy_.recheck_interval )
        {
            /** start a fresh probe round **/
            committed_runs_ = 0;
            probing_        = true;
            std::fill( probes_.begin(), probes_.end(), std::size_t{ 0 } );
            std::fill( mean_ns_.begin(), mean_ns_.end(), 0.0 );
            switch_to( 0 );
        }
    }

    void commit()
    {
        std::size_t best = 0;
        double best_ns   = std::numeric_limits<double>::infinity();
        for( std::size_t i = 0; i < alts_.size(); ++i )
        {
            if( mean_ns_[ i ] < best_ns )
            {
                best_ns = mean_ns_[ i ];
                best    = i;
            }
        }
        probing_        = false;
        committed_runs_ = 0;
        switch_to( best );
    }

    void switch_to( const std::size_t i )
    {
        if( i != active_ )
        {
            ++swaps_;
        }
        active_ = i;
    }

    std::vector<std::unique_ptr<kernel>> alts_;
    swap_policy policy_;
    std::size_t active_{ 0 };
    bool probing_{ true };
    bool bound_{ false };
    std::vector<double> mean_ns_;
    std::vector<std::size_t> probes_;
    std::size_t committed_runs_{ 0 };
    std::size_t swaps_{ 0 };
};

} /** end namespace raft **/
