/**
 * lambdak.hpp — lambda compute kernels (§4.2, Figure 7).
 *
 * "RaftLib brings lambda compute kernels, which give the user the ability
 * to declare a fully functional, independent kernel while freeing him/her
 * from the cruft that would normally accompany such a declaration."
 *
 *   kernel::make< lambdak< std::uint32_t > >( 0, 1,
 *       []( raft::Port &input, raft::Port &output ) { ... } );
 *
 * "If a single type is provided as a template parameter, then all ports
 * for this lambda kernel are assumed to have this type. If more than one
 * template parameter is used, then the number of types must match the
 * number of ports given by the first and second function parameters...
 * Ports are named sequentially starting with zero."
 *
 * Two callable shapes are accepted: returning raft::kstatus (full control)
 * or void (always proceeds; termination comes from upstream end-of-stream).
 * As the paper cautions, capture by value for kernels that may be
 * duplicated or distributed.
 */
#pragma once

#include <functional>
#include <string>
#include <type_traits>

#include "core/exceptions.hpp"
#include "core/kernel.hpp"

namespace raft {

template <class... Ts> class lambdak : public kernel
{
    static_assert( sizeof...( Ts ) >= 1,
                   "lambdak needs at least one port type" );

public:
    using func_t = std::function<kstatus( Port &, Port & )>;

    template <class F>
    lambdak( const std::size_t n_input, const std::size_t n_output, F fn )
        : kernel(), n_input_( n_input ), n_output_( n_output )
    {
        declare_ports();
        if constexpr( std::is_convertible_v<
                          std::invoke_result_t<F, Port &, Port &>,
                          kstatus> )
        {
            fn_ = func_t( std::move( fn ) );
        }
        else
        {
            fn_ = [ f = std::move( fn ) ]( Port &in, Port &out ) {
                f( in, out );
                return raft::proceed;
            };
        }
    }

    kstatus run() override { return fn_( input, output ); }

    bool clone_supported() const override { return clonable_; }

    kernel *clone() const override
    {
        if( !clonable_ )
        {
            return nullptr;
        }
        auto *k = new lambdak<Ts...>( *this, private_tag{} );
        return k;
    }

    /** Opt this lambda kernel into automatic replication. Only do so when
     *  the callable is stateless or captures by value (§4.2's caveat about
     *  by-reference captures under duplication). */
    lambdak &set_clonable( const bool v = true )
    {
        clonable_ = v;
        return *this;
    }

private:
    struct private_tag
    {
    };

    lambdak( const lambdak &other, private_tag )
        : kernel(), n_input_( other.n_input_ ),
          n_output_( other.n_output_ ), fn_( other.fn_ ),
          clonable_( other.clonable_ )
    {
        declare_ports();
    }

    void declare_ports()
    {
        constexpr std::size_t n_types = sizeof...( Ts );
        if( n_types != 1 && n_types != 0 &&
            n_types != n_input_ + n_output_ )
        {
            throw port_exception(
                "lambdak: number of template types must be 1 or equal "
                "the total port count" );
        }
        std::size_t slot = 0;
        if constexpr( n_types == 1 )
        {
            using T = std::tuple_element_t<0, std::tuple<Ts...>>;
            for( std::size_t i = 0; i < n_input_; ++i )
            {
                input.addPort<T>( std::to_string( i ) );
            }
            for( std::size_t i = 0; i < n_output_; ++i )
            {
                output.addPort<T>( std::to_string( i ) );
            }
            (void) slot;
        }
        else
        {
            /** one type per port, inputs first, then outputs **/
            const auto add = [ & ]( auto type_tag ) {
                using T = typename decltype( type_tag )::type;
                if( slot < n_input_ )
                {
                    input.addPort<T>( std::to_string( slot ) );
                }
                else
                {
                    output.addPort<T>(
                        std::to_string( slot - n_input_ ) );
                }
                ++slot;
            };
            ( add( std::type_identity<Ts>{} ), ... );
        }
    }

    std::size_t n_input_;
    std::size_t n_output_;
    func_t fn_;
    bool clonable_{ false };
};

} /** end namespace raft **/
