/**
 * kstatus.hpp — return status of a compute kernel's run() function, exactly
 * as used in the paper (Figure 2): `return( raft::proceed );`.
 */
#pragma once

#include <cstdint>

namespace raft {

/**
 * Status a kernel reports after one run() invocation.
 *  - proceed: the kernel wants to be scheduled again.
 *  - stop:    the kernel is finished (e.g., a source exhausted its input);
 *             the runtime closes its output streams so end-of-stream
 *             propagates downstream.
 */
enum kstatus : std::uint8_t
{
    proceed = 0,
    stop    = 1
};

} /** end namespace raft **/
