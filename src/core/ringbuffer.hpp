/**
 * ringbuffer.hpp — lock-free single-producer / single-consumer ring buffer
 * with cooperative dynamic resizing.
 *
 * This is the default allocation behind every stream (§4.2: heap-allocated
 * memory; POSIX shared memory and TCP links share the semantics — the TCP
 * link in net/ wraps one of these per endpoint).
 *
 * Fast path: one cache-line-padded monotonic counter per queue end, a
 * relaxed gate check, release/acquire publication — no locks, no CAS loops.
 *
 * Shadow indices: each end keeps a thread-private cached copy of the
 * *opposite* end's counter on its own cache line (producer caches head_,
 * consumer caches tail_). The cached value only lags the real one, so using
 * it is always conservative (the producer under-estimates free space, the
 * consumer under-estimates occupancy); the real counter is re-read only when
 * the cache implies full/empty. In steady state the remote cache line is
 * touched once per buffer-full of elements instead of once per element.
 * resize() re-seeds both caches while the ends are parked — the Dekker
 * handshake orders those plain writes against the owning thread's accesses.
 *
 * Batched windows: claim_write_window/claim_read_window acquire N contiguous
 * slots under a single handshake entry and publish/consume them with one
 * index store. A held window parks the monitor exactly like a held
 * claim_head, so resize-gate semantics are unchanged.
 *
 * Static streams: set_auto_resize(false) declares that no resize() will run
 * concurrently with traffic (the monitor never gates a static stream), which
 * lets enter_prod/enter_cons skip the seq_cst Dekker publication entirely —
 * a relaxed flag check is all that remains of the handshake.
 *
 * Dynamic resizing (§4): a monitor thread samples every δ and calls
 * resize(). The resize protocol is the paper's "lock-free exclusion... only
 * under certain conditions":
 *
 *   producer/consumer op:   in_op.store(true, seq_cst);
 *                           if (gate.load(seq_cst)) { in_op=false; wait; }
 *   monitor:                gate.store(true, seq_cst);
 *                           wait until both in_op flags clear (bounded);
 *                           relocate elements unwrapped; swap storage;
 *                           gate.store(false);
 *
 * The seq_cst store/load pair is the classic Dekker handshake: either the
 * queue end sees the gate and parks, or the monitor sees the end in-op and
 * waits. Elements are relocated in order into index 0 of the new array, so
 * the ring is in the "non-wrapped position" the paper identifies as the
 * efficient resize condition. If an end cannot be parked within a bounded
 * wait the resize aborts and the monitor retries next tick.
 *
 * Blocked-end bookkeeping feeds the monitor's two trigger rules:
 *   - write_blocked_since(): writer stalled on a full queue (3δ rule),
 *   - resize_request(): reader demanded a window larger than capacity.
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include "core/defs.hpp"
#include "core/fifo.hpp"
#include "runtime/telemetry/trace.hpp"

namespace raft {

template <class T> class ring_buffer final : public fifo<T>
{
public:
    static constexpr std::size_t min_capacity = 2;

    explicit ring_buffer( const std::size_t capacity = 64 )
    {
        const auto cap =
            detail::pow2_ceil( std::max( capacity, min_capacity ) );
        data_ = allocate_storage( cap );
        sigs_ = new signal[ cap ]();
        capacity_.store( cap, std::memory_order_relaxed );
        mask_.store( cap - 1, std::memory_order_relaxed );
    }

    ring_buffer( const ring_buffer & )            = delete;
    ring_buffer &operator=( const ring_buffer & ) = delete;

    ~ring_buffer() override
    {
        const auto h = head_.load( std::memory_order_relaxed );
        const auto t = tail_.load( std::memory_order_relaxed );
        const auto m = mask_.load( std::memory_order_relaxed );
        for( auto i = h; i != t; ++i )
        {
            data_[ i & m ].~T();
        }
        ::operator delete( static_cast<void *>( data_ ),
                           std::align_val_t( alignof( T ) ) );
        delete[] sigs_;
    }

    /** @name fifo_base: occupancy */
    ///@{
    std::size_t size() const noexcept override
    {
        /** One acquire on the opposite end suffices (§4.2): reading head
         *  first guarantees t >= h because head never passes tail and both
         *  grow monotonically — the second acquire bought nothing. Reading
         *  in the other order could observe h > t and wrap. */
        const auto h = head_.load( std::memory_order_relaxed );
        const auto t = tail_.load( std::memory_order_acquire );
        return static_cast<std::size_t>( t - h );
    }

    std::size_t capacity() const noexcept override
    {
        return capacity_.load( std::memory_order_relaxed );
    }

    std::size_t space_avail() const noexcept override
    {
        /** size() now never exceeds the true occupancy snapshot, but a
         *  racing resize can still shrink capacity between the two loads —
         *  keep the clamp. */
        const auto cap = capacity();
        const auto sz  = size();
        return ( sz > cap ) ? 0 : cap - sz;
    }
    ///@}

    /** @name fifo_base: lifecycle */
    ///@{
    void close_write() noexcept override
    {
        write_closed_.store( true, std::memory_order_release );
    }

    bool write_closed() const noexcept override
    {
        return write_closed_.load( std::memory_order_acquire );
    }

    void close_read() noexcept override
    {
        read_closed_.store( true, std::memory_order_release );
    }

    bool read_closed() const noexcept override
    {
        return read_closed_.load( std::memory_order_acquire );
    }

    void abort() noexcept override
    {
        aborted_.store( true, std::memory_order_release );
    }

    bool aborted() const noexcept override
    {
        return aborted_.load( std::memory_order_acquire );
    }
    ///@}

    /** @name fifo_base: dynamic resizing */
    ///@{
    bool resize( const std::size_t new_capacity ) override
    {
        const auto cap_req = detail::pow2_ceil(
            std::max( new_capacity, min_capacity ) );
        gate_.store( true, std::memory_order_seq_cst );
        const auto deadline = detail::now_ns() + park_timeout_ns;
        while( prod_op_.load( std::memory_order_seq_cst ) ||
               cons_op_.load( std::memory_order_seq_cst ) )
        {
            if( detail::now_ns() > deadline )
            {
                gate_.store( false, std::memory_order_release );
                return false;
            }
#if defined( __x86_64__ ) || defined( __i386__ )
            __builtin_ia32_pause();
#else
            std::this_thread::yield();
#endif
        }
        /** both ends parked — exclusive access from here **/
        const auto h = head_.load( std::memory_order_relaxed );
        const auto t = tail_.load( std::memory_order_relaxed );
        const auto n = static_cast<std::size_t>( t - h );
        if( cap_req < n )
        {
            gate_.store( false, std::memory_order_release );
            return false;
        }
        if( cap_req == capacity() )
        {
            gate_.store( false, std::memory_order_release );
            return true;
        }
        T *new_data       = allocate_storage( cap_req );
        signal *new_sigs  = new signal[ cap_req ]();
        const auto old_m  = mask_.load( std::memory_order_relaxed );
        for( std::size_t i = 0; i < n; ++i )
        {
            const auto idx = ( h + i ) & old_m;
            ::new( static_cast<void *>( new_data + i ) )
                T( std::move( data_[ idx ] ) );
            new_sigs[ i ] = sigs_[ idx ];
            data_[ idx ].~T();
        }
        ::operator delete( static_cast<void *>( data_ ),
                           std::align_val_t( alignof( T ) ) );
        delete[] sigs_;
        data_ = new_data;
        sigs_ = new_sigs;
        /** preserve monotonic lifetime counters across index reset **/
        pushed_base_.fetch_add( static_cast<std::uint64_t>( t ) - n,
                                std::memory_order_relaxed );
        popped_base_.fetch_add( static_cast<std::uint64_t>( h ),
                                std::memory_order_relaxed );
        head_.store( 0, std::memory_order_relaxed );
        tail_.store( n, std::memory_order_relaxed );
        /** re-seed the shadow indices: both ends are parked, and their next
         *  gate acquisition synchronizes with the release of gate_ below,
         *  so these plain stores are ordered against the owning threads **/
        cached_head_ = 0;
        cached_tail_ = n;
        capacity_.store( cap_req, std::memory_order_relaxed );
        mask_.store( cap_req - 1, std::memory_order_relaxed );
        resize_count_.fetch_add( 1, std::memory_order_relaxed );
        if( resize_request_.load( std::memory_order_relaxed ) <= cap_req )
        {
            resize_request_.store( 0, std::memory_order_relaxed );
        }
        gate_.store( false, std::memory_order_release );
        return true;
    }

    std::size_t resize_request() const noexcept override
    {
        return resize_request_.load( std::memory_order_acquire );
    }

    std::int64_t write_blocked_since() const noexcept override
    {
        return write_blocked_since_.load( std::memory_order_acquire );
    }

    std::int64_t read_blocked_since() const noexcept override
    {
        return read_blocked_since_.load( std::memory_order_acquire );
    }

    std::size_t resize_count() const noexcept override
    {
        return resize_count_.load( std::memory_order_relaxed );
    }

    void set_auto_resize( const bool enabled ) noexcept override
    {
        auto_resize_.store( enabled, std::memory_order_release );
        /** a static stream (monitor will never gate it) runs the queue ends
         *  without the seq_cst Dekker publication; resize() must then only
         *  be called while both ends are quiescent **/
        gated_.store( enabled, std::memory_order_release );
    }

    bool auto_resize() const noexcept override
    {
        return auto_resize_.load( std::memory_order_acquire );
    }
    ///@}

    /** @name fifo_base: adapters */
    ///@{
    bool try_transfer_to( fifo_base &dstb ) override
    {
        if( dstb.value_type() != typeid( T ) )
        {
            return false;
        }
        auto &dst = static_cast<fifo<T> &>( dstb );
        enter_cons();
        const auto h = head_.load( std::memory_order_relaxed );
        const auto t = cons_tail( h );
        bool ok = false;
        if( t != h )
        {
            const auto m = mask_.load( std::memory_order_relaxed );
            T &slot      = data_[ h & m ];
            bool pushed  = false;
            try
            {
                pushed = dst.try_push( std::move( slot ), sigs_[ h & m ] );
            }
            catch( ... )
            {
                exit_cons();
                throw;
            }
            if( pushed )
            {
                slot.~T();
                head_.store( h + 1, std::memory_order_release );
                ok = true;
            }
        }
        exit_cons();
        return ok;
    }

    std::size_t try_transfer_n( fifo_base &dstb,
                                const std::size_t max_n ) override
    {
        if( max_n == 0 || dstb.value_type() != typeid( T ) )
        {
            return 0;
        }
        auto &dst = static_cast<fifo<T> &>( dstb );
        enter_cons();
        const auto h     = head_.load( std::memory_order_relaxed );
        const auto t     = cons_tail( h );
        const auto avail = static_cast<std::size_t>( t - h );
        std::size_t done = 0;
        if( avail > 0 )
        {
            const auto m    = mask_.load( std::memory_order_relaxed );
            const auto want = std::min( avail, max_n );
            /** the run is at most two contiguous segments around the wrap;
             *  each segment moves under one handshake entry on dst **/
            try
            {
                while( done < want )
                {
                    const auto idx = static_cast<std::size_t>(
                        ( h + done ) & m );
                    const auto seg =
                        std::min( want - done, ( m + 1 ) - idx );
                    const auto k =
                        dst.try_push_n( data_ + idx, seg, sigs_ + idx );
                    for( std::size_t i = 0; i < k; ++i )
                    {
                        data_[ idx + i ].~T();
                    }
                    done += k;
                    if( k < seg )
                    {
                        break; /** dst full **/
                    }
                }
            }
            catch( ... )
            {
                if( done > 0 )
                {
                    head_.store( h + done, std::memory_order_release );
                }
                exit_cons();
                throw;
            }
            if( done > 0 )
            {
                head_.store( h + done, std::memory_order_release );
            }
        }
        exit_cons();
        return done;
    }
    ///@}

    /** @name fifo_base: introspection */
    ///@{
    const std::type_info &value_type() const noexcept override
    {
        return typeid( T );
    }

    std::size_t element_size() const noexcept override { return sizeof( T ); }

    std::uint64_t total_pushed() const noexcept override
    {
        return pushed_base_.load( std::memory_order_relaxed ) +
               tail_.load( std::memory_order_acquire );
    }

    std::uint64_t total_popped() const noexcept override
    {
        return popped_base_.load( std::memory_order_relaxed ) +
               head_.load( std::memory_order_acquire );
    }
    ///@}

    /** @name fifo_base: arithmetic raw access */
    ///@{
    bool try_pop_as_double( double &out, signal &sig ) override
    {
        if constexpr( std::is_arithmetic_v<T> )
        {
            T v{};
            if( !try_pop( v, &sig ) )
            {
                return false;
            }
            out = static_cast<double>( v );
            return true;
        }
        else
        {
            (void) out;
            (void) sig;
            return false;
        }
    }

    bool try_push_from_double( const double value, const signal sig ) override
    {
        if constexpr( std::is_arithmetic_v<T> )
        {
            return try_push( static_cast<T>( value ), sig );
        }
        else
        {
            (void) value;
            (void) sig;
            return false;
        }
    }
    ///@}

    /** @name fifo<T>: blocking operations */
    ///@{
    void push( const T &value, const signal sig = none ) override
    {
        if constexpr( std::is_copy_constructible_v<T> )
        {
            emplace_blocking( [ & ]( void *slot ) {
                ::new( slot ) T( value );
            }, sig );
        }
        else
        {
            (void) value;
            (void) sig;
            throw raft_exception(
                "push(const T&) on a move-only element type" );
        }
    }

    void push( T &&value, const signal sig = none ) override
    {
        emplace_blocking( [ & ]( void *slot ) {
            ::new( slot ) T( std::move( value ) );
        }, sig );
    }

    void pop( T &out, signal *sig = nullptr ) override
    {
        detail::backoff b;
        for( ;; )
        {
            enter_cons();
            const auto h = head_.load( std::memory_order_relaxed );
            const auto t = cons_tail( h );
            if( t != h )
            {
                const auto m = mask_.load( std::memory_order_relaxed );
                T &slot      = data_[ h & m ];
                out          = std::move( slot );
                if( sig != nullptr )
                {
                    *sig = sigs_[ h & m ];
                }
                slot.~T();
                head_.store( h + 1, std::memory_order_release );
                exit_cons();
                clear_read_block();
                return;
            }
            exit_cons();
            throw_if_aborted_read();
            throw_if_drained();
            note_read_block();
            b.pause();
        }
    }

    const T &peek( signal *sig = nullptr ) override
    {
        signal s    = none;
        const T &ref = claim_head( s );
        if( sig != nullptr )
        {
            *sig = s;
        }
        return ref;
    }

    void unpeek() noexcept override { release_head(); }

    void recycle( const std::size_t n = 1 ) override
    {
        std::size_t remaining = n;
        detail::backoff b;
        while( remaining > 0 )
        {
            enter_cons();
            const auto h = head_.load( std::memory_order_relaxed );
            const auto t = cons_tail( h, remaining );
            const auto avail = static_cast<std::size_t>( t - h );
            if( avail > 0 )
            {
                const auto m     = mask_.load( std::memory_order_relaxed );
                const auto batch = std::min( avail, remaining );
                for( std::size_t i = 0; i < batch; ++i )
                {
                    data_[ ( h + i ) & m ].~T();
                }
                head_.store( h + batch, std::memory_order_release );
                remaining -= batch;
                exit_cons();
                clear_read_block();
                b.reset();
                continue;
            }
            exit_cons();
            throw_if_aborted_read();
            throw_if_drained();
            note_read_block();
            b.pause();
        }
    }
    ///@}

    /** @name fifo<T>: non-blocking operations */
    ///@{
    bool try_push( T &&value, const signal sig = none ) override
    {
        if( read_closed() )
        {
            throw closed_port_exception(
                "push on a stream whose reader terminated" );
        }
        enter_prod();
        const auto t   = tail_.load( std::memory_order_relaxed );
        const auto cap = capacity_.load( std::memory_order_relaxed );
        const auto h   = prod_head( t, cap );
        bool ok        = false;
        if( static_cast<std::size_t>( t - h ) < cap )
        {
            const auto m = mask_.load( std::memory_order_relaxed );
            ::new( static_cast<void *>( data_ + ( t & m ) ) )
                T( std::move( value ) );
            sigs_[ t & m ] = sig;
            tail_.store( t + 1, std::memory_order_release );
            ok = true;
        }
        exit_prod();
        return ok;
    }

    bool try_pop( T &out, signal *sig = nullptr ) override
    {
        enter_cons();
        const auto h = head_.load( std::memory_order_relaxed );
        const auto t = cons_tail( h );
        bool ok      = false;
        if( t != h )
        {
            const auto m = mask_.load( std::memory_order_relaxed );
            T &slot      = data_[ h & m ];
            out          = std::move( slot );
            if( sig != nullptr )
            {
                *sig = sigs_[ h & m ];
            }
            slot.~T();
            head_.store( h + 1, std::memory_order_release );
            ok = true;
        }
        exit_cons();
        return ok;
    }

    std::size_t try_push_n( T *src, const std::size_t n,
                            const signal *sigs = nullptr ) override
    {
        if( n == 0 )
        {
            return 0;
        }
        if( read_closed() )
        {
            throw closed_port_exception(
                "push on a stream whose reader terminated" );
        }
        enter_prod();
        const auto t   = tail_.load( std::memory_order_relaxed );
        const auto cap = capacity_.load( std::memory_order_relaxed );
        /** reload the shadow cache when it cannot cover the full batch **/
        const auto h     = prod_head( t, cap, std::min( n, cap ) );
        const auto space = cap - static_cast<std::size_t>( t - h );
        const auto k     = std::min( n, space );
        if( k > 0 )
        {
            const auto m = mask_.load( std::memory_order_relaxed );
            for( std::size_t i = 0; i < k; ++i )
            {
                const auto idx = ( t + i ) & m;
                ::new( static_cast<void *>( data_ + idx ) )
                    T( std::move( src[ i ] ) );
                sigs_[ idx ] = ( sigs != nullptr ) ? sigs[ i ] : none;
            }
            tail_.store( t + k, std::memory_order_release );
        }
        exit_prod();
        return k;
    }

    std::size_t try_pop_n( T *dst, const std::size_t n,
                           signal *sigs = nullptr ) override
    {
        if( n == 0 )
        {
            return 0;
        }
        enter_cons();
        const auto h     = head_.load( std::memory_order_relaxed );
        const auto t     = cons_tail( h, n );
        const auto avail = static_cast<std::size_t>( t - h );
        const auto k     = std::min( n, avail );
        if( k > 0 )
        {
            const auto m = mask_.load( std::memory_order_relaxed );
            for( std::size_t i = 0; i < k; ++i )
            {
                const auto idx = ( h + i ) & m;
                T &slot        = data_[ idx ];
                dst[ i ]       = std::move( slot );
                if( sigs != nullptr )
                {
                    sigs[ i ] = sigs_[ idx ];
                }
                slot.~T();
            }
            head_.store( h + k, std::memory_order_release );
        }
        exit_cons();
        return k;
    }
    ///@}

    /** @name fifo<T>: batched window claims */
    ///@{
    std::size_t claim_write_window( std::size_t max_n,
                                    T **data,
                                    signal **sigs,
                                    std::uint64_t *start,
                                    std::size_t *mask ) override
    {
        static_assert( std::is_default_constructible_v<T>,
                       "write windows require a default-constructible "
                       "type" );
        if( max_n == 0 )
        {
            max_n = 1;
        }
        detail::backoff b;
        for( ;; )
        {
            if( read_closed() )
            {
                throw closed_port_exception(
                    "allocate_range on a stream whose reader terminated" );
            }
            enter_prod();
            const auto t   = tail_.load( std::memory_order_relaxed );
            const auto cap = capacity_.load( std::memory_order_relaxed );
            /** need = full request: reload the shadow cache (once per
             *  window) whenever it cannot cover max_n, so claims come
             *  back full-sized rather than cache-lag-sized **/
            const auto h =
                prod_head( t, cap, std::min( max_n, cap ) );
            const auto space = cap - static_cast<std::size_t>( t - h );
            if( space > 0 )
            {
                const auto k = std::min( max_n, space );
                const auto m = mask_.load( std::memory_order_relaxed );
                for( std::size_t i = 0; i < k; ++i )
                {
                    const auto idx = ( t + i ) & m;
                    ::new( static_cast<void *>( data_ + idx ) ) T();
                    sigs_[ idx ] = none;
                }
                *data  = data_;
                *sigs  = sigs_;
                *start = t;
                *mask  = m;
                clear_write_block();
                /** claim held — released by publish_write_window **/
                return k;
            }
            exit_prod();
            throw_if_aborted_write();
            note_write_block();
            b.pause();
        }
    }

    void publish_write_window( const std::size_t claimed,
                               const std::size_t n ) noexcept override
    {
        const auto t = tail_.load( std::memory_order_relaxed );
        const auto m = mask_.load( std::memory_order_relaxed );
        for( std::size_t i = n; i < claimed; ++i )
        {
            data_[ ( t + i ) & m ].~T();
        }
        if( n > 0 )
        {
            tail_.store( t + n, std::memory_order_release );
        }
        exit_prod();
    }

    std::size_t claim_read_window( std::size_t max_n,
                                   T **data,
                                   signal **sigs,
                                   std::uint64_t *start,
                                   std::size_t *mask ) override
    {
        if( max_n == 0 )
        {
            max_n = 1;
        }
        detail::backoff b;
        for( ;; )
        {
            enter_cons();
            const auto h = head_.load( std::memory_order_relaxed );
            /** same full-request reload policy as claim_write_window **/
            const auto t     = cons_tail( h, max_n );
            const auto avail = static_cast<std::size_t>( t - h );
            if( avail > 0 )
            {
                *data  = data_;
                *sigs  = sigs_;
                *start = h;
                *mask  = mask_.load( std::memory_order_relaxed );
                clear_read_block();
                /** claim held — released by consume_read_window **/
                return std::min( max_n, avail );
            }
            exit_cons();
            throw_if_aborted_read();
            throw_if_drained();
            note_read_block();
            b.pause();
        }
    }

    void consume_read_window( const std::size_t n ) noexcept override
    {
        const auto h = head_.load( std::memory_order_relaxed );
        const auto m = mask_.load( std::memory_order_relaxed );
        for( std::size_t i = 0; i < n; ++i )
        {
            data_[ ( h + i ) & m ].~T();
        }
        if( n > 0 )
        {
            head_.store( h + n, std::memory_order_release );
        }
        exit_cons();
    }
    ///@}

    /** @name fifo<T>: claim primitives */
    ///@{
    T &claim_head( signal &sig ) override
    {
        detail::backoff b;
        for( ;; )
        {
            enter_cons();
            const auto h = head_.load( std::memory_order_relaxed );
            const auto t = cons_tail( h );
            if( t != h )
            {
                const auto m = mask_.load( std::memory_order_relaxed );
                sig          = sigs_[ h & m ];
                clear_read_block();
                /** claim stays held — released by consume/release_head **/
                return data_[ h & m ];
            }
            exit_cons();
            throw_if_aborted_read();
            throw_if_drained();
            note_read_block();
            b.pause();
        }
    }

    void consume_head() noexcept override
    {
        const auto h = head_.load( std::memory_order_relaxed );
        const auto m = mask_.load( std::memory_order_relaxed );
        data_[ h & m ].~T();
        head_.store( h + 1, std::memory_order_release );
        exit_cons();
    }

    void release_head() noexcept override { exit_cons(); }

    T *claim_tail() override
    {
        static_assert( std::is_default_constructible_v<T>,
                       "allocate_s requires a default-constructible type" );
        detail::backoff b;
        for( ;; )
        {
            if( read_closed() )
            {
                throw closed_port_exception(
                    "allocate on a stream whose reader terminated" );
            }
            enter_prod();
            const auto t   = tail_.load( std::memory_order_relaxed );
            const auto cap = capacity_.load( std::memory_order_relaxed );
            const auto h   = prod_head( t, cap );
            if( static_cast<std::size_t>( t - h ) < cap )
            {
                const auto m = mask_.load( std::memory_order_relaxed );
                T *slot = ::new( static_cast<void *>( data_ + ( t & m ) ) ) T();
                clear_write_block();
                /** claim stays held — released by publish/abandon_tail **/
                return slot;
            }
            exit_prod();
            throw_if_aborted_write();
            note_write_block();
            b.pause();
        }
    }

    void publish_tail( const signal sig ) noexcept override
    {
        const auto t = tail_.load( std::memory_order_relaxed );
        const auto m = mask_.load( std::memory_order_relaxed );
        sigs_[ t & m ] = sig;
        tail_.store( t + 1, std::memory_order_release );
        exit_prod();
    }

    void abandon_tail() noexcept override
    {
        const auto t = tail_.load( std::memory_order_relaxed );
        const auto m = mask_.load( std::memory_order_relaxed );
        data_[ t & m ].~T();
        exit_prod();
    }

    void claim_window( const std::size_t n,
                       T **data,
                       std::uint64_t *start,
                       std::size_t *mask ) override
    {
        detail::backoff b;
        for( ;; )
        {
            if( n > capacity() )
            {
                if( !auto_resize() )
                {
                    throw demand_exceeds_capacity_exception(
                        "peek_range(" + std::to_string( n ) +
                        ") exceeds capacity " +
                        std::to_string( capacity() ) +
                        " and dynamic resizing is disabled" );
                }
                /** post the overflow demand; the monitor thread grows us **/
                resize_request_.store( detail::pow2_ceil( n ),
                                       std::memory_order_release );
                throw_if_aborted_read();
                note_read_block();
                b.pause();
                continue;
            }
            enter_cons();
            const auto h = head_.load( std::memory_order_relaxed );
            const auto t = cons_tail( h, n );
            if( static_cast<std::size_t>( t - h ) >= n )
            {
                *data  = data_;
                *start = h;
                *mask  = mask_.load( std::memory_order_relaxed );
                clear_read_block();
                /** claim held — released by the window's destructor **/
                return;
            }
            exit_cons();
            throw_if_aborted_read();
            if( write_closed() &&
                static_cast<std::size_t>(
                    tail_.load( std::memory_order_acquire ) -
                    head_.load( std::memory_order_relaxed ) ) < n )
            {
                clear_read_block();
                throw closed_port_exception(
                    "peek_range can never be satisfied: upstream closed" );
            }
            note_read_block();
            b.pause();
        }
    }
    ///@}

private:
    static T *allocate_storage( const std::size_t cap )
    {
        return static_cast<T *>( ::operator new(
            sizeof( T ) * cap, std::align_val_t( alignof( T ) ) ) );
    }

    template <class Construct>
    void emplace_blocking( Construct &&construct, const signal sig )
    {
        detail::backoff b;
        for( ;; )
        {
            if( read_closed() )
            {
                throw closed_port_exception(
                    "push on a stream whose reader terminated" );
            }
            enter_prod();
            const auto t   = tail_.load( std::memory_order_relaxed );
            const auto cap = capacity_.load( std::memory_order_relaxed );
            const auto h   = prod_head( t, cap );
            if( static_cast<std::size_t>( t - h ) < cap )
            {
                const auto m = mask_.load( std::memory_order_relaxed );
                construct( static_cast<void *>( data_ + ( t & m ) ) );
                sigs_[ t & m ] = sig;
                tail_.store( t + 1, std::memory_order_release );
                exit_prod();
                clear_write_block();
                return;
            }
            exit_prod();
            throw_if_aborted_write();
            note_write_block();
            b.pause();
        }
    }

    void throw_if_drained()
    {
        if( write_closed() )
        {
            const auto t = tail_.load( std::memory_order_acquire );
            const auto h = head_.load( std::memory_order_relaxed );
            if( t == h )
            {
                clear_read_block();
                throw closed_port_exception( "stream drained and closed" );
            }
        }
    }

    /** @name abort checks — blocked paths only
     * Cancellation poisons the stream via abort(); a blocked end notices on
     * its next retry (the backoff sleeps at most 50 µs, so wakeup is
     * prompt). The checks live exclusively on the would-block path: an
     * operation that succeeds immediately never loads the flag, keeping the
     * disabled-path hot loop identical to the pre-fault-tolerance code.
     */
    ///@{
    void throw_if_aborted_read()
    {
        if( aborted_.load( std::memory_order_acquire ) )
        {
            clear_read_block();
            throw stream_aborted_exception(
                "stream aborted: graph cancelled" );
        }
    }

    void throw_if_aborted_write()
    {
        if( aborted_.load( std::memory_order_acquire ) )
        {
            clear_write_block();
            throw stream_aborted_exception(
                "stream aborted: graph cancelled" );
        }
    }
    ///@}

    /** @name shadow-index refresh (see file header)
     * Thread-private caches of the opposite end's counter. Values only lag
     * the real counter, so acting on them is conservative; re-read the real
     * (remote) cache line only when the cached value implies no progress is
     * possible — i.e. once per batch/wrap instead of once per element.
     */
    ///@{
    /** Producer view of head_; refreshed when the cache shows fewer than
     *  `need` free slots. Call only between enter_prod/exit_prod. */
    std::uint64_t prod_head( const std::uint64_t t, const std::size_t cap,
                             const std::size_t need = 1 ) noexcept
    {
        auto h = cached_head_;
        if( static_cast<std::size_t>( t - h ) + need > cap )
        {
            h            = head_.load( std::memory_order_acquire );
            cached_head_ = h;
        }
        return h;
    }

    /** Consumer view of tail_; refreshed when the cache shows fewer than
     *  `need` occupied slots. Call only between enter_cons/exit_cons. */
    std::uint64_t cons_tail( const std::uint64_t h,
                             const std::size_t need = 1 ) noexcept
    {
        auto t = cached_tail_;
        if( static_cast<std::size_t>( t - h ) < need )
        {
            t            = tail_.load( std::memory_order_acquire );
            cached_tail_ = t;
        }
        return t;
    }
    ///@}

    /** @name gate handshake (see file header) */
    ///@{
    void enter_prod() noexcept
    {
        if( prod_depth_++ > 0 )
        {
            return;
        }
        if( !gated_.load( std::memory_order_relaxed ) )
        {
            prod_announced_ = false; /** static stream: no Dekker store **/
            return;
        }
        prod_announced_ = true;
        for( ;; )
        {
            prod_op_.store( true, std::memory_order_seq_cst );
            if( !gate_.load( std::memory_order_seq_cst ) )
            {
                return;
            }
            prod_op_.store( false, std::memory_order_release );
            std::this_thread::yield();
        }
    }

    void exit_prod() noexcept
    {
        if( --prod_depth_ == 0 && prod_announced_ )
        {
            prod_op_.store( false, std::memory_order_release );
        }
    }

    void enter_cons() noexcept
    {
        if( cons_depth_++ > 0 )
        {
            return;
        }
        if( !gated_.load( std::memory_order_relaxed ) )
        {
            cons_announced_ = false; /** static stream: no Dekker store **/
            return;
        }
        cons_announced_ = true;
        for( ;; )
        {
            cons_op_.store( true, std::memory_order_seq_cst );
            if( !gate_.load( std::memory_order_seq_cst ) )
            {
                return;
            }
            cons_op_.store( false, std::memory_order_release );
            std::this_thread::yield();
        }
    }

    void exit_cons() noexcept
    {
        if( --cons_depth_ == 0 && cons_announced_ )
        {
            cons_op_.store( false, std::memory_order_release );
        }
    }
    ///@}

    void note_write_block() noexcept
    {
        std::int64_t expected = 0;
        write_blocked_since_.compare_exchange_strong(
            expected, detail::now_ns(), std::memory_order_relaxed );
    }

    /** The load-then-conditional-store keeps the never-blocked hot path
     *  at a single relaxed load; the unblock transition (cold — the
     *  producer just finished waiting) additionally closes the
     *  blocked-on-push tracer span when this stream is being traced. **/
    void clear_write_block() noexcept
    {
        const auto since =
            write_blocked_since_.load( std::memory_order_relaxed );
        if( since != 0 )
        {
            write_blocked_since_.store( 0, std::memory_order_relaxed );
            if( telemetry::tracing() )
            {
                telemetry::span( this->telemetry_push_block(),
                                 telemetry::cat::stream, since,
                                 detail::now_ns() );
            }
        }
    }

    void note_read_block() noexcept
    {
        std::int64_t expected = 0;
        read_blocked_since_.compare_exchange_strong(
            expected, detail::now_ns(), std::memory_order_relaxed );
    }

    void clear_read_block() noexcept
    {
        const auto since =
            read_blocked_since_.load( std::memory_order_relaxed );
        if( since != 0 )
        {
            read_blocked_since_.store( 0, std::memory_order_relaxed );
            if( telemetry::tracing() )
            {
                telemetry::span( this->telemetry_pop_block(),
                                 telemetry::cat::stream, since,
                                 detail::now_ns() );
            }
        }
    }

    static constexpr std::int64_t park_timeout_ns = 2'000'000; /** 2 ms **/

    /** storage — mutated only with both ends parked **/
    T *data_{ nullptr };
    signal *sigs_{ nullptr };
    std::atomic<std::size_t> capacity_{ 0 };
    std::atomic<std::size_t> mask_{ 0 };

    /** hot indices: one cache line per end, holding the end's own counter,
     *  its shadow of the opposite counter and its thread-private handshake
     *  bookkeeping (shadow/bookkeeping fields are plain — ordered by the
     *  gate protocol when the monitor touches them during resize) **/
    alignas( cacheline_size ) std::atomic<std::uint64_t> head_{ 0 };
    std::uint64_t cached_tail_{ 0 };  /**< consumer's shadow of tail_ */
    int cons_depth_{ 0 };             /**< consumer claim nesting depth */
    bool cons_announced_{ false };    /**< consumer published cons_op_ */
    alignas( cacheline_size ) std::atomic<std::uint64_t> tail_{ 0 };
    std::uint64_t cached_head_{ 0 };  /**< producer's shadow of head_ */
    int prod_depth_{ 0 };             /**< producer claim nesting depth */
    bool prod_announced_{ false };    /**< producer published prod_op_ */

    /** gate handshake state **/
    alignas( cacheline_size ) std::atomic<bool> gate_{ false };
    std::atomic<bool> prod_op_{ false };
    std::atomic<bool> cons_op_{ false };
    /** false once set_auto_resize(false) declares the stream static: the
     *  monitor never gates it, so the ends skip the Dekker publication **/
    std::atomic<bool> gated_{ true };

    /** lifecycle **/
    std::atomic<bool> write_closed_{ false };
    std::atomic<bool> read_closed_{ false };
    /** poisoned by graph-wide cancellation (fifo_base::abort) **/
    std::atomic<bool> aborted_{ false };

    /** monitor-facing bookkeeping **/
    std::atomic<std::int64_t> write_blocked_since_{ 0 };
    std::atomic<std::int64_t> read_blocked_since_{ 0 };
    std::atomic<std::size_t> resize_request_{ 0 };
    std::atomic<std::size_t> resize_count_{ 0 };
    std::atomic<bool> auto_resize_{ false };
    std::atomic<std::uint64_t> pushed_base_{ 0 };
    std::atomic<std::uint64_t> popped_base_{ 0 };
};

} /** end namespace raft **/
