/**
 * restart.hpp — per-kernel restart policy for supervised execution.
 *
 * In a supervised run (run_options::supervision.enabled) a kernel whose
 * run() throws a non-control-flow exception is not immediately fatal: the
 * supervisor consults the kernel's restart policy and, while restarts
 * remain, the scheduler re-enters the kernel's run loop in place after an
 * exponentially backed-off delay. Ports stay bound and streams stay open
 * throughout — nothing queued is lost, the kernel simply resumes consuming
 * and producing (RAII claim guards release any held queue claims during
 * unwind, so the stream invariants hold across the failure).
 *
 * A kernel with max_restarts == 0 (the default) fails terminally on first
 * throw, triggering graph-wide cancellation.
 */
#pragma once

#include <chrono>
#include <cstddef>

namespace raft {

struct restart_policy
{
    /** Restart attempts before the failure is terminal (0 = never). */
    std::size_t max_restarts{ 0 };

    /** Delay before the first restart; doubles (by backoff_multiplier)
     *  per consecutive restart, capped at max_backoff. */
    std::chrono::nanoseconds initial_backoff{
        std::chrono::milliseconds( 1 ) };
    double backoff_multiplier{ 2.0 };
    std::chrono::nanoseconds max_backoff{ std::chrono::seconds( 1 ) };

    /** Convenience: up-to-n restarts with the default backoff curve. */
    static restart_policy up_to( const std::size_t n )
    {
        restart_policy p;
        p.max_restarts = n;
        return p;
    }

    /** Convenience: the terminal-on-first-failure default. */
    static restart_policy none() { return restart_policy{}; }
};

} /** end namespace raft **/
