/**
 * defs.hpp — foundational constants and small utilities shared across the
 * RaftLib reproduction: cache-line geometry, monotonic clock helpers,
 * progressive backoff for blocking queue operations, power-of-two math and
 * type-name demangling for diagnostics.
 */
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <typeinfo>

namespace raft {

/** Size assumed for destructive-interference padding of hot atomics. */
inline constexpr std::size_t cacheline_size = 64;

namespace detail {

/** Monotonic nanosecond timestamp (steady clock). */
inline std::int64_t now_ns() noexcept
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Progressive backoff used while a queue end waits for space/data: spin a
 * little, then yield, then sleep briefly. The sleep keeps a blocked side
 * cheap on oversubscribed machines (this host has a single core, so yielding
 * promptly matters for forward progress).
 */
class backoff
{
public:
    void pause() noexcept
    {
        if( count_ < spin_limit )
        {
#if defined( __x86_64__ ) || defined( __i386__ )
            __builtin_ia32_pause();
#endif
        }
        else if( count_ < yield_limit )
        {
            std::this_thread::yield();
        }
        else
        {
            std::this_thread::sleep_for( std::chrono::microseconds( 50 ) );
        }
        ++count_;
    }

    void reset() noexcept { count_ = 0; }

private:
    static constexpr int spin_limit  = 64;
    static constexpr int yield_limit = 256;
    int count_ = 0;
};

/** Smallest power of two >= v (v == 0 yields 1). */
constexpr std::size_t pow2_ceil( std::size_t v ) noexcept
{
    std::size_t p = 1;
    while( p < v )
    {
        p <<= 1;
    }
    return p;
}

constexpr bool is_pow2( std::size_t v ) noexcept
{
    return v != 0 && ( v & ( v - 1 ) ) == 0;
}

/** Human-readable name for a std::type_info (demangled where supported). */
std::string demangle( const std::type_info &ti );

} /** end namespace detail **/

} /** end namespace raft **/
