/**
 * parallel.hpp — automatic parallelization (§4.1).
 *
 * "Automatic parallelization of candidate kernels is accomplished by
 * analyzing the graph for segments that can be replicated preserving the
 * application's semantics (indicated by the user at link time with template
 * parameters). There are default split and reduce adapters that are
 * inserted where needed. Custom split reduce objects can be created by the
 * user by extending the default split / reduce objects."
 *
 * A kernel is a replication candidate when it supports clone() and every
 * stream touching it was linked with raft::out. The rewrite replaces
 *
 *        u ──> k ──> v        with        u ─> split ─> k₀..k_{W-1} ─> reduce ─> v
 *
 * for W replicas. Both adapters are type-erased: they move elements between
 * same-typed streams through fifo_base::try_transfer_to, so one
 * implementation serves every element type.
 */
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/defs.hpp"
#include "core/graph.hpp"
#include "core/kernel.hpp"
#include "core/split_strategy.hpp"

namespace raft {

/**
 * Default split adapter: one input, W outputs, distribution order decided
 * by a split_strategy (round-robin / least-utilized / user-supplied).
 * Extend and override route() for custom distribution.
 *
 * Elastic runtime support: the adapter routes only to the first
 * `active()` of its `width()` lanes. Both the active-lane count and the
 * split strategy can be changed mid-run from another thread (the elastic
 * controller on the monitor thread) through set_active() /
 * request_strategy(); requests are single atomic stores, applied by the
 * split's own thread at its next run() quantum, so the routing state
 * itself stays single-threaded. Retiring a lane is a quiesce: routing
 * stops immediately, queued elements drain through the still-live replica,
 * and no element is lost or duplicated.
 */
class split_kernel : public kernel
{
public:
    split_kernel( const detail::type_meta &meta,
                  const std::size_t width,
                  std::unique_ptr<split_strategy> strategy,
                  std::size_t initial_active = 0 /** 0 = all lanes **/ );

    kstatus run() override;
    bool ready() const override;

    /** @name elastic actuation (any thread) */
    ///@{
    std::size_t width() const noexcept { return width_; }
    std::size_t active() const noexcept
    {
        return active_.load( std::memory_order_acquire );
    }
    /** Route to lanes [0, n) from the next run() quantum on (clamped to
     *  [1, width]). Shrinking quiesces the retired lanes: queued elements
     *  drain through their replicas, which then idle until end-of-stream. */
    void set_active( std::size_t n ) noexcept
    {
        if( n < 1 )
        {
            n = 1;
        }
        if( n > width_ )
        {
            n = width_;
        }
        active_.store( n, std::memory_order_release );
    }
    /** Swap the distribution strategy at the next run() quantum. */
    void request_strategy( const split_kind kind ) noexcept
    {
        requested_strategy_.store( static_cast<int>( kind ),
                                   std::memory_order_release );
    }
    const char *strategy_name() const { return strategy_->name(); }
    /** Whether the current strategy fixes each element's destination
     *  (strict round-robin dealing) — the precondition for the elastic
     *  controller's least-utilized retune. */
    bool strategy_strict() const { return strategy_->strict(); }
    ///@}

protected:
    /** Move up to `adapter_burst` elements from `in` to one of `outs`
     *  (strict strategies deal exactly one to keep the sequence); returns
     *  the number moved, 0 when no output could accept any. Override for
     *  custom split behaviour. */
    virtual std::size_t route( fifo_base &in,
                               std::vector<fifo_base *> &outs );

private:
    std::vector<fifo_base *> &cached_outputs();
    /** Apply pending actuation requests; returns the lanes to route to
     *  (prefix [0, active) of the output cache). */
    std::vector<fifo_base *> &routable_outputs();

    std::size_t width_;
    std::unique_ptr<split_strategy> strategy_;
    std::vector<fifo_base *> outs_cache_;
    std::vector<fifo_base *> active_cache_;
    std::size_t cached_active_{ 0 };
    std::optional<std::size_t> pending_choice_;
    detail::backoff idle_;

    /** cross-thread actuation mailboxes (elastic controller → split) **/
    std::atomic<std::size_t> active_;
    std::atomic<int> requested_strategy_{ -1 };
};

/**
 * Default reduce adapter: W inputs, one output, draining inputs in
 * round-robin scan order. Completes when every input stream has drained.
 * Extend and override merge() for custom reduction.
 */
class reduce_kernel : public kernel
{
public:
    reduce_kernel( const detail::type_meta &meta, std::size_t width );

    kstatus run() override;
    bool ready() const override;

protected:
    /** Move up to `adapter_burst` elements from some input to `out` under a
     *  single handshake pair; returns the number moved, 0 when no input had
     *  data. Override for custom merge behaviour. */
    virtual std::size_t merge( std::vector<fifo_base *> &ins,
                               fifo_base &out );

private:
    std::vector<fifo_base *> &cached_inputs();

    std::size_t width_;
    std::size_t scan_{ 0 };
    std::vector<fifo_base *> ins_cache_;
    detail::backoff idle_;
};

/**
 * Arithmetic type-conversion adapter, spliced in by the map's type checker
 * when two linked ports carry different arithmetic types (§4.2: "the
 * run-time selects the narrowest convertible type for each link type and
 * casts the types at each endpoint"). Values are routed through double,
 * which is exact for every integer of ≤ 53 bits magnitude and for float.
 */
class convert_kernel : public kernel
{
public:
    convert_kernel( const detail::type_meta &in_meta,
                    const detail::type_meta &out_meta );

    kstatus run() override;

private:
    detail::backoff idle_;
};

/**
 * One replicated kernel's runtime handles, recorded by the rewrite for the
 * elastic controller: the split adapters feeding the replica lanes (one per
 * original inbound edge), the reduce adapters merging them, and the replica
 * kernels themselves (index 0 is the original).
 */
struct replica_group
{
    std::string kernel_name;
    std::vector<split_kernel *> splits;
    std::vector<reduce_kernel *> reduces;
    std::vector<kernel *> replicas;
};

/**
 * Rewrite pass applied by map::exe() when run_options::enable_auto_parallel
 * is set. `width` is the replica count (usually the core count). Newly
 * created adapters and clones are appended to `owned` so the map can delete
 * them at destruction. Returns the number of kernels replicated.
 *
 * `initial_active` (0 = all) pre-provisions `width` lanes but routes only
 * the first initial_active of them — the elastic runtime's starting point.
 * When `groups` is non-null, one replica_group per replicated kernel is
 * appended for controller registration.
 */
std::size_t apply_auto_parallel(
    topology &topo,
    std::size_t width,
    split_kind strategy,
    std::vector<std::unique_ptr<kernel>> &owned,
    std::size_t initial_active           = 0,
    std::vector<replica_group> *groups   = nullptr );

/**
 * Type-check every edge; splice convert_kernel where both endpoint types
 * are arithmetic but different; throw link_type_exception otherwise.
 */
void apply_type_conversions(
    topology &topo,
    std::vector<std::unique_ptr<kernel>> &owned );

} /** end namespace raft **/
