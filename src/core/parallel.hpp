/**
 * parallel.hpp — automatic parallelization (§4.1).
 *
 * "Automatic parallelization of candidate kernels is accomplished by
 * analyzing the graph for segments that can be replicated preserving the
 * application's semantics (indicated by the user at link time with template
 * parameters). There are default split and reduce adapters that are
 * inserted where needed. Custom split reduce objects can be created by the
 * user by extending the default split / reduce objects."
 *
 * A kernel is a replication candidate when it supports clone() and every
 * stream touching it was linked with raft::out. The rewrite replaces
 *
 *        u ──> k ──> v        with        u ─> split ─> k₀..k_{W-1} ─> reduce ─> v
 *
 * for W replicas. Both adapters are type-erased: they move elements between
 * same-typed streams through fifo_base::try_transfer_to, so one
 * implementation serves every element type.
 */
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/defs.hpp"
#include "core/graph.hpp"
#include "core/kernel.hpp"
#include "core/split_strategy.hpp"

namespace raft {

/**
 * Default split adapter: one input, W outputs, distribution order decided
 * by a split_strategy (round-robin / least-utilized / user-supplied).
 * Extend and override route() for custom distribution.
 */
class split_kernel : public kernel
{
public:
    split_kernel( const detail::type_meta &meta,
                  const std::size_t width,
                  std::unique_ptr<split_strategy> strategy );

    kstatus run() override;
    bool ready() const override;

protected:
    /** Move up to `adapter_burst` elements from `in` to one of `outs`
     *  (strict strategies deal exactly one to keep the sequence); returns
     *  the number moved, 0 when no output could accept any. Override for
     *  custom split behaviour. */
    virtual std::size_t route( fifo_base &in,
                               std::vector<fifo_base *> &outs );

private:
    std::vector<fifo_base *> &cached_outputs();

    std::size_t width_;
    std::unique_ptr<split_strategy> strategy_;
    std::vector<fifo_base *> outs_cache_;
    std::optional<std::size_t> pending_choice_;
    detail::backoff idle_;
};

/**
 * Default reduce adapter: W inputs, one output, draining inputs in
 * round-robin scan order. Completes when every input stream has drained.
 * Extend and override merge() for custom reduction.
 */
class reduce_kernel : public kernel
{
public:
    reduce_kernel( const detail::type_meta &meta, std::size_t width );

    kstatus run() override;
    bool ready() const override;

protected:
    /** Move up to `adapter_burst` elements from some input to `out` under a
     *  single handshake pair; returns the number moved, 0 when no input had
     *  data. Override for custom merge behaviour. */
    virtual std::size_t merge( std::vector<fifo_base *> &ins,
                               fifo_base &out );

private:
    std::vector<fifo_base *> &cached_inputs();

    std::size_t width_;
    std::size_t scan_{ 0 };
    std::vector<fifo_base *> ins_cache_;
    detail::backoff idle_;
};

/**
 * Arithmetic type-conversion adapter, spliced in by the map's type checker
 * when two linked ports carry different arithmetic types (§4.2: "the
 * run-time selects the narrowest convertible type for each link type and
 * casts the types at each endpoint"). Values are routed through double,
 * which is exact for every integer of ≤ 53 bits magnitude and for float.
 */
class convert_kernel : public kernel
{
public:
    convert_kernel( const detail::type_meta &in_meta,
                    const detail::type_meta &out_meta );

    kstatus run() override;

private:
    detail::backoff idle_;
};

/**
 * Rewrite pass applied by map::exe() when run_options::enable_auto_parallel
 * is set. `width` is the replica count (usually the core count). Newly
 * created adapters and clones are appended to `owned` so the map can delete
 * them at destruction. Returns the number of kernels replicated.
 */
std::size_t apply_auto_parallel(
    topology &topo,
    std::size_t width,
    split_kind strategy,
    std::vector<std::unique_ptr<kernel>> &owned );

/**
 * Type-check every edge; splice convert_kernel where both endpoint types
 * are arithmetic but different; throw link_type_exception otherwise.
 */
void apply_type_conversions(
    topology &topo,
    std::vector<std::unique_ptr<kernel>> &owned );

} /** end namespace raft **/
