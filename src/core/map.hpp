/**
 * map.hpp — raft::map: application assembly and execution (§4.2, Figure 3).
 *
 * "RaftLib has an imperative mode of kernel connection via the link
 * function. The link function call has the effect of assigning one output
 * port of a given compute kernel to the input port of another compute
 * kernel. A map object is defined in the raft namespace of which the link
 * function is a member."
 *
 * exe() performs, in order (§4.2):
 *   1. connectivity check ("the graph is first checked to ensure it is
 *      fully connected"),
 *   2. automatic parallelization of clonable kernels on raft::out links,
 *   3. type checking across each link, splicing arithmetic conversion
 *      adapters where the endpoint types are convertible,
 *   4. stream allocation (heap ring buffers by default) and port binding,
 *   5. kernel-to-resource mapping (partition.hpp),
 *   6. monitor start, scheduler execution, monitor stop,
 *   7. statistics collection and teardown.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/kernel.hpp"
#include "core/options.hpp"
#include "runtime/stats.hpp"

namespace raft {

class map
{
public:
    map()  = default;
    ~map() = default;

    map( const map & )            = delete;
    map &operator=( const map & ) = delete;

    /** @name link — connect src's output port to dst's input port.
     *
     * Port names may be omitted when the kernel has exactly one unlinked
     * port on the relevant side (the common case in the paper's examples).
     * The template parameter marks ordering semantics:
     * `map.link< raft::out >(a, b)` permits out-of-order processing and
     * thereby automatic replication of clonable kernels.
     */
    ///@{
    template <order O = in_order>
    kernel_pair link( kernel *src, kernel *dst )
    {
        return link_impl( src, "", dst, "", O );
    }

    template <order O = in_order>
    kernel_pair link( kernel *src, kernel *dst,
                      const std::string &dst_port )
    {
        return link_impl( src, "", dst, dst_port, O );
    }

    template <order O = in_order>
    kernel_pair link( kernel *src, const std::string &src_port,
                      kernel *dst, const std::string &dst_port )
    {
        return link_impl( src, src_port, dst, dst_port, O );
    }
    ///@}

    /** Execute the assembled application to completion. */
    void exe( const run_options &opts = {} );

    /** @name introspection (research platform) */
    ///@{
    const topology &graph() const noexcept { return topo_; }
    std::size_t owned_kernel_count() const noexcept
    {
        return owned_.size();
    }
    ///@}

private:
    kernel_pair link_impl( kernel *src, const std::string &src_port,
                           kernel *dst, const std::string &dst_port,
                           order ord );

    /** Take ownership of kernels created through kernel::make. */
    void adopt( kernel *k );

    /** Single unlinked port name on the given side, or throw. */
    static std::string resolve_port( kernel *k, port_container &ports,
                                     const std::string &requested,
                                     const char *side );

    topology topo_;
    std::vector<std::unique_ptr<kernel>> owned_;
    bool executed_{ false };
};

} /** end namespace raft **/
