/**
 * signal.hpp — in-band (synchronous) and out-of-band (asynchronous) signals.
 *
 * The paper (§4.2) describes two signalling pathways:
 *  - synchronized signals ride with a data element so a downstream kernel
 *    receives the signal at the same time as the corresponding element
 *    (e.g., end-of-file);
 *  - asynchronous signals are immediately visible to downstream kernels
 *    (the paper earmarks this pathway for global exception handling).
 *
 * Every FIFO slot carries a `raft::signal` beside the payload; the
 * `async_signal_bus` implements the immediate pathway.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace raft {

/** Synchronous, element-aligned signal values. */
enum signal : std::uint8_t
{
    none = 0,  /**< ordinary data element                      */
    sos  = 1,  /**< start of stream                            */
    eos  = 2,  /**< end of stream (e.g., end-of-file)          */
    term = 3   /**< request immediate orderly termination      */
};

/**
 * Asynchronous signal bus: one per application run. Kernels may raise a
 * signal that every other kernel can observe on its next check, without
 * waiting for in-band data to flow. Used for global exception/termination
 * propagation.
 */
class async_signal_bus
{
public:
    /** Raise `s`; later raises overwrite earlier ones except `term`,
     *  which is sticky. */
    void raise( const signal s ) noexcept
    {
        if( current_.load( std::memory_order_relaxed ) == term )
        {
            return;
        }
        current_.store( s, std::memory_order_release );
    }

    /** Most recently raised signal (none if nothing raised). */
    signal current() const noexcept
    {
        return current_.load( std::memory_order_acquire );
    }

    bool termination_requested() const noexcept
    {
        return current() == term;
    }

    void reset() noexcept { current_.store( none, std::memory_order_release ); }

private:
    std::atomic<signal> current_{ none };
};

} /** end namespace raft **/
