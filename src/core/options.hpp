/**
 * options.hpp — run_options: every runtime-settable knob of map::exe().
 *
 * "RaftLib supports continuous optimization of a host of run-time settable
 * parameters" (§4); these are the static entry points. Defaults reproduce
 * the paper's description: thread-per-kernel scheduling on the OS scheduler,
 * a 10 µs monitor δ, dynamic queue resizing enabled, automatic
 * parallelization of clonable kernels with the least-utilized split
 * strategy.
 */
#pragma once

#include <chrono>
#include <cstddef>
#include <thread>

#include "mapping/machine.hpp"
#include "runtime/stats.hpp"

namespace raft {

enum class scheduler_kind
{
    thread_per_kernel, /**< default: one OS thread per kernel (§4.1)     */
    pool               /**< cooperative worker pool (research alternate) */
};

enum class split_kind
{
    round_robin,
    least_utilized /**< "queue utilization used to direct data flow to
                        less utilized servers" (§4.1) */
};

struct run_options
{
    /** @name stream allocation */
    ///@{
    std::size_t initial_queue_capacity{ 64 };     /**< items              */
    std::size_t max_queue_capacity{ 1u << 20 };   /**< growth cap (items) */
    ///@}

    /** @name dynamic optimization (monitor thread) */
    ///@{
    bool dynamic_resize{ true };
    std::chrono::nanoseconds monitor_delta{
        std::chrono::microseconds( 10 ) }; /**< the paper's δ            */
    /** Consecutive low-utilization windows before a shrink is attempted. */
    std::size_t shrink_hysteresis{ 64 };
    bool allow_shrink{ false };
    ///@}

    /** @name scheduling & mapping */
    ///@{
    scheduler_kind scheduler{ scheduler_kind::thread_per_kernel };
    std::size_t pool_threads{ 0 };  /**< 0 = hardware_concurrency          */
    /** Pool scheduler: consecutive run() invocations per dispatch while
     *  the kernel stays ready. Larger batches keep a kernel's working
     *  set cache-hot (the cache-conscious scheduling direction the paper
     *  anticipates via Agrawal et al. [3]). */
    std::size_t pool_batch_size{ 1 };
    const mapping::machine_desc *machine{ nullptr }; /**< null = detect   */
    bool pin_threads{ false };      /**< pin kernels per mapper decision   */
    ///@}

    /** @name automatic parallelization (§4.1) */
    ///@{
    bool enable_auto_parallel{ true };
    /** Replicas per clonable kernel; 0 = one per available core. */
    std::size_t replication_width{ 0 };
    split_kind split_strategy{ split_kind::least_utilized };
    ///@}

    /** @name monitoring */
    ///@{
    bool collect_stats{ true };
    /** Filled with the run's statistics at teardown when non-null. */
    runtime::perf_snapshot *stats_out{ nullptr };
    ///@}
};

} /** end namespace raft **/
