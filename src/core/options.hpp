/**
 * options.hpp — run_options: every runtime-settable knob of map::exe().
 *
 * "RaftLib supports continuous optimization of a host of run-time settable
 * parameters" (§4); these are the static entry points. Defaults reproduce
 * the paper's description: thread-per-kernel scheduling on the OS scheduler,
 * a 10 µs monitor δ, dynamic queue resizing enabled, automatic
 * parallelization of clonable kernels with the least-utilized split
 * strategy.
 */
#pragma once

#include <chrono>
#include <cstddef>
#include <thread>

#include "core/restart.hpp"
#include "mapping/machine.hpp"
#include "runtime/stats.hpp"
#include "runtime/telemetry/options.hpp"

namespace raft {

enum class scheduler_kind
{
    thread_per_kernel, /**< default: one OS thread per kernel (§4.1)     */
    pool               /**< cooperative worker pool (research alternate) */
};

enum class split_kind
{
    round_robin,
    least_utilized /**< "queue utilization used to direct data flow to
                        less utilized servers" (§4.1) */
};

/**
 * Elastic runtime (runtime/elastic/): a closed-loop controller on the
 * monitor thread that estimates per-kernel arrival and non-blocking service
 * rates online (EWMA over monitor δ ticks, busy-period-corrected in the
 * style of Beard & Chamberlain's run-time service-rate approximation),
 * classifies bottleneck/underutilized kernels against the M/M/1 flow
 * models, and actuates live: activating/retiring replicas through the
 * split/reduce adapters, predictively growing FIFOs ahead of the monitor's
 * reactive 3δ-blocked trigger, and retuning the split strategy from
 * observed lane skew. Off by default — with enabled == false nothing in
 * the runtime changes.
 */
struct elastic_options
{
    bool enabled{ false };

    /** @name replica bounds (per clonable kernel on raft::out links) */
    ///@{
    std::size_t min_replicas{ 1 };
    /** Lane ceiling; the rewrite pre-provisions this many replicas and the
     *  controller activates between min and max. 0 = one per core. */
    std::size_t max_replicas{ 0 };
    ///@}

    /** @name control loop */
    ///@{
    /** Policy evaluation period (≥ the monitor δ; estimates aggregate
     *  monitor-tick samples in between). */
    std::chrono::nanoseconds control_period{
        std::chrono::microseconds( 500 ) };
    /** Consecutive agreeing control windows before actuation. */
    std::size_t hysteresis{ 3 };
    /** EWMA smoothing factor for the online rate estimates, in (0,1];
     *  higher tracks faster, lower smooths more. */
    double ewma_alpha{ 0.4 };
    ///@}

    /** @name policy thresholds */
    ///@{
    /** Utilization above which a kernel is classified bottleneck. */
    double high_utilization{ 0.85 };
    /** Utilization below which (recomputed at active-1 replicas) a
     *  replica is retired. */
    double low_utilization{ 0.45 };
    /** Split-input occupancy fraction treated as bottleneck evidence even
     *  when the rate estimates disagree (backpressure signal). */
    double pressure_threshold{ 0.75 };
    /** Coefficient of variation across active lane occupancies above
     *  which a strict round-robin split is retuned to least-utilized. */
    double skew_threshold{ 0.5 };
    ///@}

    /** @name actuators */
    ///@{
    /** Grow FIFOs predicted (M/M/1) to exceed capacity before the writer
     *  ever blocks 3δ. Requires dynamic_resize. */
    bool predictive_resize{ true };
    /** Allow the controller to swap split strategies mid-run. */
    bool retune_split{ true };
    ///@}

    /** Filled with the controller's trajectory at teardown when non-null. */
    runtime::elastic_report *report_out{ nullptr };
};

/**
 * Supervised execution (runtime/supervisor.hpp): restart clean-failure
 * kernels in place under their restart_policy, and watch the whole graph
 * for stalls from the monitor thread. Off by default — with enabled ==
 * false a kernel exception cancels the graph exactly as the unsupervised
 * runtime does (the scheduler still aggregates every failure into
 * graph_error either way).
 */
struct supervision_options
{
    bool enabled{ false };

    /** Policy for kernels without an explicit set_restart_policy(). The
     *  default (max_restarts == 0) makes every failure terminal. */
    restart_policy default_restart{};

    /** @name watchdog (rides the monitor thread)
     * Zero graph-wide progress (no stream pushed or popped an element)
     * for longer than this deadline flags the graph as stalled; the
     * supervisor dumps per-kernel occupancy/rate diagnostics and — when
     * watchdog_abort is set — cancels the graph so blocked kernels wake
     * with stream_aborted_exception instead of hanging forever.
     * 0 disables the watchdog.
     */
    ///@{
    std::chrono::nanoseconds watchdog_deadline{ 0 };
    bool watchdog_abort{ true };
    ///@}

    /** Filled with the supervisor's history at teardown when non-null. */
    runtime::supervision_report *report_out{ nullptr };
};

namespace analysis {
struct report; /** src/analysis/analysis.hpp **/
} /** end namespace analysis **/

/**
 * Static analysis (src/analysis/): map::exe() runs the raft::analyze graph
 * linter over the assembled topology before any rewrite or allocation and,
 * by default, refuses to execute a graph with error-severity diagnostics
 * (throwing analysis_error, which aggregates them all). Warnings and notes
 * never block execution. Disable `enabled` to skip the pass entirely, or
 * `fail_on_error` to run it purely for the report.
 */
struct analysis_options
{
    /** Run the linter inside exe(). */
    bool enabled{ true };
    /** Throw analysis_error when the report contains errors. */
    bool fail_on_error{ true };
    /** Escalate warning diagnostics to fail the run too. */
    bool warnings_as_errors{ false };
    /** Filled with the full report (errors, warnings and notes) when
     *  non-null — also on the throwing path, before the throw. */
    analysis::report *report_out{ nullptr };
};

struct run_options
{
    /** @name stream allocation */
    ///@{
    std::size_t initial_queue_capacity{ 64 };     /**< items              */
    std::size_t max_queue_capacity{ 1u << 20 };   /**< growth cap (items) */
    ///@}

    /** @name dynamic optimization (monitor thread) */
    ///@{
    bool dynamic_resize{ true };
    std::chrono::nanoseconds monitor_delta{
        std::chrono::microseconds( 10 ) }; /**< the paper's δ            */
    /** Consecutive low-utilization windows before a shrink is attempted. */
    std::size_t shrink_hysteresis{ 64 };
    bool allow_shrink{ false };
    ///@}

    /** @name scheduling & mapping */
    ///@{
    scheduler_kind scheduler{ scheduler_kind::thread_per_kernel };
    std::size_t pool_threads{ 0 };  /**< 0 = hardware_concurrency          */
    /** Pool scheduler: consecutive run() invocations per dispatch while
     *  the kernel stays ready. Larger batches keep a kernel's working
     *  set cache-hot (the cache-conscious scheduling direction the paper
     *  anticipates via Agrawal et al. [3]). */
    std::size_t pool_batch_size{ 1 };
    const mapping::machine_desc *machine{ nullptr }; /**< null = detect   */
    bool pin_threads{ false };      /**< pin kernels per mapper decision   */
    ///@}

    /** @name automatic parallelization (§4.1) */
    ///@{
    bool enable_auto_parallel{ true };
    /** Replicas per clonable kernel; 0 = one per available core. */
    std::size_t replication_width{ 0 };
    split_kind split_strategy{ split_kind::least_utilized };
    ///@}

    /** @name monitoring */
    ///@{
    bool collect_stats{ true };
    /** Filled with the run's statistics at teardown when non-null. */
    runtime::perf_snapshot *stats_out{ nullptr };
    ///@}

    /** @name elastic runtime (online bottleneck adaptation) */
    ///@{
    elastic_options elastic{};
    ///@}

    /** @name fault tolerance (supervised execution & watchdog) */
    ///@{
    supervision_options supervision{};
    ///@}

    /** @name observability (runtime/telemetry/: tracer, metrics registry,
     *  Prometheus / Chrome-trace exporters) */
    ///@{
    telemetry_options telemetry{};
    ///@}

    /** @name static analysis (src/analysis/: exe()-time graph linter) */
    ///@{
    analysis_options analysis{};
    ///@}
};

} /** end namespace raft **/
