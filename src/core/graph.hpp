/**
 * graph.hpp — application topology: the kernels and the typed streams
 * connecting them, as assembled by map::link() calls. The runtime validates,
 * optionally rewrites (automatic parallelization, type conversion) and then
 * materializes this structure at exe() time.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/kernel.hpp"

namespace raft {

/** Link ordering semantics selected at link time via template parameter:
 *  `map.link< raft::out >(...)` marks the stream safe for out-of-order
 *  processing, making the downstream kernel a candidate for automatic
 *  replication (§4.1). */
enum order : int
{
    in_order = 0,
    out      = 1
};

struct edge
{
    kernel *src;
    std::string src_port;
    kernel *dst;
    std::string dst_port;
    order ord{ in_order };
};

/**
 * The assembled application graph. Kernel pointers are non-owning here;
 * ownership lives with the map (for kernel::make-allocated kernels) or the
 * caller.
 */
class topology
{
public:
    /** Registers k if unseen; returns its index. */
    std::size_t add_kernel( kernel *k )
    {
        for( std::size_t i = 0; i < kernels_.size(); ++i )
        {
            if( kernels_[ i ] == k )
            {
                return i;
            }
        }
        kernels_.push_back( k );
        return kernels_.size() - 1;
    }

    void add_edge( edge e )
    {
        add_kernel( e.src );
        add_kernel( e.dst );
        edges_.push_back( std::move( e ) );
    }

    const std::vector<kernel *> &kernels() const noexcept { return kernels_; }
    const std::vector<edge> &edges() const noexcept { return edges_; }
    std::vector<edge> &edges() noexcept { return edges_; }

    std::vector<const edge *> out_edges( const kernel *k ) const
    {
        std::vector<const edge *> r;
        for( const auto &e : edges_ )
        {
            if( e.src == k )
            {
                r.push_back( &e );
            }
        }
        return r;
    }

    std::vector<const edge *> in_edges( const kernel *k ) const
    {
        std::vector<const edge *> r;
        for( const auto &e : edges_ )
        {
            if( e.dst == k )
            {
                r.push_back( &e );
            }
        }
        return r;
    }

    bool empty() const noexcept { return edges_.empty(); }

    /**
     * True when the undirected version of the graph is connected — the
     * paper's first exe()-time check ("the graph is first checked to ensure
     * it is fully connected", §4.2).
     */
    bool connected() const
    {
        if( kernels_.empty() )
        {
            return false;
        }
        std::vector<bool> seen( kernels_.size(), false );
        std::vector<std::size_t> stack{ 0 };
        seen[ 0 ] = true;
        std::size_t visited = 1;
        while( !stack.empty() )
        {
            const auto i = stack.back();
            stack.pop_back();
            const kernel *k = kernels_[ i ];
            for( const auto &e : edges_ )
            {
                const kernel *peer = nullptr;
                if( e.src == k )
                {
                    peer = e.dst;
                }
                else if( e.dst == k )
                {
                    peer = e.src;
                }
                if( peer == nullptr )
                {
                    continue;
                }
                const auto j = index_of( peer );
                if( !seen[ j ] )
                {
                    seen[ j ] = true;
                    ++visited;
                    stack.push_back( j );
                }
            }
        }
        return visited == kernels_.size();
    }

    /** @name introspection accessors (raft::analyze, tooling)
     * Index-based views of the graph structure; indices are positions in
     * kernels(). Rebuilt per call — analysis-time use only, not hot-path.
     */
    ///@{
    /** Directed adjacency: adjacency()[i] lists the kernel indices that
     *  kernels()[i] feeds (one entry per edge, so multi-edges repeat). */
    std::vector<std::vector<std::size_t>> adjacency() const
    {
        std::vector<std::vector<std::size_t>> adj( kernels_.size() );
        for( const auto &e : edges_ )
        {
            adj[ index_of( e.src ) ].push_back( index_of( e.dst ) );
        }
        return adj;
    }

    /** Weakly-connected components, each a list of kernel indices in
     *  discovery order. connected() == (components().size() == 1). */
    std::vector<std::vector<std::size_t>> weak_components() const
    {
        std::vector<std::vector<std::size_t>> comps;
        std::vector<bool> seen( kernels_.size(), false );
        for( std::size_t start = 0; start < kernels_.size(); ++start )
        {
            if( seen[ start ] )
            {
                continue;
            }
            comps.emplace_back();
            std::vector<std::size_t> stack{ start };
            seen[ start ] = true;
            while( !stack.empty() )
            {
                const auto i = stack.back();
                stack.pop_back();
                comps.back().push_back( i );
                const kernel *k = kernels_[ i ];
                for( const auto &e : edges_ )
                {
                    const kernel *peer =
                        e.src == k ? e.dst : ( e.dst == k ? e.src : nullptr );
                    if( peer == nullptr )
                    {
                        continue;
                    }
                    const auto j = index_of( peer );
                    if( !seen[ j ] )
                    {
                        seen[ j ] = true;
                        stack.push_back( j );
                    }
                }
            }
        }
        return comps;
    }

    std::size_t in_degree( const kernel *k ) const
    {
        std::size_t n = 0;
        for( const auto &e : edges_ )
        {
            n += ( e.dst == k ) ? 1 : 0;
        }
        return n;
    }

    std::size_t out_degree( const kernel *k ) const
    {
        std::size_t n = 0;
        for( const auto &e : edges_ )
        {
            n += ( e.src == k ) ? 1 : 0;
        }
        return n;
    }
    ///@}

    std::size_t index_of( const kernel *k ) const
    {
        for( std::size_t i = 0; i < kernels_.size(); ++i )
        {
            if( kernels_[ i ] == k )
            {
                return i;
            }
        }
        return static_cast<std::size_t>( -1 );
    }

private:
    std::vector<kernel *> kernels_;
    std::vector<edge> edges_;
};

} /** end namespace raft **/
