#include "core/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "core/defs.hpp"
#include "core/exceptions.hpp"
#include "runtime/inject.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/trace.hpp"

#if defined( __linux__ )
#include <pthread.h>
#include <sched.h>
#endif

namespace raft {

namespace detail {

void close_kernel_streams( kernel &k )
{
    for( auto &p : k.output )
    {
        if( p.bound() )
        {
            p.raw().close_write();
        }
    }
    for( auto &p : k.input )
    {
        if( p.bound() )
        {
            p.raw().close_read();
        }
    }
}

void exec_context::fail( const kernel &k, const std::string &what )
{
    fail_named( k.name(), what );
}

void exec_context::fail_named( const std::string &name,
                               const std::string &what )
{
    {
        const std::lock_guard<std::mutex> lock( mutex_ );
        failures_.push_back( failure_info{ name, what } );
    }
    cancel();
}

void exec_context::cancel()
{
    if( cancelled.exchange( true, std::memory_order_acq_rel ) )
    {
        return;
    }
    if( telemetry::metrics_on() )
    {
        telemetry::graph_cancellations_total().add();
    }
    if( telemetry::tracing() )
    {
        telemetry::instant_str( "graph_cancel",
                                telemetry::cat::scheduler );
    }
    if( kernels == nullptr )
    {
        return;
    }
    /** raise termination on the shared bus (all kernels see one bus) **/
    for( kernel *k : *kernels )
    {
        if( k->bus() != nullptr )
        {
            k->bus()->raise( raft::term );
            break;
        }
    }
    /** poison every stream: blocked peers wake with
     *  stream_aborted_exception instead of waiting on data that will
     *  never arrive. Each stream is bound to an output and an input
     *  port; abort() is idempotent, so sweeping both sides is fine. **/
    for( kernel *k : *kernels )
    {
        for( auto &p : k->output )
        {
            if( p.bound() )
            {
                p.raw().abort();
            }
        }
        for( auto &p : k->input )
        {
            if( p.bound() )
            {
                p.raw().abort();
            }
        }
    }
}

void exec_context::throw_if_failed()
{
    std::vector<failure_info> f;
    {
        const std::lock_guard<std::mutex> lock( mutex_ );
        f.swap( failures_ );
    }
    if( !f.empty() )
    {
        throw graph_error( std::move( f ) );
    }
}

namespace {

/** Sleep `d`, waking early if the graph is cancelled meanwhile. */
void cancellable_sleep( exec_context &ctx, const std::chrono::nanoseconds d )
{
    const auto deadline = now_ns() + d.count();
    while( !ctx.cancelled.load( std::memory_order_acquire ) )
    {
        const auto remaining = deadline - now_ns();
        if( remaining <= 0 )
        {
            return;
        }
        std::this_thread::sleep_for( std::chrono::nanoseconds(
            std::min<std::int64_t>( remaining, 1'000'000 ) ) );
    }
}

/**
 * Classify one escaped exception from kernel k's run():
 *  - restart granted by the supervisor → true (caller re-enters run())
 *  - terminal → false, failure recorded, graph cancelled
 */
bool handle_kernel_failure( kernel &k, exec_context &ctx,
                            const std::string &what )
{
    if( ctx.sup != nullptr &&
        !ctx.cancelled.load( std::memory_order_acquire ) )
    {
        const auto v = ctx.sup->on_failure( k, what );
        if( v.restart )
        {
            cancellable_sleep( ctx, v.backoff );
            if( !ctx.cancelled.load( std::memory_order_acquire ) )
            {
                k.on_restart();
                return true;
            }
            return false;
        }
    }
    ctx.fail( k, what );
    return false;
}

} /** end anonymous namespace **/

void kernel_loop( kernel &k, exec_context &ctx )
{
    /** telemetry session attaches the probe before the scheduler starts;
     *  untelemetered runs see a null pointer and none of the clock or
     *  counter traffic below **/
    auto *const probe = k.probe();
    const auto life_start =
        probe != nullptr ? now_ns() : std::int64_t{ 0 };
    if( probe != nullptr && telemetry::tracing() )
    {
        telemetry::name_thread( k.name() );
    }
    for( ;; ) /** restart loop (supervised runs re-enter here) **/
    {
        try
        {
            for( ;; )
            {
                if( k.bus() != nullptr && k.bus()->termination_requested() )
                {
                    break;
                }
                runtime::inject::maybe_throw( "kernel.run", k.name() );
                if( probe != nullptr )
                {
                    /** service-time accounting: runs, busy ns, and the
                     *  per-invocation duration histogram feed the
                     *  raft_kernel_* series (§4.1 service rates) **/
                    const auto t0 = now_ns();
                    const auto st = k.run();
                    const auto dt =
                        static_cast<std::uint64_t>( now_ns() - t0 );
                    probe->busy_ns->add( dt );
                    probe->runs->add( 1 );
                    probe->run_hist->observe( dt );
                    if( st == raft::stop )
                    {
                        break;
                    }
                }
                else if( k.run() == raft::stop )
                {
                    break;
                }
            }
        }
        catch( const closed_port_exception & )
        {
            /** normal end-of-stream control flow **/
        }
        catch( const stream_aborted_exception &e )
        {
            /** cancellation wake-up — silent when the graph is already
             *  being torn down; an externally poisoned stream (fault
             *  injection) counts as this kernel's terminal failure and
             *  starts the cancellation itself **/
            if( !ctx.cancelled.load( std::memory_order_acquire ) )
            {
                ctx.fail( k, e.what() );
            }
        }
        catch( const std::exception &e )
        {
            if( handle_kernel_failure( k, ctx, e.what() ) )
            {
                continue;
            }
        }
        catch( ... )
        {
            if( handle_kernel_failure( k, ctx, "unknown exception" ) )
            {
                continue;
            }
        }
        break;
    }
    close_kernel_streams( k );
    if( probe != nullptr )
    {
        /** whole-lifetime span: run + blocked time on this thread **/
        telemetry::span( probe->trace_name, telemetry::cat::kernel,
                         life_start, now_ns() );
    }
}

namespace {

void pin_to_core( [[maybe_unused]] const unsigned core_id )
{
#if defined( __linux__ )
    cpu_set_t set;
    CPU_ZERO( &set );
    CPU_SET( core_id % std::max( 1u, std::thread::hardware_concurrency() ),
             &set );
    (void) pthread_setaffinity_np( pthread_self(), sizeof( set ), &set );
#endif
}

} /** end anonymous namespace **/

} /** end namespace detail **/

/* ------------------------------------------------------------------ */
/* thread-per-kernel (default)                                          */
/* ------------------------------------------------------------------ */

void thread_scheduler::execute( const std::vector<kernel *> &kernels,
                                const run_options &opts,
                                const mapping::assignment *assign,
                                const mapping::machine_desc &machine )
{
    (void) machine;
    detail::exec_context ctx;
    ctx.kernels = &kernels;
    ctx.sup     = sup_;
    if( sup_ != nullptr )
    {
        sup_->set_canceller( [ &ctx ]( const std::string &reason ) {
            ctx.fail_named( "<watchdog>", reason );
        } );
    }
    std::vector<std::thread> threads;
    threads.reserve( kernels.size() );
    for( std::size_t i = 0; i < kernels.size(); ++i )
    {
        kernel *k = kernels[ i ];
        const unsigned core =
            ( assign != nullptr && i < assign->core_of.size() )
                ? assign->core_of[ i ]
                : 0u;
        const bool pin = opts.pin_threads && assign != nullptr;
        threads.emplace_back( [ k, core, pin, &ctx ]() {
            if( pin )
            {
                detail::pin_to_core( core );
            }
            detail::kernel_loop( *k, ctx );
        } );
    }
    for( auto &t : threads )
    {
        t.join();
    }
    if( sup_ != nullptr )
    {
        sup_->clear_canceller();
    }
    ctx.throw_if_failed();
}

/* ------------------------------------------------------------------ */
/* cooperative pool                                                     */
/* ------------------------------------------------------------------ */

void pool_scheduler::execute( const std::vector<kernel *> &kernels,
                              const run_options &opts,
                              const mapping::assignment *assign,
                              const mapping::machine_desc &machine )
{
    (void) assign;
    (void) machine;
    enum : int
    {
        idle    = 0,
        running = 1,
        done    = 2
    };
    const std::size_t n = kernels.size();
    std::vector<std::atomic<int>> state( n );
    for( auto &s : state )
    {
        s.store( idle, std::memory_order_relaxed );
    }
    /** supervised restarts must not put a worker to sleep: a restarting
     *  kernel instead becomes eligible again at retry_at[i] **/
    std::vector<std::atomic<std::int64_t>> retry_at( n );
    for( auto &r : retry_at )
    {
        r.store( 0, std::memory_order_relaxed );
    }
    std::atomic<std::size_t> done_count{ 0 };
    detail::exec_context ctx;
    ctx.kernels = &kernels;
    ctx.sup     = sup_;
    if( sup_ != nullptr )
    {
        sup_->set_canceller( [ &ctx ]( const std::string &reason ) {
            ctx.fail_named( "<watchdog>", reason );
        } );
    }

    const auto worker_count = std::max<std::size_t>(
        1, opts.pool_threads != 0 ? opts.pool_threads
                                  : std::thread::hardware_concurrency() );
    const auto batch = std::max<std::size_t>( 1, opts.pool_batch_size );

    auto worker = [ & ]() {
        if( telemetry::tracing() )
        {
            telemetry::name_thread( "pool_worker" );
        }
        detail::backoff idle_backoff;
        while( done_count.load( std::memory_order_acquire ) < n )
        {
            bool progressed = false;
            for( std::size_t i = 0; i < n; ++i )
            {
                if( retry_at[ i ].load( std::memory_order_acquire ) >
                    detail::now_ns() )
                {
                    continue; /** backing off before a restart **/
                }
                int expect = idle;
                if( !state[ i ].compare_exchange_strong(
                        expect, running, std::memory_order_acq_rel ) )
                {
                    continue;
                }
                kernel *k = kernels[ i ];
                bool finished = false;
                if( ( k->bus() != nullptr &&
                      k->bus()->termination_requested() ) ||
                    ctx.cancelled.load( std::memory_order_acquire ) )
                {
                    finished = true;
                }
                else if( k->ready() )
                {
                    try
                    {
                        runtime::inject::maybe_throw( "kernel.run",
                                                      k->name() );
                        /** batched dispatch: amortize scheduling cost
                         *  and keep the kernel's working set cache-hot
                         *  while it stays ready **/
                        auto *const probe = k->probe();
                        const auto batch_t0 =
                            probe != nullptr ? detail::now_ns()
                                             : std::int64_t{ 0 };
                        std::size_t executed = 0;
                        for( std::size_t b = 0; b < batch; ++b )
                        {
                            const auto st = k->run();
                            ++executed;
                            if( st == raft::stop )
                            {
                                finished = true;
                                break;
                            }
                            if( b + 1 < batch && !k->ready() )
                            {
                                break;
                            }
                        }
                        if( probe != nullptr && executed != 0 )
                        {
                            /** batch-granular accounting: one clock pair
                             *  per dispatch, runs counted exactly **/
                            const auto batch_t1 = detail::now_ns();
                            const auto dt = static_cast<std::uint64_t>(
                                batch_t1 - batch_t0 );
                            probe->busy_ns->add( dt );
                            probe->runs->add( executed );
                            probe->run_hist->observe( dt / executed );
                            if( telemetry::tracing() )
                            {
                                /** one span per dispatch — the pool's
                                 *  scheduling quantum, not per run() **/
                                telemetry::span( probe->trace_name,
                                                 telemetry::cat::kernel,
                                                 batch_t0, batch_t1 );
                            }
                        }
                    }
                    catch( const closed_port_exception & )
                    {
                        finished = true;
                    }
                    catch( const stream_aborted_exception &e )
                    {
                        if( !ctx.cancelled.load(
                                std::memory_order_acquire ) )
                        {
                            ctx.fail( *k, e.what() );
                        }
                        finished = true;
                    }
                    catch( const std::exception &e )
                    {
                        finished = !pool_retry( *k, ctx, e.what(),
                                                retry_at[ i ] );
                    }
                    catch( ... )
                    {
                        finished = !pool_retry( *k, ctx,
                                                "unknown exception",
                                                retry_at[ i ] );
                    }
                    progressed = true;
                }
                if( finished )
                {
                    detail::close_kernel_streams( *k );
                    state[ i ].store( done, std::memory_order_release );
                    done_count.fetch_add( 1, std::memory_order_acq_rel );
                }
                else
                {
                    state[ i ].store( idle, std::memory_order_release );
                }
            }
            if( progressed )
            {
                idle_backoff.reset();
            }
            else
            {
                idle_backoff.pause();
            }
        }
    };

    std::vector<std::thread> workers;
    for( std::size_t w = 0; w < worker_count; ++w )
    {
        workers.emplace_back( worker );
    }
    for( auto &t : workers )
    {
        t.join();
    }
    if( sup_ != nullptr )
    {
        sup_->clear_canceller();
    }
    ctx.throw_if_failed();
}

/**
 * Pool-side failure handling: consult the supervisor; a granted restart
 * arms the kernel's retry-eligibility time (no worker sleeps) and invokes
 * on_restart() here, before the kernel goes back to idle. Returns true
 * when the kernel will be retried.
 */
bool pool_scheduler::pool_retry( kernel &k, detail::exec_context &ctx,
                                 const std::string &what,
                                 std::atomic<std::int64_t> &retry_at )
{
    if( ctx.sup != nullptr &&
        !ctx.cancelled.load( std::memory_order_acquire ) )
    {
        const auto v = ctx.sup->on_failure( k, what );
        if( v.restart )
        {
            k.on_restart();
            retry_at.store( detail::now_ns() + v.backoff.count(),
                            std::memory_order_release );
            return true;
        }
    }
    ctx.fail( k, what );
    return false;
}

std::unique_ptr<ischeduler> make_scheduler( const scheduler_kind kind )
{
    switch( kind )
    {
        case scheduler_kind::pool:
            return std::make_unique<pool_scheduler>();
        case scheduler_kind::thread_per_kernel:
        default:
            return std::make_unique<thread_scheduler>();
    }
}

} /** end namespace raft **/
