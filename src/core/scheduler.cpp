#include "core/scheduler.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "core/defs.hpp"
#include "core/exceptions.hpp"

#if defined( __linux__ )
#include <pthread.h>
#include <sched.h>
#endif

namespace raft {

namespace detail {

void close_kernel_streams( kernel &k )
{
    for( auto &p : k.output )
    {
        if( p.bound() )
        {
            p.raw().close_write();
        }
    }
    for( auto &p : k.input )
    {
        if( p.bound() )
        {
            p.raw().close_read();
        }
    }
}

void kernel_loop( kernel &k, std::exception_ptr &error,
                  std::mutex &error_mutex )
{
    try
    {
        for( ;; )
        {
            if( k.bus() != nullptr && k.bus()->termination_requested() )
            {
                break;
            }
            if( k.run() == raft::stop )
            {
                break;
            }
        }
    }
    catch( const closed_port_exception & )
    {
        /** normal end-of-stream control flow **/
    }
    catch( ... )
    {
        {
            const std::lock_guard<std::mutex> lock( error_mutex );
            if( !error )
            {
                error = std::current_exception();
            }
        }
        if( k.bus() != nullptr )
        {
            k.bus()->raise( raft::term );
        }
    }
    close_kernel_streams( k );
}

namespace {

void pin_to_core( [[maybe_unused]] const unsigned core_id )
{
#if defined( __linux__ )
    cpu_set_t set;
    CPU_ZERO( &set );
    CPU_SET( core_id % std::max( 1u, std::thread::hardware_concurrency() ),
             &set );
    (void) pthread_setaffinity_np( pthread_self(), sizeof( set ), &set );
#endif
}

} /** end anonymous namespace **/

} /** end namespace detail **/

/* ------------------------------------------------------------------ */
/* thread-per-kernel (default)                                          */
/* ------------------------------------------------------------------ */

void thread_scheduler::execute( const std::vector<kernel *> &kernels,
                                const run_options &opts,
                                const mapping::assignment *assign,
                                const mapping::machine_desc &machine )
{
    (void) machine;
    std::exception_ptr error;
    std::mutex error_mutex;
    std::vector<std::thread> threads;
    threads.reserve( kernels.size() );
    for( std::size_t i = 0; i < kernels.size(); ++i )
    {
        kernel *k = kernels[ i ];
        const unsigned core =
            ( assign != nullptr && i < assign->core_of.size() )
                ? assign->core_of[ i ]
                : 0u;
        const bool pin = opts.pin_threads && assign != nullptr;
        threads.emplace_back( [ k, core, pin, &error, &error_mutex ]() {
            if( pin )
            {
                detail::pin_to_core( core );
            }
            detail::kernel_loop( *k, error, error_mutex );
        } );
    }
    for( auto &t : threads )
    {
        t.join();
    }
    if( error )
    {
        std::rethrow_exception( error );
    }
}

/* ------------------------------------------------------------------ */
/* cooperative pool                                                     */
/* ------------------------------------------------------------------ */

void pool_scheduler::execute( const std::vector<kernel *> &kernels,
                              const run_options &opts,
                              const mapping::assignment *assign,
                              const mapping::machine_desc &machine )
{
    (void) assign;
    (void) machine;
    enum : int
    {
        idle    = 0,
        running = 1,
        done    = 2
    };
    const std::size_t n = kernels.size();
    std::vector<std::atomic<int>> state( n );
    for( auto &s : state )
    {
        s.store( idle, std::memory_order_relaxed );
    }
    std::atomic<std::size_t> done_count{ 0 };
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto worker_count = std::max<std::size_t>(
        1, opts.pool_threads != 0 ? opts.pool_threads
                                  : std::thread::hardware_concurrency() );
    const auto batch = std::max<std::size_t>( 1, opts.pool_batch_size );

    auto worker = [ & ]() {
        detail::backoff idle_backoff;
        while( done_count.load( std::memory_order_acquire ) < n )
        {
            bool progressed = false;
            for( std::size_t i = 0; i < n; ++i )
            {
                int expect = idle;
                if( !state[ i ].compare_exchange_strong(
                        expect, running, std::memory_order_acq_rel ) )
                {
                    continue;
                }
                kernel *k = kernels[ i ];
                bool finished = false;
                if( k->bus() != nullptr &&
                    k->bus()->termination_requested() )
                {
                    finished = true;
                }
                else if( k->ready() )
                {
                    try
                    {
                        /** batched dispatch: amortize scheduling cost
                         *  and keep the kernel's working set cache-hot
                         *  while it stays ready **/
                        for( std::size_t b = 0; b < batch; ++b )
                        {
                            if( k->run() == raft::stop )
                            {
                                finished = true;
                                break;
                            }
                            if( b + 1 < batch && !k->ready() )
                            {
                                break;
                            }
                        }
                    }
                    catch( const closed_port_exception & )
                    {
                        finished = true;
                    }
                    catch( ... )
                    {
                        {
                            const std::lock_guard<std::mutex> lock(
                                error_mutex );
                            if( !error )
                            {
                                error = std::current_exception();
                            }
                        }
                        if( k->bus() != nullptr )
                        {
                            k->bus()->raise( raft::term );
                        }
                        finished = true;
                    }
                    progressed = true;
                }
                if( finished )
                {
                    detail::close_kernel_streams( *k );
                    state[ i ].store( done, std::memory_order_release );
                    done_count.fetch_add( 1, std::memory_order_acq_rel );
                }
                else
                {
                    state[ i ].store( idle, std::memory_order_release );
                }
            }
            if( progressed )
            {
                idle_backoff.reset();
            }
            else
            {
                idle_backoff.pause();
            }
        }
    };

    std::vector<std::thread> workers;
    for( std::size_t w = 0; w < worker_count; ++w )
    {
        workers.emplace_back( worker );
    }
    for( auto &t : workers )
    {
        t.join();
    }
    if( error )
    {
        std::rethrow_exception( error );
    }
}

std::unique_ptr<ischeduler> make_scheduler( const scheduler_kind kind )
{
    switch( kind )
    {
        case scheduler_kind::pool:
            return std::make_unique<pool_scheduler>();
        case scheduler_kind::thread_per_kernel:
        default:
            return std::make_unique<thread_scheduler>();
    }
}

} /** end namespace raft **/
