/**
 * fifo.hpp — the stream abstraction.
 *
 * Every communication link between two compute kernels is a FIFO queue
 * (paper §1). This header defines:
 *
 *  - fifo_base : the type-erased interface the runtime (monitor thread,
 *                split/reduce adapters, allocator, statistics) works with;
 *  - fifo<T>   : the typed interface kernels use through their ports, with
 *                blocking push/pop, claim-based peek, sliding-window
 *                peek_range (§3), and try_* variants for adapters;
 *  - autorelease<T> / allocate_ref<T> : the RAII return objects behind the
 *                pop_s / allocate_s accessors of Figure 2 — items are popped
 *                from the incoming queue / published to the outgoing queue
 *                when the object exits the calling scope;
 *  - peek_range_t<T> : a window over n queued items without copying.
 *
 * Concrete implementation: ring_buffer<T> (ringbuffer.hpp); the TCP link of
 * the distributed substrate wraps a ring_buffer with pump threads
 * (net/tcp_link.hpp), so kernels observe identical semantics either way.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <typeinfo>
#include <utility>

#include "core/exceptions.hpp"
#include "core/signal.hpp"

namespace raft {

template <class T> class fifo;
template <class T> class autorelease;
template <class T> class allocate_ref;
template <class T> class peek_range_t;
template <class T> class write_window_t;
template <class T> class read_window_t;

/**
 * Type-erased FIFO interface. The runtime never needs to know the element
 * type: occupancy monitoring, dynamic resizing, element transfer between
 * same-typed queues (split/reduce adapters) and arithmetic conversion all
 * operate through this interface.
 */
class fifo_base
{
public:
    virtual ~fifo_base() = default;

    /** @name occupancy */
    ///@{
    virtual std::size_t size() const noexcept          = 0;
    virtual std::size_t capacity() const noexcept      = 0;
    virtual std::size_t space_avail() const noexcept   = 0;
    ///@}

    /** @name lifecycle
     * A producer-side close makes end-of-stream observable: once the queue
     * drains, blocked readers receive closed_port_exception. A reader-side
     * close (issued by the runtime when the consuming kernel terminates
     * early) unblocks and terminates producers the same way.
     */
    ///@{
    virtual void close_write() noexcept        = 0;
    virtual bool write_closed() const noexcept = 0;
    virtual void close_read() noexcept         = 0;
    virtual bool read_closed() const noexcept  = 0;
    bool drained() const noexcept { return write_closed() && size() == 0; }

    /**
     * Graph-wide cancellation: poison the stream. Every blocked (or about
     * to block) push/pop/claim wakes with stream_aborted_exception instead
     * of spinning on a live queue whose peers will never make progress
     * again. Elements still queued are abandoned — an aborted stream's
     * data is by definition incomplete. Idempotent, safe from any thread.
     */
    virtual void abort() noexcept        = 0;
    virtual bool aborted() const noexcept = 0;
    ///@}

    /** @name dynamic resizing (monitor thread)
     * resize() parks both queue ends via the gate protocol (see
     * ring_buffer), relocates elements unwrapped, and swaps storage. It
     * gives up and returns false if an end cannot be parked within a bounded
     * wait (the monitor simply retries next tick, §4's "only under certain
     * conditions to maximize resizing efficiency").
     */
    ///@{
    virtual bool resize( std::size_t new_capacity ) = 0;
    /** Reader overflow demand (peek_range larger than capacity); 0 if none. */
    virtual std::size_t resize_request() const noexcept = 0;
    /** ns timestamp when the writer began blocking; 0 if not blocked. */
    virtual std::int64_t write_blocked_since() const noexcept = 0;
    /** ns timestamp when the reader began blocking; 0 if not blocked. */
    virtual std::int64_t read_blocked_since() const noexcept = 0;
    /** Number of completed resizes over the queue's lifetime. */
    virtual std::size_t resize_count() const noexcept = 0;
    /** Monitor registration: permits reader-overflow demands to grow the
     *  queue instead of throwing demand_exceeds_capacity_exception. */
    virtual void set_auto_resize( bool enabled ) noexcept = 0;
    virtual bool auto_resize() const noexcept             = 0;
    ///@}

    /** Consume n elements without reading them (type-erased so ports can
     *  expose it without a template parameter; releases any held claim). */
    virtual void recycle( std::size_t n = 1 ) = 0;

    /** @name adapters */
    ///@{
    /**
     * Move one element (with its signal) from this queue into dst, which
     * must carry the same element type. Non-blocking: returns false if this
     * queue is empty, dst is full, or the types differ. Used by the default
     * split/reduce adapters so they remain fully type-erased.
     */
    virtual bool try_transfer_to( fifo_base &dst ) = 0;
    /**
     * Batched variant: move up to max_n elements (with their signals) into
     * dst under a single handshake entry per queue end and one index
     * publication per contiguous run. Returns the number moved (0 when this
     * queue is empty, dst is full, or the types differ). May throw
     * closed_port_exception if dst's reader terminated, exactly like
     * try_transfer_to.
     */
    virtual std::size_t try_transfer_n( fifo_base &dst,
                                        std::size_t max_n ) = 0;
    ///@}

    /** @name introspection */
    ///@{
    virtual const std::type_info &value_type() const noexcept = 0;
    virtual std::size_t element_size() const noexcept         = 0;
    /** Monotonic lifetime counters (survive resizes). */
    virtual std::uint64_t total_pushed() const noexcept = 0;
    virtual std::uint64_t total_popped() const noexcept = 0;
    ///@}

    /** @name raw arithmetic access (conversion adapters)
     * The map's type checker inserts a conversion kernel when two linked
     * arithmetic ports disagree on type ("the run-time selects the narrowest
     * convertible type for each link type and casts the types at each
     * endpoint", §4.2). The adapter is type-erased, so it moves values as
     * doubles through these hooks. Only arithmetic-element queues implement
     * them; others return false.
     */
    ///@{
    virtual bool try_pop_as_double( double &out, signal &sig )      = 0;
    virtual bool try_push_from_double( double value, signal sig )   = 0;
    ///@}

    /** @name telemetry (runtime/telemetry/)
     * Interned tracer name ids for this stream's blocked-on-push /
     * blocked-on-pop spans, set by the active telemetry session at stream
     * registration. 0 (the default) means "not traced" — the ring buffer
     * skips span emission entirely, so untraced graphs pay nothing beyond
     * the tracer's one relaxed load.
     */
    ///@{
    void set_telemetry_names( const std::uint32_t push_block,
                              const std::uint32_t pop_block ) noexcept
    {
        tele_push_block_ = push_block;
        tele_pop_block_  = pop_block;
    }
    std::uint32_t telemetry_push_block() const noexcept
    {
        return tele_push_block_;
    }
    std::uint32_t telemetry_pop_block() const noexcept
    {
        return tele_pop_block_;
    }
    ///@}

private:
    std::uint32_t tele_push_block_{ 0 };
    std::uint32_t tele_pop_block_{ 0 };
};

/**
 * Typed FIFO interface. All blocking operations honour end-of-stream: a
 * blocked read on a drained queue throws closed_port_exception, a blocked
 * write on a reader-closed queue likewise — the scheduler treats that
 * exception as normal kernel completion.
 *
 * Claim discipline (single-producer / single-consumer): peek()/peek_range()
 * hold the consumer-side claim so the monitor cannot resize storage out from
 * under a borrowed reference; the claim is released by pop()/recycle()/
 * unpeek() or by the RAII wrapper's destructor.
 */
template <class T> class fifo : public fifo_base
{
public:
    using value_type = T;

    /** @name blocking element operations */
    ///@{
    virtual void push( const T &value, signal sig = none ) = 0;
    virtual void push( T &&value, signal sig = none )      = 0;
    virtual void pop( T &out, signal *sig = nullptr )      = 0;

    /** Borrow the head element; holds the consumer claim (see class docs). */
    virtual const T &peek( signal *sig = nullptr ) = 0;
    /** Release a claim taken by peek() without consuming the element. */
    virtual void unpeek() noexcept = 0;
    ///@}

    /** @name non-blocking variants (adapters, pool scheduler) */
    ///@{
    virtual bool try_push( T &&value, signal sig = none ) = 0;
    virtual bool try_pop( T &out, signal *sig = nullptr ) = 0;
    ///@}

    /** @name claim primitives behind the RAII accessors */
    ///@{
    /** Block until an element is readable, take the consumer claim and
     *  return a reference to the head element. */
    virtual T &claim_head( signal &sig ) = 0;
    /** Consume the claimed head and release the claim. */
    virtual void consume_head() noexcept = 0;
    /** Release the claim without consuming. */
    virtual void release_head() noexcept = 0;
    /** Block until a slot is writable, take the producer claim and return a
     *  pointer to a default-constructed element in place. */
    virtual T *claim_tail() = 0;
    /** Publish the claimed tail slot with signal `sig`, release the claim. */
    virtual void publish_tail( signal sig ) noexcept = 0;
    /** Destroy the claimed tail slot unpublished, release the claim. */
    virtual void abandon_tail() noexcept = 0;
    /** Block until n elements are readable (growing the queue through the
     *  monitor if n exceeds capacity), take the consumer claim and return
     *  the window geometry: base slot array, logical start, index mask. */
    virtual void claim_window( std::size_t n,
                               T **data,
                               std::uint64_t *start,
                               std::size_t *mask ) = 0;
    ///@}

    /** @name batched transfer primitives
     * The window claims are the bulk duals of claim_tail/claim_head: N
     * contiguous slots are acquired under a single resize-gate handshake
     * entry and published/consumed with a single index store. A held window
     * parks the monitor exactly like a held claim_head — the resize protocol
     * is unchanged. Partial semantics: claims return at least 1 and at most
     * max_n slots (whatever is free/occupied when the claim succeeds), so
     * callers batch opportunistically without adding latency.
     */
    ///@{
    /** Move up to n elements from src[0..n) into the queue (non-blocking).
     *  Returns the number actually transferred; moved-from sources are left
     *  in their moved-from state (the caller owns their destruction). sigs
     *  may be null (every element ships signal `none`). */
    virtual std::size_t try_push_n( T *src, std::size_t n,
                                    const signal *sigs = nullptr ) = 0;
    /** Pop up to n elements into dst[0..n) (non-blocking). Returns the
     *  number transferred; sigs (if non-null) receives the per-element
     *  signals. */
    virtual std::size_t try_pop_n( T *dst, std::size_t n,
                                   signal *sigs = nullptr ) = 0;
    /** Block until at least one slot is writable, default-construct
     *  min(max_n, space) slots, take the producer claim and return the
     *  claimed count plus window geometry (slot array, signal array,
     *  logical start, index mask). Throws closed_port_exception when the
     *  reader terminated. */
    virtual std::size_t claim_write_window( std::size_t max_n,
                                            T **data,
                                            signal **sigs,
                                            std::uint64_t *start,
                                            std::size_t *mask ) = 0;
    /** Publish the first n of `claimed` window slots (single index store),
     *  destroy the rest, release the producer claim. */
    virtual void publish_write_window( std::size_t claimed,
                                       std::size_t n ) noexcept = 0;
    /** Block until at least one element is readable, take the consumer
     *  claim and return min(max_n, occupancy) plus the window geometry.
     *  Throws closed_port_exception once drained and closed. */
    virtual std::size_t claim_read_window( std::size_t max_n,
                                           T **data,
                                           signal **sigs,
                                           std::uint64_t *start,
                                           std::size_t *mask ) = 0;
    /** Destroy the first n claimed elements, advance the head with a single
     *  index store, release the consumer claim. */
    virtual void consume_read_window( std::size_t n ) noexcept = 0;
    ///@}

    /** @name sugar: the Figure 2 access style */
    ///@{
    autorelease<T> pop_s() { return autorelease<T>( *this ); }
    allocate_ref<T> allocate_s() { return allocate_ref<T>( *this ); }
    peek_range_t<T> peek_range( const std::size_t n )
    {
        return peek_range_t<T>( *this, n );
    }
    /** Bulk dual of allocate_s(): an RAII window of up to n writable slots,
     *  published at scope exit. */
    write_window_t<T> write_window( const std::size_t n )
    {
        return write_window_t<T>( *this, n );
    }
    /** Bulk dual of pop_s(): an RAII window over up to n readable elements,
     *  consumed at scope exit. */
    read_window_t<T> read_window( const std::size_t n )
    {
        return read_window_t<T>( *this, n );
    }
    ///@}

    /** @name blocking bulk helpers (window-based, single publication per
     *  claimed run) */
    ///@{
    /** Push all n elements of src, blocking as needed; the signals array
     *  (when non-null) travels element-for-element. */
    void push_n( T *src, const std::size_t n, const signal *sigs = nullptr )
    {
        std::size_t done = 0;
        while( done < n )
        {
            T *data            = nullptr;
            signal *slot_sigs  = nullptr;
            std::uint64_t start = 0;
            std::size_t mask    = 0;
            const auto k = claim_write_window( n - done, &data, &slot_sigs,
                                               &start, &mask );
            for( std::size_t i = 0; i < k; ++i )
            {
                data[ ( start + i ) & mask ] = std::move( src[ done + i ] );
                if( sigs != nullptr )
                {
                    slot_sigs[ ( start + i ) & mask ] = sigs[ done + i ];
                }
            }
            publish_write_window( k, k );
            done += k;
        }
    }

    /** Pop between 1 and max_n elements into dst, blocking until at least
     *  one is available. Returns the count. */
    std::size_t pop_n( T *dst, const std::size_t max_n,
                       signal *sigs = nullptr )
    {
        T *data            = nullptr;
        signal *slot_sigs  = nullptr;
        std::uint64_t start = 0;
        std::size_t mask    = 0;
        const auto k = claim_read_window( max_n, &data, &slot_sigs, &start,
                                          &mask );
        for( std::size_t i = 0; i < k; ++i )
        {
            dst[ i ] = std::move( data[ ( start + i ) & mask ] );
            if( sigs != nullptr )
            {
                sigs[ i ] = slot_sigs[ ( start + i ) & mask ];
            }
        }
        consume_read_window( k );
        return k;
    }
    ///@}

    const std::type_info &value_type_info() const noexcept
    {
        return typeid( T );
    }
};

/**
 * RAII result of pop_s(): a reference to the head of the incoming queue that
 * pops automatically "when the variable exits the calling scope" (§4.2). The
 * associated synchronous signal is available through sig().
 */
template <class T> class autorelease
{
public:
    explicit autorelease( fifo<T> &f ) : fifo_( &f )
    {
        value_ = &fifo_->claim_head( sig_ );
    }

    autorelease( autorelease &&other ) noexcept
        : fifo_( other.fifo_ ), value_( other.value_ ), sig_( other.sig_ )
    {
        other.fifo_  = nullptr;
        other.value_ = nullptr;
    }

    autorelease( const autorelease & )            = delete;
    autorelease &operator=( const autorelease & ) = delete;
    autorelease &operator=( autorelease && )      = delete;

    ~autorelease()
    {
        if( fifo_ != nullptr )
        {
            fifo_->consume_head();
        }
    }

    T &operator*() noexcept { return *value_; }
    const T &operator*() const noexcept { return *value_; }
    T *operator->() noexcept { return value_; }
    const T *operator->() const noexcept { return value_; }

    /** Synchronous signal delivered with this element. */
    signal sig() const noexcept { return sig_; }

private:
    fifo<T> *fifo_;
    T *value_;
    signal sig_{ none };
};

/**
 * RAII result of allocate_s(): a writable reference to a slot at the tail of
 * the outgoing queue, pushed automatically at scope exit (§4.2, Figure 2).
 * The element is constructed in place — zero copies on the send path.
 */
template <class T> class allocate_ref
{
public:
    explicit allocate_ref( fifo<T> &f ) : fifo_( &f )
    {
        value_ = fifo_->claim_tail();
    }

    allocate_ref( allocate_ref &&other ) noexcept
        : fifo_( other.fifo_ ), value_( other.value_ ), sig_( other.sig_ )
    {
        other.fifo_  = nullptr;
        other.value_ = nullptr;
    }

    allocate_ref( const allocate_ref & )            = delete;
    allocate_ref &operator=( const allocate_ref & ) = delete;
    allocate_ref &operator=( allocate_ref && )      = delete;

    ~allocate_ref()
    {
        if( fifo_ != nullptr )
        {
            fifo_->publish_tail( sig_ );
        }
    }

    T &operator*() noexcept { return *value_; }
    T *operator->() noexcept { return value_; }

    /** Set the synchronous signal to publish with this element. */
    void set_signal( const signal s ) noexcept { sig_ = s; }

private:
    fifo<T> *fifo_;
    T *value_;
    signal sig_{ none };
};

/**
 * Sliding window over the next n queued elements (§3: "the stream access
 * pattern is often that of a sliding window... accommodated through a
 * peek_range function"). Elements stay in the queue; indexing handles ring
 * wrap transparently. The consumer claim is held for the window's lifetime,
 * deferring any monitor resize. Call recycle(k) afterwards (or let the
 * window release and pop nothing) to slide.
 */
template <class T> class peek_range_t
{
public:
    peek_range_t( fifo<T> &f, const std::size_t n ) : fifo_( &f ), size_( n )
    {
        fifo_->claim_window( n, &data_, &start_, &mask_ );
    }

    peek_range_t( peek_range_t &&other ) noexcept
        : fifo_( other.fifo_ ), data_( other.data_ ), start_( other.start_ ),
          mask_( other.mask_ ), size_( other.size_ )
    {
        other.fifo_ = nullptr;
    }

    peek_range_t( const peek_range_t & )            = delete;
    peek_range_t &operator=( const peek_range_t & ) = delete;
    peek_range_t &operator=( peek_range_t && )      = delete;

    ~peek_range_t()
    {
        if( fifo_ != nullptr )
        {
            fifo_->release_head();
        }
    }

    std::size_t size() const noexcept { return size_; }

    const T &operator[]( const std::size_t i ) const noexcept
    {
        return data_[ ( start_ + i ) & mask_ ];
    }

private:
    fifo<T> *fifo_;
    T *data_{ nullptr };
    std::uint64_t start_{ 0 };
    std::size_t mask_{ 0 };
    std::size_t size_;
};

/**
 * RAII result of write_window(n): between 1 and n contiguous writable slots
 * claimed under one resize-gate handshake, published with one index store
 * when the window leaves scope. The bulk dual of allocate_ref. Assign
 * through operator[]; publish(k) trims the published prefix (unassigned
 * claimed slots are destroyed unpublished). Holding the window parks the
 * monitor exactly like a held allocate_s claim.
 */
template <class T> class write_window_t
{
public:
    write_window_t( fifo<T> &f, const std::size_t n ) : fifo_( &f )
    {
        claimed_ = fifo_->claim_write_window( n == 0 ? 1 : n, &data_,
                                              &sigs_, &start_, &mask_ );
        publish_ = claimed_;
    }

    write_window_t( write_window_t &&other ) noexcept
        : fifo_( other.fifo_ ), data_( other.data_ ), sigs_( other.sigs_ ),
          start_( other.start_ ), mask_( other.mask_ ),
          claimed_( other.claimed_ ), publish_( other.publish_ )
    {
        other.fifo_ = nullptr;
    }

    write_window_t( const write_window_t & )            = delete;
    write_window_t &operator=( const write_window_t & ) = delete;
    write_window_t &operator=( write_window_t && )      = delete;

    ~write_window_t()
    {
        if( fifo_ != nullptr )
        {
            fifo_->publish_write_window( claimed_, publish_ );
        }
    }

    /** Slots claimed (1 ≤ size() ≤ requested n). */
    std::size_t size() const noexcept { return claimed_; }

    T &operator[]( const std::size_t i ) noexcept
    {
        return data_[ ( start_ + i ) & mask_ ];
    }

    /** Signal shipped with slot i (defaults to none). */
    void set_signal( const std::size_t i, const signal s ) noexcept
    {
        sigs_[ ( start_ + i ) & mask_ ] = s;
    }

    /** Signal on the last slot that will publish (eos convention). */
    void set_signal( const signal s ) noexcept
    {
        if( publish_ > 0 )
        {
            set_signal( publish_ - 1, s );
        }
    }

    /** Publish only the first k claimed slots (k ≤ size()). */
    void publish( const std::size_t k ) noexcept
    {
        publish_ = ( k < claimed_ ) ? k : claimed_;
    }

private:
    fifo<T> *fifo_;
    T *data_{ nullptr };
    signal *sigs_{ nullptr };
    std::uint64_t start_{ 0 };
    std::size_t mask_{ 0 };
    std::size_t claimed_{ 0 };
    std::size_t publish_{ 0 };
};

/**
 * RAII result of read_window(n): between 1 and n readable elements claimed
 * under one handshake, consumed (destroyed + single head advance) when the
 * window leaves scope. The bulk dual of autorelease. Elements may be moved
 * out through operator[]; keep(k) retains the last size()-k elements in the
 * queue instead of consuming them.
 */
template <class T> class read_window_t
{
public:
    read_window_t( fifo<T> &f, const std::size_t n ) : fifo_( &f )
    {
        claimed_ = fifo_->claim_read_window( n == 0 ? 1 : n, &data_,
                                             &sigs_, &start_, &mask_ );
        consume_ = claimed_;
    }

    read_window_t( read_window_t &&other ) noexcept
        : fifo_( other.fifo_ ), data_( other.data_ ), sigs_( other.sigs_ ),
          start_( other.start_ ), mask_( other.mask_ ),
          claimed_( other.claimed_ ), consume_( other.consume_ )
    {
        other.fifo_ = nullptr;
    }

    read_window_t( const read_window_t & )            = delete;
    read_window_t &operator=( const read_window_t & ) = delete;
    read_window_t &operator=( read_window_t && )      = delete;

    ~read_window_t()
    {
        if( fifo_ != nullptr )
        {
            fifo_->consume_read_window( consume_ );
        }
    }

    /** Elements claimed (1 ≤ size() ≤ requested n). */
    std::size_t size() const noexcept { return claimed_; }

    T &operator[]( const std::size_t i ) noexcept
    {
        return data_[ ( start_ + i ) & mask_ ];
    }

    const T &operator[]( const std::size_t i ) const noexcept
    {
        return data_[ ( start_ + i ) & mask_ ];
    }

    /** Signal delivered with element i. */
    signal sig( const std::size_t i ) const noexcept
    {
        return sigs_[ ( start_ + i ) & mask_ ];
    }

    /** Consume only the first k claimed elements (k ≤ size()); the rest
     *  stay queued. */
    void consume( const std::size_t k ) noexcept
    {
        consume_ = ( k < claimed_ ) ? k : claimed_;
    }

private:
    fifo<T> *fifo_;
    T *data_{ nullptr };
    signal *sigs_{ nullptr };
    std::uint64_t start_{ 0 };
    std::size_t mask_{ 0 };
    std::size_t claimed_{ 0 };
    std::size_t consume_{ 0 };
};

} /** end namespace raft **/
