#include "core/map.hpp"

#include <chrono>

#include "analysis/analysis.hpp"
#include "core/exceptions.hpp"
#include "core/fifo.hpp"
#include "core/monitor.hpp"
#include "core/parallel.hpp"
#include "core/scheduler.hpp"
#include "mapping/partition.hpp"
#include "runtime/elastic/elastic.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/telemetry/telemetry.hpp"

namespace raft {

void map::adopt( kernel *k )
{
    if( !k->internally_allocated() )
    {
        return;
    }
    for( const auto &o : owned_ )
    {
        if( o.get() == k )
        {
            return;
        }
    }
    owned_.emplace_back( k );
}

std::string map::resolve_port( kernel *k, port_container &ports,
                               const std::string &requested,
                               const char *side )
{
    if( !requested.empty() )
    {
        return requested;
    }
    std::string found;
    for( auto &p : ports )
    {
        if( !p.linked() )
        {
            if( !found.empty() )
            {
                throw port_exception(
                    "kernel " + k->name() + " has multiple unlinked " +
                    side + " ports; name one explicitly" );
            }
            found = p.name();
        }
    }
    if( found.empty() )
    {
        throw port_exception( "kernel " + k->name() +
                              " has no unlinked " + side + " port" );
    }
    return found;
}

kernel_pair map::link_impl( kernel *src, const std::string &src_port,
                            kernel *dst, const std::string &dst_port,
                            const order ord )
{
    /** adopt before validating: a kernel::make()'d kernel must not leak
     *  when the link is rejected */
    if( src != nullptr )
    {
        adopt( src );
    }
    if( dst != nullptr )
    {
        adopt( dst );
    }
    if( src == nullptr || dst == nullptr )
    {
        throw graph_exception( "link() given a null kernel" );
    }
    const auto sp = resolve_port( src, src->output, src_port, "output" );
    const auto dp = resolve_port( dst, dst->input, dst_port, "input" );
    port &out_p = src->output[ sp ];
    port &in_p  = dst->input[ dp ];
    if( out_p.linked() )
    {
        throw port_exception( "output port '" + sp + "' of " +
                              src->name() + " already linked" );
    }
    if( in_p.linked() )
    {
        throw port_exception( "input port '" + dp + "' of " +
                              dst->name() + " already linked" );
    }
    out_p.mark_linked();
    in_p.mark_linked();
    adopt( src );
    adopt( dst );
    topo_.add_edge( edge{ src, sp, dst, dp, ord } );
    return kernel_pair{ *src, *dst };
}

void map::exe( const run_options &opts )
{
    if( executed_ )
    {
        throw graph_exception(
            "map::exe() called twice — assemble a fresh map per run" );
    }
    if( topo_.empty() )
    {
        throw graph_exception( "map::exe() on an empty map" );
    }
    executed_ = true;

    /** 1. connectivity **/
    if( !topo_.connected() )
    {
        throw graph_exception(
            "application graph is not fully connected" );
    }

    /** 1b. static analysis (src/analysis/): lint the graph the user
     *  assembled, before any rewrite, and refuse to run on error-severity
     *  diagnostics. Non-convertible link types are excluded from the
     *  fail-fast set — the type-checking pass below throws its own
     *  link_type_exception with per-link detail. **/
    if( opts.analysis.enabled )
    {
        const auto rep = analysis::analyze( topo_, opts );
        if( opts.analysis.report_out != nullptr )
        {
            *opts.analysis.report_out = rep;
        }
        if( opts.analysis.fail_on_error )
        {
            std::string fatal;
            std::size_t fatal_count = 0;
            for( const auto &d : rep.diagnostics )
            {
                const bool counts =
                    ( d.sev == analysis::severity::error &&
                      d.id != "incompatible-link-types" ) ||
                    ( opts.analysis.warnings_as_errors &&
                      d.sev == analysis::severity::warning );
                if( counts )
                {
                    fatal += "\n  " + d.to_string();
                    ++fatal_count;
                }
            }
            if( fatal_count > 0 )
            {
                throw analysis_error(
                    "graph analysis failed (" +
                    std::to_string( fatal_count ) + " error" +
                    ( fatal_count == 1 ? "" : "s" ) + ")" + fatal +
                    "\n(inspect with raft::analyze; opt out via "
                    "run_options::analysis)" );
            }
        }
    }

    const auto machine =
        opts.machine != nullptr ? *opts.machine
                                : mapping::machine_desc::detect();

    /** 2. automatic parallelization **/
    const bool elastic_on = opts.elastic.enabled;
    std::vector<replica_group> replica_groups;
    if( opts.enable_auto_parallel )
    {
        auto width = opts.replication_width != 0 ? opts.replication_width
                                                 : machine.core_count();
        std::size_t initial_active = 0; /** 0 = route to all lanes **/
        if( elastic_on )
        {
            /** pre-provision max_replicas lanes, start at min_replicas;
             *  the controller activates/retires lanes in between **/
            if( opts.elastic.max_replicas != 0 )
            {
                width = opts.elastic.max_replicas;
            }
            initial_active =
                opts.elastic.min_replicas == 0
                    ? 1
                    : ( opts.elastic.min_replicas > width
                            ? width
                            : opts.elastic.min_replicas );
        }
        apply_auto_parallel( topo_, width, opts.split_strategy, owned_,
                             initial_active,
                             elastic_on ? &replica_groups : nullptr );
    }

    /** 3. type checking + conversion adapters **/
    apply_type_conversions( topo_, owned_ );

    /** every declared port must now be part of some stream **/
    for( kernel *k : topo_.kernels() )
    {
        for( const auto &e : topo_.edges() )
        {
            if( e.src == k )
            {
                k->output[ e.src_port ].mark_linked();
            }
            if( e.dst == k )
            {
                k->input[ e.dst_port ].mark_linked();
            }
        }
        for( auto &p : k->input )
        {
            if( !p.linked() )
            {
                throw graph_exception( "input port '" + p.name() +
                                       "' of " + k->name() +
                                       " is not linked" );
            }
        }
        for( auto &p : k->output )
        {
            if( !p.linked() )
            {
                throw graph_exception( "output port '" + p.name() +
                                       "' of " + k->name() +
                                       " is not linked" );
            }
        }
    }

    /** 4. stream allocation & port binding.
     *  Declaration order matters: the controller must outlive the monitor
     *  (whose thread calls into it), so it is declared first — destroyed
     *  last. **/
    std::unique_ptr<elastic::controller> ctrl;
    if( elastic_on )
    {
        ctrl = std::make_unique<elastic::controller>( opts );
    }
    std::unique_ptr<runtime::supervisor> sup;
    if( opts.supervision.enabled )
    {
        sup = std::make_unique<runtime::supervisor>( opts.supervision );
        for( kernel *k : topo_.kernels() )
        {
            sup->register_kernel( k );
        }
    }
    std::vector<std::unique_ptr<fifo_base>> streams;
    streams.reserve( topo_.edges().size() );
    monitor mon( opts );
    /** Telemetry session: constructed before the stream loop so its
     *  registrations ride along, and declared after streams/mon so it is
     *  destroyed first — stream gauges and the monitor-tick callback
     *  never outlive what they sample, even on the unwind path.  The
     *  constructor publishes the Prometheus port (bound_port_out) before
     *  any kernel runs. **/
    std::unique_ptr<telemetry::session> tele;
    if( opts.telemetry.enabled )
    {
        tele = std::make_unique<telemetry::session>( opts.telemetry );
    }
    std::size_t stream_index = 0;
    for( auto &e : topo_.edges() )
    {
        port &out_p = e.src->output[ e.src_port ];
        port &in_p  = e.dst->input[ e.dst_port ];
        auto stream =
            out_p.meta().make_fifo( opts.initial_queue_capacity );
        out_p.bind( stream.get() );
        in_p.bind( stream.get() );
        mon.register_stream(
            stream.get(),
            monitor::stream_info{ e.src->name(), e.dst->name(),
                                  e.src_port, e.dst_port,
                                  out_p.meta().name } );
        if( ctrl != nullptr )
        {
            ctrl->watch_stream( stream.get(), e.src->name(),
                                e.dst->name() );
        }
        if( sup != nullptr )
        {
            sup->watch_stream( stream.get(), e.src->name(),
                               e.dst->name() );
        }
        if( tele != nullptr )
        {
            tele->watch_stream( stream.get(), e.src->name(),
                                e.dst->name(), stream_index );
        }
        ++stream_index;
        streams.push_back( std::move( stream ) );
    }
    if( ctrl != nullptr )
    {
        /** ports are bound now — the controller can resolve the split
         *  adapters' input/lane streams **/
        for( const auto &g : replica_groups )
        {
            ctrl->add_group( g );
        }
        mon.attach_elastic( ctrl.get() );
    }
    if( sup != nullptr )
    {
        mon.attach_supervisor( sup.get() );
    }
    if( tele != nullptr )
    {
        for( kernel *k : topo_.kernels() )
        {
            tele->register_kernel( k );
        }
        tele->watch_callback(
            "raft_monitor_ticks_total",
            [ &mon ]() { return static_cast<double>( mon.ticks() ); },
            "monitor delta ticks this run" );
    }

    /** 5. mapping **/
    const auto assign = mapping::partition( topo_, machine );

    /** async signal bus **/
    async_signal_bus bus;
    for( kernel *k : topo_.kernels() )
    {
        k->set_bus( &bus );
    }

    /** 6. run **/
    mon.start();
    const auto t0  = std::chrono::steady_clock::now();
    auto scheduler = make_scheduler( opts.scheduler );
    scheduler->set_supervisor( sup.get() );
    std::exception_ptr run_error;
    try
    {
        scheduler->execute( topo_.kernels(), opts, &assign, machine );
    }
    catch( ... )
    {
        run_error = std::current_exception();
    }
    const auto t1 = std::chrono::steady_clock::now();
    mon.stop();

    /** 7. statistics & teardown **/
    if( ctrl != nullptr && opts.elastic.report_out != nullptr )
    {
        *opts.elastic.report_out = ctrl->report();
    }
    if( sup != nullptr && opts.supervision.report_out != nullptr )
    {
        *opts.supervision.report_out = sup->report();
    }
    if( opts.stats_out != nullptr )
    {
        const double wall =
            std::chrono::duration<double>( t1 - t0 ).count();
        mon.collect( *opts.stats_out, wall );
    }
    if( tele != nullptr )
    {
        /** write artifacts and detach probes while streams are still
         *  bound (close() is idempotent; the unique_ptr destructor is
         *  only the unwind-path fallback) **/
        runtime::perf_snapshot tele_snap;
        const runtime::perf_snapshot *snap = nullptr;
        if( !opts.telemetry.json_out.empty() )
        {
            mon.collect( tele_snap,
                         std::chrono::duration<double>( t1 - t0 ).count() );
            snap = &tele_snap;
        }
        tele->close( snap );
    }
    for( kernel *k : topo_.kernels() )
    {
        k->set_bus( nullptr );
        for( auto &p : k->input )
        {
            p.unbind();
        }
        for( auto &p : k->output )
        {
            p.unbind();
        }
    }
    if( run_error )
    {
        std::rethrow_exception( run_error );
    }
}

} /** end namespace raft **/
