/**
 * scheduler.hpp — pluggable kernel schedulers (§4.1).
 *
 * "The initial scheduling algorithm for threads and processes is simply the
 * default thread-level scheduler provided by the underlying operating
 * system... RaftLib, of course, allows the substitution of any scheduler
 * desired."
 *
 *  - thread_scheduler: one OS thread per kernel (the paper's default).
 *    Kernels block inside port operations; end-of-stream surfaces as
 *    closed_port_exception, which the scheduler treats as completion.
 *  - pool_scheduler: cooperative worker pool — N workers sweep the kernel
 *    set and invoke run() once per ready kernel. A research alternative
 *    ("straightforward to substitute with new algorithms").
 *
 * When a kernel completes, the scheduler closes its output streams for
 * writing (end-of-stream propagates downstream) and its input streams for
 * reading (blocked upstream producers terminate instead of deadlocking).
 */
#pragma once

#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "core/kernel.hpp"
#include "core/options.hpp"
#include "mapping/machine.hpp"

namespace raft {

class ischeduler
{
public:
    virtual ~ischeduler() = default;

    /**
     * Run every kernel to completion; returns when the application has
     * fully drained. `assign` (optional) maps kernel index → core id for
     * affinity pinning. Rethrows the first non-control-flow exception a
     * kernel raised, after all kernels have been shut down.
     */
    virtual void execute( const std::vector<kernel *> &kernels,
                          const run_options &opts,
                          const mapping::assignment *assign,
                          const mapping::machine_desc &machine ) = 0;
};

class thread_scheduler final : public ischeduler
{
public:
    void execute( const std::vector<kernel *> &kernels,
                  const run_options &opts,
                  const mapping::assignment *assign,
                  const mapping::machine_desc &machine ) override;
};

class pool_scheduler final : public ischeduler
{
public:
    void execute( const std::vector<kernel *> &kernels,
                  const run_options &opts,
                  const mapping::assignment *assign,
                  const mapping::machine_desc &machine ) override;
};

std::unique_ptr<ischeduler> make_scheduler( scheduler_kind kind );

namespace detail {

/**
 * Drive one kernel to completion (thread scheduler body): loop run() until
 * raft::stop, closed_port_exception, or a bus termination request. Any
 * other exception is recorded in `error` (first wins) and raft::term is
 * raised on the bus. Afterwards the kernel's streams are closed on both
 * sides.
 */
void kernel_loop( kernel &k, std::exception_ptr &error,
                  std::mutex &error_mutex );

/** Close all bound streams of a completed kernel (outputs for writing,
 *  inputs for reading). */
void close_kernel_streams( kernel &k );

} /** end namespace detail **/

} /** end namespace raft **/
