/**
 * scheduler.hpp — pluggable kernel schedulers (§4.1).
 *
 * "The initial scheduling algorithm for threads and processes is simply the
 * default thread-level scheduler provided by the underlying operating
 * system... RaftLib, of course, allows the substitution of any scheduler
 * desired."
 *
 *  - thread_scheduler: one OS thread per kernel (the paper's default).
 *    Kernels block inside port operations; end-of-stream surfaces as
 *    closed_port_exception, which the scheduler treats as completion.
 *  - pool_scheduler: cooperative worker pool — N workers sweep the kernel
 *    set and invoke run() once per ready kernel. A research alternative
 *    ("straightforward to substitute with new algorithms").
 *
 * When a kernel completes, the scheduler closes its output streams for
 * writing (end-of-stream propagates downstream) and its input streams for
 * reading (blocked upstream producers terminate instead of deadlocking).
 *
 * Failure semantics (fault tolerance): a kernel whose run() throws a
 * non-control-flow exception either restarts in place (supervised runs,
 * while its restart_policy allows) or fails terminally. A terminal failure
 * cancels the whole graph deterministically — every stream is poisoned so
 * blocked peers wake with stream_aborted_exception, raft::term is raised on
 * the bus — and after every kernel has shut down, execute() throws a
 * graph_error aggregating EVERY terminal failure (not just the first).
 */
#pragma once

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "core/exceptions.hpp"
#include "core/kernel.hpp"
#include "core/options.hpp"
#include "mapping/machine.hpp"

namespace raft {

namespace runtime {
class supervisor;
} /** end namespace runtime **/

class ischeduler
{
public:
    virtual ~ischeduler() = default;

    /**
     * Run every kernel to completion; returns when the application has
     * fully drained. `assign` (optional) maps kernel index → core id for
     * affinity pinning. Throws graph_error naming every kernel that failed
     * terminally, after all kernels have been shut down.
     */
    virtual void execute( const std::vector<kernel *> &kernels,
                          const run_options &opts,
                          const mapping::assignment *assign,
                          const mapping::machine_desc &machine ) = 0;

    /** Supervised execution: attach before execute(); may stay null. */
    void set_supervisor( runtime::supervisor *s ) noexcept { sup_ = s; }

protected:
    runtime::supervisor *sup_{ nullptr };
};

class thread_scheduler final : public ischeduler
{
public:
    void execute( const std::vector<kernel *> &kernels,
                  const run_options &opts,
                  const mapping::assignment *assign,
                  const mapping::machine_desc &machine ) override;
};

namespace detail {
struct exec_context;
} /** end namespace detail **/

class pool_scheduler final : public ischeduler
{
public:
    void execute( const std::vector<kernel *> &kernels,
                  const run_options &opts,
                  const mapping::assignment *assign,
                  const mapping::machine_desc &machine ) override;

private:
    static bool pool_retry( kernel &k, detail::exec_context &ctx,
                            const std::string &what,
                            std::atomic<std::int64_t> &retry_at );
};

std::unique_ptr<ischeduler> make_scheduler( scheduler_kind kind );

namespace detail {

/**
 * Shared failure/cancellation state for one execute() call. Scheduler
 * threads record terminal failures here; the first one (or the watchdog)
 * triggers graph-wide cancellation: every stream is aborted so blocked
 * push/pop/window claims wake with stream_aborted_exception, and raft::term
 * is raised on the bus.
 */
struct exec_context
{
    const std::vector<kernel *> *kernels{ nullptr };
    runtime::supervisor *sup{ nullptr };
    std::atomic<bool> cancelled{ false };

    /** Record a terminal failure for kernel k and cancel the graph. */
    void fail( const kernel &k, const std::string &what );
    /** Same, for failures with no kernel (e.g. the watchdog). */
    void fail_named( const std::string &name, const std::string &what );
    /** Cancel without recording a failure (idempotent). */
    void cancel();
    /** Throw graph_error aggregating every recorded failure, if any. */
    void throw_if_failed();

private:
    std::mutex mutex_;
    std::vector<failure_info> failures_;
};

/**
 * Drive one kernel to completion (thread scheduler body): loop run() until
 * raft::stop, closed_port_exception, or a bus termination request. Any
 * other exception consults the supervisor (restart in place while the
 * kernel's policy allows) and is otherwise recorded in ctx as a terminal
 * failure, cancelling the graph. Afterwards the kernel's streams are
 * closed on both sides.
 */
void kernel_loop( kernel &k, exec_context &ctx );

/** Close all bound streams of a completed kernel (outputs for writing,
 *  inputs for reading). */
void close_kernel_streams( kernel &k );

} /** end namespace detail **/

} /** end namespace raft **/
