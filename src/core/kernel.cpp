#include "core/kernel.hpp"

namespace raft {

namespace {
std::atomic<std::size_t> next_kernel_id{ 0 };
} /** end anonymous namespace **/

kernel::kernel()
    : id_( next_kernel_id.fetch_add( 1, std::memory_order_relaxed ) )
{
}

std::string kernel::name() const
{
    if( !name_hint_.empty() )
    {
        return name_hint_;
    }
    return detail::demangle( typeid( *this ) ) + "#" +
           std::to_string( id_ );
}

bool kernel::ready() const
{
    for( const auto &p : input )
    {
        /** drained ports count as ready: run() terminates immediately **/
        if( p.size() == 0 && !p.drained() )
        {
            return false;
        }
    }
    for( const auto &p : output )
    {
        if( p.space_avail() == 0 )
        {
            return false;
        }
    }
    return true;
}

} /** end namespace raft **/
