#include "core/parallel.hpp"

#include <string>

#include "core/exceptions.hpp"

namespace raft {

namespace {
/** Elements an adapter moves per run() invocation before yielding back to
 *  the scheduler — enough to amortize the virtual-call cost, small enough
 *  to keep adapters responsive. Non-strict routes and merges move this many
 *  in one fifo_base::try_transfer_n call (one handshake entry per queue end
 *  instead of one per element). */
constexpr std::size_t adapter_burst = 64;
} /** end anonymous namespace **/

/* ------------------------------------------------------------------ */
/* split                                                                */
/* ------------------------------------------------------------------ */

split_kernel::split_kernel( const detail::type_meta &meta,
                            const std::size_t width,
                            std::unique_ptr<split_strategy> strategy,
                            const std::size_t initial_active )
    : width_( width ), strategy_( std::move( strategy ) ),
      active_( initial_active == 0 || initial_active > width
                   ? width
                   : initial_active )
{
    input.add_with_meta( "0", meta );
    for( std::size_t i = 0; i < width_; ++i )
    {
        output.add_with_meta( std::to_string( i ), meta );
    }
    set_name( "raft::split(" + std::string( strategy_->name() ) + ")" );
}

std::vector<fifo_base *> &split_kernel::cached_outputs()
{
    if( outs_cache_.empty() )
    {
        for( std::size_t i = 0; i < width_; ++i )
        {
            outs_cache_.push_back( &output[ std::to_string( i ) ].raw() );
        }
    }
    return outs_cache_;
}

std::vector<fifo_base *> &split_kernel::routable_outputs()
{
    auto &outs = cached_outputs();

    /** apply a pending strategy swap (single consumer: this thread) **/
    const auto req =
        requested_strategy_.exchange( -1, std::memory_order_acq_rel );
    if( req >= 0 )
    {
        strategy_ = make_split_strategy( static_cast<split_kind>( req ) );
        pending_choice_.reset(); /** choices don't survive the old deal **/
    }

    const auto n = active_.load( std::memory_order_acquire );
    if( n >= width_ )
    {
        cached_active_ = width_;
        return outs;
    }
    if( n != cached_active_ )
    {
        active_cache_.assign( outs.begin(),
                              outs.begin() +
                                  static_cast<std::ptrdiff_t>( n ) );
        cached_active_ = n;
        pending_choice_.reset(); /** may point past the new lane set **/
    }
    return active_cache_;
}

std::size_t split_kernel::route( fifo_base &in,
                                 std::vector<fifo_base *> &outs )
{
    const auto n = outs.size();
    if( strategy_->strict() )
    {
        /** strict dealing: the element is bound to one stream; if that
         *  stream is full the adapter waits (the choice is cached so
         *  the sequence position is not consumed by a failed try) **/
        if( !pending_choice_ )
        {
            pending_choice_ = strategy_->choose( outs );
        }
        fifo_base &o = *outs[ *pending_choice_ % n ];
        if( o.read_closed() )
        {
            pending_choice_.reset(); /** dead replica: skip the slot **/
            return 0;
        }
        try
        {
            if( in.try_transfer_to( o ) )
            {
                pending_choice_.reset();
                return 1;
            }
        }
        catch( const closed_port_exception & )
        {
            pending_choice_.reset();
        }
        return 0;
    }
    const auto pref = strategy_->choose( outs );
    for( std::size_t k = 0; k < n; ++k )
    {
        fifo_base &o = *outs[ ( pref + k ) % n ];
        if( o.read_closed() )
        {
            continue; /** that replica terminated early **/
        }
        try
        {
            /** non-strict: the whole burst may go to one replica, so move
             *  it batched under a single handshake per queue end **/
            const auto moved = in.try_transfer_n( o, adapter_burst );
            if( moved > 0 )
            {
                return moved;
            }
        }
        catch( const closed_port_exception & )
        {
            continue;
        }
    }
    return 0;
}

kstatus split_kernel::run()
{
    fifo_base &in = input[ "0" ].raw();
    auto &outs    = routable_outputs();

    bool all_closed = true;
    for( const auto *o : cached_outputs() )
    {
        if( !o->read_closed() )
        {
            all_closed = false;
            break;
        }
    }
    if( all_closed )
    {
        return raft::stop; /** nobody left to feed **/
    }

    std::size_t moved = 0;
    while( moved < adapter_burst )
    {
        const auto k = route( in, outs );
        if( k == 0 )
        {
            break;
        }
        moved += k;
    }
    if( moved > 0 )
    {
        idle_.reset();
        return raft::proceed;
    }
    if( in.drained() )
    {
        return raft::stop;
    }
    idle_.pause();
    return raft::proceed;
}

bool split_kernel::ready() const
{
    const auto &in = const_cast<split_kernel *>( this )->input[ "0" ];
    return in.size() > 0 || in.drained();
}

/* ------------------------------------------------------------------ */
/* reduce                                                               */
/* ------------------------------------------------------------------ */

reduce_kernel::reduce_kernel( const detail::type_meta &meta,
                              const std::size_t width )
    : width_( width )
{
    for( std::size_t i = 0; i < width_; ++i )
    {
        input.add_with_meta( std::to_string( i ), meta );
    }
    output.add_with_meta( "0", meta );
    set_name( "raft::reduce" );
}

std::vector<fifo_base *> &reduce_kernel::cached_inputs()
{
    if( ins_cache_.empty() )
    {
        for( std::size_t i = 0; i < width_; ++i )
        {
            ins_cache_.push_back( &input[ std::to_string( i ) ].raw() );
        }
    }
    return ins_cache_;
}

std::size_t reduce_kernel::merge( std::vector<fifo_base *> &ins,
                                  fifo_base &out )
{
    const auto n = ins.size();
    for( std::size_t k = 0; k < n; ++k )
    {
        const auto i     = ( scan_ + k ) % n;
        const auto moved = ins[ i ]->try_transfer_n( out, adapter_burst );
        if( moved > 0 )
        {
            scan_ = ( i + 1 ) % n;
            return moved;
        }
    }
    return 0;
}

kstatus reduce_kernel::run()
{
    fifo_base &out = output[ "0" ].raw();
    auto &ins      = cached_inputs();

    std::size_t moved = 0;
    while( moved < adapter_burst )
    {
        const auto k = merge( ins, out );
        if( k == 0 )
        {
            break;
        }
        moved += k;
    }
    if( moved > 0 )
    {
        idle_.reset();
        return raft::proceed;
    }
    bool all_drained = true;
    for( const auto *f : ins )
    {
        if( !f->drained() )
        {
            all_drained = false;
            break;
        }
    }
    if( all_drained )
    {
        return raft::stop;
    }
    idle_.pause();
    return raft::proceed;
}

bool reduce_kernel::ready() const
{
    auto *self = const_cast<reduce_kernel *>( this );
    for( std::size_t i = 0; i < width_; ++i )
    {
        const auto &p = self->input[ std::to_string( i ) ];
        if( p.size() > 0 || p.drained() )
        {
            return true;
        }
    }
    return false;
}

/* ------------------------------------------------------------------ */
/* convert                                                              */
/* ------------------------------------------------------------------ */

convert_kernel::convert_kernel( const detail::type_meta &in_meta,
                                const detail::type_meta &out_meta )
{
    input.add_with_meta( "0", in_meta );
    output.add_with_meta( "0", out_meta );
    set_name( "raft::convert(" + in_meta.name + "->" + out_meta.name + ")" );
}

kstatus convert_kernel::run()
{
    fifo_base &in  = input[ "0" ].raw();
    fifo_base &out = output[ "0" ].raw();
    for( std::size_t i = 0; i < adapter_burst; ++i )
    {
        double value = 0.0;
        signal sig   = none;
        if( !in.try_pop_as_double( value, sig ) )
        {
            if( in.drained() )
            {
                return raft::stop;
            }
            idle_.pause();
            return raft::proceed;
        }
        detail::backoff b;
        while( !out.try_push_from_double( value, sig ) )
        {
            b.pause(); /** try_push throws closed_port if reader died **/
        }
        idle_.reset();
    }
    return raft::proceed;
}

/* ------------------------------------------------------------------ */
/* rewrite passes                                                       */
/* ------------------------------------------------------------------ */

std::size_t apply_auto_parallel(
    topology &topo,
    const std::size_t width,
    const split_kind strategy,
    std::vector<std::unique_ptr<kernel>> &owned,
    const std::size_t initial_active,
    std::vector<replica_group> *groups )
{
    if( width <= 1 )
    {
        return 0;
    }
    std::size_t replicated = 0;
    /** snapshot: kernels added by the rewrite must not be re-examined **/
    const auto snapshot = topo.kernels();
    for( kernel *k : snapshot )
    {
        if( !k->clone_supported() )
        {
            continue;
        }
        /** every stream touching k must permit out-of-order processing **/
        std::vector<edge> in_e, out_e;
        bool eligible = true;
        for( const auto &e : topo.edges() )
        {
            if( e.dst == k )
            {
                in_e.push_back( e );
                eligible = eligible && ( e.ord == raft::out );
            }
            if( e.src == k )
            {
                out_e.push_back( e );
                eligible = eligible && ( e.ord == raft::out );
            }
        }
        if( !eligible || ( in_e.empty() && out_e.empty() ) )
        {
            continue;
        }

        /** replicas[0] is the original kernel **/
        std::vector<kernel *> replicas{ k };
        for( std::size_t i = 1; i < width; ++i )
        {
            kernel *c = k->clone();
            if( c == nullptr )
            {
                break;
            }
            c->set_name( k->name() + "~" + std::to_string( i ) );
            owned.emplace_back( c );
            replicas.push_back( c );
        }
        const auto w = replicas.size();
        if( w <= 1 )
        {
            continue;
        }

        replica_group group;
        group.kernel_name = k->name();
        group.replicas    = replicas;

        /** rebuild the edge list around k **/
        std::vector<edge> rebuilt;
        for( const auto &e : topo.edges() )
        {
            if( e.dst == k )
            {
                const auto &meta = e.src->output[ e.src_port ].meta();
                auto *sp         = new split_kernel(
                    meta, w, make_split_strategy( strategy ),
                    initial_active );
                owned.emplace_back( sp );
                group.splits.push_back( sp );
                rebuilt.push_back(
                    edge{ e.src, e.src_port, sp, "0", e.ord } );
                for( std::size_t i = 0; i < w; ++i )
                {
                    rebuilt.push_back( edge{ sp, std::to_string( i ),
                                             replicas[ i ], e.dst_port,
                                             e.ord } );
                }
            }
            else if( e.src == k )
            {
                const auto &meta = k->output[ e.src_port ].meta();
                auto *rd         = new reduce_kernel( meta, w );
                owned.emplace_back( rd );
                group.reduces.push_back( rd );
                for( std::size_t i = 0; i < w; ++i )
                {
                    rebuilt.push_back( edge{ replicas[ i ], e.src_port,
                                             rd, std::to_string( i ),
                                             e.ord } );
                }
                rebuilt.push_back(
                    edge{ rd, "0", e.dst, e.dst_port, e.ord } );
            }
            else
            {
                rebuilt.push_back( e );
            }
        }
        topology fresh;
        for( auto &e : rebuilt )
        {
            fresh.add_edge( e );
        }
        topo = std::move( fresh );
        if( groups != nullptr )
        {
            groups->push_back( std::move( group ) );
        }
        ++replicated;
    }
    return replicated;
}

void apply_type_conversions(
    topology &topo,
    std::vector<std::unique_ptr<kernel>> &owned )
{
    auto &edges = topo.edges();
    std::vector<edge> appended;
    for( auto &e : edges )
    {
        const auto &src_meta = e.src->output[ e.src_port ].meta();
        const auto &dst_meta = e.dst->input[ e.dst_port ].meta();
        if( src_meta.index == dst_meta.index )
        {
            continue;
        }
        if( !src_meta.arithmetic || !dst_meta.arithmetic )
        {
            throw link_type_exception(
                "link " + e.src->name() + "." + e.src_port + " (" +
                src_meta.name + ") -> " + e.dst->name() + "." +
                e.dst_port + " (" + dst_meta.name +
                "): types differ and are not convertible" );
        }
        auto *conv = new convert_kernel( src_meta, dst_meta );
        owned.emplace_back( conv );
        appended.push_back( edge{ conv, "0", e.dst, e.dst_port, e.ord } );
        e.dst      = conv;
        e.dst_port = "0";
    }
    for( auto &e : appended )
    {
        topo.add_edge( e );
    }
}

} /** end namespace raft **/
