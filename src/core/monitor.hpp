/**
 * monitor.hpp — the dynamic queue monitor (§3/§4).
 *
 * "RaftLib deals with this by detecting this condition with a monitoring
 * thread, updated every δ ← 10 µs. When conditions dictate that the FIFO
 * needs to be resized, it is done using lock-free exclusion and only under
 * certain conditions... On the side writing to the queue, if the write
 * process is blocked for a time period of 3 × δ then the queue is resized.
 * On the read side, if the reading compute kernel requests more items than
 * the queue has available then the queue is tagged for resizing."
 *
 * Beyond resizing, the same thread performs the low-overhead statistics
 * sampling (§4.1): per tick and stream, one occupancy load and one
 * histogram increment.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "core/fifo.hpp"
#include "core/options.hpp"
#include "runtime/stats.hpp"

namespace raft {

namespace elastic {
class controller;
} /** end namespace elastic **/

namespace runtime {
class supervisor;
} /** end namespace runtime **/

class monitor
{
public:
    /** Static identity of one stream, captured at registration. */
    struct stream_info
    {
        std::string src_kernel;
        std::string dst_kernel;
        std::string src_port;
        std::string dst_port;
        std::string type_name;
    };

    explicit monitor( const run_options &opts );
    ~monitor();

    monitor( const monitor & )            = delete;
    monitor &operator=( const monitor & ) = delete;

    /** Register before start(); enables reader-overflow growth on f when
     *  dynamic resizing is configured. */
    void register_stream( fifo_base *f, stream_info info );

    /** Attach the elastic controller (runtime/elastic/) before start();
     *  its on_tick() runs at the end of every monitor tick, on the monitor
     *  thread, so elastic actuation never races the monitor's resizes. The
     *  controller must outlive the monitor's running thread (declare it
     *  first / stop() the monitor before destroying it). */
    void attach_elastic( elastic::controller *ctrl ) noexcept
    {
        elastic_ = ctrl;
    }

    /** Attach the supervisor's watchdog before start(); its on_tick()
     *  runs at the end of every monitor tick (same lifetime contract as
     *  the elastic controller). */
    void attach_supervisor( runtime::supervisor *sup ) noexcept
    {
        supervisor_ = sup;
    }

    void start();
    void stop();

    /** Fill `out` with the run's statistics; call after stop(). `wall`
     *  is the measured execution time in seconds. */
    void collect( runtime::perf_snapshot &out, double wall ) const;

    std::uint64_t ticks() const noexcept
    {
        return ticks_.load( std::memory_order_relaxed );
    }

    /** One sampling pass over every stream (exposed for tests). */
    void tick();

private:
    struct entry
    {
        fifo_base *f{ nullptr };
        stream_info info;
        std::size_t initial_capacity{ 0 };
        /** accumulators (monitor-thread private while running) **/
        double occupancy_sum{ 0.0 };
        double utilization_sum{ 0.0 };
        std::uint64_t samples{ 0 };
        runtime::occupancy_histogram hist;
        std::size_t low_util_streak{ 0 };
    };

    void loop();

    run_options opts_;
    std::vector<entry> entries_;
    std::thread thread_;
    std::atomic<bool> running_{ false };
    std::atomic<std::uint64_t> ticks_{ 0 };
    std::int64_t delta_ns_{ 10'000 };
    elastic::controller *elastic_{ nullptr };
    runtime::supervisor *supervisor_{ nullptr };
};

} /** end namespace raft **/
