/**
 * port.hpp — named, typed communication ports.
 *
 * Each kernel "communicates with the outside world through communications
 * ports" (§4). The base kernel defines `input` and `output` port containers;
 * a port is declared with `addPort<T>("name")` and accessed with
 * `input["name"]` from inside run(). A port is essentially one end of a
 * FIFO queue; the queue itself is allocated and bound by the runtime at
 * map::exe() time, which is also when link types are checked.
 */
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/defs.hpp"
#include "core/exceptions.hpp"
#include "core/fifo.hpp"
#include "core/ringbuffer.hpp"

namespace raft {

enum class port_dir : std::uint8_t
{
    in,
    out
};

namespace detail {

/**
 * Everything the runtime needs to know about a port's element type without
 * the static type: identity (for link type checking), size, arithmetic-ness
 * (for conversion-adapter eligibility) and a factory for the default stream
 * allocation (a ring_buffer<T> on the heap).
 */
struct type_meta
{
    std::type_index index{ typeid( void ) };
    std::size_t size{ 0 };
    bool arithmetic{ false };
    /** @name value-range metadata (arithmetic types only; raft::analyze
     *  uses these to flag lossy implicit conversions at links) */
    ///@{
    bool floating{ false };
    bool is_signed{ false };
    /** std::numeric_limits<T>::digits: radix-2 value bits for integers,
     *  mantissa bits for floating point — directly comparable across the
     *  int/float boundary. */
    int digits{ 0 };
    ///@}
    std::unique_ptr<fifo_base> ( *make_fifo )( std::size_t ){ nullptr };
    std::string name;

    template <class T> static type_meta of()
    {
        type_meta m;
        m.index      = std::type_index( typeid( T ) );
        m.size       = sizeof( T );
        m.arithmetic = std::is_arithmetic_v<T>;
        if constexpr( std::is_arithmetic_v<T> )
        {
            m.floating  = std::is_floating_point_v<T>;
            m.is_signed = std::is_signed_v<T>;
            m.digits    = std::numeric_limits<T>::digits;
        }
        m.make_fifo  = +[]( const std::size_t cap )
            -> std::unique_ptr<fifo_base>
        {
            return std::make_unique<ring_buffer<T>>( cap );
        };
        m.name = demangle( typeid( T ) );
        return m;
    }
};

} /** end namespace detail **/

/**
 * One named endpoint of a stream. Typed accessors are checked at run time
 * against the declared element type; a mismatch throws
 * type_mismatch_exception ("accessing a port is safe", §4). All data-path
 * methods delegate to the bound FIFO.
 */
class port
{
public:
    port( std::string name, detail::type_meta meta, const port_dir dir )
        : name_( std::move( name ) ), meta_( std::move( meta ) ),
          dir_( dir )
    {
    }

    port( const port & )            = delete;
    port &operator=( const port & ) = delete;

    /** @name identity */
    ///@{
    const std::string &name() const noexcept { return name_; }
    port_dir direction() const noexcept { return dir_; }
    const detail::type_meta &meta() const noexcept { return meta_; }
    std::type_index type() const noexcept { return meta_.index; }
    ///@}

    /** @name runtime binding (set by map::exe) */
    ///@{
    bool linked() const noexcept { return linked_; }
    void mark_linked() noexcept { linked_ = true; }
    bool bound() const noexcept { return fifo_ != nullptr; }
    void bind( fifo_base *f ) noexcept { fifo_ = f; }
    void unbind() noexcept { fifo_ = nullptr; }

    /** Bound stream, untyped (monitoring, adapters). */
    fifo_base &raw()
    {
        ensure_bound();
        return *fifo_;
    }
    ///@}

    /** @name typed data access (Figure 2 style) */
    ///@{
    template <class T> T pop()
    {
        T out{};
        typed<T>().pop( out );
        return out;
    }

    template <class T> void pop( T &out, signal *sig = nullptr )
    {
        typed<T>().pop( out, sig );
    }

    template <class T> autorelease<T> pop_s() { return typed<T>().pop_s(); }

    template <class T> void push( const T &value, const signal sig = none )
    {
        typed<T>().push( value, sig );
    }

    /** constrained to true rvalues so a deduced lvalue push( v ) selects
     *  the const-ref overload above instead of instantiating fifo<T&> */
    template <class T,
              typename std::enable_if<!std::is_lvalue_reference<T>::value,
                                      int>::type = 0>
    void push( T &&value, const signal sig = none )
    {
        typed<T>().push( std::move( value ), sig );
    }

    template <class T> allocate_ref<T> allocate_s()
    {
        return typed<T>().allocate_s();
    }

    template <class T> const T &peek( signal *sig = nullptr )
    {
        return typed<T>().peek( sig );
    }

    template <class T> void unpeek() { typed<T>().unpeek(); }

    template <class T> peek_range_t<T> peek_range( const std::size_t n )
    {
        return typed<T>().peek_range( n );
    }

    void recycle( const std::size_t n = 1 )
    {
        ensure_bound();
        fifo_->recycle( n );
    }
    ///@}

    /** @name batched data access
     * The bulk duals of the Figure 2 accessors: allocate_range(n) is the
     * writer-side peek_range — an RAII window of up to n slots claimed
     * under one synchronization handshake and published with one index
     * store; pop_s(n) drains up to n elements the same way. Kernels with
     * element-at-a-time inner loops should prefer these (see DESIGN.md
     * "Batched transfer").
     */
    ///@{
    /** Claim an RAII write window of up to n slots (≥ 1). */
    template <class T> write_window_t<T> allocate_range( const std::size_t n )
    {
        return typed<T>().write_window( n );
    }

    /** Bulk pop_s: an RAII read window over up to n elements (≥ 1),
     *  consumed at scope exit. */
    template <class T> read_window_t<T> pop_s( const std::size_t n )
    {
        return typed<T>().read_window( n );
    }

    /** Blocking bulk push of all n elements of src. */
    template <class T>
    void push_n( T *src, const std::size_t n, const signal *sigs = nullptr )
    {
        typed<T>().push_n( src, n, sigs );
    }

    /** Blocking bulk pop of 1..max_n elements into dst; returns count. */
    template <class T>
    std::size_t pop_n( T *dst, const std::size_t max_n,
                       signal *sigs = nullptr )
    {
        return typed<T>().pop_n( dst, max_n, sigs );
    }

    /** Non-blocking bulk variants. */
    template <class T>
    std::size_t try_push_n( T *src, const std::size_t n,
                            const signal *sigs = nullptr )
    {
        return typed<T>().try_push_n( src, n, sigs );
    }

    template <class T>
    std::size_t try_pop_n( T *dst, const std::size_t n,
                           signal *sigs = nullptr )
    {
        return typed<T>().try_pop_n( dst, n, sigs );
    }
    ///@}

    /** @name occupancy (through the bound stream) */
    ///@{
    std::size_t size() const { return fifo_ ? fifo_->size() : 0; }
    std::size_t capacity() const { return fifo_ ? fifo_->capacity() : 0; }
    std::size_t space_avail() const
    {
        return fifo_ ? fifo_->space_avail() : 0;
    }
    bool drained() const { return fifo_ == nullptr || fifo_->drained(); }
    ///@}

    /**
     * Typed view of the bound stream; throws type_mismatch_exception when T
     * differs from the declared element type.
     */
    template <class T> fifo<T> &typed()
    {
        ensure_bound();
        if( std::type_index( typeid( T ) ) != meta_.index )
        {
            throw type_mismatch_exception(
                "port '" + name_ + "' carries " + meta_.name +
                ", accessed as " +
                detail::demangle( typeid( T ) ) );
        }
        return *static_cast<fifo<T> *>( fifo_ );
    }

private:
    void ensure_bound() const
    {
        if( fifo_ == nullptr )
        {
            throw port_exception( "port '" + name_ +
                                  "' accessed before the runtime bound a "
                                  "stream (did you run map::exe()?)" );
        }
    }

    std::string name_;
    detail::type_meta meta_;
    port_dir dir_;
    fifo_base *fifo_{ nullptr };
    bool linked_{ false };
};

/**
 * Insertion-ordered collection of named ports; the `input` / `output`
 * members of every kernel. "Port container objects can contain any type of
 * port" (§4) — element types are per-port.
 */
class port_container
{
public:
    explicit port_container( const port_dir dir ) : dir_( dir ) {}

    port_container( const port_container & )            = delete;
    port_container &operator=( const port_container & ) = delete;

    /** Declare one or more ports of element type T. Returns the last one. */
    template <class T, class... Names>
    port &addPort( const std::string &name, Names &&...more )
    {
        port &p = add_one<T>( name );
        if constexpr( sizeof...( more ) > 0 )
        {
            return addPort<T>( std::forward<Names>( more )... );
        }
        else
        {
            return p;
        }
    }

    /**
     * Runtime-internal: declare a port from an existing type_meta. The
     * auto-parallelization and type-conversion adapters are type-erased, so
     * they mint their ports from the metas of the ports they splice into.
     */
    port &add_with_meta( const std::string &name,
                         const detail::type_meta &meta )
    {
        if( has( name ) )
        {
            throw port_exception( "port '" + name + "' declared twice" );
        }
        ports_.push_back( std::make_unique<port>( name, meta, dir_ ) );
        index_.emplace( name, ports_.size() - 1 );
        return *ports_.back();
    }

    /** Lookup by name; throws port_exception if absent. */
    port &operator[]( const std::string &name )
    {
        const auto it = index_.find( name );
        if( it == index_.end() )
        {
            throw port_exception( "no port named '" + name + "'" );
        }
        return *ports_[ it->second ];
    }

    const port &operator[]( const std::string &name ) const
    {
        const auto it = index_.find( name );
        if( it == index_.end() )
        {
            throw port_exception( "no port named '" + name + "'" );
        }
        return *ports_[ it->second ];
    }

    bool has( const std::string &name ) const noexcept
    {
        return index_.count( name ) != 0;
    }

    std::size_t count() const noexcept { return ports_.size(); }
    port_dir direction() const noexcept { return dir_; }

    /** @name iteration (insertion order) */
    ///@{
    auto begin() { return deref_iter{ ports_.begin() }; }
    auto end() { return deref_iter{ ports_.end() }; }
    auto begin() const { return deref_citer{ ports_.begin() }; }
    auto end() const { return deref_citer{ ports_.end() }; }
    ///@}

private:
    template <class T> port &add_one( const std::string &name )
    {
        if( has( name ) )
        {
            throw port_exception( "port '" + name + "' declared twice" );
        }
        ports_.push_back( std::make_unique<port>(
            name, detail::type_meta::of<T>(), dir_ ) );
        index_.emplace( name, ports_.size() - 1 );
        return *ports_.back();
    }

    struct deref_iter
    {
        std::vector<std::unique_ptr<port>>::iterator it;
        port &operator*() const { return **it; }
        deref_iter &operator++()
        {
            ++it;
            return *this;
        }
        bool operator!=( const deref_iter &o ) const { return it != o.it; }
    };

    struct deref_citer
    {
        std::vector<std::unique_ptr<port>>::const_iterator it;
        const port &operator*() const { return **it; }
        deref_citer &operator++()
        {
            ++it;
            return *this;
        }
        bool operator!=( const deref_citer &o ) const { return it != o.it; }
    };

    port_dir dir_;
    std::vector<std::unique_ptr<port>> ports_;
    std::unordered_map<std::string, std::size_t> index_;
};

/** Paper-style alias: lambda kernels receive `Port &input, Port &output`. */
using Port = port_container;

} /** end namespace raft **/
