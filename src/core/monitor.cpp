#include "core/monitor.hpp"

#include <algorithm>

#include "core/defs.hpp"
#include "runtime/elastic/elastic.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/trace.hpp"

namespace raft {

monitor::monitor( const run_options &opts ) : opts_( opts )
{
    delta_ns_ = std::max<std::int64_t>( 1, opts.monitor_delta.count() );
}

monitor::~monitor() { stop(); }

void monitor::register_stream( fifo_base *f, stream_info info )
{
    entry e;
    e.f                = f;
    e.info             = std::move( info );
    e.initial_capacity = f->capacity();
    entries_.push_back( std::move( e ) );
    f->set_auto_resize( opts_.dynamic_resize );
}

void monitor::start()
{
    if( running_.exchange( true ) )
    {
        return;
    }
    if( !opts_.dynamic_resize && !opts_.collect_stats &&
        elastic_ == nullptr && supervisor_ == nullptr )
    {
        running_.store( false );
        return; /** nothing to do — zero overhead **/
    }
    thread_ = std::thread( [ this ]() { loop(); } );
}

void monitor::stop()
{
    if( !running_.exchange( false ) )
    {
        return;
    }
    if( thread_.joinable() )
    {
        thread_.join();
    }
}

void monitor::loop()
{
    if( telemetry::tracing() )
    {
        telemetry::name_thread( "monitor" );
    }
    while( running_.load( std::memory_order_acquire ) )
    {
        tick();
        std::this_thread::sleep_for(
            std::chrono::nanoseconds( delta_ns_ ) );
    }
    /** final sample so short runs still record statistics **/
    tick();
}

void monitor::tick()
{
    const auto now = detail::now_ns();
    ticks_.fetch_add( 1, std::memory_order_relaxed );
    for( auto &e : entries_ )
    {
        fifo_base &f   = *e.f;
        const auto sz  = f.size();
        const auto cap = f.capacity();

        /** apply one capacity change and publish it to the telemetry
         *  layer — resizes are rare, so interning the composed event
         *  name here (cold path) is fine **/
        const auto apply_resize = [ &e, &f ]( const std::size_t new_cap )
        {
            if( !f.resize( new_cap ) )
            {
                return;
            }
            if( telemetry::metrics_on() )
            {
                telemetry::fifo_resizes_total().add();
            }
            if( telemetry::tracing() )
            {
                telemetry::instant_str( "fifo_resize " + e.info.src_kernel +
                                            "->" + e.info.dst_kernel,
                                        telemetry::cat::monitor, new_cap );
            }
        };

        if( opts_.collect_stats )
        {
            /** size() and capacity() are two separate loads; a racing
             *  resize between them can yield sz > cap (or a stale cap),
             *  so clamp before accumulating — the histogram clamps
             *  internally as well **/
            const auto occ = cap != 0 && sz > cap ? cap : sz;
            const double util =
                cap == 0 ? 0.0
                         : static_cast<double>( occ ) /
                               static_cast<double>( cap );
            e.occupancy_sum += static_cast<double>( occ );
            e.utilization_sum += util;
            e.hist.add( util );
            ++e.samples;
        }

        if( !opts_.dynamic_resize )
        {
            continue;
        }

        /**
         * Rule 1 (read side): the reader demanded a window larger than
         * capacity. Correctness-critical — "the program cannot continue"
         * otherwise — so it overrides max_queue_capacity.
         */
        const auto req = f.resize_request();
        if( req > cap )
        {
            apply_resize( req );
            continue;
        }

        /**
         * Rule 2 (write side): writer blocked ≥ 3δ on a full queue — grow
         * geometrically up to the configured cap.
         */
        const auto wbs = f.write_blocked_since();
        if( wbs != 0 && now - wbs >= 3 * delta_ns_ &&
            cap < opts_.max_queue_capacity && f.space_avail() == 0 )
        {
            apply_resize( std::min( cap * 2, opts_.max_queue_capacity ) );
            e.low_util_streak = 0;
            continue;
        }

        /**
         * Shrink heuristic (optional): sustained low utilization returns
         * memory ("reallocates them as needed (either larger or smaller)",
         * §4.2). Hysteresis avoids grow/shrink oscillation.
         */
        if( opts_.allow_shrink && cap > e.initial_capacity &&
            sz <= cap / 8 )
        {
            if( ++e.low_util_streak >= opts_.shrink_hysteresis )
            {
                apply_resize( cap / 2 );
                e.low_util_streak = 0;
            }
        }
        else
        {
            e.low_util_streak = 0;
        }
    }

    if( elastic_ != nullptr )
    {
        elastic_->on_tick( now );
    }
    if( supervisor_ != nullptr )
    {
        supervisor_->on_tick( now );
    }
}

void monitor::collect( runtime::perf_snapshot &out, const double wall ) const
{
    out.streams.clear();
    out.wall_seconds  = wall;
    out.monitor_ticks = ticks_.load( std::memory_order_relaxed );
    for( const auto &e : entries_ )
    {
        runtime::stream_stats s;
        s.src_kernel       = e.info.src_kernel;
        s.dst_kernel       = e.info.dst_kernel;
        s.src_port         = e.info.src_port;
        s.dst_port         = e.info.dst_port;
        s.type_name        = e.info.type_name;
        s.pushed           = e.f->total_pushed();
        s.popped           = e.f->total_popped();
        s.element_size     = e.f->element_size();
        s.initial_capacity = e.initial_capacity;
        s.final_capacity   = e.f->capacity();
        s.resize_count     = e.f->resize_count();
        s.samples          = e.samples;
        if( e.samples > 0 )
        {
            s.mean_occupancy =
                e.occupancy_sum / static_cast<double>( e.samples );
            s.mean_utilization =
                e.utilization_sum / static_cast<double>( e.samples );
        }
        s.occupancy = e.hist;
        if( wall > 0.0 )
        {
            s.service_rate_hz = static_cast<double>( s.popped ) / wall;
            s.arrival_rate_hz = static_cast<double>( s.pushed ) / wall;
            s.throughput_bytes_per_s =
                static_cast<double>( s.popped ) *
                static_cast<double>( s.element_size ) / wall;
        }
        out.streams.push_back( std::move( s ) );
    }
}

} /** end namespace raft **/
