/**
 * split_strategy.hpp — data-distribution policies for split adapters.
 *
 * "Split data distribution can be done in many ways, and the run-time
 * attempts to select the best amongst round-robin and least-utilized
 * strategies (queue utilization used to direct data flow to less utilized
 * servers). As with all of the specific mechanisms ... each of these
 * approaches is designed to be easily swapped out for alternatives,
 * enabling empirical comparative study between approaches." (§4.1)
 *
 * A strategy ranks the candidate output streams for the next element; the
 * split adapter tries them in that order (skipping full ones).
 */
#pragma once

#include <cstddef>
#include <memory>
#include <numeric>
#include <vector>

#include "core/fifo.hpp"
#include "core/options.hpp"

namespace raft {

class split_strategy
{
public:
    virtual ~split_strategy() = default;

    /**
     * Index of the preferred output for the next element. For non-strict
     * strategies the adapter falls back to (chosen + k) % n when the
     * preferred stream is full.
     */
    virtual std::size_t choose(
        const std::vector<fifo_base *> &outputs ) = 0;

    /**
     * Strict strategies fix the destination of each element (true
     * round-robin dealing): the adapter waits for the chosen stream
     * rather than rerouting. Adaptive strategies let the adapter fall
     * back to any stream with space.
     */
    virtual bool strict() const { return false; }

    virtual const char *name() const = 0;
};

/** Cycle through outputs regardless of their state. */
class round_robin_strategy final : public split_strategy
{
public:
    std::size_t choose( const std::vector<fifo_base *> &outputs ) override
    {
        const auto n = outputs.size();
        const auto c = next_++;
        return n == 0 ? 0 : c % n;
    }

    /** classic dealing: element i goes to replica i mod n, full stop **/
    bool strict() const override { return true; }

    const char *name() const override { return "round-robin"; }

private:
    std::size_t next_{ 0 };
};

/**
 * Direct flow to the replica whose queue is least utilized right now.
 *
 * The utilization scan costs two loads per output; re-ranking on every
 * element would make the split adapter's cost grow with the replica count.
 * The choice is therefore cached and reused for `stride` consecutive
 * elements before the next rescan — occupancies move by at most stride
 * elements in between, so the ranking stays near-correct, and the adapter
 * falls back to neighbouring streams anyway when the cached one fills
 * (non-strict routing). stride = 1 restores exact per-element ranking.
 */
class least_utilized_strategy final : public split_strategy
{
public:
    explicit least_utilized_strategy( const std::size_t stride = 16 )
        : stride_( stride == 0 ? 1 : stride )
    {
    }

    std::size_t choose( const std::vector<fifo_base *> &outputs ) override
    {
        if( reuse_ > 0 && cached_ < outputs.size() )
        {
            --reuse_;
            return cached_;
        }
        std::size_t best    = 0;
        double best_util    = 2.0; /** above any real utilization **/
        for( std::size_t i = 0; i < outputs.size(); ++i )
        {
            const auto cap = outputs[ i ]->capacity();
            const auto util =
                cap == 0 ? 1.0
                         : static_cast<double>( outputs[ i ]->size() ) /
                               static_cast<double>( cap );
            if( util < best_util )
            {
                best_util = util;
                best      = i;
            }
        }
        cached_ = best;
        reuse_  = stride_ - 1;
        return best;
    }

    const char *name() const override { return "least-utilized"; }

private:
    std::size_t stride_;
    std::size_t cached_{ 0 };
    std::size_t reuse_{ 0 };
};

inline std::unique_ptr<split_strategy>
make_split_strategy( const split_kind kind )
{
    switch( kind )
    {
        case split_kind::round_robin:
            return std::make_unique<round_robin_strategy>();
        case split_kind::least_utilized:
        default:
            return std::make_unique<least_utilized_strategy>();
    }
}

} /** end namespace raft **/
