/**
 * analysis.hpp — raft::analyze: the whole-graph static linter.
 *
 * The paper sells RaftLib on compile-time-checked typed streams; this layer
 * extends the guarantee to whole-graph safety properties that the type
 * system cannot see, in the spirit of Parameterized Dataflow's statically
 * checkable network properties. analyze() walks an assembled topology
 * (before any rewrite) plus the run_options it would execute under and
 * produces severity-ranked diagnostics:
 *
 *   error   — the graph cannot run safely (unconnected ports, deadlock-
 *             prone cycles over finite FIFOs, order-sensitive kernels that
 *             auto-parallelization would replicate, contradictory elastic
 *             bounds, non-convertible link types);
 *   warning — the graph runs but a latent hazard exists (lossy arithmetic
 *             conversion at a link, restart policy without a state-reset
 *             hook, deadlock-prone cycle that dynamic resizing can defer
 *             but not eliminate, watchdog tighter than the monitor δ);
 *   note    — advisory (auto-parallelization disabled for an otherwise
 *             replication-ready order-sensitive kernel, inert restart
 *             policies, an elastic run with nothing to actuate).
 *
 * map::exe() runs the linter fail-fast on errors by default (opt out via
 * run_options::analysis); examples/raft_lint.cpp analyzes graphs without
 * executing them. Reports render as human text (to_string) and as a
 * stable JSON document (to_json; schema in docs/API.md).
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/options.hpp"

namespace raft {

class map;

namespace analysis {

enum class severity : int
{
    error   = 0,
    warning = 1,
    note    = 2
};

const char *severity_name( severity s ) noexcept;

/**
 * One finding. `id` is the stable kebab-case diagnostic identifier from the
 * catalogue (docs/API.md "Static analysis & lint"); `kernel` / `port` name
 * the primary site when one exists.
 */
struct diagnostic
{
    severity sev{ severity::note };
    std::string id;
    std::string kernel;
    std::string port;
    std::string message;

    /** "[error] deadlock-cycle at k.out: ..." */
    std::string to_string() const;
};

/**
 * The full result of one analyze() pass, diagnostics ranked most severe
 * first (stable within a severity class: discovery order).
 */
struct report
{
    std::vector<diagnostic> diagnostics;

    std::size_t errors() const noexcept { return count( severity::error ); }
    std::size_t warnings() const noexcept
    {
        return count( severity::warning );
    }
    std::size_t notes() const noexcept { return count( severity::note ); }

    /** No error-severity diagnostics. */
    bool ok() const noexcept { return errors() == 0; }
    /** Nothing at all to report. */
    bool clean() const noexcept { return diagnostics.empty(); }

    /** Human-readable multi-line rendering (one line per diagnostic plus a
     *  summary line); "analysis clean" when empty. */
    std::string to_string() const;

    /** Stable JSON document:
     *  { "version": 1,
     *    "summary": { "errors": E, "warnings": W, "notes": N },
     *    "diagnostics": [ { "severity": "...", "id": "...",
     *                       "kernel": "...", "port": "...",
     *                       "message": "..." }, ... ] } */
    std::string to_json() const;

private:
    std::size_t count( severity s ) const noexcept
    {
        std::size_t n = 0;
        for( const auto &d : diagnostics )
        {
            n += ( d.sev == s ) ? 1 : 0;
        }
        return n;
    }
};

/**
 * Analyze a topology against the options it would run under (capacity
 * model, auto-parallelization, elastic/supervision configuration all shape
 * the diagnostics). The topology is inspected as-is — call before any
 * rewrite to see the graph the user assembled.
 */
report analyze( const topology &topo, const run_options &opts = {} );

} /** end namespace analysis **/

/** Convenience overload over an assembled (not yet executed) map. */
analysis::report analyze( const map &m, const run_options &opts = {} );

} /** end namespace raft **/
