#include "analysis/analysis.hpp"

#include <algorithm>
#include <utility>

#include "core/map.hpp"
#include "core/parallel.hpp"

namespace raft {
namespace analysis {

const char *severity_name( const severity s ) noexcept
{
    switch( s )
    {
        case severity::error:
            return "error";
        case severity::warning:
            return "warning";
        default:
            return "note";
    }
}

std::string diagnostic::to_string() const
{
    std::string out = "[" + std::string( severity_name( sev ) ) + "] " + id;
    if( !kernel.empty() )
    {
        out += " at " + kernel;
        if( !port.empty() )
        {
            out += "." + port;
        }
    }
    out += ": " + message;
    return out;
}

std::string report::to_string() const
{
    if( diagnostics.empty() )
    {
        return "analysis clean";
    }
    std::string out;
    for( const auto &d : diagnostics )
    {
        out += d.to_string() + "\n";
    }
    out += std::to_string( errors() ) + " error(s), " +
           std::to_string( warnings() ) + " warning(s), " +
           std::to_string( notes() ) + " note(s)";
    return out;
}

namespace {

std::string json_escape( const std::string &s )
{
    std::string out;
    out.reserve( s.size() + 8 );
    for( const char c : s )
    {
        switch( c )
        {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            default:
                if( static_cast<unsigned char>( c ) < 0x20 )
                {
                    static const char hex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[ ( c >> 4 ) & 0xf ];
                    out += hex[ c & 0xf ];
                }
                else
                {
                    out += c;
                }
        }
    }
    return out;
}

} /** end anonymous namespace **/

std::string report::to_json() const
{
    std::string out = "{\n  \"version\": 1,\n  \"summary\": { \"errors\": " +
                      std::to_string( errors() ) + ", \"warnings\": " +
                      std::to_string( warnings() ) + ", \"notes\": " +
                      std::to_string( notes() ) + " },\n  \"diagnostics\": [";
    bool first = true;
    for( const auto &d : diagnostics )
    {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    { \"severity\": \"" +
               std::string( severity_name( d.sev ) ) + "\", \"id\": \"" +
               json_escape( d.id ) + "\", \"kernel\": \"" +
               json_escape( d.kernel ) + "\", \"port\": \"" +
               json_escape( d.port ) + "\", \"message\": \"" +
               json_escape( d.message ) + "\" }";
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

namespace {

class analyzer
{
public:
    analyzer( const topology &topo, const run_options &opts )
        : topo_( topo ), opts_( opts )
    {
    }

    report run()
    {
        if( topo_.kernels().empty() )
        {
            add( severity::error, "empty-graph", "", "",
                 "the graph has no kernels; nothing to execute" );
            return finish();
        }
        check_ports();
        check_connectivity();
        check_sources_and_sinks();
        check_cycles();
        check_link_types();
        check_replica_lanes();
        check_restart_policies();
        check_elastic_config();
        check_supervision_config();
        return finish();
    }

private:
    void add( const severity sev, std::string id, std::string kernel,
              std::string port, std::string message )
    {
        rep_.diagnostics.push_back(
            diagnostic{ sev, std::move( id ), std::move( kernel ),
                        std::move( port ), std::move( message ) } );
    }

    report finish()
    {
        std::stable_sort(
            rep_.diagnostics.begin(), rep_.diagnostics.end(),
            []( const diagnostic &a, const diagnostic &b )
            { return static_cast<int>( a.sev ) < static_cast<int>( b.sev ); } );
        return std::move( rep_ );
    }

    /** unconnected-port / double-link: every declared port must be part of
     *  exactly one stream. */
    void check_ports()
    {
        for( kernel *k : topo_.kernels() )
        {
            for( const auto &p : std::as_const( k->input ) )
            {
                const auto n = edge_count( k, p.name(), /*input=*/true );
                if( n == 0 )
                {
                    add( severity::error, "unconnected-port", k->name(),
                         p.name(),
                         "input port '" + p.name() + "' of " + k->name() +
                             " is not linked; the kernel would block on it "
                             "forever" );
                }
                else if( n > 1 )
                {
                    add( severity::error, "double-link", k->name(),
                         p.name(),
                         "input port '" + p.name() + "' of " + k->name() +
                             " is the destination of " + std::to_string( n ) +
                             " links; a port binds exactly one stream" );
                }
            }
            for( const auto &p : std::as_const( k->output ) )
            {
                const auto n = edge_count( k, p.name(), /*input=*/false );
                if( n == 0 )
                {
                    add( severity::error, "unconnected-port", k->name(),
                         p.name(),
                         "output port '" + p.name() + "' of " + k->name() +
                             " is not linked; everything it produces would "
                             "be lost" );
                }
                else if( n > 1 )
                {
                    add( severity::error, "double-link", k->name(),
                         p.name(),
                         "output port '" + p.name() + "' of " + k->name() +
                             " is the source of " + std::to_string( n ) +
                             " links; a port binds exactly one stream" );
                }
            }
        }
    }

    std::size_t edge_count( const kernel *k, const std::string &port,
                            const bool input ) const
    {
        std::size_t n = 0;
        for( const auto &e : topo_.edges() )
        {
            if( input )
            {
                n += ( e.dst == k && e.dst_port == port ) ? 1 : 0;
            }
            else
            {
                n += ( e.src == k && e.src_port == port ) ? 1 : 0;
            }
        }
        return n;
    }

    void check_connectivity()
    {
        const auto comps = topo_.weak_components();
        if( comps.size() > 1 )
        {
            add( severity::error, "disconnected-graph", "", "",
                 "the graph splits into " + std::to_string( comps.size() ) +
                     " disconnected components; every kernel must be "
                     "reachable from every other (assemble one map per "
                     "application, §4.2)" );
        }
    }

    /** no-source / no-sink, per weakly-connected component: a component
     *  without a source can never produce data (every kernel waits on an
     *  upstream that never fires); one without a sink has nowhere for data
     *  to drain, so it is a cycle — the cycle check names the loop. */
    void check_sources_and_sinks()
    {
        for( const auto &comp : topo_.weak_components() )
        {
            bool has_source = false;
            bool has_sink   = false;
            for( const auto i : comp )
            {
                kernel *k = topo_.kernels()[ i ];
                has_source = has_source || topo_.in_degree( k ) == 0;
                has_sink   = has_sink || topo_.out_degree( k ) == 0;
            }
            if( !has_source )
            {
                add( severity::error, "no-source",
                     topo_.kernels()[ comp.front() ]->name(), "",
                     "subgraph of " + std::to_string( comp.size() ) +
                         " kernel(s) has no source (a kernel with no input "
                         "ports); nothing in it can ever produce data" );
            }
            if( !has_sink )
            {
                add( severity::warning, "no-sink",
                     topo_.kernels()[ comp.front() ]->name(), "",
                     "subgraph of " + std::to_string( comp.size() ) +
                         " kernel(s) has no sink (a kernel with no output "
                         "ports); produced data can only accumulate in the "
                         "loop" );
            }
        }
    }

    /** deadlock-cycle: a directed cycle over finite FIFOs deadlocks once
     *  the in-flight window exceeds the total buffered capacity around the
     *  loop — every kernel on it then blocks pushing into a full queue.
     *  Capacity-aware severity: with dynamic resizing the monitor's 3δ
     *  rule grows each FIFO up to max_queue_capacity, deferring the bound
     *  (warning); without it the initial capacities are the bound and the
     *  hazard is immediate (error). */
    void check_cycles()
    {
        const auto adj = topo_.adjacency();
        const auto n   = topo_.kernels().size();
        /** colors: 0 = white, 1 = gray (on DFS path), 2 = black **/
        std::vector<int> color( n, 0 );
        std::vector<std::size_t> path;
        std::size_t reported = 0;
        /** recursive DFS, iterative form: (node, next child index) **/
        std::vector<std::pair<std::size_t, std::size_t>> stack;
        for( std::size_t root = 0; root < n; ++root )
        {
            if( color[ root ] != 0 )
            {
                continue;
            }
            stack.emplace_back( root, 0 );
            color[ root ] = 1;
            path.push_back( root );
            while( !stack.empty() )
            {
                auto &[ node, child ] = stack.back();
                if( child < adj[ node ].size() )
                {
                    const auto next = adj[ node ][ child++ ];
                    if( color[ next ] == 0 )
                    {
                        color[ next ] = 1;
                        path.push_back( next );
                        stack.emplace_back( next, 0 );
                    }
                    else if( color[ next ] == 1 && reported < max_cycles )
                    {
                        report_cycle( path, next );
                        ++reported;
                    }
                }
                else
                {
                    color[ node ] = 2;
                    path.pop_back();
                    stack.pop_back();
                }
            }
        }
    }

    void report_cycle( const std::vector<std::size_t> &path,
                       const std::size_t entry )
    {
        auto it = std::find( path.begin(), path.end(), entry );
        std::string loop;
        std::size_t length = 0;
        for( ; it != path.end(); ++it )
        {
            loop += topo_.kernels()[ *it ]->name() + " -> ";
            ++length;
        }
        loop += topo_.kernels()[ entry ]->name();
        const auto fixed_cap = length * opts_.initial_queue_capacity;
        if( opts_.dynamic_resize )
        {
            const auto grown_cap = length * opts_.max_queue_capacity;
            add( severity::warning, "deadlock-cycle",
                 topo_.kernels()[ entry ]->name(), "",
                 "cycle " + loop + " can deadlock once more than " +
                     std::to_string( grown_cap ) +
                     " elements are in flight around the loop; the "
                     "monitor's 3δ resize rule grows the " +
                     std::to_string( length ) + " FIFO(s) from " +
                     std::to_string( fixed_cap ) +
                     " total slots up to that bound but cannot remove it" );
        }
        else
        {
            add( severity::error, "deadlock-cycle",
                 topo_.kernels()[ entry ]->name(), "",
                 "cycle " + loop + " over finite FIFOs (" +
                     std::to_string( fixed_cap ) +
                     " total slots) can deadlock: once every queue on the "
                     "loop is full each kernel blocks pushing while no one "
                     "can pop, and dynamic resizing is disabled" );
        }
    }

    /** incompatible-link-types / lossy-conversion: per-edge type audit.
     *  Non-convertible mismatches are errors (exe() defers the throw to
     *  the type-checking pass so its link_type_exception text is
     *  preserved); convertible-but-lossy links warn with the exact value
     *  classes that cannot survive the trip. */
    void check_link_types()
    {
        for( const auto &e : topo_.edges() )
        {
            const auto &src = e.src->output[ e.src_port ].meta();
            const auto &dst = e.dst->input[ e.dst_port ].meta();
            if( src.index == dst.index )
            {
                continue;
            }
            const std::string site = e.src->name() + "." + e.src_port +
                                     " (" + src.name + ") -> " +
                                     e.dst->name() + "." + e.dst_port +
                                     " (" + dst.name + ")";
            if( !src.arithmetic || !dst.arithmetic )
            {
                add( severity::error, "incompatible-link-types",
                     e.src->name(), e.src_port,
                     "link " + site +
                         ": types differ and are not convertible" );
                continue;
            }
            std::string loss;
            if( src.floating && !dst.floating )
            {
                loss = "fractional values are truncated";
            }
            else if( src.digits > dst.digits )
            {
                loss = ( src.floating || dst.floating )
                           ? "values above 2^" +
                                 std::to_string( dst.digits ) +
                                 " lose precision (" +
                                 std::to_string( src.digits ) + " -> " +
                                 std::to_string( dst.digits ) +
                                 " significand bits)"
                           : "values above " + std::to_string( dst.digits ) +
                                 " bits are truncated";
            }
            else if( src.is_signed && !dst.is_signed )
            {
                loss = "negative values wrap";
            }
            if( !loss.empty() )
            {
                add( severity::warning, "lossy-conversion", e.src->name(),
                     e.src_port,
                     "link " + site +
                         ": the spliced conversion adapter is lossy — " +
                         loss );
            }
        }
    }

    /** ooo-unsafe-replica-lane: an order-sensitive kernel must not end up
     *  behind a split adapter, where replica lanes receive (and emit)
     *  elements out of order. Two sightings: the pre-rewrite candidate
     *  (clonable kernel whose every stream is raft::out — exactly what
     *  apply_auto_parallel replicates) and the structural case of a split
     *  or reduce adapter already wired to it. */
    void check_replica_lanes()
    {
        for( kernel *k : topo_.kernels() )
        {
            if( !k->order_sensitive() )
            {
                continue;
            }
            if( k->clone_supported() && replication_candidate( k ) )
            {
                if( opts_.enable_auto_parallel )
                {
                    add( severity::error, "ooo-unsafe-replica-lane",
                         k->name(), "",
                         k->name() +
                             " is order-sensitive, yet it is clonable and "
                             "every stream touching it is raft::out — "
                             "auto-parallelization would replicate it into "
                             "split/reduce lanes that reorder elements; "
                             "link it in_order or drop clone()" );
                }
                else
                {
                    add( severity::note, "ooo-unsafe-replica-lane",
                         k->name(), "",
                         k->name() +
                             " is an order-sensitive replication candidate; "
                             "safe only while enable_auto_parallel stays "
                             "off" );
                }
            }
            for( const auto &e : topo_.edges() )
            {
                if( ( e.dst == k &&
                      dynamic_cast<split_kernel *>( e.src ) != nullptr ) ||
                    ( e.src == k &&
                      dynamic_cast<reduce_kernel *>( e.dst ) != nullptr ) )
                {
                    add( severity::error, "ooo-unsafe-replica-lane",
                         k->name(), "",
                         k->name() +
                             " is order-sensitive but sits inside a "
                             "split/reduce replica lane, which delivers "
                             "elements out of order" );
                    break;
                }
            }
        }
    }

    bool replication_candidate( const kernel *k ) const
    {
        bool touched = false;
        for( const auto &e : topo_.edges() )
        {
            if( e.src == k || e.dst == k )
            {
                touched = true;
                if( e.ord != raft::out )
                {
                    return false;
                }
            }
        }
        return touched;
    }

    /** restart-no-reset / restart-policy-inert: supervised restart re-enters
     *  run() in place, so a kernel holding cross-invocation state must reset
     *  it (on_restart + restart_safe); a policy without supervision enabled
     *  does nothing at all. */
    void check_restart_policies()
    {
        for( kernel *k : topo_.kernels() )
        {
            const restart_policy *explicit_p = k->restart();
            if( !opts_.supervision.enabled )
            {
                if( explicit_p != nullptr && explicit_p->max_restarts > 0 )
                {
                    add( severity::note, "restart-policy-inert", k->name(),
                         "",
                         k->name() +
                             " sets a restart policy but supervision is "
                             "disabled; enable run_options::supervision for "
                             "it to take effect" );
                }
                continue;
            }
            const restart_policy &eff =
                explicit_p != nullptr ? *explicit_p
                                      : opts_.supervision.default_restart;
            if( eff.max_restarts > 0 && !k->restart_safe() )
            {
                add( severity::warning, "restart-no-reset", k->name(), "",
                     k->name() + " can be restarted up to " +
                         std::to_string( eff.max_restarts ) +
                         " time(s) but does not declare restart_safe(); a "
                         "half-finished run() may leave internal state "
                         "behind — override on_restart() to reset it and "
                         "restart_safe() to acknowledge" );
            }
        }
    }

    void check_elastic_config()
    {
        const auto &e = opts_.elastic;
        if( !e.enabled )
        {
            return;
        }
        if( e.max_replicas != 0 && e.min_replicas > e.max_replicas )
        {
            add( severity::error, "elastic-bounds", "", "",
                 "elastic_options: min_replicas (" +
                     std::to_string( e.min_replicas ) +
                     ") exceeds max_replicas (" +
                     std::to_string( e.max_replicas ) +
                     "); the controller has no valid lane count" );
        }
        if( !opts_.enable_auto_parallel )
        {
            add( severity::warning, "elastic-without-auto-parallel", "", "",
                 "the elastic controller actuates replica lanes created by "
                 "auto-parallelization, which is disabled; it can only "
                 "resize FIFOs" );
            return;
        }
        bool candidate = false;
        for( kernel *k : topo_.kernels() )
        {
            candidate = candidate || ( k->clone_supported() &&
                                       replication_candidate( k ) );
        }
        if( !candidate )
        {
            add( severity::note, "elastic-no-candidates", "", "",
                 "elastic runtime enabled but no kernel is clonable with "
                 "all-raft::out links; the controller has no replica lanes "
                 "to activate or retire" );
        }
    }

    void check_supervision_config()
    {
        const auto &s = opts_.supervision;
        if( s.enabled && s.watchdog_deadline.count() > 0 &&
            s.watchdog_deadline < opts_.monitor_delta )
        {
            add( severity::warning, "watchdog-too-tight", "", "",
                 "supervision watchdog deadline (" +
                     std::to_string( s.watchdog_deadline.count() ) +
                     " ns) is shorter than the monitor δ (" +
                     std::to_string( opts_.monitor_delta.count() ) +
                     " ns); progress is sampled once per δ, so every "
                     "tick would look stalled" );
        }
    }

    static constexpr std::size_t max_cycles = 8;

    const topology &topo_;
    const run_options &opts_;
    report rep_;
};

} /** end anonymous namespace **/

report analyze( const topology &topo, const run_options &opts )
{
    return analyzer( topo, opts ).run();
}

} /** end namespace analysis **/

analysis::report analyze( const map &m, const run_options &opts )
{
    return analysis::analyze( m.graph(), opts );
}

} /** end namespace raft **/
