/**
 * mc.cpp — the exhaustive-interleaving explorer behind mc::explore().
 *
 * Architecture: the model's threads are real std::threads, created once and
 * reused for every execution (cheap restarts, and the mutex/condvar token
 * handoff gives TSan a clean happens-before chain, so the checker itself can
 * run under the sanitizer jobs). Exactly one party runs at a time: each
 * worker announces its next visible operation via arrive() and parks; the
 * control thread (the caller of explore()) picks one enabled action, grants
 * it, and waits for the system to go quiescent again. Scheduling decisions
 * form a stack of DFS nodes; backtracking replays the decision prefix —
 * bodies are deterministic, so replay reproduces the state — and takes the
 * next sibling.
 *
 * Sleep sets (see mc.hpp header) prune commuting interleavings. Blocked
 * threads (retry_guard) are enabled only after another party commits a
 * store, tracked with per-thread commit counters — a thread's own commits
 * never wake it, which is what makes `while( !try_x() ) wait();` loops
 * explorable without livelock. A state where every unfinished thread is
 * un-wakeable is reported as a deadlock with the full trace.
 */
#include "analysis/mc/mc.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace raft {
namespace mc {

namespace detail {
engine_iface *g = nullptr;
} /** end namespace detail **/

std::string result::summary() const
{
    std::string s = "explored " + std::to_string( executions ) +
                    " executions / " + std::to_string( steps ) +
                    " steps; " + ( complete ? "complete" : "bounded" ) +
                    "; " + std::to_string( violations.size() ) +
                    " violation(s)";
    for( const auto &v : violations )
    {
        s += "\n  - " + v.message;
    }
    return s;
}

namespace {

thread_local int tls_tid = -1;

const char *op_name( const op k )
{
    switch( k )
    {
        case op::load:
            return "load";
        case op::store:
            return "store";
        case op::rmw:
            return "rmw";
        case op::flush:
            return "flush";
        case op::block:
            return "block";
    }
    return "?";
}

const char *order_name( const int o )
{
    switch( static_cast<std::memory_order>( o ) )
    {
        case std::memory_order_relaxed:
            return "relaxed";
        case std::memory_order_consume:
            return "consume";
        case std::memory_order_acquire:
            return "acquire";
        case std::memory_order_release:
            return "release";
        case std::memory_order_acq_rel:
            return "acq_rel";
        case std::memory_order_seq_cst:
            return "seq_cst";
    }
    return "?";
}

bool is_effect( const action &a )
{
    return a.kind == op::store || a.kind == op::rmw || a.kind == op::flush;
}

/** Thread that owns an action's effects: flush(t) commits thread t's
 *  stores. */
int owner_of( const action &a )
{
    return a.actor >= max_threads ? a.actor - max_threads : a.actor;
}

/**
 * Conservative dependence relation for the sleep sets. Two actions are
 * independent only when they commute AND neither enables/disables the
 * other; everything uncertain is declared a conflict (less pruning, still
 * sound).
 */
bool conflict( const action &a, const action &b )
{
    if( owner_of( a ) == owner_of( b ) )
    {
        /** same thread: program order; also a thread's store enables its
         *  own flush action */
        return true;
    }
    if( a.kind == op::block )
    {
        /** a commit by anyone may wake a blocked thread */
        return is_effect( b );
    }
    if( b.kind == op::block )
    {
        return is_effect( a );
    }
    if( a.obj != nullptr && a.obj == b.obj &&
        ( is_effect( a ) || is_effect( b ) ) )
    {
        return true;
    }
    return false;
}

class engine final : public detail::engine_iface
{
public:
    using verify_fn = std::function<void(
        const std::function<void( const std::string & )> & )>;

    engine( const options &o, const std::function<void()> &reset,
            const std::vector<std::function<void()>> &bodies,
            const verify_fn &verify )
        : opt_( o ), reset_( reset ), bodies_( bodies ), verify_( verify ),
          nthreads_( static_cast<int>( bodies.size() ) )
    {
        if( nthreads_ < 1 || nthreads_ > max_threads )
        {
            throw std::invalid_argument(
                "mc::explore: thread count must be 1.." +
                std::to_string( max_threads ) );
        }
    }

    ~engine() override
    {
        {
            std::lock_guard<std::mutex> lk( m_ );
            shutdown_ = true;
            cv_.notify_all();
        }
        for( auto &t : threads_ )
        {
            t.join();
        }
    }

    result run()
    {
        threads_.reserve( static_cast<std::size_t>( nthreads_ ) );
        for( int t = 0; t < nthreads_; ++t )
        {
            threads_.emplace_back( &engine::worker_main, this, t );
        }
        for( ;; )
        {
            if( res_.executions >= opt_.max_executions )
            {
                res_.complete = false;
                break;
            }
            const auto st = run_one();
            ++res_.executions;
            if( st == ex_status::violation && opt_.stop_on_violation )
            {
                res_.complete = false;
                break;
            }
            /** backtrack: advance the deepest node with an unexplored
             *  sibling, popping exhausted nodes */
            bool advanced = false;
            while( !nodes_.empty() )
            {
                auto &n = nodes_.back();
                if( n.pos + 1 < n.candidates.size() )
                {
                    ++n.pos;
                    advanced = true;
                    break;
                }
                nodes_.pop_back();
            }
            if( !advanced )
            {
                res_.complete = true;
                break;
            }
        }
        return res_;
    }

    /** @name engine_iface (called from worker threads) */
    ///@{
    void arrive( const action &a ) override
    {
        const int t = tls_tid;
        std::unique_lock<std::mutex> lk( m_ );
        pending_[ static_cast<std::size_t>( t ) ] = a;
        if( a.kind == op::block )
        {
            blocked_seq_[ static_cast<std::size_t>( t ) ] =
                static_cast<std::uint64_t>( a.value );
            state_[ static_cast<std::size_t>( t ) ] = ws::blocked;
        }
        else
        {
            state_[ static_cast<std::size_t>( t ) ] = ws::at_point;
        }
        cv_.notify_all();
        cv_.wait( lk, [ & ] { return aborting_ || granted_ == t; } );
        if( aborting_ )
        {
            throw execution_aborted{};
        }
        granted_                                = -1;
        state_[ static_cast<std::size_t>( t ) ] = ws::running;
        /** effect runs in the caller after return — exclusive, since the
         *  control thread waits for this worker to park again */
    }

    void log_value( const long long v ) override
    {
        std::lock_guard<std::mutex> lk( m_ );
        if( !log_.empty() )
        {
            log_.back().value = v;
        }
    }

    bool buffering() const override { return opt_.store_buffer > 0; }

    void buffer_store( const void *obj, const char *name,
                       std::function<void()> commit,
                       const long long traced ) override
    {
        const auto t = static_cast<std::size_t>( tls_tid );
        buf_entry oldest;
        bool overflow = false;
        {
            std::lock_guard<std::mutex> lk( m_ );
            buffers_[ t ].push_back(
                buf_entry{ obj, name, std::move( commit ), traced } );
            if( buffers_[ t ].size() >
                static_cast<std::size_t>( opt_.store_buffer ) )
            {
                oldest = std::move( buffers_[ t ].front() );
                buffers_[ t ].erase( buffers_[ t ].begin() );
                overflow = true;
            }
        }
        if( overflow )
        {
            /** buffer full: the oldest store drains to memory as part of
             *  this step (TSO buffers are finite) */
            oldest.commit();
            note_commit( static_cast<int>( t ) );
        }
    }

    void flush_own() override
    {
        const auto t = static_cast<std::size_t>( tls_tid );
        std::vector<buf_entry> entries;
        {
            std::lock_guard<std::mutex> lk( m_ );
            entries.swap( buffers_[ t ] );
        }
        for( auto &e : entries )
        {
            e.commit();
            note_commit( static_cast<int>( t ) );
        }
    }

    void bump_commit() override { note_commit( tls_tid ); }

    std::uint64_t commits_by_others( const int t ) const override
    {
        std::lock_guard<std::mutex> lk( m_ );
        return total_commits_ - commits_by_[ static_cast<std::size_t>( t ) ];
    }

    [[noreturn]] void fail( const std::string &msg ) override
    {
        {
            std::lock_guard<std::mutex> lk( m_ );
            record_violation( "assertion failed: " + msg );
            had_violation_ = true;
            aborting_      = true;
            cv_.notify_all();
        }
        throw execution_aborted{};
    }

    int tid() const override { return tls_tid; }
    ///@}

private:
    enum class ws : std::uint8_t
    {
        idle,
        running,
        at_point,
        blocked,
        finished
    };

    enum class ex_status : std::uint8_t
    {
        normal,
        violation,
        pruned
    };

    struct buf_entry
    {
        const void *obj{ nullptr };
        const char *name{ "" };
        std::function<void()> commit;
        long long value{ 0 };
    };

    struct node
    {
        std::vector<action> candidates;
        std::size_t pos{ 0 };
    };

    void worker_main( const int t )
    {
        tls_tid = t;
        std::unique_lock<std::mutex> lk( m_ );
        std::uint64_t seen_gen = 0;
        for( ;; )
        {
            cv_.wait( lk, [ & ]
                      { return shutdown_ || exec_gen_ != seen_gen; } );
            if( shutdown_ )
            {
                return;
            }
            seen_gen = exec_gen_;
            lk.unlock();
            try
            {
                bodies_[ static_cast<std::size_t>( t ) ]();
            }
            catch( const execution_aborted & )
            {
            }
            lk.lock();
            state_[ static_cast<std::size_t>( t ) ] = ws::finished;
            cv_.notify_all();
        }
    }

    void note_commit( const int t )
    {
        std::lock_guard<std::mutex> lk( m_ );
        ++total_commits_;
        ++commits_by_[ static_cast<std::size_t>( t ) ];
    }

    bool quiescent() const
    {
        for( int t = 0; t < nthreads_; ++t )
        {
            const auto s = state_[ static_cast<std::size_t>( t ) ];
            if( s != ws::at_point && s != ws::blocked && s != ws::finished )
            {
                return false;
            }
        }
        return true;
    }

    bool all_finished() const
    {
        for( int t = 0; t < nthreads_; ++t )
        {
            if( state_[ static_cast<std::size_t>( t ) ] != ws::finished )
            {
                return false;
            }
        }
        return true;
    }

    void record_violation( const std::string &msg )
    {
        if( res_.violations.size() < 8 )
        {
            res_.violations.push_back( violation{ msg, format_trace() } );
        }
    }

    std::vector<std::string> format_trace() const
    {
        std::vector<std::string> out;
        out.reserve( log_.size() );
        int i = 0;
        for( const auto &a : log_ )
        {
            std::string line = "#" + std::to_string( i++ ) + " ";
            if( a.actor >= max_threads )
            {
                line += "flush(T" +
                        std::to_string( a.actor - max_threads ) + ") ";
            }
            else
            {
                line += "T" + std::to_string( a.actor ) + " ";
            }
            line += op_name( a.kind );
            line += ' ';
            line += a.name;
            if( a.kind != op::block )
            {
                line += '=' + std::to_string( a.value ) + " (" +
                        order_name( a.order ) + ")";
            }
            out.push_back( std::move( line ) );
        }
        return out;
    }

    /** Unwind every live worker (they throw execution_aborted at their
     *  park point) and wait until all are finished. Caller holds lk. */
    void abort_execution( std::unique_lock<std::mutex> &lk )
    {
        aborting_ = true;
        cv_.notify_all();
        cv_.wait( lk, [ & ] { return all_finished(); } );
    }

    bool sleeping( const action &a ) const
    {
        return std::any_of( sleep_.begin(), sleep_.end(),
                            [ & ]( const action &s )
                            { return s.actor == a.actor; } );
    }

    ex_status run_one()
    {
        reset_(); /** workers are idle/finished — exclusive access */
        {
            std::lock_guard<std::mutex> lk( m_ );
            aborting_      = false;
            had_violation_ = false;
            granted_       = -1;
            log_.clear();
            total_commits_ = 0;
            commits_by_.fill( 0 );
            for( auto &b : buffers_ )
            {
                b.clear();
            }
            for( int t = 0; t < nthreads_; ++t )
            {
                state_[ static_cast<std::size_t>( t ) ] = ws::running;
            }
            ++exec_gen_;
            cv_.notify_all();
        }
        sleep_.clear();
        std::size_t depth = 0;
        int steps         = 0;
        ex_status status  = ex_status::normal;

        std::unique_lock<std::mutex> lk( m_ );
        for( ;; )
        {
            cv_.wait( lk,
                      [ & ] { return granted_ == -1 && quiescent(); } );
            if( aborting_ )
            {
                /** a worker failed an mc::check — it already recorded the
                 *  violation; unwind the rest */
                cv_.wait( lk, [ & ] { return all_finished(); } );
                status = ex_status::violation;
                break;
            }
            if( all_finished() )
            {
                break;
            }
            /** enabled actions at this state */
            std::vector<action> enabled;
            for( int t = 0; t < nthreads_; ++t )
            {
                const auto ti = static_cast<std::size_t>( t );
                if( state_[ ti ] == ws::at_point )
                {
                    enabled.push_back( pending_[ ti ] );
                }
                else if( state_[ ti ] == ws::blocked &&
                         total_commits_ - commits_by_[ ti ] >
                             blocked_seq_[ ti ] )
                {
                    enabled.push_back( pending_[ ti ] );
                }
            }
            for( int t = 0; t < nthreads_; ++t )
            {
                const auto ti = static_cast<std::size_t>( t );
                if( !buffers_[ ti ].empty() )
                {
                    const auto &front = buffers_[ ti ].front();
                    enabled.push_back( action{ max_threads + t, op::flush,
                                               front.obj, front.name, 0,
                                               front.value } );
                }
            }
            if( enabled.empty() )
            {
                std::string who;
                for( int t = 0; t < nthreads_; ++t )
                {
                    if( state_[ static_cast<std::size_t>( t ) ] ==
                        ws::blocked )
                    {
                        who += ( who.empty() ? "T" : ", T" ) +
                               std::to_string( t );
                    }
                }
                record_violation(
                    "deadlock: every unfinished thread (" + who +
                    ") waits for a commit that can never happen" );
                abort_execution( lk );
                status = ex_status::violation;
                break;
            }
            action chosen;
            if( depth < nodes_.size() )
            {
                /** replay the DFS prefix */
                const auto &n = nodes_[ depth ];
                chosen        = n.candidates[ n.pos ];
                const bool ok = std::any_of(
                    enabled.begin(), enabled.end(),
                    [ & ]( const action &e )
                    { return e.actor == chosen.actor; } );
                if( !ok )
                {
                    record_violation(
                        "internal: replay divergence — model bodies are "
                        "not deterministic" );
                    abort_execution( lk );
                    status = ex_status::violation;
                    break;
                }
            }
            else
            {
                node n;
                for( const auto &e : enabled )
                {
                    if( !sleeping( e ) )
                    {
                        n.candidates.push_back( e );
                    }
                }
                if( n.candidates.empty() )
                {
                    /** every enabled action is asleep: this state is fully
                     *  covered by a sibling branch */
                    abort_execution( lk );
                    status = ex_status::pruned;
                    break;
                }
                nodes_.push_back( std::move( n ) );
                chosen = nodes_.back().candidates[ 0 ];
            }
            /** child sleep set: survivors of the current sleep set plus
             *  already-explored siblings, minus anything the chosen action
             *  conflicts with */
            {
                const auto &n = nodes_[ depth ];
                std::vector<action> ns;
                for( const auto &s : sleep_ )
                {
                    if( !conflict( s, chosen ) )
                    {
                        ns.push_back( s );
                    }
                }
                for( std::size_t i = 0; i < n.pos; ++i )
                {
                    if( !conflict( n.candidates[ i ], chosen ) )
                    {
                        ns.push_back( n.candidates[ i ] );
                    }
                }
                sleep_ = std::move( ns );
            }
            ++depth;
            ++steps;
            ++res_.steps;
            if( steps > opt_.max_steps )
            {
                record_violation( "livelock: execution exceeded " +
                                  std::to_string( opt_.max_steps ) +
                                  " steps" );
                abort_execution( lk );
                status = ex_status::violation;
                break;
            }
            log_.push_back( chosen );
            if( chosen.actor >= max_threads )
            {
                /** flush: commit the oldest buffered store of that thread.
                 *  Workers are all parked — running the commit closure
                 *  under the lock is exclusive. */
                const auto ti =
                    static_cast<std::size_t>( chosen.actor - max_threads );
                auto e = std::move( buffers_[ ti ].front() );
                buffers_[ ti ].erase( buffers_[ ti ].begin() );
                e.commit();
                ++total_commits_;
                ++commits_by_[ ti ];
            }
            else
            {
                granted_ = chosen.actor;
                cv_.notify_all();
            }
        }
        lk.unlock();
        if( status == ex_status::normal )
        {
            /** drain leftover buffered stores (no thread left to observe
             *  the intermediate states) so verify() sees final memory */
            for( auto &b : buffers_ )
            {
                for( auto &e : b )
                {
                    e.commit();
                }
                b.clear();
            }
            if( verify_ )
            {
                bool bad = false;
                std::string msg;
                verify_(
                    [ & ]( const std::string &m )
                    {
                        if( !bad )
                        {
                            bad = true;
                            msg = m;
                        }
                    } );
                if( bad )
                {
                    std::lock_guard<std::mutex> g2( m_ );
                    record_violation( "final-state check failed: " + msg );
                    status = ex_status::violation;
                }
            }
        }
        return status;
    }

    const options opt_;
    std::function<void()> reset_;
    std::vector<std::function<void()>> bodies_;
    verify_fn verify_;
    const int nthreads_;

    mutable std::mutex m_;
    std::condition_variable cv_;
    std::array<ws, max_threads> state_{};
    std::array<action, max_threads> pending_{};
    std::array<std::uint64_t, max_threads> blocked_seq_{};
    int granted_{ -1 };
    bool aborting_{ false };
    bool had_violation_{ false };
    bool shutdown_{ false };
    std::uint64_t exec_gen_{ 0 };

    std::array<std::vector<buf_entry>, max_threads> buffers_{};
    std::uint64_t total_commits_{ 0 };
    std::array<std::uint64_t, max_threads> commits_by_{};

    std::vector<action> log_;
    std::vector<node> nodes_;
    std::vector<action> sleep_;

    result res_;
    std::vector<std::thread> threads_;
};

} /** end anonymous namespace **/

result explore(
    const options &opt, const std::function<void()> &reset,
    const std::vector<std::function<void()>> &threads,
    const std::function<
        void( const std::function<void( const std::string & )> & )> &verify )
{
    engine e( opt, reset, threads, verify );
    detail::g = &e;
    result r;
    try
    {
        r = e.run();
    }
    catch( ... )
    {
        detail::g = nullptr;
        throw;
    }
    detail::g = nullptr;
    return r;
}

} /** end namespace mc **/
} /** end namespace raft **/
