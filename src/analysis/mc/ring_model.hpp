/**
 * ring_model.hpp — the core ring buffer's lock-free protocol,
 * re-instantiated over mc::atomic so mc::explore() can model-check it.
 *
 * This mirrors src/core/ringbuffer.hpp operation for operation:
 *
 *   - monotonic head_/tail_ counters, release publication, relaxed reads
 *     of the own end;
 *   - shadow-index caching: each end keeps a plain cached copy of the
 *     opposite counter and re-reads the real one only when the cache
 *     implies full/empty;
 *   - the Dekker resize handshake: an end announces itself with a seq_cst
 *     store to prod_op_/cons_op_ and then seq_cst-loads gate_; the monitor
 *     seq_cst-stores gate_ and waits for both op flags to clear. Elements
 *     are relocated unwrapped to index 0, the shadow caches are re-seeded
 *     while the ends are parked, and gate_ is released;
 *   - abort() poisons the stream; the flag is checked only on blocked
 *     paths, and *before* the drained (write_closed + empty) check, so a
 *     cancelled graph can never be mistaken for a cleanly drained one.
 *
 * Differences from the real thing are strictly reductions: int elements,
 * power-of-two capacities up to max_cap, no signals/telemetry/timeout (the
 * model monitor parks on a retry_guard instead of a bounded spin — the
 * checker's deadlock detector replaces the timeout).
 *
 * Two knobs re-introduce real bugs for the checker to catch:
 *
 *   broken_dekker      — the handshake's seq_cst store/load pair weakens
 *                        to release/acquire. Under bounded store
 *                        reordering (options.store_buffer >= 1) the end's
 *                        announcement can sit in its store buffer while it
 *                        reads gate_ == false, so end and monitor enter
 *                        the critical section together and elements are
 *                        lost or duplicated during relocation.
 *   broken_abort_order — try_pop checks drained before aborted. An
 *                        execution where abort() lands before close_write()
 *                        can then return EOS to a consumer that should
 *                        have observed the cancellation.
 */
#pragma once

#include <atomic>
#include <vector>

#include "analysis/mc/mc.hpp"

namespace raft {
namespace mc {

struct ring_opts
{
    bool broken_dekker{ false };
    bool broken_abort_order{ false };
};

class model_ring
{
public:
    static constexpr unsigned max_cap = 8;

    enum class pop_status : std::uint8_t
    {
        got,
        empty,
        eos,
        aborted
    };

    explicit model_ring( const ring_opts o = {} )
        : o_( o ), head_( 0U, "head" ), tail_( 0U, "tail" ),
          capacity_( 2U, "capacity" ), mask_( 1U, "mask" ),
          gate_( false, "gate" ), prod_op_( false, "prod_op" ),
          cons_op_( false, "cons_op" ),
          write_closed_( false, "write_closed" ),
          aborted_( false, "aborted" )
    {
        for( auto &d : data_ )
        {
            d.set_name( "slot" );
        }
    }

    /** between-executions reset (called from explore()'s reset closure) */
    void reset( const unsigned cap )
    {
        head_.raw_reset( 0U );
        tail_.raw_reset( 0U );
        capacity_.raw_reset( cap );
        mask_.raw_reset( cap - 1U );
        for( auto &d : data_ )
        {
            d.raw_reset( 0 );
        }
        gate_.raw_reset( false );
        prod_op_.raw_reset( false );
        cons_op_.raw_reset( false );
        write_closed_.raw_reset( false );
        aborted_.raw_reset( false );
        cached_head_ = 0U;
        cached_tail_ = 0U;
    }

    /** seed a (possibly wrapped) occupancy from a reset closure: `h` is
     *  the head index, `vals` the FIFO contents oldest-first. Call after
     *  reset(); the shadow caches are seeded to match. */
    void raw_seed( const unsigned h, const std::vector<int> &vals )
    {
        const auto m = mask_.raw_get();
        const auto n = static_cast<unsigned>( vals.size() );
        head_.raw_reset( h );
        tail_.raw_reset( h + n );
        for( unsigned i = 0U; i < n; ++i )
        {
            data_[ ( h + i ) & m ].raw_reset( vals[ i ] );
        }
        cached_head_ = h;
        cached_tail_ = h + n;
    }

    /** seed lifecycle flags as already-committed (reset closures only) */
    void raw_set_flags( const bool aborted, const bool write_closed )
    {
        aborted_.raw_reset( aborted );
        write_closed_.raw_reset( write_closed );
    }

    /** @name producer end */
    ///@{
    bool try_push( const int v )
    {
        enter_prod();
        const auto t   = tail_.load( std::memory_order_relaxed );
        const auto cap = capacity_.load( std::memory_order_relaxed );
        const auto h   = prod_head( t, cap );
        bool ok        = false;
        if( t - h < cap )
        {
            const auto m = mask_.load( std::memory_order_relaxed );
            data_[ t & m ].store( v, std::memory_order_relaxed );
            tail_.store( t + 1U, std::memory_order_release );
            ok = true;
        }
        exit_prod();
        return ok;
    }

    /** blocking push; returns false when the stream was aborted while
     *  this end was blocked (mirrors throw_if_aborted_write) */
    bool push( const int v )
    {
        retry_guard g;
        for( ;; )
        {
            if( try_push( v ) )
            {
                return true;
            }
            if( aborted_.load( std::memory_order_acquire ) )
            {
                return false;
            }
            g.wait();
        }
    }

    void close_write()
    {
        write_closed_.store( true, std::memory_order_release );
    }

    void abort() { aborted_.store( true, std::memory_order_release ); }
    ///@}

    /** @name consumer end */
    ///@{
    pop_status try_pop( int &out )
    {
        enter_cons();
        const auto h = head_.load( std::memory_order_relaxed );
        const auto t = cons_tail( h );
        bool got     = false;
        if( t != h )
        {
            const auto m = mask_.load( std::memory_order_relaxed );
            out          = data_[ h & m ].load( std::memory_order_relaxed );
            head_.store( h + 1U, std::memory_order_release );
            got = true;
        }
        exit_cons();
        if( got )
        {
            return pop_status::got;
        }
        if( !o_.broken_abort_order )
        {
            /** the real ordering: abort beats EOS on the blocked path */
            if( aborted_.load( std::memory_order_acquire ) )
            {
                return pop_status::aborted;
            }
            if( drained() )
            {
                return pop_status::eos;
            }
        }
        else
        {
            /** deliberately wrong: drained check first */
            if( drained() )
            {
                return pop_status::eos;
            }
            if( aborted_.load( std::memory_order_acquire ) )
            {
                return pop_status::aborted;
            }
        }
        return pop_status::empty;
    }

    /** blocking pop; never returns `empty` */
    pop_status pop( int &out )
    {
        retry_guard g;
        for( ;; )
        {
            const auto s = try_pop( out );
            if( s != pop_status::empty )
            {
                return s;
            }
            g.wait();
        }
    }
    ///@}

    /** @name monitor end — cooperative resize */
    ///@{
    bool try_resize( const unsigned new_cap )
    {
        gate_.store( true, std::memory_order_seq_cst );
        {
            retry_guard g;
            while( prod_op_.load( std::memory_order_seq_cst ) ||
                   cons_op_.load( std::memory_order_seq_cst ) )
            {
                g.wait();
            }
        }
        /** both ends parked — exclusive access from here (that claim is
         *  the property under test) */
        const auto h = head_.load( std::memory_order_relaxed );
        const auto t = tail_.load( std::memory_order_relaxed );
        const auto n = t - h;
        if( new_cap < n || new_cap > max_cap )
        {
            gate_.store( false, std::memory_order_release );
            return false;
        }
        const auto old_m = mask_.load( std::memory_order_relaxed );
        int tmp[ max_cap ]{};
        for( unsigned i = 0U; i < n; ++i )
        {
            tmp[ i ] = data_[ ( h + i ) & old_m ].load(
                std::memory_order_relaxed );
        }
        /** relocate unwrapped into index 0 — the paper's efficient
         *  non-wrapped resize position */
        for( unsigned i = 0U; i < n; ++i )
        {
            data_[ i ].store( tmp[ i ], std::memory_order_relaxed );
        }
        head_.store( 0U, std::memory_order_relaxed );
        tail_.store( n, std::memory_order_relaxed );
        /** re-seed the shadow caches while the ends are parked */
        cached_head_ = 0U;
        cached_tail_ = n;
        capacity_.store( new_cap, std::memory_order_relaxed );
        mask_.store( new_cap - 1U, std::memory_order_relaxed );
        gate_.store( false, std::memory_order_release );
        return true;
    }
    ///@}

    /** @name final-state inspection (verify closures only) */
    ///@{
    unsigned raw_size() const
    {
        return tail_.raw_get() - head_.raw_get();
    }
    /** i-th element counted from the head (final-state FIFO order) */
    int raw_at( const unsigned i ) const
    {
        return data_[ ( head_.raw_get() + i ) & mask_.raw_get() ]
            .raw_get();
    }
    bool raw_aborted() const { return aborted_.raw_get(); }
    ///@}

private:
    bool drained()
    {
        if( !write_closed_.load( std::memory_order_acquire ) )
        {
            return false;
        }
        const auto t = tail_.load( std::memory_order_acquire );
        const auto h = head_.load( std::memory_order_relaxed );
        return t == h;
    }

    /** producer's shadow of head_, refreshed only when the cache says
     *  full (mirrors ring_buffer::prod_head) */
    unsigned prod_head( const unsigned t, const unsigned cap )
    {
        auto h = cached_head_;
        if( t - h >= cap )
        {
            h            = head_.load( std::memory_order_acquire );
            cached_head_ = h;
        }
        return h;
    }

    /** consumer's shadow of tail_, refreshed only when the cache says
     *  empty (mirrors ring_buffer::cons_tail) */
    unsigned cons_tail( const unsigned h )
    {
        auto t = cached_tail_;
        if( t == h )
        {
            t            = tail_.load( std::memory_order_acquire );
            cached_tail_ = t;
        }
        return t;
    }

    /** @name Dekker handshake (mirrors enter_prod/exit_prod) */
    ///@{
    void enter_prod()
    {
        const auto so = o_.broken_dekker ? std::memory_order_release
                                         : std::memory_order_seq_cst;
        const auto lo = o_.broken_dekker ? std::memory_order_acquire
                                         : std::memory_order_seq_cst;
        retry_guard g;
        for( ;; )
        {
            prod_op_.store( true, so );
            if( !gate_.load( lo ) )
            {
                return;
            }
            prod_op_.store( false, std::memory_order_release );
            g.wait();
        }
    }

    void exit_prod()
    {
        prod_op_.store( false, std::memory_order_release );
    }

    void enter_cons()
    {
        const auto so = o_.broken_dekker ? std::memory_order_release
                                         : std::memory_order_seq_cst;
        const auto lo = o_.broken_dekker ? std::memory_order_acquire
                                         : std::memory_order_seq_cst;
        retry_guard g;
        for( ;; )
        {
            cons_op_.store( true, so );
            if( !gate_.load( lo ) )
            {
                return;
            }
            cons_op_.store( false, std::memory_order_release );
            g.wait();
        }
    }

    void exit_cons()
    {
        cons_op_.store( false, std::memory_order_release );
    }
    ///@}

    const ring_opts o_;

    mc::atomic<unsigned> head_;
    mc::atomic<unsigned> tail_;
    mc::atomic<unsigned> capacity_;
    mc::atomic<unsigned> mask_;
    std::array<mc::atomic<int>, max_cap> data_;
    mc::atomic<bool> gate_;
    mc::atomic<bool> prod_op_;
    mc::atomic<bool> cons_op_;
    mc::atomic<bool> write_closed_;
    mc::atomic<bool> aborted_;

    /** thread-private shadow indices — plain on purpose: their safety is
     *  exactly what the gate protocol must provide */
    unsigned cached_head_{ 0U };
    unsigned cached_tail_{ 0U };
};

} /** end namespace mc **/
} /** end namespace raft **/
