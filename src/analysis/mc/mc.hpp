/**
 * mc.hpp — a stateless software model checker for the runtime's lock-free
 * protocols.
 *
 * TSan can only flag interleavings it happens to observe; this harness
 * *enumerates* them. Protocol code is written against mc::atomic<T> — an
 * instrumented shim over plain values — and handed to mc::explore(), which
 * runs the threads under a deterministic cooperative scheduler: every
 * atomic operation is a scheduling point, exactly one thread runs between
 * points, and a depth-first search over the scheduling decisions replays
 * the program until every (pruned) interleaving has been seen.
 *
 * Pruning is sleep sets — the DPOR-lite half of Flanagan/Godefroid's
 * partial-order reduction: after a branch at a state is fully explored, the
 * explored action is put to sleep for the sibling branches and only woken
 * by a conflicting action (same object with a write, same thread, or a
 * commit that could unblock a waiter), so commuting schedules are walked
 * once. Sound for safety properties; no violation is missed.
 *
 * Weak memory is simulated with bounded store buffers (options.store_buffer
 * entries per thread, TSO-style): relaxed/release stores enter the owning
 * thread's FIFO buffer and become visible only when a scheduler-chosen
 * flush action (or a seq_cst store / RMW on the same thread, which drains
 * first) commits them; loads forward from the thread's own buffer. This is
 * exactly the store→load reordering x86 exhibits — strong enough to prove
 * a Dekker handshake needs its seq_cst fence and to catch the variant that
 * drops it, while staying a sound subset of the C++ memory model's
 * behaviours.
 *
 * Checked properties: mc::check() assertions inside protocol code, a
 * per-execution verify() over final state, deadlock (every unfinished
 * thread waiting on a commit that can never come) and livelock (step
 * bound). Violations carry the full decision trace for replay-by-eye.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

namespace raft {
namespace mc {

inline constexpr int max_threads = 4;

enum class op : std::uint8_t
{
    load,
    store,
    rmw,
    flush, /**< commit the oldest buffered store of one thread */
    block  /**< thread waits for a commit by another thread */
};

/** One scheduling decision candidate / executed step. `actor` is a thread
 *  id for thread ops, max_threads + t for "flush thread t's buffer". */
struct action
{
    int actor{ 0 };
    op kind{ op::load };
    const void *obj{ nullptr };
    const char *name{ "" };
    int order{ 0 };        /**< std::memory_order of the op */
    long long value{ 0 };  /**< traced value / blocked-seq snapshot */
};

/** Thrown into workers to unwind the current execution (violation found,
 *  branch pruned, deadlock). Model code must let it propagate. */
struct execution_aborted
{
};

namespace detail {

/** Engine hooks the header-only atomic shim calls; implemented by the
 *  explorer in mc.cpp. Valid only inside mc::explore(). */
struct engine_iface
{
    virtual ~engine_iface() = default;
    /** Announce the next visible op and park until this thread is granted
     *  the step; throws execution_aborted when the execution is being
     *  unwound. On return the thread owns the step: it performs the
     *  operation's effect and keeps running to its next arrive(). */
    virtual void arrive( const action &a ) = 0;
    /** Attach the observed/committed value to the step just granted (for
     *  violation traces). */
    virtual void log_value( long long v ) = 0;
    /** @name store-buffer plumbing (call only while owning the step) */
    ///@{
    virtual bool buffering() const = 0;
    virtual void buffer_store( const void *obj, const char *name,
                               std::function<void()> commit,
                               long long traced ) = 0;
    /** Commit every buffered store of the calling thread, oldest first. */
    virtual void flush_own() = 0;
    /** A memory mutation became visible (direct store / RMW). */
    virtual void bump_commit() = 0;
    ///@}
    /** Commits made by threads other than t (blocked-thread wakeups). */
    virtual std::uint64_t commits_by_others( int t ) const = 0;
    /** Record a violation and unwind the execution (throws). */
    [[noreturn]] virtual void fail( const std::string &msg ) = 0;
    virtual int tid() const = 0;
};

extern engine_iface *g; /**< active engine during explore() */

template <class T> long long traced_value( const T &v )
{
    if constexpr( std::is_convertible_v<T, long long> )
    {
        return static_cast<long long>( v );
    }
    else
    {
        return 0;
    }
}

} /** end namespace detail **/

/**
 * The instrumented atomic. Same surface as std::atomic for the operations
 * the runtime's protocols use; every call is a scheduling point. Not
 * actually atomic — the scheduler serializes all access.
 */
template <class T> class atomic
{
public:
    explicit atomic( T init = T{}, const char *name = "atomic" )
        : mem_( init ), name_( name )
    {
    }

    atomic( const atomic & )            = delete;
    atomic &operator=( const atomic & ) = delete;

    /** label used in violation traces (for array members constructed
     *  without one) */
    void set_name( const char *n ) noexcept { name_ = n; }

    /** @name between-executions access (reset closures, verify) — no
     *  scheduling point, must not race live workers */
    ///@{
    void raw_reset( T v )
    {
        mem_ = v;
        for( auto &p : pending_ )
        {
            p.clear();
        }
    }
    T raw_get() const { return mem_; }
    ///@}

    T load( const std::memory_order o = std::memory_order_seq_cst )
    {
        auto *e = detail::g;
        e->arrive( action{ e->tid(), op::load, this, name_,
                           static_cast<int>( o ), 0 } );
        auto &mine = pending_[ static_cast<std::size_t>( e->tid() ) ];
        /** store-to-load forwarding: a thread always sees its own newest
         *  buffered store */
        const T v = mine.empty() ? mem_ : mine.back();
        e->log_value( detail::traced_value( v ) );
        return v;
    }

    void store( T v, const std::memory_order o = std::memory_order_seq_cst )
    {
        auto *e = detail::g;
        e->arrive( action{ e->tid(), op::store, this, name_,
                           static_cast<int>( o ),
                           detail::traced_value( v ) } );
        const auto t = static_cast<std::size_t>( e->tid() );
        if( e->buffering() && o != std::memory_order_seq_cst )
        {
            pending_[ t ].push_back( v );
            e->buffer_store(
                this, name_,
                [ this, t ]()
                {
                    mem_ = pending_[ t ].front();
                    pending_[ t ].erase( pending_[ t ].begin() );
                },
                detail::traced_value( v ) );
        }
        else
        {
            /** seq_cst (or SC mode): drain own buffer, then commit — the
             *  full-fence behaviour the Dekker handshake relies on */
            e->flush_own();
            mem_ = v;
            e->bump_commit();
        }
    }

    T exchange( T v, const std::memory_order o = std::memory_order_seq_cst )
    {
        auto *e = detail::g;
        e->arrive( action{ e->tid(), op::rmw, this, name_,
                           static_cast<int>( o ),
                           detail::traced_value( v ) } );
        e->flush_own();
        const T old = mem_;
        mem_        = v;
        e->bump_commit();
        return old;
    }

    T fetch_add( T d, const std::memory_order o = std::memory_order_seq_cst )
    {
        auto *e = detail::g;
        e->arrive( action{ e->tid(), op::rmw, this, name_,
                           static_cast<int>( o ),
                           detail::traced_value( d ) } );
        e->flush_own();
        const T old = mem_;
        mem_        = static_cast<T>( mem_ + d );
        e->bump_commit();
        return old;
    }

    bool compare_exchange_strong(
        T &expected, T desired,
        const std::memory_order o = std::memory_order_seq_cst )
    {
        auto *e = detail::g;
        e->arrive( action{ e->tid(), op::rmw, this, name_,
                           static_cast<int>( o ),
                           detail::traced_value( desired ) } );
        e->flush_own();
        if( mem_ == expected )
        {
            mem_ = desired;
            e->bump_commit();
            return true;
        }
        expected = mem_;
        return false;
    }

private:
    T mem_;
    const char *name_;
    /** per-thread buffered (not yet committed) stores to this object, in
     *  store order — the forwarding view */
    std::array<std::vector<T>, max_threads> pending_{};
};

/**
 * Retry loop helper: `mc::retry_guard g; while( !try_op() ) g.wait();`.
 * wait() parks the thread until some *other* thread commits a store — a
 * failed attempt can only start succeeding after the shared state changes.
 * The snapshot is taken before each attempt, so a commit racing the attempt
 * wakes the thread again (spurious wakeups are safe; missed wakeups are
 * not). The explorer flags deadlock when every unfinished thread is parked
 * here with no commit pending anywhere.
 */
class retry_guard
{
public:
    retry_guard()
        : t_( detail::g->tid() ),
          seq_( detail::g->commits_by_others( t_ ) )
    {
    }

    void wait()
    {
        detail::g->arrive( action{ t_, op::block, nullptr, "blocked", 0,
                                   static_cast<long long>( seq_ ) } );
        seq_ = detail::g->commits_by_others( t_ );
    }

private:
    int t_;
    std::uint64_t seq_;
};

/** Protocol assertion: on failure records a violation (with the decision
 *  trace) and unwinds the execution. */
inline void check( const bool cond, const char *msg )
{
    if( !cond )
    {
        detail::g->fail( msg );
    }
}

struct options
{
    /** DFS bound: executions explored before giving up (result.complete
     *  tells whether the tree was exhausted). */
    long max_executions{ 200000 };
    /** Per-execution step bound; exceeding it is a livelock violation. */
    int max_steps{ 20000 };
    /** Buffered stores per thread (TSO simulation); 0 = sequential
     *  consistency (every store commits immediately). */
    int store_buffer{ 0 };
    /** Stop the search at the first violation (faster for
     *  expected-to-fail variants). */
    bool stop_on_violation{ true };
};

struct violation
{
    std::string message;
    std::vector<std::string> trace; /**< formatted steps, in order */
};

struct result
{
    long executions{ 0 };
    long long steps{ 0 };
    std::vector<violation> violations;
    /** True when the (sleep-set-pruned) interleaving tree was fully
     *  explored within max_executions. */
    bool complete{ false };

    bool ok() const noexcept { return violations.empty(); }
    std::string summary() const;
};

/**
 * Exhaustively explore the interleavings of `threads` (at most max_threads
 * bodies). `reset` re-initializes all shared model state before each
 * execution (raw_reset on every mc::atomic); `verify`, when given, runs
 * after each completed execution with a `fail` callback to flag bad final
 * states. Bodies must be deterministic given the schedule and touch shared
 * state only through mc primitives.
 */
result explore(
    const options &opt,
    const std::function<void()> &reset,
    const std::vector<std::function<void()>> &threads,
    const std::function<void(
        const std::function<void( const std::string & )> & )> &verify = {} );

} /** end namespace mc **/
} /** end namespace raft **/
