/**
 * pgrep.hpp — a GNU-Parallel-style parallel grep baseline.
 *
 * GNU Parallel (`parallel --pipe grep ...`) parallelizes grep by having a
 * single parent read stdin, chop it into blocks (default ~1 MB), and spawn
 * a *fresh grep process per block*, at most `jobs` concurrently. That
 * structure — single-threaded distribution plus per-block spawn cost — is
 * why the paper's green-diamond series scales so poorly (§5). This
 * substrate reproduces the structure faithfully in-process: a distributor
 * walks the corpus, and every block is serviced by a freshly spawned
 * worker thread (real spawn cost) running a memchr-accelerated matcher
 * (grep's hot loop in spirit). Block boundaries carry pattern-length
 * overlap so counts are exact.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace raft::baselines {

struct pgrep_options
{
    std::size_t block_bytes{ 1u << 20 }; /**< GNU Parallel --block      */
    unsigned jobs{ 1 };                  /**< concurrent workers (-j)   */
    /** Extra per-block spawn cost (seconds). Thread creation is cheaper
     *  than fork+exec of a real grep; this models the difference when
     *  calibrating against the paper (0 = raw thread spawn only). */
    double extra_spawn_s{ 0.0 };
    /** Copy each block through an intermediate buffer, as GNU Parallel's
     *  pipes do (true reproduces the distribution bottleneck). */
    bool copy_through_pipe_buffer{ true };
};

/** Count occurrences of `pattern` in `corpus` the GNU-Parallel way. */
std::uint64_t pgrep_count( const std::string &corpus,
                           const std::string &pattern,
                           const pgrep_options &opt = {} );

} /** end namespace raft::baselines **/
