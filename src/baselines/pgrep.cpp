#include "baselines/pgrep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <semaphore>
#include <thread>
#include <vector>

#include "algo/strmatch.hpp"

namespace raft::baselines {

std::uint64_t pgrep_count( const std::string &corpus,
                           const std::string &pattern,
                           const pgrep_options &opt )
{
    const algo::memchr_matcher matcher( pattern );
    const auto m       = pattern.size();
    const auto overlap = m > 0 ? m - 1 : 0;
    const auto block   = std::max<std::size_t>( opt.block_bytes, m );

    std::atomic<std::uint64_t> total{ 0 };
    std::counting_semaphore<> slots(
        static_cast<std::ptrdiff_t>( std::max( 1u, opt.jobs ) ) );
    std::vector<std::thread> workers;

    /** distributor: single-threaded walk over the corpus **/
    std::size_t begin = 0;
    while( begin < corpus.size() )
    {
        const auto body = std::min( block, corpus.size() - begin );
        const auto len =
            std::min( body + overlap, corpus.size() - begin );

        /** GNU Parallel pushes each block through a pipe: the parent
         *  touches every byte once more. Model with a real copy. */
        std::vector<char> piped;
        if( opt.copy_through_pipe_buffer )
        {
            piped.assign( corpus.data() + begin,
                          corpus.data() + begin + len );
        }

        slots.acquire(); /** at most `jobs` concurrent workers **/
        if( opt.extra_spawn_s > 0.0 )
        {
            const auto t0 = std::chrono::steady_clock::now();
            while( std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0 )
                       .count() < opt.extra_spawn_s )
            {
                /** fork+exec cost of a fresh grep process **/
            }
        }
        workers.emplace_back(
            [ &matcher, &total, &slots, body,
              data = std::move( piped ),
              direct = opt.copy_through_pipe_buffer
                           ? nullptr
                           : corpus.data() + begin,
              len ]() {
                const char *p = direct != nullptr ? direct : data.data();
                std::uint64_t n = 0;
                matcher.find( p, len,
                              [ & ]( const std::size_t pos,
                                     std::uint32_t ) {
                                  if( pos < body )
                                  {
                                      ++n;
                                  }
                              } );
                total.fetch_add( n, std::memory_order_relaxed );
                slots.release();
            } );
        begin += body;
    }
    for( auto &t : workers )
    {
        t.join();
    }
    return total.load();
}

} /** end namespace raft::baselines **/
