/**
 * minispark.hpp — a miniature Spark-like execution framework (baseline).
 *
 * The paper's Figure 10 compares RaftLib against "a text matching
 * application implemented using the Boyer-Moore algorithm implemented in
 * Scala running on the popular Apache Spark framework." No JVM is available
 * offline, so this substrate reproduces Spark's *execution structure* in
 * C++: a driver that splits a dataset into partitions and dispatches one
 * task per partition, serially, onto an executor pool; executors run the
 * task function and ship results back; collect() gathers them in partition
 * order. Per-task dispatch cost is real (queue + wake-up), and an optional
 * artificial per-task overhead lets experiments dial in JVM-scale dispatch
 * costs.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace raft::baselines {

/** Fixed pool of executor threads fed by a single (driver) queue. */
class executor_pool
{
public:
    explicit executor_pool( unsigned executors );
    ~executor_pool();

    executor_pool( const executor_pool & )            = delete;
    executor_pool &operator=( const executor_pool & ) = delete;

    /** Enqueue a task (driver-side, serialized). */
    std::future<void> submit( std::function<void()> task );

    unsigned size() const noexcept { return executors_; }

private:
    void worker();

    unsigned executors_;
    std::vector<std::thread> threads_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool shutdown_{ false };
};

struct spark_job_options
{
    std::size_t partition_bytes{ 32u << 20 };
    /** Artificial per-task driver overhead (models JVM dispatch /
     *  serialization when calibrating against the paper). */
    double task_overhead_s{ 0.0 };
};

/** Context: owns the executor pool, runs partitioned jobs. */
class minispark_context
{
public:
    explicit minispark_context( unsigned executors );

    /**
     * mapPartitions + collect: run `task(partition_index)` for each of
     * `n_partitions`, dispatching serially from the driver; returns
     * results in partition order.
     */
    template <class R>
    std::vector<R> run_partitions(
        const std::size_t n_partitions,
        const std::function<R( std::size_t )> &task,
        const double task_overhead_s = 0.0 )
    {
        std::vector<R> results( n_partitions );
        std::vector<std::future<void>> futures;
        futures.reserve( n_partitions );
        for( std::size_t p = 0; p < n_partitions; ++p )
        {
            if( task_overhead_s > 0.0 )
            {
                busy_wait( task_overhead_s );
            }
            futures.push_back( pool_.submit(
                [ &results, &task, p ]() { results[ p ] = task( p ); } ) );
        }
        for( auto &f : futures )
        {
            f.get();
        }
        return results;
    }

    executor_pool &pool() noexcept { return pool_; }

private:
    static void busy_wait( double seconds );

    executor_pool pool_;
};

/**
 * The paper's comparator job: count occurrences of `pattern` in `corpus`
 * with Boyer–Moore over fixed partitions (boundary overlap handled).
 */
std::uint64_t spark_search( minispark_context &ctx,
                            const std::string &corpus,
                            const std::string &pattern,
                            const spark_job_options &opt = {} );

} /** end namespace raft::baselines **/
