#include "baselines/minispark.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "algo/strmatch.hpp"

namespace raft::baselines {

executor_pool::executor_pool( const unsigned executors )
    : executors_( std::max( 1u, executors ) )
{
    for( unsigned i = 0; i < executors_; ++i )
    {
        threads_.emplace_back( [ this ]() { worker(); } );
    }
}

executor_pool::~executor_pool()
{
    {
        const std::lock_guard<std::mutex> lock( mutex_ );
        shutdown_ = true;
    }
    cv_.notify_all();
    for( auto &t : threads_ )
    {
        t.join();
    }
}

std::future<void> executor_pool::submit( std::function<void()> task )
{
    std::packaged_task<void()> pt( std::move( task ) );
    auto fut = pt.get_future();
    {
        const std::lock_guard<std::mutex> lock( mutex_ );
        queue_.push_back( std::move( pt ) );
    }
    cv_.notify_one();
    return fut;
}

void executor_pool::worker()
{
    for( ;; )
    {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock( mutex_ );
            cv_.wait( lock,
                      [ this ]() { return shutdown_ || !queue_.empty(); } );
            if( queue_.empty() )
            {
                return; /** shutdown with drained queue **/
            }
            task = std::move( queue_.front() );
            queue_.pop_front();
        }
        task();
    }
}

minispark_context::minispark_context( const unsigned executors )
    : pool_( executors )
{
}

void minispark_context::busy_wait( const double seconds )
{
    const auto t0 = std::chrono::steady_clock::now();
    while( std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0 )
               .count() < seconds )
    {
        /** driver-side overhead is CPU-bound in the real system **/
    }
}

std::uint64_t spark_search( minispark_context &ctx,
                            const std::string &corpus,
                            const std::string &pattern,
                            const spark_job_options &opt )
{
    const algo::bm_matcher matcher( pattern );
    const auto m       = pattern.size();
    const auto overlap = m > 0 ? m - 1 : 0;
    const auto part    = std::max<std::size_t>( opt.partition_bytes, m );
    const auto n_parts =
        ( corpus.size() + part - 1 ) / std::max<std::size_t>( part, 1 );

    const std::function<std::uint64_t( std::size_t )> task =
        [ & ]( const std::size_t p ) -> std::uint64_t {
        const auto begin = p * part;
        if( begin >= corpus.size() )
        {
            return 0;
        }
        const auto body = std::min( part, corpus.size() - begin );
        const auto len =
            std::min( body + overlap, corpus.size() - begin );
        /** count matches starting in the body only (overlap dedup) **/
        std::uint64_t n = 0;
        matcher.find( corpus.data() + begin, len,
                      [ & ]( const std::size_t pos, std::uint32_t ) {
                          if( pos < body )
                          {
                              ++n;
                          }
                      } );
        return n;
    };

    const auto partials = ctx.run_partitions<std::uint64_t>(
        n_parts, task, opt.task_overhead_s );
    return std::accumulate( partials.begin(), partials.end(),
                            std::uint64_t{ 0 } );
}

} /** end namespace raft::baselines **/
