#include "queueing/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace raft::queueing {

std::vector<std::size_t> size_ladder( const optimize_options &opt )
{
    if( opt.min_size == 0 || opt.max_size < opt.min_size )
    {
        throw std::invalid_argument( "invalid size ladder bounds" );
    }
    std::vector<std::size_t> ladder;
    for( std::size_t s = opt.min_size; s <= opt.max_size; s *= 2 )
    {
        ladder.push_back( s );
        if( s > opt.max_size / 2 )
        {
            break;
        }
    }
    return ladder;
}

namespace {

void bnb_recurse( const std::size_t idx,
                  std::vector<std::size_t> &current,
                  std::size_t used,
                  const std::vector<std::size_t> &ladder,
                  const objective_fn &objective,
                  const optimize_options &opt,
                  const bool monotone,
                  optimize_result &best )
{
    const auto n = current.size();
    if( idx == n )
    {
        const auto cost = objective( current );
        ++best.evaluations;
        if( cost < best.cost )
        {
            best.cost  = cost;
            best.sizes = current;
        }
        return;
    }
    /**
     * Optimistic bound under monotonicity: complete the assignment with
     * the largest admissible sizes; if even that cannot beat the best,
     * prune the whole subtree.
     */
    if( monotone &&
        best.cost < std::numeric_limits<double>::infinity() )
    {
        auto relaxed = current;
        for( std::size_t i = idx; i < n; ++i )
        {
            relaxed[ i ] = ladder.back();
        }
        const auto bound = objective( relaxed );
        ++best.evaluations;
        if( bound >= best.cost )
        {
            return;
        }
    }
    for( const auto s : ladder )
    {
        if( opt.budget_elements != 0 &&
            used + s > opt.budget_elements )
        {
            break; /** ladder ascends; everything further busts too **/
        }
        current[ idx ] = s;
        bnb_recurse( idx + 1, current, used + s, ladder, objective, opt,
                     monotone, best );
    }
    current[ idx ] = ladder.front();
}

} /** end anonymous namespace **/

optimize_result branch_and_bound( const std::size_t n_queues,
                                  const objective_fn &objective,
                                  const optimize_options &opt,
                                  const bool monotone )
{
    const auto ladder = size_ladder( opt );
    optimize_result best;
    std::vector<std::size_t> current( n_queues, ladder.front() );
    bnb_recurse( 0, current, 0, ladder, objective, opt, monotone, best );
    if( best.sizes.empty() )
    {
        throw std::runtime_error(
            "branch_and_bound: no feasible configuration under budget" );
    }
    return best;
}

optimize_result simulated_annealing( const std::size_t n_queues,
                                     const objective_fn &objective,
                                     const optimize_options &opt,
                                     const annealing_options &ann )
{
    const auto ladder = size_ladder( opt );
    std::mt19937_64 eng( ann.seed );
    std::uniform_int_distribution<std::size_t> pick_queue( 0,
                                                           n_queues - 1 );
    std::uniform_int_distribution<int> pick_dir( 0, 1 );
    std::uniform_real_distribution<double> unit( 0.0, 1.0 );

    /** rung index per queue; start mid-ladder **/
    std::vector<std::size_t> rung( n_queues, ladder.size() / 2 );
    auto materialize = [ & ]( const std::vector<std::size_t> &r ) {
        std::vector<std::size_t> sizes( n_queues );
        for( std::size_t i = 0; i < n_queues; ++i )
        {
            sizes[ i ] = ladder[ r[ i ] ];
        }
        return sizes;
    };
    auto within_budget = [ & ]( const std::vector<std::size_t> &sizes ) {
        if( opt.budget_elements == 0 )
        {
            return true;
        }
        const auto total = std::accumulate( sizes.begin(), sizes.end(),
                                            std::size_t{ 0 } );
        return total <= opt.budget_elements;
    };

    optimize_result best;
    auto sizes = materialize( rung );
    while( !within_budget( sizes ) )
    {
        /** walk down until feasible **/
        for( auto &r : rung )
        {
            if( r > 0 )
            {
                --r;
            }
        }
        sizes = materialize( rung );
    }
    double cost = objective( sizes );
    ++best.evaluations;
    best.cost  = cost;
    best.sizes = sizes;

    double temp = ann.initial_temperature;
    for( std::size_t it = 0; it < ann.iterations; ++it )
    {
        auto cand       = rung;
        const auto q    = pick_queue( eng );
        const int dir   = pick_dir( eng ) == 0 ? -1 : 1;
        if( dir < 0 && cand[ q ] == 0 )
        {
            continue;
        }
        if( dir > 0 && cand[ q ] + 1 >= ladder.size() )
        {
            continue;
        }
        cand[ q ] = static_cast<std::size_t>(
            static_cast<long>( cand[ q ] ) + dir );
        const auto cand_sizes = materialize( cand );
        if( !within_budget( cand_sizes ) )
        {
            continue;
        }
        const auto cand_cost = objective( cand_sizes );
        ++best.evaluations;
        const auto delta = cand_cost - cost;
        if( delta <= 0.0 ||
            unit( eng ) < std::exp( -delta / std::max( temp, 1e-12 ) ) )
        {
            rung = cand;
            cost = cand_cost;
            if( cost < best.cost )
            {
                best.cost  = cost;
                best.sizes = cand_sizes;
            }
        }
        temp *= ann.cooling;
    }
    return best;
}

} /** end namespace raft::queueing **/
