/**
 * optimize.hpp — buffer-size optimization (§3/§4.1).
 *
 * "In general, two options are available for determining how large of a
 * buffer to allocate: branch and bound search or analytic modeling." and
 * "The flow-model approximation procedure can be combined with well known
 * optimization techniques such as simulated annealing or analytic
 * decomposition to continually optimize long-running high throughput
 * streaming applications."
 *
 * Both optimizers work over a vector of per-queue sizes drawn from a
 * discrete ladder (powers of two between min and max) and minimize an
 * arbitrary objective — predicted execution time from a queueing model, a
 * DES evaluation, or a live measurement.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

namespace raft::queueing {

/** Objective: cost of a configuration (lower is better). */
using objective_fn =
    std::function<double( const std::vector<std::size_t> & )>;

struct optimize_options
{
    std::size_t min_size{ 2 };
    std::size_t max_size{ 1u << 20 };
    /** Total memory budget over all queues, in elements (0 = unlimited). */
    std::size_t budget_elements{ 0 };
};

struct optimize_result
{
    std::vector<std::size_t> sizes;
    double cost{ std::numeric_limits<double>::infinity() };
    std::size_t evaluations{ 0 };
};

/** Size ladder: min, 2·min, …, max (powers of two). */
std::vector<std::size_t> size_ladder( const optimize_options &opt );

/**
 * Exhaustive depth-first branch-and-bound over the ladder. Prunes branches
 * that exceed the memory budget; when `monotone` is set (objective
 * non-increasing in every queue size — true of pure blocking/stall
 * objectives) it additionally bounds with the everything-maxed completion.
 * Exact for small queue counts; exponential in general, as the paper
 * concedes ("Branch and bound searching has the advantage of being
 * extremely simple, and eventually finds some reasonable condition").
 */
optimize_result branch_and_bound( std::size_t n_queues,
                                  const objective_fn &objective,
                                  const optimize_options &opt,
                                  bool monotone = false );

struct annealing_options
{
    std::size_t iterations{ 2000 };
    double initial_temperature{ 1.0 };
    double cooling{ 0.995 };
    std::uint64_t seed{ 0xA11EA1ED };
};

/**
 * Simulated annealing: random single-queue moves along the ladder,
 * accepting uphill moves with Boltzmann probability. Scales to large queue
 * counts where branch-and-bound cannot.
 */
optimize_result simulated_annealing( std::size_t n_queues,
                                     const objective_fn &objective,
                                     const optimize_options &opt,
                                     const annealing_options &ann = {} );

} /** end namespace raft::queueing **/
