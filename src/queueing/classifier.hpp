/**
 * classifier.hpp — automated reliability classification of queueing
 * models.
 *
 * The paper's future-work section points at "fast automatic model
 * selection (e.g., Beard et al. [10])" — ICPE'15's SVM classifier that
 * predicts whether a cheap analytic queueing model is trustworthy for a
 * given stream before the runtime acts on its predictions. This module
 * implements that pipeline end to end:
 *
 *  1. a soft-margin linear SVM trained with the Pegasos
 *     stochastic-subgradient method (implemented from scratch — no
 *     external ML dependency),
 *  2. a dataset generator that sweeps (utilization, arrival SCV, service
 *     SCV, buffer size) scenarios through the discrete-event simulator
 *     and labels each by whether the M/M/1 prediction of mean queue
 *     length lands within a tolerance of the simulated truth,
 *  3. train_reliability_classifier(): the packaged result the runtime
 *     (or a researcher) can query with live stream features.
 *
 * The learned boundary recovers the queueing-theory ground truth: M/M/1
 * is reliable near SCV ≈ 1 on both processes and increasingly unreliable
 * as either SCV departs from 1 (deterministic or bursty traffic) — which
 * is exactly what the ICPE paper's SVM learns from measurements.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace raft::queueing {

/** Features describing one stream/station scenario. */
struct model_features
{
    double rho{ 0.5 };         /**< utilization λ/μ                  */
    double arrival_scv{ 1.0 }; /**< squared CV of inter-arrivals     */
    double service_scv{ 1.0 }; /**< squared CV of service times      */
    double log2_buffer{ 8.0 }; /**< log2 of the buffer capacity      */
};

struct svm_train_options
{
    std::size_t epochs{ 4000 };
    double lambda{ 1e-4 };
    std::uint64_t seed{ 0x5EED };
};

/** Linear soft-margin SVM (Pegasos). Features are standardized
 *  internally from the training set. */
class svm_classifier
{
public:
    using train_options = svm_train_options;

    /** labels: +1 / -1. */
    void train( const std::vector<model_features> &samples,
                const std::vector<int> &labels,
                const train_options &opt = {} );

    /** +1 / -1 prediction. */
    int predict( const model_features &f ) const;

    /** Signed distance to the separating hyperplane (margin). */
    double decision( const model_features &f ) const;

    /** Fraction correctly classified. */
    double accuracy( const std::vector<model_features> &samples,
                     const std::vector<int> &labels ) const;

    const std::vector<double> &weights() const noexcept { return w_; }
    double bias() const noexcept { return b_; }
    bool trained() const noexcept { return !w_.empty(); }

private:
    std::vector<double> standardize( const model_features &f ) const;

    std::vector<double> w_;
    double b_{ 0.0 };
    std::vector<double> mean_;
    std::vector<double> stdev_;
};

/** One labelled scenario: features + whether M/M/1 was reliable. */
struct reliability_sample
{
    model_features features;
    int label{ +1 };          /**< +1 reliable, -1 unreliable        */
    double model_lq{ 0.0 };   /**< M/M/1 predicted mean queue length */
    double sim_lq{ 0.0 };     /**< DES ground truth                  */
};

struct dataset_options
{
    /** relative error above which the model is labelled unreliable
     *  (an absolute-error floor of 0.15 queue slots also applies:
     *  sub-slot misses never matter for sizing decisions) */
    double tolerance{ 0.35 };
    std::uint64_t items_per_run{ 30'000 };
    std::uint64_t seed{ 0xDA7A };
};

/** Sweep scenarios through the DES and label M/M/1 reliability. */
std::vector<reliability_sample>
make_reliability_dataset( const dataset_options &opt = {} );

/** Dataset generation + training, packaged. */
svm_classifier train_reliability_classifier(
    const dataset_options &opt = {} );

} /** end namespace raft::queueing **/
