/**
 * models.hpp — queueing models for streaming systems (§3).
 *
 * "Streaming systems can be modeled as queueing networks. Each stream
 * within the system is a queue... Queueing models are often the fastest way
 * to estimate an approximate queue size... Model based solutions are also
 * often straightforward to calculate, assuming the conditions are right for
 * considering each queue individually (e.g., the queueing network is of
 * product form)."
 *
 * Closed-form results for M/M/1 and M/M/1/K service stations, plus the
 * product-form (Jackson) decomposition used by the buffer-sizing search and
 * validated against the discrete-event simulator in tests and the
 * ab_queueing_model bench.
 */
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace raft::queueing {

/** Utilization ρ = λ/μ. */
inline double utilization( const double lambda, const double mu )
{
    if( mu <= 0.0 )
    {
        throw std::invalid_argument( "service rate must be positive" );
    }
    return lambda / mu;
}

/** M/M/1 steady-state results (require ρ < 1). */
struct mm1
{
    double lambda; /**< arrival rate  */
    double mu;     /**< service rate  */

    double rho() const { return utilization( lambda, mu ); }

    /** Mean number in system L = ρ / (1 - ρ). */
    double mean_in_system() const
    {
        const auto r = rho();
        if( r >= 1.0 )
        {
            throw std::domain_error( "M/M/1 unstable: rho >= 1" );
        }
        return r / ( 1.0 - r );
    }

    /** Mean queue length (excluding in service) Lq = ρ² / (1 - ρ). */
    double mean_in_queue() const
    {
        const auto r = rho();
        if( r >= 1.0 )
        {
            throw std::domain_error( "M/M/1 unstable: rho >= 1" );
        }
        return r * r / ( 1.0 - r );
    }

    /** Mean time in system W = 1 / (μ - λ). */
    double mean_sojourn() const
    {
        if( rho() >= 1.0 )
        {
            throw std::domain_error( "M/M/1 unstable: rho >= 1" );
        }
        return 1.0 / ( mu - lambda );
    }

    /** P[N = n] = (1-ρ) ρⁿ. */
    double p_n( const std::size_t n ) const
    {
        const auto r = rho();
        return ( 1.0 - r ) * std::pow( r, static_cast<double>( n ) );
    }
};

/** M/M/1/K: finite buffer of K (including the element in service). */
struct mm1k
{
    double lambda;
    double mu;
    std::size_t K;

    double rho() const { return utilization( lambda, mu ); }

    /** Blocking probability P[N = K] — the chance an arrival is lost /
     *  the producer stalls. */
    double blocking_probability() const
    {
        const auto r = rho();
        const auto k = static_cast<double>( K );
        if( std::abs( r - 1.0 ) < 1e-12 )
        {
            return 1.0 / ( k + 1.0 );
        }
        return ( 1.0 - r ) * std::pow( r, k ) /
               ( 1.0 - std::pow( r, k + 1.0 ) );
    }

    /** Effective throughput λ(1 - P_block). */
    double throughput() const
    {
        return lambda * ( 1.0 - blocking_probability() );
    }

    /** Mean number in system. */
    double mean_in_system() const
    {
        const auto r = rho();
        const auto k = static_cast<double>( K );
        if( std::abs( r - 1.0 ) < 1e-12 )
        {
            return k / 2.0;
        }
        const auto num = r * ( 1.0 - ( k + 1.0 ) * std::pow( r, k ) +
                               k * std::pow( r, k + 1.0 ) );
        const auto den =
            ( 1.0 - r ) * ( 1.0 - std::pow( r, k + 1.0 ) );
        return num / den;
    }
};

/**
 * Smallest buffer K such that the M/M/1/K blocking probability is below
 * `target` — the model-based buffer-sizing answer (§3's "model based
 * solutions"). Caps at `max_k`.
 */
inline std::size_t size_buffer_for_blocking( const double lambda,
                                             const double mu,
                                             const double target,
                                             const std::size_t max_k = 1u
                                                                       << 24 )
{
    std::size_t lo = 1, hi = 1;
    /** exponential search then bisection (blocking is decreasing in K) **/
    while( hi < max_k &&
           mm1k{ lambda, mu, hi }.blocking_probability() > target )
    {
        hi *= 2;
    }
    if( hi >= max_k )
    {
        return max_k;
    }
    lo = hi / 2 + 1;
    while( lo < hi )
    {
        const auto mid = lo + ( hi - lo ) / 2;
        if( mm1k{ lambda, mu, mid }.blocking_probability() > target )
        {
            lo = mid + 1;
        }
        else
        {
            hi = mid;
        }
    }
    return hi;
}

} /** end namespace raft::queueing **/
