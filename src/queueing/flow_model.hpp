/**
 * flow_model.hpp — flow-model throughput estimation for streaming graphs.
 *
 * §4.1: "Prior works by Beard and Chamberlain demonstrate the use of flow
 * models to estimate the overall throughput of an application. This
 * procedure however requires estimates of the output distribution for each
 * edge within the streaming application."
 *
 * Model: each kernel k is a server with service rate mu[k] (elements/s);
 * each edge carries a filtering/amplification factor gain (elements out per
 * element in — text search emits far fewer matches than bytes, §3). Flow is
 * pushed from the sources through the DAG; the achievable source rate is
 * scaled down until no kernel is over-utilized. The bottleneck kernel and
 * the end-to-end throughput fall out directly.
 */
#pragma once

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace raft::queueing {

struct flow_kernel
{
    std::string name;
    double mu{ 1.0 };          /**< service rate, elements/s            */
    std::size_t replicas{ 1 }; /**< data-parallel width                 */
};

struct flow_edge
{
    std::size_t src{ 0 };
    std::size_t dst{ 0 };
    double gain{ 1.0 }; /**< elements pushed on this edge per element
                             consumed by src (filtering < 1) */
};

struct flow_result
{
    double source_rate{ 0.0 }; /**< sustainable source elements/s       */
    std::size_t bottleneck{ 0 };
    std::vector<double> arrival; /**< per-kernel arrival rate at that
                                      source rate */
    std::vector<double> rho;     /**< per-kernel utilization             */
};

class flow_model
{
public:
    std::size_t add_kernel( std::string name, const double mu,
                            const std::size_t replicas = 1 )
    {
        kernels_.push_back(
            flow_kernel{ std::move( name ), mu, replicas } );
        return kernels_.size() - 1;
    }

    void add_edge( const std::size_t src, const std::size_t dst,
                   const double gain = 1.0 )
    {
        if( src >= kernels_.size() || dst >= kernels_.size() )
        {
            throw std::out_of_range( "flow_model edge endpoint" );
        }
        edges_.push_back( flow_edge{ src, dst, gain } );
    }

    const std::vector<flow_kernel> &kernels() const noexcept
    {
        return kernels_;
    }

    /**
     * Propagate a unit source rate through the DAG (topological order),
     * then scale so the most-utilized kernel sits at utilization
     * `target_rho` (default: 1.0, the saturation throughput).
     */
    flow_result solve( const double target_rho = 1.0 ) const
    {
        const auto n = kernels_.size();
        /** relative arrival rate when every source emits 1 element/s **/
        std::vector<double> rel( n, 0.0 );
        std::vector<std::size_t> indeg( n, 0 );
        for( const auto &e : edges_ )
        {
            ++indeg[ e.dst ];
        }
        std::vector<std::size_t> order;
        for( std::size_t i = 0; i < n; ++i )
        {
            if( indeg[ i ] == 0 )
            {
                rel[ i ] = 1.0;
                order.push_back( i );
            }
        }
        for( std::size_t h = 0; h < order.size(); ++h )
        {
            const auto u = order[ h ];
            for( const auto &e : edges_ )
            {
                if( e.src != u )
                {
                    continue;
                }
                rel[ e.dst ] += rel[ u ] * e.gain;
                if( --indeg[ e.dst ] == 0 )
                {
                    order.push_back( e.dst );
                }
            }
        }
        if( order.size() != n )
        {
            throw std::invalid_argument(
                "flow_model::solve requires an acyclic graph" );
        }

        flow_result r;
        r.arrival.assign( n, 0.0 );
        r.rho.assign( n, 0.0 );
        double scale          = std::numeric_limits<double>::infinity();
        std::size_t bottleneck = 0;
        for( std::size_t i = 0; i < n; ++i )
        {
            const auto capacity =
                kernels_[ i ].mu *
                static_cast<double>( kernels_[ i ].replicas );
            if( rel[ i ] <= 0.0 )
            {
                continue;
            }
            const auto s = target_rho * capacity / rel[ i ];
            if( s < scale )
            {
                scale      = s;
                bottleneck = i;
            }
        }
        r.source_rate = scale;
        r.bottleneck  = bottleneck;
        for( std::size_t i = 0; i < n; ++i )
        {
            r.arrival[ i ] = rel[ i ] * scale;
            const auto capacity =
                kernels_[ i ].mu *
                static_cast<double>( kernels_[ i ].replicas );
            r.rho[ i ] = capacity > 0.0 ? r.arrival[ i ] / capacity : 0.0;
        }
        return r;
    }

private:
    std::vector<flow_kernel> kernels_;
    std::vector<flow_edge> edges_;
};

} /** end namespace raft::queueing **/
