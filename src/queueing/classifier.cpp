#include "queueing/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "queueing/models.hpp"
#include "sim/pipeline.hpp"

namespace raft::queueing {

namespace {

/**
 * Feature map: the reliable region ("both processes look Poisson") is a
 * band around SCV = 1, which no linear boundary in raw feature space can
 * carve out. Lifting with |SCV - 1| and squared departures makes the
 * band linearly separable — the poor man's kernel trick, adequate here
 * and dependency-free.
 */
std::vector<double> lift( const model_features &f )
{
    /** Allen–Cunneen: Lq ≈ Lq_{M/M/1} · (Ca² + Cs²)/2, so the M/M/1
     *  model's log error is ≈ |log of that factor| — including the
     *  cancellation cases (deterministic arrivals + bursty service)
     *  where the factor returns to 1 and the model works again **/
    const auto ac_factor = std::max(
        ( f.arrival_scv + f.service_scv ) / 2.0, 0.05 );
    const auto t   = std::abs( std::log( ac_factor ) );
    const auto l2b = std::max( 1.0, f.log2_buffer );
    return {
        t,
        f.rho * t,
        /** blocking pressure: high utilization against a small buffer
         *  invalidates the infinite-queue model **/
        f.rho * f.rho / l2b,
        f.rho,
        1.0, /** bias as a constant feature **/
    };
}

} /** end anonymous namespace **/

std::vector<double>
svm_classifier::standardize( const model_features &f ) const
{
    auto x = lift( f );
    for( std::size_t j = 0; j < x.size(); ++j )
    {
        x[ j ] = ( x[ j ] - mean_[ j ] ) / stdev_[ j ];
    }
    return x;
}

void svm_classifier::train( const std::vector<model_features> &samples,
                            const std::vector<int> &labels,
                            const train_options &opt )
{
    const auto n = samples.size();
    if( n == 0 || labels.size() != n )
    {
        throw std::invalid_argument( "svm: bad training set" );
    }
    std::vector<std::vector<double>> X;
    X.reserve( n );
    for( const auto &s : samples )
    {
        X.push_back( lift( s ) );
    }
    const auto d = X[ 0 ].size();

    /** feature standardization from the training set **/
    mean_.assign( d, 0.0 );
    stdev_.assign( d, 0.0 );
    for( const auto &x : X )
    {
        for( std::size_t j = 0; j < d; ++j )
        {
            mean_[ j ] += x[ j ];
        }
    }
    for( auto &m : mean_ )
    {
        m /= static_cast<double>( n );
    }
    for( const auto &x : X )
    {
        for( std::size_t j = 0; j < d; ++j )
        {
            const auto dx = x[ j ] - mean_[ j ];
            stdev_[ j ] += dx * dx;
        }
    }
    for( std::size_t j = 0; j < d; ++j )
    {
        stdev_[ j ] =
            std::sqrt( stdev_[ j ] / static_cast<double>( n ) );
        if( stdev_[ j ] < 1e-9 )
        {
            /** constant feature (e.g. the bias column): pass through **/
            stdev_[ j ] = 1.0;
            mean_[ j ]  = 0.0;
        }
    }
    for( auto &x : X )
    {
        for( std::size_t j = 0; j < d; ++j )
        {
            x[ j ] = ( x[ j ] - mean_[ j ] ) / stdev_[ j ];
        }
    }

    /**
     * Full-batch gradient descent on the class-balanced squared-hinge
     * (L2-SVM) loss
     *   L(w) = λ/2 ||w||² + (1/n) Σ cᵢ max(0, 1 - yᵢ w·xᵢ)²
     * — smooth, so plain gradient descent converges without the margin
     * oscillation the non-smooth hinge exhibits on tiny datasets.
     * Deterministic (seed unused beyond API stability).
     */
    (void) opt.seed;
    w_.assign( d, 0.0 );
    b_ = 0.0;
    /**
     * Class-balanced sample weights: reliability datasets are heavily
     * skewed toward "unreliable", and unweighted hinge loss then settles
     * on the degenerate always-majority solution with every sample
     * parked exactly on the margin.
     */
    std::size_t n_pos = 0;
    for( const auto l : labels )
    {
        if( l > 0 )
        {
            ++n_pos;
        }
    }
    const auto n_neg = n - n_pos;
    if( n_pos == 0 || n_neg == 0 )
    {
        throw std::invalid_argument( "svm: need both classes" );
    }
    std::vector<double> sample_w( n );
    for( std::size_t i = 0; i < n; ++i )
    {
        /** square-root balancing: enough pull to avoid the
         *  always-majority degenerate solution, mild enough not to
         *  let minority-class label noise dominate the boundary **/
        sample_w[ i ] = std::sqrt(
            static_cast<double>( n ) /
            ( 2.0 * static_cast<double>( labels[ i ] > 0 ? n_pos
                                                         : n_neg ) ) );
    }
    std::vector<double> grad( d );
    for( std::size_t epoch = 0; epoch < opt.epochs; ++epoch )
    {
        const double eta =
            0.05 / ( 1.0 + 0.001 * static_cast<double>( epoch ) );
        for( std::size_t j = 0; j < d; ++j )
        {
            grad[ j ] = opt.lambda * w_[ j ];
        }
        for( std::size_t i = 0; i < n; ++i )
        {
            const auto y  = static_cast<double>( labels[ i ] );
            double margin = 0.0;
            for( std::size_t j = 0; j < d; ++j )
            {
                margin += w_[ j ] * X[ i ][ j ];
            }
            const double slack = 1.0 - y * margin;
            if( slack > 0.0 )
            {
                for( std::size_t j = 0; j < d; ++j )
                {
                    grad[ j ] -= 2.0 * slack * sample_w[ i ] * y *
                                 X[ i ][ j ] /
                                 static_cast<double>( n );
                }
            }
        }
        for( std::size_t j = 0; j < d; ++j )
        {
            w_[ j ] -= eta * grad[ j ];
        }
    }
}

double svm_classifier::decision( const model_features &f ) const
{
    const auto x = standardize( f );
    double m     = b_;
    for( std::size_t j = 0; j < x.size(); ++j )
    {
        m += w_[ j ] * x[ j ];
    }
    return m;
}

int svm_classifier::predict( const model_features &f ) const
{
    return decision( f ) >= 0.0 ? +1 : -1;
}

double
svm_classifier::accuracy( const std::vector<model_features> &samples,
                          const std::vector<int> &labels ) const
{
    std::size_t hit = 0;
    for( std::size_t i = 0; i < samples.size(); ++i )
    {
        if( predict( samples[ i ] ) == labels[ i ] )
        {
            ++hit;
        }
    }
    return samples.empty()
               ? 0.0
               : static_cast<double>( hit ) /
                     static_cast<double>( samples.size() );
}

std::vector<reliability_sample>
make_reliability_dataset( const dataset_options &opt )
{
    using sim::service_dist;
    const service_dist dists[] = {
        service_dist::deterministic, service_dist::uniform,
        service_dist::exponential, service_dist::hyperexponential
    };
    const double rhos[]          = { 0.3, 0.5, 0.7, 0.85, 0.95 };
    const std::size_t buffers[]  = { 16, 4096 };

    std::vector<reliability_sample> out;
    std::uint64_t seed = opt.seed;
    for( const auto arrival : dists )
    {
        for( const auto service : dists )
        {
            for( const auto rho : rhos )
            {
                for( const auto buf : buffers )
                {
                    sim::pipeline_desc d;
                    d.stages.push_back( sim::stage_desc{
                        "src", rho, 1, 1, arrival, false } );
                    d.stages.push_back( sim::stage_desc{
                        "srv", 1.0, 1, buf, service, false } );
                    d.items = opt.items_per_run;
                    d.seed  = seed++;
                    const auto r = sim::simulate_pipeline( d );

                    reliability_sample s;
                    s.features.rho         = rho;
                    s.features.arrival_scv = sim::service_scv( arrival );
                    s.features.service_scv = sim::service_scv( service );
                    s.features.log2_buffer =
                        std::log2( static_cast<double>( buf ) );
                    s.model_lq =
                        rho * rho / ( 1.0 - rho ); /** M/M/1 Lq **/
                    s.sim_lq = r.stages[ 1 ].mean_queue_len;
                    /** reliable when the prediction is close in
                     *  relative terms OR the absolute miss is too
                     *  small to matter for sizing decisions **/
                    const auto abs_err =
                        std::abs( s.model_lq - s.sim_lq );
                    const auto rel_err =
                        abs_err / std::max( s.sim_lq, 1e-9 );
                    s.label = ( rel_err <= opt.tolerance ||
                                abs_err <= 0.15 )
                                  ? +1
                                  : -1;
                    out.push_back( s );
                }
            }
        }
    }
    return out;
}

svm_classifier
train_reliability_classifier( const dataset_options &opt )
{
    const auto data = make_reliability_dataset( opt );
    std::vector<model_features> X;
    std::vector<int> y;
    for( const auto &s : data )
    {
        X.push_back( s.features );
        y.push_back( s.label );
    }
    svm_classifier clf;
    clf.train( X, y );
    return clf;
}

} /** end namespace raft::queueing **/
