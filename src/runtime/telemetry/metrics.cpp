/**
 * metrics.cpp - registry storage, Prometheus text rendering, and the
 * process-global counter accessors.
 **/
#include "runtime/telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>

namespace raft
{
namespace telemetry
{

namespace
{

enum class kind : std::uint8_t
{
    counter_k,
    gauge_k,
    histogram_k,
    cb_gauge_k,
    cb_counter_k
};

const char *kind_type( const kind k ) noexcept
{
    switch( k )
    {
        case kind::counter_k:
        case kind::cb_counter_k: return "counter";
        case kind::gauge_k:
        case kind::cb_gauge_k:   return "gauge";
        case kind::histogram_k:  return "histogram";
    }
    return "untyped";
}

void escape_label( std::ostream &os, const std::string &v )
{
    for( const char c : v )
    {
        switch( c )
        {
            case '\\': os << "\\\\"; break;
            case '"':  os << "\\\""; break;
            case '\n': os << "\\n";  break;
            default:   os << c;
        }
    }
}

void render_labels( std::ostream &os, const labels_t &labels,
                    const char *extra_key = nullptr,
                    const std::string &extra_val = std::string() )
{
    if( labels.empty() && extra_key == nullptr )
    {
        return;
    }
    os << "{";
    bool first = true;
    for( const auto &l : labels )
    {
        if( !first )
        {
            os << ",";
        }
        first = false;
        os << l.first << "=\"";
        escape_label( os, l.second );
        os << "\"";
    }
    if( extra_key != nullptr )
    {
        if( !first )
        {
            os << ",";
        }
        os << extra_key << "=\"";
        escape_label( os, extra_val );
        os << "\"";
    }
    os << "}";
}

/** shortest %g within 1e-12 relative error: "1e-06" and "0.001" rather
 *  than 17-digit noise — integer-bound × scale is often one ulp off the
 *  round decimal, and le labels only need to stay distinct, not exact **/
std::string fmt_double( const double v )
{
    char buf[ 64 ];
    for( int prec = 1; prec <= 17; ++prec )
    {
        std::snprintf( buf, sizeof( buf ), "%.*g", prec, v );
        const auto back = std::strtod( buf, nullptr );
        if( back == v ||
            std::abs( back - v ) <= 1e-12 * std::abs( v ) )
        {
            break;
        }
    }
    return buf;
}

} /** end anonymous namespace **/

struct registry::impl
{
    struct metric
    {
        kind                        k;
        std::string                 name;
        labels_t                    labels;
        std::string                 help;
        owner_t                     owner;
        double                      scale{ 1.0 };
        std::unique_ptr<counter>    c;
        std::unique_ptr<gauge>      g;
        std::unique_ptr<histogram>  h;
        std::function<double()>     cb;
    };

    mutable std::mutex                  mutex;
    std::vector<std::unique_ptr<metric>> metrics;
    owner_t                             next_owner{ 1 };

    metric *find( const std::string &name, const labels_t &labels )
    {
        for( auto &m : metrics )
        {
            if( m->name == name && m->labels == labels )
            {
                return m.get();
            }
        }
        return nullptr;
    }
};

registry &registry::instance()
{
    static registry r;
    return r;
}

registry::impl &registry::self() const
{
    static impl i;
    return i;
}

registry::owner_t registry::make_owner()
{
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    return s.next_owner++;
}

void registry::release( const owner_t owner )
{
    if( owner == 0 )
    {
        return; /** process-global metrics are permanent **/
    }
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    s.metrics.erase(
        std::remove_if( s.metrics.begin(), s.metrics.end(),
                        [ owner ]( const auto &m )
                        { return m->owner == owner; } ),
        s.metrics.end() );
}

counter &registry::get_counter( const std::string &name, labels_t labels,
                                const std::string &help, const owner_t owner,
                                const double scale )
{
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    if( auto *m = s.find( name, labels ) )
    {
        return *m->c;
    }
    auto m   = std::make_unique<impl::metric>();
    m->k     = kind::counter_k;
    m->name  = name;
    m->labels = std::move( labels );
    m->help  = help;
    m->owner = owner;
    m->scale = scale;
    m->c     = std::make_unique<counter>();
    auto &ref = *m->c;
    s.metrics.emplace_back( std::move( m ) );
    return ref;
}

gauge &registry::get_gauge( const std::string &name, labels_t labels,
                            const std::string &help, const owner_t owner )
{
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    if( auto *m = s.find( name, labels ) )
    {
        return *m->g;
    }
    auto m   = std::make_unique<impl::metric>();
    m->k     = kind::gauge_k;
    m->name  = name;
    m->labels = std::move( labels );
    m->help  = help;
    m->owner = owner;
    m->g     = std::make_unique<gauge>();
    auto &ref = *m->g;
    s.metrics.emplace_back( std::move( m ) );
    return ref;
}

histogram &registry::get_histogram( const std::string &name,
                                    const std::vector<std::uint64_t> &bounds,
                                    const double scale, labels_t labels,
                                    const std::string &help,
                                    const owner_t owner )
{
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    if( auto *m = s.find( name, labels ) )
    {
        return *m->h;
    }
    auto m   = std::make_unique<impl::metric>();
    m->k     = kind::histogram_k;
    m->name  = name;
    m->labels = std::move( labels );
    m->help  = help;
    m->owner = owner;
    m->scale = scale;
    m->h     = std::make_unique<histogram>();
    m->h->configure( bounds, scale );
    auto &ref = *m->h;
    s.metrics.emplace_back( std::move( m ) );
    return ref;
}

void registry::add_callback_gauge( const std::string &name, labels_t labels,
                                   std::function<double()> fn,
                                   const std::string &help,
                                   const owner_t owner )
{
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    if( s.find( name, labels ) != nullptr )
    {
        return;
    }
    auto m    = std::make_unique<impl::metric>();
    m->k      = kind::cb_gauge_k;
    m->name   = name;
    m->labels = std::move( labels );
    m->help   = help;
    m->owner  = owner;
    m->cb     = std::move( fn );
    s.metrics.emplace_back( std::move( m ) );
}

void registry::add_callback_counter( const std::string &name, labels_t labels,
                                     std::function<double()> fn,
                                     const std::string &help,
                                     const owner_t owner )
{
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    if( s.find( name, labels ) != nullptr )
    {
        return;
    }
    auto m    = std::make_unique<impl::metric>();
    m->k      = kind::cb_counter_k;
    m->name   = name;
    m->labels = std::move( labels );
    m->help   = help;
    m->owner  = owner;
    m->cb     = std::move( fn );
    s.metrics.emplace_back( std::move( m ) );
}

std::string registry::render_prometheus() const
{
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    std::ostringstream os;
    /** families keep first-seen order; HELP/TYPE once per name **/
    std::vector<std::string> seen;
    for( const auto &m : s.metrics )
    {
        if( std::find( seen.begin(), seen.end(), m->name ) != seen.end() )
        {
            continue;
        }
        seen.push_back( m->name );
        if( !m->help.empty() )
        {
            os << "# HELP " << m->name << " " << m->help << "\n";
        }
        os << "# TYPE " << m->name << " " << kind_type( m->k ) << "\n";
        for( const auto &sample : s.metrics )
        {
            if( sample->name != m->name )
            {
                continue;
            }
            switch( sample->k )
            {
                case kind::counter_k:
                {
                    os << sample->name;
                    render_labels( os, sample->labels );
                    const auto raw = sample->c->value();
                    if( sample->scale == 1.0 )
                    {
                        os << " " << raw << "\n";
                    }
                    else
                    {
                        os << " "
                           << fmt_double( static_cast<double>( raw ) *
                                          sample->scale )
                           << "\n";
                    }
                    break;
                }
                case kind::gauge_k:
                {
                    os << sample->name;
                    render_labels( os, sample->labels );
                    os << " " << fmt_double( sample->g->value() ) << "\n";
                    break;
                }
                case kind::cb_gauge_k:
                case kind::cb_counter_k:
                {
                    os << sample->name;
                    render_labels( os, sample->labels );
                    os << " " << fmt_double( sample->cb() ) << "\n";
                    break;
                }
                case kind::histogram_k:
                {
                    const auto &h = *sample->h;
                    std::uint64_t cumulative = 0;
                    for( std::size_t b = 0; b < h.bound_count(); ++b )
                    {
                        cumulative += h.bucket( b );
                        os << sample->name << "_bucket";
                        render_labels(
                            os, sample->labels, "le",
                            fmt_double( static_cast<double>( h.bound( b ) ) *
                                        h.scale() ) );
                        os << " " << cumulative << "\n";
                    }
                    cumulative += h.bucket( h.bound_count() );
                    os << sample->name << "_bucket";
                    render_labels( os, sample->labels, "le", "+Inf" );
                    os << " " << cumulative << "\n";
                    os << sample->name << "_sum";
                    render_labels( os, sample->labels );
                    os << " "
                       << fmt_double( static_cast<double>( h.sum_raw() ) *
                                      h.scale() )
                       << "\n";
                    os << sample->name << "_count";
                    render_labels( os, sample->labels );
                    os << " " << cumulative << "\n";
                    break;
                }
            }
        }
    }
    return os.str();
}

std::size_t registry::size() const
{
    auto &s = self();
    std::lock_guard<std::mutex> guard( s.mutex );
    return s.metrics.size();
}

namespace
{
/** enable/disable refcount shares the registry mutex-free path: a plain
 *  atomic count is enough, sessions serialize on their own setup **/
std::atomic<int> metrics_enable_count{ 0 };
} /** end anonymous namespace **/

void metrics_enable()
{
    if( metrics_enable_count.fetch_add( 1, std::memory_order_relaxed ) == 0 )
    {
        detail::metrics_active.store( true, std::memory_order_relaxed );
    }
}

void metrics_disable()
{
    if( metrics_enable_count.fetch_sub( 1, std::memory_order_relaxed ) == 1 )
    {
        detail::metrics_active.store( false, std::memory_order_relaxed );
    }
}

/** ------- process-global counters ------- **/

namespace
{
counter &global_counter( const char *name, const char *help )
{
    return registry::instance().get_counter( name, {}, help, 0 );
}
} /** end anonymous namespace **/

counter &net_bytes_sent_total()
{
    static counter &c = global_counter(
        "raft_net_bytes_sent_total",
        "bytes written to sockets by net/ substrates" );
    return c;
}

counter &net_bytes_received_total()
{
    static counter &c = global_counter(
        "raft_net_bytes_received_total",
        "bytes read from sockets by net/ substrates" );
    return c;
}

counter &net_frames_total()
{
    static counter &c = global_counter(
        "raft_net_frames_total",
        "framed messages sent by reliable TCP links" );
    return c;
}

counter &net_reconnects_total()
{
    static counter &c = global_counter(
        "raft_net_reconnects_total",
        "reconnect handshakes completed by reliable TCP links" );
    return c;
}

counter &net_replayed_frames_total()
{
    static counter &c = global_counter(
        "raft_net_replayed_frames_total",
        "frames replayed by reliable TCP sinks after reconnect" );
    return c;
}

counter &net_duplicate_frames_total()
{
    static counter &c = global_counter(
        "raft_net_duplicate_frames_total",
        "duplicate frames discarded by reliable TCP sources" );
    return c;
}

counter &fifo_resizes_total()
{
    static counter &c = global_counter(
        "raft_fifo_resizes_total",
        "FIFO capacity changes applied by the monitor" );
    return c;
}

counter &predictive_resizes_total()
{
    static counter &c = global_counter(
        "raft_predictive_resizes_total",
        "FIFO grows requested ahead of the 3-delta rule by the elastic "
        "controller" );
    return c;
}

counter &elastic_grows_total()
{
    static counter &c = global_counter(
        "raft_elastic_grows_total",
        "replica lanes activated by the elastic controller" );
    return c;
}

counter &elastic_shrinks_total()
{
    static counter &c = global_counter(
        "raft_elastic_shrinks_total",
        "replica lanes quiesced by the elastic controller" );
    return c;
}

counter &supervisor_restarts_total()
{
    static counter &c = global_counter(
        "raft_supervisor_restarts_total",
        "kernel restarts granted by the supervisor" );
    return c;
}

counter &watchdog_stalls_total()
{
    static counter &c = global_counter(
        "raft_watchdog_stalls_total",
        "zero-progress stalls detected by the watchdog" );
    return c;
}

counter &graph_cancellations_total()
{
    static counter &c = global_counter(
        "raft_graph_cancellations_total",
        "graph-wide cancellations raised by the scheduler" );
    return c;
}

counter &inject_faults_total()
{
    static counter &c = global_counter(
        "raft_inject_faults_total",
        "faults fired by the injection harness" );
    return c;
}

} /** end namespace telemetry **/
} /** end namespace raft **/
