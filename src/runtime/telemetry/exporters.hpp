/**
 * exporters.hpp - telemetry exporters (runtime/telemetry/).
 *
 * Three ways out of the process for §4.1-style instrumentation:
 *   - `prometheus_endpoint`: a minimal HTTP/1.0 server on the existing
 *     src/net/socket stack answering every request with the registry's
 *     text exposition (format 0.0.4) — point a Prometheus scraper or
 *     `examples/raft_top` at it while the graph runs;
 *   - `write_trace_file`: dump the tracer's Chrome trace_event JSON;
 *   - `write_snapshot_json`: dump a perf_snapshot via its to_json().
 **/
#ifndef RAFT_RUNTIME_TELEMETRY_EXPORTERS_HPP
#define RAFT_RUNTIME_TELEMETRY_EXPORTERS_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/socket.hpp"

namespace raft
{

namespace runtime
{
struct perf_snapshot;
} /** end namespace runtime **/

namespace telemetry
{

/** Serves registry::render_prometheus() over loopback TCP.  One accept
 *  thread, one request per connection (Connection: close) — scrape
 *  traffic is rare and tiny, so simplicity beats pooling.  The response
 *  is rendered outside any hot path; callback gauges are evaluated at
 *  scrape time under the registry mutex. **/
class prometheus_endpoint
{
public:
    /** binds 127.0.0.1:port (0 = ephemeral) and starts serving **/
    explicit prometheus_endpoint( std::uint16_t port = 0 );
    ~prometheus_endpoint();

    prometheus_endpoint( const prometheus_endpoint & )            = delete;
    prometheus_endpoint &operator=( const prometheus_endpoint & ) = delete;

    std::uint16_t port() const noexcept { return listener_.port(); }

    std::uint64_t scrapes() const noexcept
    {
        return scrapes_.load( std::memory_order_relaxed );
    }

    void stop() noexcept;

private:
    void loop();

    net::tcp_listener          listener_;
    std::atomic<bool>          running_{ true };
    std::atomic<std::uint64_t> scrapes_{ 0 };
    std::thread                thread_;
};

/** one-shot scrape helper (raft_top / tests): GET the exposition text
 *  from an endpoint; throws net_exception on connection failure **/
std::string scrape_prometheus( const std::string &host, std::uint16_t port );

/** write the tracer's Chrome trace JSON to `path` (best-effort: returns
 *  false on I/O failure instead of throwing — teardown must not mask a
 *  graph error with an export error) **/
bool write_trace_file( const std::string &path );

/** write snapshot.to_json() to `path` (best-effort, see above) **/
bool write_snapshot_json( const std::string &path,
                          const runtime::perf_snapshot &snapshot );

} /** end namespace telemetry **/
} /** end namespace raft **/

#endif /** RAFT_RUNTIME_TELEMETRY_EXPORTERS_HPP **/
