/**
 * trace.cpp - tracer internals: per-thread rings, interning, JSON export.
 **/
#include "runtime/telemetry/trace.hpp"

#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/defs.hpp"

namespace raft
{
namespace telemetry
{

namespace
{

/** one single-producer ring.  The owning thread is the only writer of
 *  `buf` slots and the only thread advancing `widx`; drainers read
 *  `widx` with acquire and only touch slots below it. **/
struct thread_ring
{
    explicit thread_ring( const std::size_t capacity, const std::uint32_t tid_arg )
        : buf( capacity ), tid( tid_arg )
    {
    }

    std::vector<event>           buf;
    std::atomic<std::uint64_t>   widx{ 0 };
    std::atomic<std::uint64_t>   drops{ 0 };
    std::uint32_t                tid;
    std::string                  thread_name; /** guarded by tracer mutex **/
};

struct tracer_state
{
    std::mutex                                 mutex;
    std::vector<std::unique_ptr<thread_ring>>  rings;
    std::vector<std::string>                   names;   /** id - 1 -> name **/
    std::unordered_map<std::string, std::uint32_t> ids;
    std::size_t                                capacity{ 16384 };
    std::uint32_t                              next_tid{ 1 };
    int                                        enable_count{ 0 };
};

tracer_state &state()
{
    static tracer_state s;
    return s;
}

thread_local thread_ring *tls_ring = nullptr;

/** cold path: first event from this thread — allocate + register a ring.
 *  noexcept contract of the record path is kept by swallowing OOM. **/
thread_ring *register_ring() noexcept
{
    try
    {
        auto &s = state();
        std::lock_guard<std::mutex> guard( s.mutex );
        auto ring = std::make_unique<thread_ring>( s.capacity, s.next_tid++ );
        tls_ring  = ring.get();
        s.rings.emplace_back( std::move( ring ) );
        return tls_ring;
    }
    catch( ... )
    {
        return nullptr;
    }
}

void record( const event &ev ) noexcept
{
    auto *ring = tls_ring;
    if( ring == nullptr )
    {
        ring = register_ring();
        if( ring == nullptr )
        {
            return;
        }
    }
    const auto w = ring->widx.load( std::memory_order_relaxed );
    if( w >= ring->buf.size() )
    {
        /** drop-newest: never block or reallocate on the hot path **/
        ring->drops.fetch_add( 1, std::memory_order_relaxed );
        return;
    }
    ring->buf[ w ] = ev;
    /** release publishes the slot to any concurrent drainer **/
    ring->widx.store( w + 1, std::memory_order_release );
}

const char *cat_name( const std::uint8_t c ) noexcept
{
    switch( static_cast<cat>( c ) )
    {
        case cat::kernel:     return "kernel";
        case cat::stream:     return "stream";
        case cat::monitor:    return "monitor";
        case cat::elastic:    return "elastic";
        case cat::supervisor: return "supervisor";
        case cat::net:        return "net";
        case cat::fault:      return "fault";
        case cat::scheduler:  return "scheduler";
    }
    return "other";
}

void json_escape( std::ostream &os, const std::string &s )
{
    for( const char c : s )
    {
        switch( c )
        {
            case '"':  os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n";  break;
            case '\r': os << "\\r";  break;
            case '\t': os << "\\t";  break;
            default:
                if( static_cast<unsigned char>( c ) < 0x20 )
                {
                    char hex[ 8 ];
                    std::snprintf( hex, sizeof( hex ), "\\u%04x",
                                   static_cast<unsigned>( c ) );
                    os << hex;
                }
                else
                {
                    os << c;
                }
        }
    }
}

} /** end anonymous namespace **/

std::uint32_t intern( const std::string &name )
{
    auto &s = state();
    std::lock_guard<std::mutex> guard( s.mutex );
    const auto it = s.ids.find( name );
    if( it != s.ids.end() )
    {
        return it->second;
    }
    s.names.push_back( name );
    const auto id = static_cast<std::uint32_t>( s.names.size() );
    s.ids.emplace( name, id );
    return id;
}

void span( const std::uint32_t name, const cat c, const std::int64_t start_ns,
           const std::int64_t end_ns, const std::uint64_t value ) noexcept
{
    if( name == 0 || !tracing() )
    {
        return;
    }
    record( event{ start_ns,
                   end_ns >= start_ns ? end_ns - start_ns : 0,
                   name, static_cast<std::uint8_t>( c ), 0, 0, value } );
}

void instant( const std::uint32_t name, const cat c,
              const std::uint64_t value ) noexcept
{
    if( name == 0 || !tracing() )
    {
        return;
    }
    record( event{ raft::detail::now_ns(), -1, name,
                   static_cast<std::uint8_t>( c ), 0, 0, value } );
}

void instant_str( const std::string &name, const cat c,
                  const std::uint64_t value )
{
    if( !tracing() )
    {
        return;
    }
    instant( intern( name ), c, value );
}

void name_thread( const std::string &name )
{
    auto *ring = tls_ring;
    if( ring == nullptr )
    {
        ring = register_ring();
        if( ring == nullptr )
        {
            return;
        }
    }
    auto &s = state();
    std::lock_guard<std::mutex> guard( s.mutex );
    ring->thread_name = name;
}

void trace_enable( const std::size_t ring_capacity )
{
    auto &s = state();
    std::lock_guard<std::mutex> guard( s.mutex );
    if( s.enable_count++ == 0 )
    {
        s.capacity = ring_capacity == 0 ? 16384
                                        : raft::detail::pow2_ceil( ring_capacity );
        /** fresh session: reset every ring to the new capacity.  Callers
         *  guarantee no thread is mid-record here (sessions enable before
         *  the graph starts and disable after its threads join). **/
        for( auto &ring : s.rings )
        {
            ring->buf.assign( s.capacity, event{} );
            ring->widx.store( 0, std::memory_order_relaxed );
            ring->drops.store( 0, std::memory_order_relaxed );
        }
    }
    detail::trace_active.store( true, std::memory_order_relaxed );
}

void trace_disable()
{
    auto &s = state();
    std::lock_guard<std::mutex> guard( s.mutex );
    if( s.enable_count > 0 && --s.enable_count == 0 )
    {
        detail::trace_active.store( false, std::memory_order_relaxed );
    }
}

trace_stats trace_counters()
{
    auto &s = state();
    std::lock_guard<std::mutex> guard( s.mutex );
    trace_stats out;
    for( auto &ring : s.rings )
    {
        const auto w = ring->widx.load( std::memory_order_acquire );
        out.recorded += ( w < ring->buf.size() ? w : ring->buf.size() );
        out.dropped  += ring->drops.load( std::memory_order_relaxed );
    }
    out.threads = s.rings.size();
    return out;
}

void write_trace_json( std::ostream &os )
{
    auto &s = state();
    std::lock_guard<std::mutex> guard( s.mutex );
    os << "{\"traceEvents\": [";
    bool first = true;
    const auto emit_comma = [ & ]()
    {
        if( !first )
        {
            os << ",";
        }
        first = false;
        os << "\n";
    };
    for( const auto &ring : s.rings )
    {
        if( !ring->thread_name.empty() )
        {
            emit_comma();
            os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               << "\"tid\": " << ring->tid << ", \"args\": {\"name\": \"";
            json_escape( os, ring->thread_name );
            os << "\"}}";
        }
        const auto w = ring->widx.load( std::memory_order_acquire );
        const auto n = w < ring->buf.size() ? w : ring->buf.size();
        for( std::uint64_t i = 0; i < n; ++i )
        {
            const auto &ev = ring->buf[ i ];
            if( ev.name == 0 || ev.name > s.names.size() )
            {
                continue;
            }
            emit_comma();
            char ts[ 64 ];
            std::snprintf( ts, sizeof( ts ), "%.3f",
                           static_cast<double>( ev.ts_ns ) / 1e3 );
            os << "{\"name\": \"";
            json_escape( os, s.names[ ev.name - 1 ] );
            os << "\", \"cat\": \"" << cat_name( ev.category )
               << "\", \"pid\": 1, \"tid\": " << ring->tid
               << ", \"ts\": " << ts;
            if( ev.dur_ns >= 0 )
            {
                char dur[ 64 ];
                std::snprintf( dur, sizeof( dur ), "%.3f",
                               static_cast<double>( ev.dur_ns ) / 1e3 );
                os << ", \"ph\": \"X\", \"dur\": " << dur;
            }
            else
            {
                os << ", \"ph\": \"i\", \"s\": \"t\"";
            }
            os << ", \"args\": {\"value\": " << ev.value << "}}";
        }
    }
    os << "\n]}\n";
}

std::string trace_to_json()
{
    std::ostringstream os;
    write_trace_json( os );
    return os.str();
}

} /** end namespace telemetry **/
} /** end namespace raft **/
