/**
 * exporters.cpp - Prometheus HTTP endpoint + file writers.
 **/
#include "runtime/telemetry/exporters.hpp"

#include <fstream>
#include <sstream>

#include "runtime/stats.hpp"
#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/trace.hpp"

namespace raft
{
namespace telemetry
{

prometheus_endpoint::prometheus_endpoint( const std::uint16_t port )
    : listener_( port ), thread_( [ this ]() { loop(); } )
{
}

prometheus_endpoint::~prometheus_endpoint()
{
    stop();
}

void prometheus_endpoint::stop() noexcept
{
    if( !running_.exchange( false, std::memory_order_relaxed ) )
    {
        return;
    }
    /** closing the listener wakes the blocked accept() with an error **/
    listener_.close();
    if( thread_.joinable() )
    {
        thread_.join();
    }
}

void prometheus_endpoint::loop()
{
    while( running_.load( std::memory_order_relaxed ) )
    {
        try
        {
            auto conn = listener_.accept();
            /** drain (and ignore) the request line + headers: every path
             *  gets the same exposition, and scrapers send tiny GETs
             *  that fit one recv **/
            char reqbuf[ 1024 ];
            (void) conn.recv_some( reqbuf, sizeof( reqbuf ) );
            const auto body = registry::instance().render_prometheus();
            std::ostringstream head;
            head << "HTTP/1.0 200 OK\r\n"
                 << "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                 << "Content-Length: " << body.size() << "\r\n"
                 << "Connection: close\r\n\r\n";
            const auto h = head.str();
            conn.send_all( h.data(), h.size() );
            conn.send_all( body.data(), body.size() );
            scrapes_.fetch_add( 1, std::memory_order_relaxed );
        }
        catch( ... )
        {
            /** accept() failing after close() is the shutdown path; a
             *  client dropping mid-response is its problem — keep
             *  serving until stop() **/
            continue;
        }
    }
}

std::string scrape_prometheus( const std::string &host,
                               const std::uint16_t port )
{
    auto conn = net::tcp_connection::connect( host, port );
    const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
    conn.send_all( req.data(), req.size() );
    std::string raw;
    char buf[ 4096 ];
    for( ;; )
    {
        const auto n = conn.recv_some( buf, sizeof( buf ) );
        if( n == 0 )
        {
            break;
        }
        raw.append( buf, n );
    }
    const auto split = raw.find( "\r\n\r\n" );
    return split == std::string::npos ? raw : raw.substr( split + 4 );
}

bool write_trace_file( const std::string &path )
{
    std::ofstream out( path );
    if( !out )
    {
        return false;
    }
    write_trace_json( out );
    return static_cast<bool>( out );
}

bool write_snapshot_json( const std::string &path,
                          const runtime::perf_snapshot &snapshot )
{
    std::ofstream out( path );
    if( !out )
    {
        return false;
    }
    out << snapshot.to_json() << "\n";
    return static_cast<bool>( out );
}

} /** end namespace telemetry **/
} /** end namespace raft **/
