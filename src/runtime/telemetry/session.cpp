/**
 * session.cpp - wiring one map::exe() run into the tracer, registry and
 * exporters.
 **/
#include "runtime/telemetry/telemetry.hpp"

#include <string>

#include "core/fifo.hpp"
#include "core/kernel.hpp"
#include "runtime/stats.hpp"

namespace raft
{
namespace telemetry
{

namespace
{
/** run-duration histogram bounds: 1 µs .. 1 s in decades (raw ns,
 *  exported in seconds via scale 1e-9) **/
const std::vector<std::uint64_t> run_seconds_bounds_ns{
    1000,      10000,      100000,     1000000,
    10000000,  100000000,  1000000000 };
} /** end anonymous namespace **/

session::session( const telemetry_options &opts ) : opts_( opts )
{
    metrics_enable();
    if( opts_.trace )
    {
        trace_enable( opts_.trace_ring_capacity );
    }
    owner_ = registry::instance().make_owner();
    if( opts_.serve_prometheus )
    {
        endpoint_ =
            std::make_unique<prometheus_endpoint>( opts_.prometheus_port );
        if( opts_.bound_port_out != nullptr )
        {
            *opts_.bound_port_out = endpoint_->port();
        }
    }
}

session::~session()
{
    close( nullptr );
}

void session::watch_stream( fifo_base *f, const std::string &src,
                            const std::string &dst, const std::size_t index )
{
    if( closed_ || f == nullptr )
    {
        return;
    }
    streams_.push_back( f );
    const auto idx = std::to_string( index );
    if( opts_.trace )
    {
        f->set_telemetry_names(
            intern( "push_block " + src + "->" + dst + " #" + idx ),
            intern( "pop_block " + src + "->" + dst + " #" + idx ) );
    }
    const labels_t labels{ { "src", src },
                           { "dst", dst },
                           { "stream", idx } };
    auto &reg = registry::instance();
    reg.add_callback_gauge(
        "raft_stream_occupancy", labels,
        [ f ]() { return static_cast<double>( f->size() ); },
        "live queue occupancy in elements", owner_ );
    reg.add_callback_gauge(
        "raft_stream_capacity", labels,
        [ f ]() { return static_cast<double>( f->capacity() ); },
        "live queue capacity in elements", owner_ );
    reg.add_callback_counter(
        "raft_stream_pushed_total", labels,
        [ f ]() { return static_cast<double>( f->total_pushed() ); },
        "elements pushed over the stream's lifetime", owner_ );
    reg.add_callback_counter(
        "raft_stream_popped_total", labels,
        [ f ]() { return static_cast<double>( f->total_popped() ); },
        "elements popped over the stream's lifetime", owner_ );
    reg.add_callback_counter(
        "raft_stream_resizes_total", labels,
        [ f ]() { return static_cast<double>( f->resize_count() ); },
        "capacity changes applied to this stream", owner_ );
}

void session::register_kernel( kernel *k )
{
    if( closed_ || k == nullptr )
    {
        return;
    }
    auto probe = std::make_unique<kernel_probe>();
    const labels_t labels{ { "kernel", k->name() },
                           { "id", std::to_string( k->get_id() ) } };
    auto &reg      = registry::instance();
    probe->runs    = &reg.get_counter(
        "raft_kernel_runs_total", labels,
        "run() invocations completed by this kernel", owner_ );
    probe->busy_ns = &reg.get_counter(
        "raft_kernel_busy_seconds_total", labels,
        "wall time spent inside run()", owner_, 1e-9 );
    probe->run_hist = &reg.get_histogram(
        "raft_kernel_run_seconds", run_seconds_bounds_ns, 1e-9, labels,
        "per-invocation service time distribution", owner_ );
    if( opts_.trace )
    {
        probe->trace_name = intern(
            "kernel " + k->name() + " #" + std::to_string( k->get_id() ) );
    }
    auto *p = probe.get();
    reg.add_callback_gauge(
        "raft_kernel_service_rate_hz", labels,
        [ p ]()
        {
            const auto busy = p->busy_ns->value();
            return busy == 0
                       ? 0.0
                       : static_cast<double>( p->runs->value() ) /
                             ( static_cast<double>( busy ) * 1e-9 );
        },
        "run() invocations per busy second (non-blocking service rate)",
        owner_ );
    k->set_probe( p );
    kernels_.push_back( k );
    probes_.emplace_back( std::move( probe ) );
}

void session::watch_callback( const std::string &name,
                              std::function<double()> fn,
                              const std::string &help )
{
    if( closed_ )
    {
        return;
    }
    registry::instance().add_callback_counter( name, {}, std::move( fn ),
                                               help, owner_ );
}

std::uint16_t session::prometheus_port() const noexcept
{
    return endpoint_ != nullptr ? endpoint_->port() : 0;
}

void session::close( const runtime::perf_snapshot *snapshot )
{
    if( closed_ )
    {
        return;
    }
    closed_ = true;
    /** stop serving before tearing anything down: no scrape may touch a
     *  stream callback past this point **/
    const auto served_port = prometheus_port();
    if( endpoint_ != nullptr )
    {
        endpoint_->stop();
    }
    if( opts_.report_out != nullptr )
    {
        const auto ts = trace_counters();
        opts_.report_out->trace_events_recorded = ts.recorded;
        opts_.report_out->trace_events_dropped  = ts.dropped;
        opts_.report_out->trace_threads         = ts.threads;
        opts_.report_out->prometheus_port       = served_port;
    }
    if( opts_.trace && !opts_.trace_out.empty() )
    {
        (void) write_trace_file( opts_.trace_out );
    }
    if( !opts_.json_out.empty() && snapshot != nullptr )
    {
        (void) write_snapshot_json( opts_.json_out, *snapshot );
    }
    for( auto *k : kernels_ )
    {
        k->set_probe( nullptr );
    }
    for( auto *f : streams_ )
    {
        f->set_telemetry_names( 0, 0 );
    }
    registry::instance().release( owner_ );
    if( opts_.trace )
    {
        trace_disable();
    }
    metrics_disable();
}

} /** end namespace telemetry **/
} /** end namespace raft **/
