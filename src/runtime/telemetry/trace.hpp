/**
 * trace.hpp - lock-free runtime event tracer (runtime/telemetry/).
 *
 * The paper's §4.1 calls for "low-impact instrumentation" of a running
 * stream graph; this tracer is the event half of that promise.  Each
 * recording thread owns a private single-producer ring of fixed-size
 * 32-byte POD events — recording is a handful of relaxed stores plus one
 * release store of the write index, no locks, no allocation.  Rings are
 * registered once per thread (cold, mutex-guarded) and are only drained
 * after the graph's threads have quiesced, so the collector never races
 * a producer for the same slot.
 *
 * When tracing is disabled every instrumentation site costs exactly one
 * relaxed atomic load (the same discipline runtime/inject.hpp
 * established for fault-injection sites).  When a ring fills, new events
 * are dropped and counted — recording never blocks the graph.
 *
 * Events reference interned string ids rather than pointers so the ring
 * stays POD; hot sites intern at setup time (session registration), cold
 * sites (restarts, resizes) may intern at record time.  Export renders
 * Chrome `trace_event` JSON loadable in chrome://tracing or Perfetto.
 **/
#ifndef RAFT_RUNTIME_TELEMETRY_TRACE_HPP
#define RAFT_RUNTIME_TELEMETRY_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace raft
{
namespace telemetry
{

/** event categories — rendered as the Chrome "cat" field so Perfetto
 *  can filter kernel spans from, say, supervisor instants. **/
enum class cat : std::uint8_t
{
    kernel     = 0, /** kernel lifecycle / run spans          **/
    stream     = 1, /** blocked-on-push / blocked-on-pop      **/
    monitor    = 2, /** FIFO resizes, monitor lifecycle       **/
    elastic    = 3, /** replica activate / quiesce decisions  **/
    supervisor = 4, /** restarts, watchdog stalls             **/
    net        = 5, /** reconnects, replays                   **/
    fault      = 6, /** injected faults                       **/
    scheduler  = 7  /** graph-wide cancellation               **/
};

/** one ring slot: 32 bytes, trivially copyable. `dur_ns == -1` marks an
 *  instant event; anything >= 0 is a complete span. **/
struct event
{
    std::int64_t  ts_ns;    /** start timestamp, detail::now_ns()      **/
    std::int64_t  dur_ns;   /** span duration, or -1 for an instant    **/
    std::uint32_t name;     /** interned string id (0 = unnamed, skip) **/
    std::uint8_t  category; /** enum cat                               **/
    std::uint8_t  pad8_{ 0 };
    std::uint16_t pad16_{ 0 };
    std::uint64_t value;    /** free payload (count, capacity, ...)    **/
};

static_assert( sizeof( event ) == 32, "trace event must stay one half cacheline" );

namespace detail
{
/** master switch — every disabled site is exactly this relaxed load **/
inline std::atomic<bool> trace_active{ false };
} /** end namespace detail **/

/** true while at least one telemetry session has tracing enabled **/
inline bool tracing() noexcept
{
    return detail::trace_active.load( std::memory_order_relaxed );
}

/** intern a name, returning a stable nonzero id (cold path: mutex).
 *  Repeated interning of the same string returns the same id. **/
std::uint32_t intern( const std::string &name );

/** record a complete span [start_ns, end_ns] (no-op when name == 0) **/
void span( std::uint32_t name, cat c, std::int64_t start_ns,
           std::int64_t end_ns, std::uint64_t value = 0 ) noexcept;

/** record an instant event stamped now (no-op when name == 0) **/
void instant( std::uint32_t name, cat c, std::uint64_t value = 0 ) noexcept;

/** cold-path convenience: intern + instant in one call **/
void instant_str( const std::string &name, cat c, std::uint64_t value = 0 );

/** label the calling thread's track in the exported trace **/
void name_thread( const std::string &name );

/** enable / disable are refcounted so overlapping sessions compose;
 *  the first enable clears all rings and applies `ring_capacity`
 *  (events per thread, rounded up to a power of two). **/
void trace_enable( std::size_t ring_capacity );
void trace_disable();

struct trace_stats
{
    std::uint64_t recorded{ 0 };
    std::uint64_t dropped{ 0 };
    std::uint64_t threads{ 0 };
};

/** aggregate recorded/dropped accounting across all rings **/
trace_stats trace_counters();

/** render everything recorded so far as Chrome trace_event JSON
 *  ({"traceEvents": [...]}).  Safe to call while recording continues —
 *  only slots published before the call are read. **/
void write_trace_json( std::ostream &os );

/** write_trace_json to a string (test / snapshot convenience) **/
std::string trace_to_json();

} /** end namespace telemetry **/
} /** end namespace raft **/

#endif /** RAFT_RUNTIME_TELEMETRY_TRACE_HPP **/
