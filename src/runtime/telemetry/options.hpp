/**
 * options.hpp - telemetry configuration embedded in raft::run_options
 * (runtime/telemetry/).  Pure data: core/options.hpp includes this, so
 * it must pull in nothing from core/.
 **/
#ifndef RAFT_RUNTIME_TELEMETRY_OPTIONS_HPP
#define RAFT_RUNTIME_TELEMETRY_OPTIONS_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace raft
{
namespace telemetry
{

/** filled at session close when telemetry_options::report_out is set **/
struct telemetry_report
{
    std::uint64_t trace_events_recorded{ 0 };
    std::uint64_t trace_events_dropped{ 0 };
    std::uint64_t trace_threads{ 0 };
    std::uint16_t prometheus_port{ 0 }; /** bound port, 0 = not served **/
};

} /** end namespace telemetry **/

/** run_options::telemetry — everything defaults OFF; with
 *  `enabled == false` no instrumentation site costs more than one
 *  relaxed atomic load (guarded by bench/ab_telemetry). **/
struct telemetry_options
{
    /** master switch: metrics registry wiring + per-kernel service-time
     *  accounting + (with `trace`) the event tracer **/
    bool enabled{ false };

    /** record lifecycle/blocked/resize/restart events into per-thread
     *  rings for Chrome trace export **/
    bool trace{ true };

    /** tracer ring capacity in events per thread (rounded up to a power
     *  of two; 32 bytes per event) **/
    std::size_t trace_ring_capacity{ 16384 };

    /** write the Chrome trace_event JSON here at teardown ("" = don't);
     *  load the file in chrome://tracing or https://ui.perfetto.dev **/
    std::string trace_out{};

    /** write a perf_snapshot JSON (perf_snapshot::to_json()) here at
     *  teardown ("" = don't) **/
    std::string json_out{};

    /** serve Prometheus text exposition over src/net/socket for the
     *  duration of exe(); `prometheus_port == 0` binds an ephemeral
     *  loopback port **/
    bool serve_prometheus{ false };
    std::uint16_t prometheus_port{ 0 };

    /** written with the bound endpoint port before kernels start, so a
     *  scraper can attach to an ephemeral port mid-run **/
    std::uint16_t *bound_port_out{ nullptr };

    /** tracer/endpoint accounting out-param **/
    telemetry::telemetry_report *report_out{ nullptr };
};

} /** end namespace raft **/

#endif /** RAFT_RUNTIME_TELEMETRY_OPTIONS_HPP **/
