/**
 * telemetry.hpp - per-run telemetry session (runtime/telemetry/).
 *
 * map::exe() owns one of these when run_options::telemetry.enabled: the
 * constructor flips the global tracer/metrics switches and binds the
 * Prometheus endpoint (publishing the port through bound_port_out before
 * any kernel runs); watch_stream/register_kernel attach interned trace
 * names, live occupancy gauges and service-time probes as the graph is
 * bound; close() writes the Chrome trace / JSON snapshot artifacts and
 * detaches everything while the streams and kernels are still alive.
 *
 * Umbrella include for users: pulls in the tracer, registry, options and
 * exporters.
 **/
#ifndef RAFT_RUNTIME_TELEMETRY_TELEMETRY_HPP
#define RAFT_RUNTIME_TELEMETRY_TELEMETRY_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/telemetry/exporters.hpp"
#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/options.hpp"
#include "runtime/telemetry/trace.hpp"

namespace raft
{

class fifo_base;
class kernel;

namespace runtime
{
struct perf_snapshot;
} /** end namespace runtime **/

namespace telemetry
{

class session
{
public:
    /** enables tracing/metrics and (if asked) binds the endpoint **/
    explicit session( const telemetry_options &opts );

    /** close()s if the owner forgot (exception-unwind path) **/
    ~session();

    session( const session & )            = delete;
    session &operator=( const session & ) = delete;

    /** attach tracer names + live occupancy/throughput series to one
     *  stream; `index` disambiguates replica lanes whose kernels share a
     *  name **/
    void watch_stream( fifo_base *f, const std::string &src,
                       const std::string &dst, std::size_t index );

    /** attach a service-time probe (runs, busy ns, run-duration
     *  histogram, lifetime span name) to one kernel **/
    void register_kernel( kernel *k );

    /** export a pull metric owned by this session (e.g. monitor ticks) **/
    void watch_callback( const std::string &name,
                         std::function<double()> fn,
                         const std::string &help = "" );

    /** bound Prometheus port (0 when not serving) **/
    std::uint16_t prometheus_port() const noexcept;

    /** write artifacts, fill report_out, detach probes/gauges, stop the
     *  endpoint, drop the enable refcounts.  Idempotent.  Must run while
     *  the watched streams/kernels are still alive; map::exe() calls it
     *  before unbinding ports. **/
    void close( const runtime::perf_snapshot *snapshot = nullptr );

private:
    telemetry_options               opts_;
    registry::owner_t               owner_{ 0 };
    std::vector<kernel *>           kernels_;
    std::vector<std::unique_ptr<kernel_probe>> probes_;
    std::vector<fifo_base *>        streams_;
    std::unique_ptr<prometheus_endpoint> endpoint_;
    bool                            closed_{ false };
};

} /** end namespace telemetry **/
} /** end namespace raft **/

#endif /** RAFT_RUNTIME_TELEMETRY_TELEMETRY_HPP **/
