/**
 * metrics.hpp - live metrics registry (runtime/telemetry/).
 *
 * Counters, gauges and fixed-bucket histograms with wait-free hot-path
 * updates (a single relaxed RMW on x86 — no CAS loops: histograms store
 * integer observations and scale only at export time).  Handles returned
 * by the registry are stable for the lifetime of their owner scope, so
 * instrumented code holds plain pointers and never re-locks.
 *
 * Two ownership classes:
 *   - process-global metrics (owner 0): monotonic across runs, e.g.
 *     raft_net_bytes_sent_total — the Prometheus-correct shape for
 *     counters that a scraper rates over time;
 *   - session-scoped metrics: registered by a telemetry::session (or the
 *     elastic controller) under an owner token and removed when that
 *     owner is released, so per-kernel / per-stream series don't leak
 *     across independent map::exe() runs.
 *
 * `registry::render_prometheus()` emits text exposition format 0.0.4;
 * the HTTP endpoint around it lives in exporters.hpp.
 **/
#ifndef RAFT_RUNTIME_TELEMETRY_METRICS_HPP
#define RAFT_RUNTIME_TELEMETRY_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace raft
{
namespace telemetry
{

namespace detail
{
/** master switch for metric updates outside session-registered
 *  callbacks — every disabled site is exactly this relaxed load **/
inline std::atomic<bool> metrics_active{ false };
} /** end namespace detail **/

/** true while at least one telemetry session has metrics enabled **/
inline bool metrics_on() noexcept
{
    return detail::metrics_active.load( std::memory_order_relaxed );
}

/** refcounted enable/disable (sessions compose like trace_enable) **/
void metrics_enable();
void metrics_disable();

/** monotonic counter — wait-free add **/
class counter
{
public:
    void add( const std::uint64_t n = 1 ) noexcept
    {
        v_.fetch_add( n, std::memory_order_relaxed );
    }

    std::uint64_t value() const noexcept
    {
        return v_.load( std::memory_order_relaxed );
    }

private:
    std::atomic<std::uint64_t> v_{ 0 };
};

/** last-write-wins gauge **/
class gauge
{
public:
    void set( const double v ) noexcept
    {
        v_.store( v, std::memory_order_relaxed );
    }

    double value() const noexcept
    {
        return v_.load( std::memory_order_relaxed );
    }

private:
    std::atomic<double> v_{ 0.0 };
};

/** fixed-bucket histogram over integer observations (e.g. nanoseconds,
 *  bytes).  observe() is wait-free: a short bounds scan plus two relaxed
 *  fetch_adds.  A per-histogram `scale` converts raw units to the
 *  exported unit (1e-9 turns ns into Prometheus seconds) so the hot path
 *  never touches floating point. **/
class histogram
{
public:
    static constexpr std::size_t max_buckets = 16;

    void observe( const std::uint64_t raw ) noexcept
    {
        std::size_t i = 0;
        while( i < nbounds_ && raw > bounds_[ i ] )
        {
            ++i;
        }
        buckets_[ i ].fetch_add( 1, std::memory_order_relaxed );
        sum_.fetch_add( raw, std::memory_order_relaxed );
    }

    std::size_t   bound_count() const noexcept { return nbounds_; }
    std::uint64_t bound( const std::size_t i ) const noexcept
    {
        return bounds_[ i ];
    }
    std::uint64_t bucket( const std::size_t i ) const noexcept
    {
        return buckets_[ i ].load( std::memory_order_relaxed );
    }
    std::uint64_t sum_raw() const noexcept
    {
        return sum_.load( std::memory_order_relaxed );
    }
    std::uint64_t count() const noexcept
    {
        std::uint64_t total = 0;
        for( std::size_t i = 0; i <= nbounds_; ++i )
        {
            total += bucket( i );
        }
        return total;
    }
    double scale() const noexcept { return scale_; }

private:
    friend class registry;

    void configure( const std::vector<std::uint64_t> &bounds,
                    const double scale ) noexcept
    {
        nbounds_ = bounds.size() < max_buckets ? bounds.size() : max_buckets;
        for( std::size_t i = 0; i < nbounds_; ++i )
        {
            bounds_[ i ] = bounds[ i ];
        }
        scale_ = scale;
    }

    std::array<std::uint64_t, max_buckets>                bounds_{};
    std::size_t                                           nbounds_{ 0 };
    double                                                scale_{ 1.0 };
    std::array<std::atomic<std::uint64_t>, max_buckets + 1> buckets_{};
    std::atomic<std::uint64_t>                            sum_{ 0 };
};

using labels_t = std::vector<std::pair<std::string, std::string>>;

/** probe handed to a kernel by a telemetry session (core/kernel.hpp only
 *  forward-declares it; the scheduler null-checks the pointer). **/
struct kernel_probe
{
    counter      *runs{ nullptr };     /** run() invocations            **/
    counter      *busy_ns{ nullptr };  /** time spent inside run()      **/
    histogram    *run_hist{ nullptr }; /** per-invocation service time  **/
    std::uint32_t trace_name{ 0 };     /** interned id for the lifespan **/
};

/** process-wide metric registry (singleton).  Registration and render
 *  take a mutex; returned handles are updated lock-free. **/
class registry
{
public:
    using owner_t = std::uint64_t; /** 0 = process-global, never removed **/

    static registry &instance();

    owner_t make_owner();
    /** drop every metric registered under `owner`; its handles dangle
     *  afterwards, so instrumented code must be quiesced first **/
    void release( owner_t owner );

    /** get-or-create by (name, labels); `scale` multiplies the stored
     *  integer at export time **/
    counter &get_counter( const std::string &name, labels_t labels = {},
                          const std::string &help = "", owner_t owner = 0,
                          double scale = 1.0 );
    gauge &get_gauge( const std::string &name, labels_t labels = {},
                      const std::string &help = "", owner_t owner = 0 );
    histogram &get_histogram( const std::string &name,
                              const std::vector<std::uint64_t> &bounds,
                              double scale = 1.0, labels_t labels = {},
                              const std::string &help = "",
                              owner_t owner = 0 );

    /** register a pull metric evaluated at scrape time (live FIFO
     *  occupancy, monitor ticks...).  The callback must stay valid until
     *  the owner is released. **/
    void add_callback_gauge( const std::string &name, labels_t labels,
                             std::function<double()> fn,
                             const std::string &help = "",
                             owner_t owner = 0 );
    void add_callback_counter( const std::string &name, labels_t labels,
                               std::function<double()> fn,
                               const std::string &help = "",
                               owner_t owner = 0 );

    /** Prometheus text exposition format 0.0.4 **/
    std::string render_prometheus() const;

    std::size_t size() const;

private:
    registry() = default;
    struct impl;
    impl &self() const;
};

/** ------- process-global counters (owner 0, lazily registered) ------- *
 * accessors so call sites don't repeat name/help strings; each returns a
 * stable reference valid for the process lifetime. **/
counter &net_bytes_sent_total();
counter &net_bytes_received_total();
counter &net_frames_total();
counter &net_reconnects_total();
counter &net_replayed_frames_total();
counter &net_duplicate_frames_total();
counter &fifo_resizes_total();
counter &predictive_resizes_total();
counter &elastic_grows_total();
counter &elastic_shrinks_total();
counter &supervisor_restarts_total();
counter &watchdog_stalls_total();
counter &graph_cancellations_total();
counter &inject_faults_total();

} /** end namespace telemetry **/
} /** end namespace raft **/

#endif /** RAFT_RUNTIME_TELEMETRY_METRICS_HPP **/
