/**
 * stats.hpp — performance-monitoring data model (§4.1: "the user has access
 * to monitor useful things such as queue size, current kernel configuration
 * ... mean queue occupancy, service rate, throughput, queue occupancy
 * histograms").
 *
 * The monitor thread (core/monitor.hpp) samples every stream at its δ tick
 * and accumulates into these structures; map::exe() returns a perf_snapshot
 * through run_options::stats_out. Collection is deliberately cheap: per
 * sample, one occupancy load and one histogram bucket increment per stream
 * (the low-impact design the TimeTrial line of work argues for).
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace raft::runtime {

/** Fixed-bucket histogram over queue occupancy as a fraction of capacity. */
class occupancy_histogram
{
public:
    static constexpr std::size_t bucket_count = 10;

    void add( const double fraction ) noexcept
    {
        auto b = static_cast<std::size_t>( fraction * bucket_count );
        if( b >= bucket_count )
        {
            b = bucket_count - 1;
        }
        ++buckets_[ b ];
        ++total_;
    }

    std::uint64_t bucket( const std::size_t i ) const noexcept
    {
        return buckets_[ i ];
    }

    std::uint64_t total() const noexcept { return total_; }

    /** Fraction of samples in bucket i (0 if empty histogram). */
    double fraction( const std::size_t i ) const noexcept
    {
        return total_ == 0
                   ? 0.0
                   : static_cast<double>( buckets_[ i ] ) /
                         static_cast<double>( total_ );
    }

    void merge( const occupancy_histogram &o ) noexcept
    {
        for( std::size_t i = 0; i < bucket_count; ++i )
        {
            buckets_[ i ] += o.buckets_[ i ];
        }
        total_ += o.total_;
    }

private:
    std::array<std::uint64_t, bucket_count> buckets_{};
    std::uint64_t total_{ 0 };
};

/** Per-stream statistics over one application run. */
struct stream_stats
{
    std::string src_kernel;
    std::string dst_kernel;
    std::string src_port;
    std::string dst_port;
    std::string type_name;

    std::uint64_t pushed{ 0 };
    std::uint64_t popped{ 0 };
    std::size_t element_size{ 0 };
    std::size_t initial_capacity{ 0 };
    std::size_t final_capacity{ 0 };
    std::size_t resize_count{ 0 };

    std::uint64_t samples{ 0 };
    double mean_occupancy{ 0.0 };      /**< items, averaged over samples   */
    double mean_utilization{ 0.0 };    /**< occupancy / capacity           */
    occupancy_histogram occupancy;

    double service_rate_hz{ 0.0 };     /**< pops per wall second           */
    double arrival_rate_hz{ 0.0 };     /**< pushes per wall second         */
    double throughput_bytes_per_s{ 0.0 };
};

/** Whole-application monitoring snapshot returned by map::exe(). */
struct perf_snapshot
{
    std::vector<stream_stats> streams;
    double wall_seconds{ 0.0 };
    std::uint64_t monitor_ticks{ 0 };

    /** First stream whose endpoints contain the given substrings. */
    const stream_stats *find( const std::string &src_contains,
                              const std::string &dst_contains ) const
    {
        for( const auto &s : streams )
        {
            if( s.src_kernel.find( src_contains ) != std::string::npos &&
                s.dst_kernel.find( dst_contains ) != std::string::npos )
            {
                return &s;
            }
        }
        return nullptr;
    }

    double total_bytes_moved() const
    {
        double sum = 0.0;
        for( const auto &s : streams )
        {
            sum += static_cast<double>( s.popped ) *
                   static_cast<double>( s.element_size );
        }
        return sum;
    }
};

} /** end namespace raft::runtime **/
