/**
 * stats.hpp — performance-monitoring data model (§4.1: "the user has access
 * to monitor useful things such as queue size, current kernel configuration
 * ... mean queue occupancy, service rate, throughput, queue occupancy
 * histograms").
 *
 * The monitor thread (core/monitor.hpp) samples every stream at its δ tick
 * and accumulates into these structures; map::exe() returns a perf_snapshot
 * through run_options::stats_out. Collection is deliberately cheap: per
 * sample, one occupancy load and one histogram bucket increment per stream
 * (the low-impact design the TimeTrial line of work argues for).
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace raft::runtime {

/** Fixed-bucket histogram over queue occupancy as a fraction of capacity. */
class occupancy_histogram
{
public:
    static constexpr std::size_t bucket_count = 10;

    void add( const double fraction ) noexcept
    {
        /** A racing resize can make the occupancy load momentarily exceed
         *  the capacity load (or undershoot it), yielding fractions outside
         *  [0,1]; clamp both sides (the !(>) form also catches NaN) before
         *  the cast, which is UB for negative values. */
        const double f = !( fraction > 0.0 )
                             ? 0.0
                             : ( fraction > 1.0 ? 1.0 : fraction );
        auto b = static_cast<std::size_t>( f * bucket_count );
        if( b >= bucket_count )
        {
            b = bucket_count - 1;
        }
        ++buckets_[ b ];
        ++total_;
    }

    std::uint64_t bucket( const std::size_t i ) const noexcept
    {
        return buckets_[ i ];
    }

    std::uint64_t total() const noexcept { return total_; }

    /** Fraction of samples in bucket i (0 if empty histogram). */
    double fraction( const std::size_t i ) const noexcept
    {
        return total_ == 0
                   ? 0.0
                   : static_cast<double>( buckets_[ i ] ) /
                         static_cast<double>( total_ );
    }

    void merge( const occupancy_histogram &o ) noexcept
    {
        for( std::size_t i = 0; i < bucket_count; ++i )
        {
            buckets_[ i ] += o.buckets_[ i ];
        }
        total_ += o.total_;
    }

    /** Mean occupancy fraction, estimated from bucket midpoints. */
    double mean_fraction() const noexcept
    {
        if( total_ == 0 )
        {
            return 0.0;
        }
        double sum = 0.0;
        for( std::size_t i = 0; i < bucket_count; ++i )
        {
            const auto mid = ( static_cast<double>( i ) + 0.5 ) /
                             static_cast<double>( bucket_count );
            sum += static_cast<double>( buckets_[ i ] ) * mid;
        }
        return sum / static_cast<double>( total_ );
    }

    /**
     * q-quantile of the occupancy fraction (q in [0,1]): upper edge of the
     * first bucket at which the CDF reaches q. Resolution is one bucket
     * (0.1); an empty histogram reports 0.
     */
    double quantile( const double q ) const noexcept
    {
        if( total_ == 0 )
        {
            return 0.0;
        }
        const auto need = q * static_cast<double>( total_ );
        std::uint64_t cum = 0;
        for( std::size_t i = 0; i < bucket_count; ++i )
        {
            cum += buckets_[ i ];
            if( static_cast<double>( cum ) >= need )
            {
                return ( static_cast<double>( i ) + 1.0 ) /
                       static_cast<double>( bucket_count );
            }
        }
        return 1.0;
    }

    /** Median occupancy fraction (bucket-resolution, see quantile()). */
    double p50() const noexcept { return quantile( 0.50 ); }

    /** 95th-percentile occupancy fraction. */
    double p95() const noexcept { return quantile( 0.95 ); }

    /** 99th-percentile occupancy fraction. */
    double p99() const noexcept { return quantile( 0.99 ); }

private:
    std::array<std::uint64_t, bucket_count> buckets_{};
    std::uint64_t total_{ 0 };
};

/** Per-stream statistics over one application run. */
struct stream_stats
{
    std::string src_kernel;
    std::string dst_kernel;
    std::string src_port;
    std::string dst_port;
    std::string type_name;

    std::uint64_t pushed{ 0 };
    std::uint64_t popped{ 0 };
    std::size_t element_size{ 0 };
    std::size_t initial_capacity{ 0 };
    std::size_t final_capacity{ 0 };
    std::size_t resize_count{ 0 };

    std::uint64_t samples{ 0 };
    double mean_occupancy{ 0.0 };      /**< items, averaged over samples   */
    double mean_utilization{ 0.0 };    /**< occupancy / capacity           */
    occupancy_histogram occupancy;

    double service_rate_hz{ 0.0 };     /**< pops per wall second           */
    double arrival_rate_hz{ 0.0 };     /**< pushes per wall second         */
    double throughput_bytes_per_s{ 0.0 };

    /** Median occupancy fraction over the sampled run. */
    double p50_utilization() const noexcept
    {
        return occupancy.p50();
    }

    /** 95th-percentile occupancy fraction over the sampled run. */
    double p95_utilization() const noexcept
    {
        return occupancy.p95();
    }

    /** 99th-percentile occupancy fraction over the sampled run. */
    double p99_utilization() const noexcept
    {
        return occupancy.quantile( 0.99 );
    }

    /** 99th-percentile occupancy in items (fraction × final capacity). */
    double p99_occupancy() const noexcept
    {
        return p99_utilization() *
               static_cast<double>( final_capacity );
    }
};

/** Whole-application monitoring snapshot returned by map::exe(). */
struct perf_snapshot
{
    std::vector<stream_stats> streams;
    double wall_seconds{ 0.0 };
    std::uint64_t monitor_ticks{ 0 };

    /** First stream whose endpoints contain the given substrings. */
    const stream_stats *find( const std::string &src_contains,
                              const std::string &dst_contains ) const
    {
        for( const auto &s : streams )
        {
            if( s.src_kernel.find( src_contains ) != std::string::npos &&
                s.dst_kernel.find( dst_contains ) != std::string::npos )
            {
                return &s;
            }
        }
        return nullptr;
    }

    double total_bytes_moved() const
    {
        double sum = 0.0;
        for( const auto &s : streams )
        {
            sum += static_cast<double>( s.popped ) *
                   static_cast<double>( s.element_size );
        }
        return sum;
    }

    /** Sample-weighted mean utilization across every stream. */
    double mean_utilization() const
    {
        double weighted = 0.0;
        std::uint64_t samples = 0;
        for( const auto &s : streams )
        {
            weighted += s.mean_utilization *
                        static_cast<double>( s.samples );
            samples += s.samples;
        }
        return samples == 0
                   ? 0.0
                   : weighted / static_cast<double>( samples );
    }

    /** 99th-percentile utilization over the merged occupancy histogram of
     *  every stream (the application-wide tail pressure). */
    double p99_utilization() const
    {
        occupancy_histogram merged;
        for( const auto &s : streams )
        {
            merged.merge( s.occupancy );
        }
        return merged.quantile( 0.99 );
    }

    /** Whole snapshot as JSON — the telemetry JSON writer (and anything
     *  piping stats at a dashboard) goes through here instead of
     *  hand-walking the structs. */
    std::string to_json() const
    {
        std::ostringstream os;
        os.precision( 17 );
        const auto esc = []( const std::string &v )
        {
            std::string out;
            for( const char c : v )
            {
                if( c == '"' || c == '\\' )
                {
                    out += '\\';
                }
                if( static_cast<unsigned char>( c ) < 0x20 )
                {
                    out += ' ';
                    continue;
                }
                out += c;
            }
            return out;
        };
        os << "{\n  \"wall_seconds\": " << wall_seconds
           << ",\n  \"monitor_ticks\": " << monitor_ticks
           << ",\n  \"total_bytes_moved\": " << total_bytes_moved()
           << ",\n  \"mean_utilization\": " << mean_utilization()
           << ",\n  \"p99_utilization\": " << p99_utilization()
           << ",\n  \"streams\": [";
        bool first = true;
        for( const auto &s : streams )
        {
            os << ( first ? "\n" : ",\n" ) << "    {\"src\": \""
               << esc( s.src_kernel ) << "\", \"dst\": \""
               << esc( s.dst_kernel ) << "\", \"src_port\": \""
               << esc( s.src_port ) << "\", \"dst_port\": \""
               << esc( s.dst_port ) << "\", \"type\": \""
               << esc( s.type_name ) << "\","
               << "\n     \"pushed\": " << s.pushed
               << ", \"popped\": " << s.popped
               << ", \"element_size\": " << s.element_size
               << ", \"initial_capacity\": " << s.initial_capacity
               << ", \"final_capacity\": " << s.final_capacity
               << ", \"resize_count\": " << s.resize_count << ","
               << "\n     \"samples\": " << s.samples
               << ", \"mean_occupancy\": " << s.mean_occupancy
               << ", \"mean_utilization\": " << s.mean_utilization
               << ", \"p50_utilization\": " << s.p50_utilization()
               << ", \"p95_utilization\": " << s.p95_utilization()
               << ", \"p99_utilization\": " << s.p99_utilization() << ","
               << "\n     \"service_rate_hz\": " << s.service_rate_hz
               << ", \"arrival_rate_hz\": " << s.arrival_rate_hz
               << ", \"throughput_bytes_per_s\": "
               << s.throughput_bytes_per_s << ","
               << "\n     \"occupancy_histogram\": [";
            for( std::size_t i = 0;
                 i < occupancy_histogram::bucket_count; ++i )
            {
                os << ( i == 0 ? "" : ", " ) << s.occupancy.bucket( i );
            }
            os << "]}";
            first = false;
        }
        os << "\n  ]\n}";
        return os.str();
    }
};

/** Human-readable table: one line per stream plus run totals. */
inline std::ostream &operator<<( std::ostream &os, const perf_snapshot &p )
{
    os << "perf_snapshot: wall " << p.wall_seconds << " s, "
       << p.monitor_ticks << " monitor ticks, " << p.streams.size()
       << " streams, mean util " << p.mean_utilization() << ", p99 util "
       << p.p99_utilization() << "\n";
    for( const auto &s : p.streams )
    {
        os << "  " << s.src_kernel << "[" << s.src_port << "] -> "
           << s.dst_kernel << "[" << s.dst_port << "]: pushed " << s.pushed
           << ", popped " << s.popped << ", cap " << s.initial_capacity
           << "->" << s.final_capacity << " (" << s.resize_count
           << " resizes), util mean " << s.mean_utilization << " p50 "
           << s.p50_utilization() << " p95 " << s.p95_utilization()
           << " p99 " << s.p99_utilization() << ", service "
           << s.service_rate_hz << " Hz\n";
    }
    return os;
}

/** @name supervision report (runtime/supervisor.hpp) */
///@{

/** One kernel's history under the supervisor. */
struct kernel_supervision_report
{
    std::string kernel_name;
    std::size_t restarts{ 0 };        /**< restarts granted              */
    std::size_t failures{ 0 };        /**< throws observed (incl. final) */
    bool terminal{ false };           /**< policy exhausted / none       */
    std::string last_error;
};

/** Whole-run supervision summary, returned through
 *  run_options::supervision.report_out. */
struct supervision_report
{
    std::vector<kernel_supervision_report> kernels;
    std::size_t total_restarts{ 0 };
    std::size_t terminal_failures{ 0 };
    std::size_t watchdog_stalls{ 0 };
    /** Per-kernel occupancy/rate diagnostics captured at the last stall
     *  (empty when the watchdog never fired). */
    std::string last_stall_diagnostics;

    const kernel_supervision_report *
    find( const std::string &contains ) const
    {
        for( const auto &k : kernels )
        {
            if( k.kernel_name.find( contains ) != std::string::npos )
            {
                return &k;
            }
        }
        return nullptr;
    }
};
///@}

/** @name elastic runtime report (runtime/elastic/) */
///@{

/** One replica group's trajectory under the elastic controller. */
struct elastic_group_report
{
    std::string kernel_name;     /**< the replicated kernel               */
    std::size_t min_active{ 1 }; /**< configured floor                    */
    std::size_t max_active{ 1 }; /**< configured ceiling (= lane count)   */
    std::size_t final_active{ 1 };
    std::size_t peak_active{ 1 };
    std::size_t grows{ 0 };      /**< replica-activation decisions        */
    std::size_t shrinks{ 0 };    /**< replica-retirement decisions        */
    std::size_t strategy_switches{ 0 };

    /** Last online estimates (elements/s unless noted). */
    double lambda_hz{ 0.0 };     /**< offered arrival rate                */
    double mu_hz{ 0.0 };         /**< non-blocking service rate / replica */
    double rho{ 0.0 };           /**< λ / (μ · active)                    */

    /** Input-stream occupancy quantiles sampled at every control tick
     *  (occupancy_histogram::p50/p95 — the distribution the thresholds
     *  acted on, not just its mean). */
    double input_p50_utilization{ 0.0 };
    double input_p95_utilization{ 0.0 };

    /** Largest replica count the queueing model asked for over the run
     *  (windows with warmed-up estimates only) — directly comparable with
     *  the offline optimizer's answer for the loaded phase. */
    std::size_t model_desired{ 1 };
};

/** Whole-run elastic controller summary, returned through
 *  run_options::elastic.report_out. */
struct elastic_report
{
    std::vector<elastic_group_report> groups;
    std::uint64_t control_ticks{ 0 };      /**< policy evaluations       */
    std::uint64_t predictive_resizes{ 0 }; /**< FIFO grows ahead of 3δ   */

    const elastic_group_report *find( const std::string &contains ) const
    {
        for( const auto &g : groups )
        {
            if( g.kernel_name.find( contains ) != std::string::npos )
            {
                return &g;
            }
        }
        return nullptr;
    }
};
///@}

} /** end namespace raft::runtime **/
