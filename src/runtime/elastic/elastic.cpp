#include "runtime/elastic/elastic.hpp"

#include <cmath>
#include <cstring>

#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/trace.hpp"

namespace raft::elastic {

namespace {

policy_config make_policy_config( const elastic_options &cfg,
                                  const std::size_t min_active,
                                  const std::size_t max_active )
{
    policy_config p;
    p.high_utilization   = cfg.high_utilization;
    p.low_utilization    = cfg.low_utilization;
    p.pressure_threshold = cfg.pressure_threshold;
    p.skew_threshold     = cfg.skew_threshold;
    p.hysteresis         = cfg.hysteresis == 0 ? 1 : cfg.hysteresis;
    p.min_active         = min_active;
    p.max_active         = max_active;
    return p;
}

/** Coefficient of variation of the active lanes' mean occupancy
 *  fractions; 0 when the lanes are essentially empty (no skew signal in
 *  starvation). */
double lane_skew( const std::vector<double> &occ )
{
    if( occ.size() < 2 )
    {
        return 0.0;
    }
    double mean = 0.0;
    for( const auto v : occ )
    {
        mean += v;
    }
    mean /= static_cast<double>( occ.size() );
    if( mean < 0.02 )
    {
        return 0.0;
    }
    double var = 0.0;
    for( const auto v : occ )
    {
        var += ( v - mean ) * ( v - mean );
    }
    var /= static_cast<double>( occ.size() );
    return std::sqrt( var ) / mean;
}

} /** end anonymous namespace **/

controller::~controller()
{
    if( tele_owner_ != 0 )
    {
        telemetry::registry::instance().release( tele_owner_ );
    }
}

controller::controller( const run_options &opts )
    : cfg_( opts.elastic ), dynamic_resize_( opts.dynamic_resize ),
      max_queue_capacity_( opts.max_queue_capacity )
{
    period_ns_ = cfg_.control_period.count();
    const auto delta = opts.monitor_delta.count();
    if( period_ns_ < delta )
    {
        period_ns_ = delta; /** can't control faster than we sample **/
    }
    if( cfg_.ewma_alpha <= 0.0 || cfg_.ewma_alpha > 1.0 )
    {
        cfg_.ewma_alpha = 0.4;
    }
}

void controller::add_group( const replica_group &g )
{
    if( g.splits.empty() )
    {
        return; /** nothing to actuate without a split adapter **/
    }
    group_state gs{ g.kernel_name,
                    g.splits,
                    /*active*/ 1,
                    /*min*/ 1,
                    /*max*/ 1,
                    /*input*/ nullptr,
                    rate_estimator( cfg_.ewma_alpha ),
                    {},
                    replica_policy( policy_config{} ),
                    strategy_policy( policy_config{} ),
                    /*strict*/ false,
                    /*rep*/ {},
                    /*input_hist*/ {} };

    split_kernel *first = g.splits.front();
    gs.max_active       = first->width();
    gs.min_active       = cfg_.min_replicas == 0 ? 1 : cfg_.min_replicas;
    if( gs.min_active > gs.max_active )
    {
        gs.min_active = gs.max_active;
    }
    gs.active = first->active();

    const auto pcfg =
        make_policy_config( cfg_, gs.min_active, gs.max_active );
    gs.policy         = replica_policy( pcfg );
    gs.strategy       = strategy_policy( pcfg );
    gs.strict_routing = first->strategy_strict();

    gs.input = &first->input[ "0" ].raw();
    gs.lanes.reserve( first->width() );
    for( std::size_t i = 0; i < first->width(); ++i )
    {
        gs.lanes.push_back(
            lane_state{ &first->output[ std::to_string( i ) ].raw(),
                        rate_estimator( cfg_.ewma_alpha ) } );
    }

    gs.rep.kernel_name = g.kernel_name;
    gs.rep.min_active  = gs.min_active;
    gs.rep.max_active  = gs.max_active;
    gs.rep.peak_active = gs.active;

    /** telemetry attachment — map::exe constructs the session before
     *  add_group runs, so the switches tell us whether to export **/
    if( telemetry::metrics_on() )
    {
        if( tele_owner_ == 0 )
        {
            tele_owner_ = telemetry::registry::instance().make_owner();
        }
        gs.active_gauge = &telemetry::registry::instance().get_gauge(
            "raft_elastic_active_replicas",
            { { "kernel", g.kernel_name } },
            "replica lanes currently routed to by the split adapters",
            tele_owner_ );
        gs.active_gauge->set( static_cast<double>( gs.active ) );
    }
    if( telemetry::tracing() )
    {
        gs.trace_activate =
            telemetry::intern( "replica_activate " + g.kernel_name );
        gs.trace_quiesce =
            telemetry::intern( "replica_quiesce " + g.kernel_name );
    }
    groups_.push_back( std::move( gs ) );
}

void controller::watch_stream( fifo_base *f, std::string src_kernel,
                               std::string dst_kernel )
{
    streams_.push_back( stream_state{ f, std::move( src_kernel ),
                                      std::move( dst_kernel ),
                                      rate_estimator( cfg_.ewma_alpha ),
                                      0 } );
}

void controller::on_tick( const std::int64_t now_ns )
{
    /** δ-tick occupancy probes (one size/capacity load pair each) **/
    for( auto &g : groups_ )
    {
        const auto isz  = g.input->size();
        const auto icap = g.input->capacity();
        g.input_est.tick( isz, icap );
        g.input_hist.add( icap == 0 ? 0.0
                                    : static_cast<double>( isz ) /
                                          static_cast<double>( icap ) );
        for( auto &l : g.lanes )
        {
            l.est.tick( l.f->size(), l.f->capacity() );
        }
    }
    if( ++probe_phase_ >= stream_probe_stride )
    {
        probe_phase_ = 0;
        for( auto &s : streams_ )
        {
            s.est.tick( s.f->size(), s.f->capacity() );
        }
    }

    if( last_control_ns_ == 0 )
    {
        last_control_ns_ = now_ns;
        return;
    }
    if( now_ns - last_control_ns_ < period_ns_ )
    {
        return;
    }
    const auto dt_s =
        static_cast<double>( now_ns - last_control_ns_ ) / 1e9;
    last_control_ns_ = now_ns;
    control_window( dt_s );
}

void controller::control_window( const double dt_s )
{
    ++control_ticks_;
    for( auto &g : groups_ )
    {
        control_group( g, dt_s );
    }

    /** predictive FIFO sizing over every watched stream **/
    for( auto &s : streams_ )
    {
        s.est.window( s.f->total_pushed(), s.f->total_popped(), dt_s );
        if( !cfg_.predictive_resize || !dynamic_resize_ )
        {
            continue;
        }
        if( s.cooldown > 0 )
        {
            --s.cooldown;
            continue;
        }
        if( s.est.windows() < 2 )
        {
            continue; /** estimates still warming up **/
        }
        const auto want = predict_capacity(
            s.est.arrival_hz(), s.est.service_hz(),
            s.est.mean_occupancy_fraction(), s.f->capacity(),
            max_queue_capacity_ );
        if( want != 0 && s.f->resize( want ) )
        {
            ++predictive_resizes_;
            s.cooldown = 4; /** let the new capacity show effect **/
            if( telemetry::metrics_on() )
            {
                telemetry::predictive_resizes_total().add();
            }
            if( telemetry::tracing() )
            {
                telemetry::instant_str( "predictive_resize " + s.src +
                                            "->" + s.dst,
                                        telemetry::cat::elastic, want );
            }
        }
    }
}

void controller::control_group( group_state &g, const double dt_s )
{
    g.input_est.window( g.input->total_pushed(),
                        g.input->total_popped(), dt_s );
    for( auto &l : g.lanes )
    {
        l.est.window( l.f->total_pushed(), l.f->total_popped(), dt_s );
    }

    /** aggregate the per-replica non-blocking service rate over lanes
     *  with a warmed-up estimate **/
    double mu_sum   = 0.0;
    std::size_t mun = 0;
    for( const auto &l : g.lanes )
    {
        if( l.est.service_valid() )
        {
            mu_sum += l.est.service_hz();
            ++mun;
        }
    }

    group_estimate e;
    e.lambda         = g.input_est.arrival_hz();
    e.mu             = mun == 0 ? 0.0
                                : mu_sum / static_cast<double>( mun );
    e.input_pressure = g.input_est.mean_occupancy_fraction();
    e.active         = g.active;
    e.rates_valid    = g.input_est.arrival_valid() && mun > 0 &&
                       g.input_est.windows() >= 2;

    std::vector<double> occ;
    occ.reserve( g.active );
    for( std::size_t i = 0; i < g.active && i < g.lanes.size(); ++i )
    {
        occ.push_back( g.lanes[ i ].est.mean_occupancy_fraction() );
    }
    e.lane_skew = lane_skew( occ );

    const auto delta = g.policy.decide( e );
    if( delta != 0 )
    {
        g.active = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>( g.active ) + delta );
        for( auto *sp : g.splits )
        {
            sp->set_active( g.active );
        }
        if( delta > 0 )
        {
            ++g.rep.grows;
            if( telemetry::metrics_on() )
            {
                telemetry::elastic_grows_total().add();
            }
            telemetry::instant( g.trace_activate, telemetry::cat::elastic,
                                g.active );
        }
        else
        {
            ++g.rep.shrinks;
            if( telemetry::metrics_on() )
            {
                telemetry::elastic_shrinks_total().add();
            }
            telemetry::instant( g.trace_quiesce, telemetry::cat::elastic,
                                g.active );
        }
        if( g.active_gauge != nullptr )
        {
            g.active_gauge->set( static_cast<double>( g.active ) );
        }
        if( g.active > g.rep.peak_active )
        {
            g.rep.peak_active = g.active;
        }
    }

    if( cfg_.retune_split && g.strict_routing &&
        g.strategy.want_least_utilized( e ) )
    {
        for( auto *sp : g.splits )
        {
            sp->request_strategy( split_kind::least_utilized );
        }
        g.strict_routing = false;
        ++g.rep.strategy_switches;
    }

    g.rep.lambda_hz = e.lambda;
    g.rep.mu_hz     = e.mu;
    g.rep.rho       = g.policy.utilization( e );
    if( e.rates_valid )
    {
        const auto md = g.policy.model_desired( e.lambda, e.mu );
        if( md > g.rep.model_desired )
        {
            g.rep.model_desired = md;
        }
    }
}

runtime::elastic_report controller::report() const
{
    runtime::elastic_report r;
    r.control_ticks      = control_ticks_;
    r.predictive_resizes = predictive_resizes_;
    for( const auto &g : groups_ )
    {
        auto rep                    = g.rep;
        rep.final_active            = g.active;
        rep.input_p50_utilization   = g.input_hist.p50();
        rep.input_p95_utilization   = g.input_hist.p95();
        r.groups.push_back( std::move( rep ) );
    }
    return r;
}

} /** end namespace raft::elastic **/
