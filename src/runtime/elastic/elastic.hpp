/**
 * elastic.hpp — the elastic runtime controller (runtime/elastic/).
 *
 * A closed-loop adaptive controller that rides the monitor thread: the
 * monitor calls on_tick() once per δ; the controller takes one cheap
 * occupancy probe per watched stream per tick and, every control period,
 * closes an estimation window (estimator.hpp), evaluates the policies
 * (policy.hpp) and actuates:
 *
 *   - replica elasticity — activating/retiring replica lanes of
 *     pre-provisioned split/reduce groups (core/parallel.hpp) via
 *     split_kernel::set_active(); retirement is a quiesce: routing stops,
 *     the lane drains through its still-live replica, nothing is lost;
 *   - predictive FIFO sizing — growing streams the M/M/1 model predicts
 *     will crowd out, ahead of the monitor's reactive 3δ-blocked rule;
 *   - split-strategy retune — swapping strict round-robin dealing for
 *     least-utilized routing when sustained lane skew is observed.
 *
 * Everything runs on the monitor thread, so actuation (atomic stores into
 * the split adapters, resize() calls) never races the monitor's own
 * resizes. The controller is constructed, wired and torn down by
 * map::exe() when run_options::elastic.enabled is set; with the flag off
 * none of this code is reachable.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/parallel.hpp"
#include "runtime/elastic/estimator.hpp"
#include "runtime/elastic/policy.hpp"
#include "runtime/stats.hpp"

namespace raft::telemetry {
class gauge;
} /** end namespace raft::telemetry **/

namespace raft::elastic {

class controller
{
public:
    explicit controller( const run_options &opts );

    /** releases the controller's telemetry registrations (if any) **/
    ~controller();

    controller( const controller & )            = delete;
    controller &operator=( const controller & ) = delete;

    /** @name registration (map::exe, before the monitor starts) */
    ///@{
    /** Register a replicated kernel's adapters; the split/reduce ports
     *  must already be bound to streams. Groups without a split adapter
     *  are ignored (nothing to actuate). */
    void add_group( const replica_group &g );

    /** Watch one stream for predictive resizing. */
    void watch_stream( fifo_base *f, std::string src_kernel,
                       std::string dst_kernel );
    ///@}

    /** Monitor-thread hook: one δ tick. Samples every watched stream and,
     *  once per control period, runs estimate → policy → actuate. */
    void on_tick( std::int64_t now_ns );

    /** Trajectory summary; call after the monitor stopped. */
    runtime::elastic_report report() const;

    std::size_t group_count() const noexcept { return groups_.size(); }

private:
    struct lane_state
    {
        fifo_base *f{ nullptr };
        rate_estimator est;
    };

    struct group_state
    {
        std::string name;
        std::vector<split_kernel *> splits;
        std::size_t active{ 1 };
        std::size_t min_active{ 1 };
        std::size_t max_active{ 1 };

        fifo_base *input{ nullptr }; /**< stream feeding the first split */
        rate_estimator input_est;
        std::vector<lane_state> lanes; /**< first split's output streams  */

        replica_policy policy;
        strategy_policy strategy;
        bool strict_routing{ false }; /**< current strategy is strict RR  */

        runtime::elastic_group_report rep;

        /** input occupancy distribution over every δ probe — feeds the
         *  report's input_p50/p95_utilization */
        runtime::occupancy_histogram input_hist;

        /** telemetry (null / 0 when no session is active at add_group) */
        telemetry::gauge *active_gauge{ nullptr };
        std::uint32_t trace_activate{ 0 };
        std::uint32_t trace_quiesce{ 0 };
    };

    struct stream_state
    {
        fifo_base *f{ nullptr };
        std::string src;
        std::string dst;
        rate_estimator est;
        std::uint64_t cooldown{ 0 }; /**< windows until next resize try  */
    };

    void control_window( double dt_s );
    void control_group( group_state &g, double dt_s );

    /** Watched (non-group) streams only feed the predictive-resize
     *  estimator, which doesn't need δ-resolution occupancy: probe them
     *  every Nth tick so the controller's steady-state cost stays well
     *  under the monitor's own sampling. Group inputs/lanes keep per-δ
     *  probes — pressure and skew fidelity drive replica decisions. */
    static constexpr std::uint32_t stream_probe_stride = 4;

    elastic_options cfg_;
    bool dynamic_resize_{ true };
    std::size_t max_queue_capacity_{ 0 };
    std::int64_t period_ns_{ 0 };
    std::int64_t last_control_ns_{ 0 };

    std::vector<group_state> groups_;
    std::vector<stream_state> streams_;
    std::uint32_t probe_phase_{ 0 };

    std::uint64_t control_ticks_{ 0 };
    std::uint64_t predictive_resizes_{ 0 };

    /** registry owner for the controller's gauges (0 = none made) */
    std::uint64_t tele_owner_{ 0 };
};

} /** end namespace raft::elastic **/
