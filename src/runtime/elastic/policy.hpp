/**
 * policy.hpp — the elastic runtime's decision logic (runtime/elastic/).
 *
 * Pure functions of the online estimates (estimator.hpp) against the
 * queueing models (src/queueing/models.hpp): classify each replica group
 * as bottleneck / balanced / underutilized with hysteresis, size the
 * replica set the way the offline flow model would, and predict FIFO
 * capacity demand ahead of the monitor's reactive 3δ-blocked trigger.
 *
 * Everything here is deterministic and side-effect free so it can be unit
 * tested without threads; the controller (elastic.hpp) owns the clocking
 * and actuation.
 */
#pragma once

#include <cmath>
#include <cstddef>

#include "queueing/models.hpp"

namespace raft::elastic {

/** One control window's view of a replica group. */
struct group_estimate
{
    double lambda{ 0.0 };     /**< offered arrival rate into the group    */
    double mu{ 0.0 };         /**< non-blocking service rate per replica  */
    double input_pressure{ 0.0 }; /**< split-input mean occupancy frac    */
    double lane_skew{ 0.0 };  /**< CV of active-lane occupancy fractions  */
    std::size_t active{ 1 };  /**< currently routed replica lanes         */
    bool rates_valid{ false };/**< λ̂ and μ̂ both warmed up               */
};

struct policy_config
{
    double high_utilization{ 0.85 };
    double low_utilization{ 0.45 };
    double pressure_threshold{ 0.75 };
    double skew_threshold{ 0.5 };
    std::size_t hysteresis{ 3 };
    std::size_t min_active{ 1 };
    std::size_t max_active{ 1 };
};

/**
 * Replica-count policy with hysteresis. decide() is called once per
 * control window and returns the replica delta to apply: +1 (activate a
 * lane), -1 (retire a lane) or 0. A window must present `hysteresis`
 * consecutive agreeing classifications before the policy moves, and any
 * actuation resets both streaks — the grow/shrink oscillation damper the
 * monitor's resize heuristic uses as well.
 */
class replica_policy
{
public:
    explicit replica_policy( const policy_config &cfg ) noexcept
        : cfg_( cfg )
    {
    }

    int decide( const group_estimate &e ) noexcept
    {
        const bool bottleneck    = is_bottleneck( e );
        const bool underutilized = is_underutilized( e );

        up_streak_   = bottleneck ? up_streak_ + 1 : 0;
        down_streak_ = underutilized ? down_streak_ + 1 : 0;

        if( up_streak_ >= cfg_.hysteresis && e.active < cfg_.max_active )
        {
            up_streak_   = 0;
            down_streak_ = 0;
            return +1;
        }
        if( down_streak_ >= cfg_.hysteresis && e.active > cfg_.min_active )
        {
            up_streak_   = 0;
            down_streak_ = 0;
            return -1;
        }
        return 0;
    }

    /**
     * Bottleneck: the group's utilization ρ = λ/(μ·active) exceeds the high
     * threshold, or the split input shows sustained backpressure (the
     * model-free signal — a full input queue means upstream is blocked on
     * this group regardless of what the rate estimates say).
     */
    bool is_bottleneck( const group_estimate &e ) const noexcept
    {
        if( e.input_pressure > cfg_.pressure_threshold )
        {
            return true;
        }
        if( !e.rates_valid || e.mu <= 0.0 )
        {
            return false;
        }
        return utilization( e ) > cfg_.high_utilization;
    }

    /**
     * Underutilized: retiring one replica would still leave utilization
     * below the low threshold (so the remaining lanes absorb the flow with
     * headroom), and the input shows no queueing to speak of.
     */
    bool is_underutilized( const group_estimate &e ) const noexcept
    {
        if( e.active <= cfg_.min_active || !e.rates_valid || e.mu <= 0.0 )
        {
            return false;
        }
        if( e.input_pressure > 0.25 )
        {
            return false;
        }
        const auto rho_minus_one =
            e.lambda /
            ( e.mu * static_cast<double>( e.active - 1 ) );
        return rho_minus_one < cfg_.low_utilization;
    }

    double utilization( const group_estimate &e ) const noexcept
    {
        return e.mu <= 0.0 || e.active == 0
                   ? 0.0
                   : e.lambda /
                         ( e.mu * static_cast<double>( e.active ) );
    }

    /**
     * The replica count the flow model wants for these rates: the smallest
     * r with λ/(μ·r) ≤ high_utilization — identical arithmetic to sizing
     * replicas from the offline flow_model's per-kernel ρ, so the online
     * answer is directly comparable with the offline optimizer's.
     */
    std::size_t model_desired( const double lambda,
                               const double mu ) const noexcept
    {
        if( mu <= 0.0 || lambda <= 0.0 )
        {
            return cfg_.min_active;
        }
        const auto raw = std::ceil(
            lambda / ( mu * cfg_.high_utilization ) );
        auto r = raw < 1.0 ? std::size_t{ 1 }
                           : static_cast<std::size_t>( raw );
        if( r < cfg_.min_active )
        {
            r = cfg_.min_active;
        }
        if( r > cfg_.max_active )
        {
            r = cfg_.max_active;
        }
        return r;
    }

    const policy_config &config() const noexcept { return cfg_; }

private:
    policy_config cfg_;
    std::size_t up_streak_{ 0 };
    std::size_t down_streak_{ 0 };
};

/**
 * Split-strategy retune: sustained occupancy skew across the active lanes
 * means strict round-robin dealing is feeding slow/unlucky replicas as
 * often as fast ones; least-utilized routing absorbs the imbalance. The
 * switch is one-way per run (LU handles the balanced case fine, so
 * flapping back buys nothing).
 */
class strategy_policy
{
public:
    explicit strategy_policy( const policy_config &cfg ) noexcept
        : cfg_( cfg )
    {
    }

    /** True when this window's skew evidence (with hysteresis) says to
     *  switch a strict strategy to least-utilized. */
    bool want_least_utilized( const group_estimate &e ) noexcept
    {
        if( e.active < 2 )
        {
            streak_ = 0;
            return false;
        }
        streak_ = e.lane_skew > cfg_.skew_threshold ? streak_ + 1 : 0;
        if( streak_ >= cfg_.hysteresis )
        {
            streak_ = 0;
            return true;
        }
        return false;
    }

private:
    policy_config cfg_;
    std::size_t streak_{ 0 };
};

/**
 * Predictive FIFO sizing: given the stream's estimated rates and its
 * current capacity, return the capacity the M/M/1 model wants (0 = no
 * change). Fires *before* the writer ever blocks 3δ: either the predicted
 * steady-state occupancy L = ρ/(1-ρ) crowds the buffer, or the stream is
 * already past saturation and visibly filling.
 */
inline std::size_t predict_capacity( const double lambda, const double mu,
                                     const double occupancy_fraction,
                                     const std::size_t capacity,
                                     const std::size_t max_capacity )
{
    if( capacity == 0 || capacity >= max_capacity )
    {
        return 0;
    }
    const auto grown = capacity * 2 > max_capacity ? max_capacity
                                                   : capacity * 2;
    if( mu > 0.0 && lambda > 0.0 && lambda < mu )
    {
        const auto L =
            queueing::mm1{ lambda, mu }.mean_in_system();
        if( L > 0.5 * static_cast<double>( capacity ) )
        {
            return grown;
        }
    }
    /** saturated (ρ ≥ 1) or model-less: grow once the buffer visibly
     *  fills, ahead of the writer actually blocking **/
    if( occupancy_fraction > 0.7 )
    {
        return grown;
    }
    return 0;
}

} /** end namespace raft::elastic **/
