/**
 * estimator.hpp — online arrival/service-rate estimation for the elastic
 * runtime (runtime/elastic/).
 *
 * The monitor thread samples every watched FIFO once per δ tick (one
 * occupancy load, mirroring the §4.1 low-overhead statistics design); at
 * each control period the per-window tick aggregates are combined with the
 * queue's monotonic push/pop counters into rate estimates, EWMA-smoothed
 * across windows.
 *
 * The service-rate estimate follows Beard & Chamberlain's run-time
 * approximation of *non-blocking* service rates (arXiv:1504.00591): the
 * observed drain rate of a queue equals the consumer's true service rate
 * only while the consumer is not starved, so the pop rate is divided by the
 * fraction of the window during which the queue was non-empty. Dually, the
 * observed push rate underestimates the *offered* arrival rate while the
 * producer is blocked on a full queue, so the push rate is divided by the
 * non-full fraction of the window. Both corrections turn blocking-distorted
 * throughput observations into estimates of the underlying rates — exactly
 * the λ and μ the M/M/1 and flow models (src/queueing/) expect.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace raft::elastic {

/** Exponentially-weighted moving average with explicit warm-up. */
class ewma
{
public:
    explicit ewma( const double alpha = 0.4 ) noexcept : alpha_( alpha ) {}

    void update( const double sample ) noexcept
    {
        if( !valid_ )
        {
            value_ = sample;
            valid_ = true;
            return;
        }
        value_ = alpha_ * sample + ( 1.0 - alpha_ ) * value_;
    }

    double value() const noexcept { return value_; }
    bool valid() const noexcept { return valid_; }
    void reset() noexcept
    {
        value_ = 0.0;
        valid_ = false;
    }

private:
    double alpha_;
    double value_{ 0.0 };
    bool valid_{ false };
};

/**
 * Rate estimator for one FIFO: δ-tick occupancy probes plus control-window
 * counter deltas → EWMA estimates of offered arrival rate and non-blocking
 * service rate.
 *
 * Single-threaded by design: both tick() and window() run on the monitor
 * thread. The FIFO counters it consumes (total_pushed/total_popped) are
 * relaxed atomics maintained by the queue ends.
 */
class rate_estimator
{
public:
    explicit rate_estimator( const double alpha = 0.4 ) noexcept
        : arrival_( alpha ), service_( alpha )
    {
    }

    /** One δ-tick occupancy probe (size and capacity loads only). */
    void tick( const std::size_t size, const std::size_t capacity ) noexcept
    {
        ++ticks_;
        if( size > 0 )
        {
            ++busy_ticks_;
        }
        if( capacity != 0 && size >= capacity )
        {
            ++full_ticks_;
        }
        occ_sum_ += capacity == 0
                        ? 0.0
                        : static_cast<double>(
                              size > capacity ? capacity : size ) /
                              static_cast<double>( capacity );
    }

    /**
     * Close a control window: `pushed`/`popped` are the queue's lifetime
     * counters, `dt_s` the window length in seconds. Applies the
     * busy/non-full corrections and folds the window into the EWMAs.
     */
    void window( const std::uint64_t pushed, const std::uint64_t popped,
                 const double dt_s ) noexcept
    {
        const auto d_push = pushed - last_pushed_;
        const auto d_pop  = popped - last_popped_;
        last_pushed_      = pushed;
        last_popped_      = popped;

        const auto t = static_cast<double>( ticks_ );
        busy_frac_   = ticks_ == 0
                           ? ( d_pop > 0 ? 1.0 : 0.0 )
                           : static_cast<double>( busy_ticks_ ) / t;
        full_frac_   = ticks_ == 0
                           ? 0.0
                           : static_cast<double>( full_ticks_ ) / t;
        mean_occ_    = ticks_ == 0 ? 0.0 : occ_sum_ / t;
        ticks_       = 0;
        busy_ticks_  = 0;
        full_ticks_  = 0;
        occ_sum_     = 0.0;

        if( !( dt_s > 0.0 ) )
        {
            return;
        }
        observed_push_hz_ = static_cast<double>( d_push ) / dt_s;
        observed_pop_hz_  = static_cast<double>( d_pop ) / dt_s;

        /** offered arrival rate: pushes happen only while not blocked on a
         *  full queue; divide by the non-full fraction (floored so a
         *  saturated window cannot blow the estimate up — saturation shows
         *  up in full_fraction()/mean occupancy instead) **/
        const auto open = 1.0 - full_frac_;
        arrival_.update( observed_push_hz_ /
                         ( open < 0.05 ? 0.05 : open ) );

        /** non-blocking service rate (1504.00591): pops happen only while
         *  the queue is non-empty; meaningful only when the consumer was
         *  observably busy this window, otherwise keep the prior **/
        if( busy_frac_ > 0.02 )
        {
            service_.update( observed_pop_hz_ /
                             ( busy_frac_ < 0.05 ? 0.05 : busy_frac_ ) );
        }
        ++windows_;
    }

    /** @name smoothed estimates (elements/s) */
    ///@{
    double arrival_hz() const noexcept { return arrival_.value(); }
    double service_hz() const noexcept { return service_.value(); }
    bool arrival_valid() const noexcept { return arrival_.valid(); }
    bool service_valid() const noexcept { return service_.valid(); }
    ///@}

    /** @name last-window raw observations */
    ///@{
    double observed_push_hz() const noexcept { return observed_push_hz_; }
    double observed_pop_hz() const noexcept { return observed_pop_hz_; }
    double busy_fraction() const noexcept { return busy_frac_; }
    double full_fraction() const noexcept { return full_frac_; }
    double mean_occupancy_fraction() const noexcept { return mean_occ_; }
    std::uint64_t windows() const noexcept { return windows_; }
    ///@}

private:
    ewma arrival_;
    ewma service_;

    std::uint64_t last_pushed_{ 0 };
    std::uint64_t last_popped_{ 0 };
    std::uint64_t windows_{ 0 };

    /** per-window tick aggregates **/
    std::uint64_t ticks_{ 0 };
    std::uint64_t busy_ticks_{ 0 };
    std::uint64_t full_ticks_{ 0 };
    double occ_sum_{ 0.0 };

    /** last-window results **/
    double observed_push_hz_{ 0.0 };
    double observed_pop_hz_{ 0.0 };
    double busy_frac_{ 0.0 };
    double full_frac_{ 0.0 };
    double mean_occ_{ 0.0 };
};

} /** end namespace raft::elastic **/
