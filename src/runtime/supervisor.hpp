/**
 * supervisor.hpp — supervised execution (fault tolerance).
 *
 * The supervisor is the runtime's failure-policy arbiter. Scheduler threads
 * consult it when a kernel's run() throws a non-control-flow exception:
 * while the kernel's restart_policy has restarts left, the verdict grants an
 * in-place restart after an exponentially backed-off delay (ports stay
 * bound, streams stay open — RAII claim guards released anything held
 * during unwind). Once the policy is exhausted the failure is terminal and
 * the scheduler cancels the whole graph.
 *
 * The supervisor also rides the monitor thread (monitor::attach_supervisor)
 * as a graph-wide watchdog: if no stream pushes or pops a single element
 * for longer than supervision_options::watchdog_deadline, it records a
 * stall, captures per-kernel occupancy/rate diagnostics, and — when
 * watchdog_abort is set — cancels the graph through the canceller callback
 * the scheduler registered, so blocked kernels wake with
 * stream_aborted_exception instead of hanging forever.
 *
 * Thread safety: on_failure() arrives from scheduler threads, on_tick()
 * from the monitor thread; one mutex serializes both against report().
 */
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/fifo.hpp"
#include "core/kernel.hpp"
#include "core/options.hpp"
#include "runtime/stats.hpp"

namespace raft::runtime {

class supervisor
{
public:
    explicit supervisor( const supervision_options &opts );

    supervisor( const supervisor & )            = delete;
    supervisor &operator=( const supervisor & ) = delete;

    /** @name registration (call before the run starts) */
    ///@{
    void register_kernel( kernel *k );
    /** Watch a stream for watchdog progress accounting & diagnostics. */
    void watch_stream( fifo_base *f, std::string src, std::string dst );
    ///@}

    /** Scheduler → supervisor: kernel k's run() threw `what`. */
    struct verdict
    {
        bool restart{ false };
        std::chrono::nanoseconds backoff{ 0 };
    };
    verdict on_failure( kernel &k, const std::string &what );

    /**
     * Graph canceller, registered by the scheduler for the duration of
     * execute(): invoked (with a human-readable reason) when the watchdog
     * decides to abort a stalled graph. Cleared before execute() returns,
     * so a late watchdog tick only records the stall.
     */
    void set_canceller( std::function<void( const std::string & )> c );
    void clear_canceller();

    /** Monitor thread: one watchdog evaluation at time `now_ns`. */
    void on_tick( std::int64_t now_ns );

    /** Snapshot of the supervision history (any time; thread-safe). */
    supervision_report report() const;

private:
    struct kernel_state
    {
        kernel *k{ nullptr };
        restart_policy policy{};
        std::size_t restarts{ 0 };
        std::size_t failures{ 0 };
        bool terminal{ false };
        std::string last_error;
    };

    struct stream_state
    {
        fifo_base *f{ nullptr };
        std::string src;
        std::string dst;
        /** previous-tick totals, for the rate part of the stall dump **/
        std::uint64_t prev_pushed{ 0 };
        std::uint64_t prev_popped{ 0 };
    };

    kernel_state *find_locked( const kernel &k );
    std::string stall_diagnostics_locked( std::int64_t now_ns );

    supervision_options opts_;
    mutable std::mutex mutex_;
    std::vector<kernel_state> kernels_;
    std::vector<stream_state> streams_;
    std::function<void( const std::string & )> canceller_;

    /** watchdog state (monitor thread under mutex_) **/
    std::uint64_t last_progress_{ 0 };
    std::int64_t last_progress_ns_{ 0 };
    std::int64_t last_rate_ns_{ 0 };
    bool stall_flagged_{ false };
    std::size_t watchdog_stalls_{ 0 };
    std::string last_stall_diagnostics_;
    std::size_t total_restarts_{ 0 };
    std::size_t terminal_failures_{ 0 };
};

} /** end namespace raft::runtime **/
