#include "runtime/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/trace.hpp"

namespace raft::runtime {

supervisor::supervisor( const supervision_options &opts ) : opts_( opts ) {}

void supervisor::register_kernel( kernel *k )
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    kernel_state s;
    s.k = k;
    /** explicit per-kernel policy wins over the configured default **/
    const auto *p = k->restart();
    s.policy      = p != nullptr ? *p : opts_.default_restart;
    kernels_.push_back( std::move( s ) );
}

void supervisor::watch_stream( fifo_base *f, std::string src,
                               std::string dst )
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    stream_state s;
    s.f   = f;
    s.src = std::move( src );
    s.dst = std::move( dst );
    streams_.push_back( std::move( s ) );
}

supervisor::kernel_state *supervisor::find_locked( const kernel &k )
{
    for( auto &s : kernels_ )
    {
        if( s.k == &k )
        {
            return &s;
        }
    }
    return nullptr;
}

supervisor::verdict supervisor::on_failure( kernel &k,
                                            const std::string &what )
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    auto *s = find_locked( k );
    if( s == nullptr )
    {
        /** unknown kernel (not registered): terminal, but still counted **/
        ++terminal_failures_;
        return verdict{};
    }
    ++s->failures;
    s->last_error = what;
    if( s->restarts < s->policy.max_restarts )
    {
        /** grant a restart: backoff = initial · multiplier^restarts,
         *  capped at max_backoff **/
        const auto n = s->restarts++;
        ++total_restarts_;
        if( telemetry::metrics_on() )
        {
            telemetry::supervisor_restarts_total().add();
        }
        if( telemetry::tracing() )
        {
            telemetry::instant_str( "restart " + k.name(),
                                    telemetry::cat::supervisor,
                                    s->restarts );
        }
        double ns = static_cast<double>( s->policy.initial_backoff.count() );
        for( std::size_t i = 0; i < n; ++i )
        {
            ns *= s->policy.backoff_multiplier;
            if( ns >= static_cast<double>( s->policy.max_backoff.count() ) )
            {
                break;
            }
        }
        ns = std::min(
            ns, static_cast<double>( s->policy.max_backoff.count() ) );
        verdict v;
        v.restart = true;
        v.backoff = std::chrono::nanoseconds(
            static_cast<std::int64_t>( std::max( 0.0, ns ) ) );
        return v;
    }
    s->terminal = true;
    ++terminal_failures_;
    return verdict{};
}

void supervisor::set_canceller(
    std::function<void( const std::string & )> c )
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    canceller_ = std::move( c );
}

void supervisor::clear_canceller()
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    canceller_ = nullptr;
}

std::string supervisor::stall_diagnostics_locked( const std::int64_t now_ns )
{
    /** Per-stream occupancy + rate dump, the stats.hpp counters read live:
     *  enough to see which queue is full (blocked producer) and which is
     *  empty (starved consumer) when the graph wedged. */
    const double window_s =
        last_rate_ns_ > 0
            ? static_cast<double>( now_ns - last_rate_ns_ ) * 1e-9
            : 0.0;
    std::ostringstream os;
    for( auto &s : streams_ )
    {
        const auto pushed = s.f->total_pushed();
        const auto popped = s.f->total_popped();
        os << "  " << s.src << " -> " << s.dst << ": occupancy "
           << s.f->size() << "/" << s.f->capacity() << ", pushed "
           << pushed << ", popped " << popped;
        if( window_s > 0.0 )
        {
            os << ", rate in "
               << static_cast<double>( pushed - s.prev_pushed ) / window_s
               << "/s out "
               << static_cast<double>( popped - s.prev_popped ) / window_s
               << "/s";
        }
        os << "\n";
    }
    for( const auto &k : kernels_ )
    {
        if( k.failures != 0 )
        {
            os << "  kernel " << k.k->name() << ": " << k.failures
               << " failure(s), " << k.restarts << " restart(s)"
               << ( k.terminal ? " [terminal]" : "" ) << ": "
               << k.last_error << "\n";
        }
    }
    return os.str();
}

void supervisor::on_tick( const std::int64_t now_ns )
{
    if( opts_.watchdog_deadline.count() <= 0 )
    {
        return;
    }
    std::function<void( const std::string & )> cancel;
    std::string reason;
    {
        const std::lock_guard<std::mutex> lock( mutex_ );
        std::uint64_t progress = 0;
        for( const auto &s : streams_ )
        {
            progress += s.f->total_pushed() + s.f->total_popped();
        }
        if( last_progress_ns_ == 0 || progress != last_progress_ )
        {
            /** first tick, or the graph moved — rearm **/
            for( auto &s : streams_ )
            {
                s.prev_pushed = s.f->total_pushed();
                s.prev_popped = s.f->total_popped();
            }
            last_rate_ns_     = last_progress_ns_ == 0 ? 0 : last_progress_ns_;
            last_progress_    = progress;
            last_progress_ns_ = now_ns;
            stall_flagged_    = false;
            return;
        }
        if( stall_flagged_ ||
            now_ns - last_progress_ns_ < opts_.watchdog_deadline.count() )
        {
            return;
        }
        /** deadline blown with zero progress: one stall per quiet period **/
        stall_flagged_ = true;
        ++watchdog_stalls_;
        if( telemetry::metrics_on() )
        {
            telemetry::watchdog_stalls_total().add();
        }
        if( telemetry::tracing() )
        {
            telemetry::instant_str( "watchdog_stall",
                                    telemetry::cat::supervisor );
        }
        last_stall_diagnostics_ = stall_diagnostics_locked( now_ns );
        if( !opts_.watchdog_abort || !canceller_ )
        {
            return;
        }
        cancel = canceller_;
        reason =
            "watchdog: no stream progress for " +
            std::to_string( ( now_ns - last_progress_ns_ ) / 1'000'000 ) +
            " ms\n" + last_stall_diagnostics_;
    }
    /** invoke outside the lock — the canceller pokes schedulers/streams **/
    cancel( reason );
}

supervision_report supervisor::report() const
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    supervision_report out;
    out.total_restarts         = total_restarts_;
    out.terminal_failures      = terminal_failures_;
    out.watchdog_stalls        = watchdog_stalls_;
    out.last_stall_diagnostics = last_stall_diagnostics_;
    for( const auto &s : kernels_ )
    {
        kernel_supervision_report k;
        k.kernel_name = s.k->name();
        k.restarts    = s.restarts;
        k.failures    = s.failures;
        k.terminal    = s.terminal;
        k.last_error  = s.last_error;
        out.kernels.push_back( std::move( k ) );
    }
    return out;
}

} /** end namespace raft::runtime **/
