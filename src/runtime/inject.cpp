#include "runtime/inject.hpp"

#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/trace.hpp"

namespace raft::runtime::inject {

namespace {

/** splitmix64: tiny, seedable, good enough for a fault coin. */
std::uint64_t splitmix64( std::uint64_t &state ) noexcept
{
    state += 0x9e3779b97f4a7c15ull;
    auto z = state;
    z      = ( z ^ ( z >> 30 ) ) * 0xbf58476d1ce4e5b9ull;
    z      = ( z ^ ( z >> 27 ) ) * 0x94d049bb133111ebull;
    return z ^ ( z >> 31 );
}

struct plan_state
{
    plan p;
    std::uint64_t hits{ 0 };
    std::uint64_t firings{ 0 };
};

struct registry
{
    std::mutex mutex;
    std::vector<plan_state> plans;
    std::vector<std::pair<std::string, std::uint64_t>> site_fired;
    std::uint64_t rng{ 0 };
};

registry &reg()
{
    static registry r;
    return r;
}

/**
 * One matching pass: count the hit against every armed plan for `site`
 * whose action is `wanted`, and report whether any fires. Returns a copy
 * of the fired plan (the lock is dropped before the action executes).
 */
bool match( const char *site, const std::string &det, const action wanted,
            plan *out )
{
    auto &r = reg();
    const std::lock_guard<std::mutex> lock( r.mutex );
    bool fired = false;
    for( auto &s : r.plans )
    {
        if( s.p.act != wanted || s.p.site != site )
        {
            continue;
        }
        if( !s.p.match.empty() &&
            det.find( s.p.match ) == std::string::npos )
        {
            continue;
        }
        const auto hit = ++s.hits;
        if( hit <= s.p.after )
        {
            continue;
        }
        if( s.p.count != 0 && s.firings >= s.p.count )
        {
            continue;
        }
        if( s.p.probability < 1.0 )
        {
            const auto coin =
                static_cast<double>( splitmix64( r.rng ) >> 11 ) *
                0x1.0p-53;
            if( coin >= s.p.probability )
            {
                continue;
            }
        }
        ++s.firings;
        if( !fired )
        {
            fired = true;
            if( out != nullptr )
            {
                *out = s.p;
            }
        }
    }
    if( fired )
    {
        for( auto &sf : r.site_fired )
        {
            if( sf.first == site )
            {
                ++sf.second;
                return fired;
            }
        }
        r.site_fired.emplace_back( site, 1 );
    }
    return fired;
}

} /** end anonymous namespace **/

void enable( const std::uint64_t seed )
{
    auto &r = reg();
    {
        const std::lock_guard<std::mutex> lock( r.mutex );
        r.plans.clear();
        r.site_fired.clear();
        r.rng = seed;
    }
    detail::active.store( true, std::memory_order_release );
}

void disable()
{
    detail::active.store( false, std::memory_order_release );
    auto &r = reg();
    const std::lock_guard<std::mutex> lock( r.mutex );
    r.plans.clear();
    r.site_fired.clear();
}

void arm( plan p )
{
    auto &r = reg();
    const std::lock_guard<std::mutex> lock( r.mutex );
    r.plans.push_back( plan_state{ std::move( p ), 0, 0 } );
}

std::uint64_t fired( const std::string &site )
{
    auto &r = reg();
    const std::lock_guard<std::mutex> lock( r.mutex );
    for( const auto &sf : r.site_fired )
    {
        if( sf.first == site )
        {
            return sf.second;
        }
    }
    return 0;
}

namespace detail {

namespace {

/** Telemetry hook for a fired plan — cold path, only reached when a
 *  fault actually triggers. */
void note_fired( const char *site, const std::string &det )
{
    if( telemetry::metrics_on() )
    {
        telemetry::inject_faults_total().add();
    }
    if( telemetry::tracing() )
    {
        telemetry::instant_str( "injected_fault " + std::string( site ) +
                                    ( det.empty() ? "" : " " + det ),
                                telemetry::cat::fault );
    }
}

} /** end anonymous namespace **/

void throw_site( const char *site, const std::string &det )
{
    plan p;
    if( match( site, det, action::throw_error, &p ) )
    {
        note_fired( site, det );
        throw injected_fault( p.message + " [site " + site +
                              ( det.empty() ? "" : ", " + det ) + "]" );
    }
}

void delay_site( const char *site, const std::string &det )
{
    plan p;
    if( match( site, det, action::delay, &p ) )
    {
        note_fired( site, det );
        std::this_thread::sleep_for( p.delay );
    }
}

bool kill_site( const char *site, const std::string &det )
{
    if( match( site, det, action::kill_link, nullptr ) )
    {
        note_fired( site, det );
        return true;
    }
    return false;
}

} /** end namespace detail **/

} /** end namespace raft::runtime::inject **/
