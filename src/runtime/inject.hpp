/**
 * inject.hpp — deterministic fault-injection harness (raft::runtime::inject).
 *
 * Testing a fault-tolerant runtime requires faults on demand. This harness
 * arms *plans* against named instrumentation sites compiled into the
 * runtime ("kernel.run" in both schedulers, "net.send"/"net.recv" in the
 * socket layer, "net.link" in the reliable TCP kernels); when an armed plan
 * matches a site hit, it fires: throw an injected_fault from a kernel's
 * run(), delay an I/O call, or kill a live TCP link (::shutdown on the fd,
 * so the very next real syscall fails and the peer observes EOF — the
 * failure propagates exactly like a genuine network partition). Streams
 * can additionally be poisoned at the Nth element with the inject::poison
 * pass-through kernel.
 *
 * Determinism: plans fire by counting matching hits (fire after `after`
 * hits, `count` times); the optional probability coin is driven by a
 * splitmix64 generator seeded once at enable(), so a given seed replays
 * the same decision sequence for the same hit order.
 *
 * Everything defaults OFF. The disabled fast path is one inline relaxed
 * atomic load per site — no locks, no allocation, no behavior change.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "core/exceptions.hpp"
#include "core/kernel.hpp"

namespace raft::runtime::inject {

/** Thrown by a fired throw_error plan. */
class injected_fault : public raft_exception
{
public:
    explicit injected_fault( const std::string &what )
        : raft_exception( what )
    {
    }
};

enum class action
{
    throw_error, /**< throw injected_fault at the site                  */
    delay,       /**< sleep plan.delay at the site                      */
    kill_link    /**< tell the site's caller to kill its TCP link       */
};

struct plan
{
    std::string site;  /**< instrumentation site, e.g. "kernel.run"      */
    std::string match; /**< substring of the site detail ("" = any)      */
    action act{ action::throw_error };
    std::uint64_t after{ 0 }; /**< skip the first `after` matching hits  */
    std::uint64_t count{ 1 }; /**< firings allowed (0 = unlimited)       */
    double probability{ 1.0 }; /**< seeded coin per eligible hit         */
    std::chrono::nanoseconds delay{ std::chrono::milliseconds( 1 ) };
    std::string message{ "injected fault" };
};

/** Master switch. enable() seeds the coin generator and starts matching;
 *  disable() clears every plan and counter. Not meant to be toggled while
 *  a graph is running (tests arm before exe()). */
void enable( std::uint64_t seed );
void disable();

namespace detail {
inline std::atomic<bool> active{ false };
void throw_site( const char *site, const std::string &detail );
void delay_site( const char *site, const std::string &detail );
bool kill_site( const char *site, const std::string &detail );
} /** end namespace detail **/

inline bool enabled() noexcept
{
    return detail::active.load( std::memory_order_relaxed );
}

/** Arm one plan (enable() first). */
void arm( plan p );

/** Total firings at a site since enable() (test introspection). */
std::uint64_t fired( const std::string &site );

/** @name instrumentation sites (called from the runtime)
 * Disabled cost: the inline enabled() check only.
 */
///@{
inline void maybe_throw( const char *site, const std::string &detail )
{
    if( enabled() )
    {
        detail::throw_site( site, detail );
    }
}

inline void maybe_delay( const char *site, const std::string &detail )
{
    if( enabled() )
    {
        detail::delay_site( site, detail );
    }
}

/** True when the caller should kill its link now. */
inline bool should_kill( const char *site, const std::string &detail )
{
    return enabled() && detail::kill_site( site, detail );
}
///@}

/**
 * Pass-through kernel that poisons its stream at the Nth element: elements
 * 1..N-1 are forwarded untouched, then the output stream is aborted (the
 * downstream peer wakes with stream_aborted_exception and the scheduler
 * cancels the graph). N == 0 never poisons — a pure relay.
 */
template <class T> class poison : public kernel
{
public:
    explicit poison( const std::uint64_t nth ) : kernel(), nth_( nth )
    {
        input.addPort<T>( "0" );
        output.addPort<T>( "0" );
    }

    kstatus run() override
    {
        signal s{ none };
        T v;
        input[ "0" ].pop( v, &s );
        if( nth_ != 0 && ++seen_ >= nth_ )
        {
            output[ "0" ].raw().abort();
            return raft::stop;
        }
        output[ "0" ].push( v, s );
        return raft::proceed;
    }

private:
    std::uint64_t nth_;
    std::uint64_t seen_{ 0 };
};

} /** end namespace raft::runtime::inject **/
