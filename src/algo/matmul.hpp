/**
 * matmul.hpp — the streaming matrix-multiply application behind Figure 4.
 *
 * The paper's queue-sizing experiment ("Queue sizes for a matrix multiply
 * application, shown for an individual queue (all queues sized equally)",
 * Figure 4) needs a pipeline whose streams carry sizeable payloads so
 * buffer capacity translates into megabytes. The application:
 *
 *     tile_source ──work items──> tile_multiply ──result tiles──> tile_sink
 *
 * C = A · B is blocked into TILE×TILE tiles; a work item names (r, c) and
 * the multiply kernel computes the full dot-product band for that tile
 * against the shared read-only A and B (zero-copy: matrices never enter a
 * queue). Result tiles are fixed-size inline payloads (TILE² doubles ≈
 * 2 KiB), so a queue of N items is N·2 KiB of buffer — the swept quantity.
 *
 * Also provides a plain blocked multiply as the correctness oracle.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "core/kernel.hpp"

namespace raft::algo {

inline constexpr std::size_t mm_tile_dim = 16;

/** Dense row-major square matrix. */
struct matrix
{
    std::size_t n{ 0 };
    std::vector<double> a;

    explicit matrix( const std::size_t dim )
        : n( dim ), a( dim * dim, 0.0 )
    {
    }

    double &at( const std::size_t r, const std::size_t c )
    {
        return a[ r * n + c ];
    }
    double at( const std::size_t r, const std::size_t c ) const
    {
        return a[ r * n + c ];
    }

    /** Deterministic pseudo-random fill. */
    static matrix random( std::size_t dim, std::uint64_t seed );
};

/** Oracle: straightforward blocked multiply. */
matrix multiply_reference( const matrix &A, const matrix &B );

/** Work item: compute output tile (tile_r, tile_c). */
struct mm_work
{
    std::uint32_t tile_r{ 0 };
    std::uint32_t tile_c{ 0 };
};

/** Result payload: one TILE×TILE output tile, inline. */
struct mm_tile
{
    std::uint32_t tile_r{ 0 };
    std::uint32_t tile_c{ 0 };
    double v[ mm_tile_dim * mm_tile_dim ]{};
};

/** Source kernel: enumerates every output tile of an n×n product. */
class mm_source : public kernel
{
public:
    explicit mm_source( std::size_t n );
    kstatus run() override;

private:
    std::size_t tiles_per_dim_;
    std::size_t tiles_;
    std::size_t next_{ 0 };
};

/** Worker kernel: computes one output tile per input work item. Clonable
 *  (tiles are independent), so raft::out links replicate it. */
class mm_multiply : public kernel
{
public:
    mm_multiply( const matrix *A, const matrix *B );
    kstatus run() override;
    bool clone_supported() const override { return true; }
    kernel *clone() const override
    {
        return new mm_multiply( A_, B_ );
    }

private:
    const matrix *A_;
    const matrix *B_;
};

/** Sink kernel: scatters result tiles into the caller's C matrix. */
class mm_sink : public kernel
{
public:
    explicit mm_sink( matrix *C );
    kstatus run() override;

private:
    matrix *C_;
};

} /** end namespace raft::algo **/
