#include "algo/corpus.hpp"

#include <algorithm>
#include <random>
#include <vector>

#include "algo/strmatch.hpp"

namespace raft::algo {

namespace {

/** Plausible syllables so the byte histogram resembles English text. */
const char *const syllables[] = {
    "an", "ter", "re", "con", "de", "com", "men", "tion", "ing", "pro",
    "sta", "per", "sys", "tem", "da", "ta", "stre", "am", "ker", "nel",
    "queue", "ma", "trix", "li", "b", "ra", "ry", "co", "de", "ex",
    "e", "cu", "te", "par", "al", "lel", "o", "ver", "head", "thru",
    "put", "la", "ten", "cy", "buf", "fer", "sched", "ul", "er", "net"
};
constexpr std::size_t syllable_count =
    sizeof( syllables ) / sizeof( syllables[ 0 ] );

std::vector<std::string> build_vocabulary( const std::size_t n,
                                           std::mt19937_64 &eng )
{
    std::vector<std::string> vocab;
    vocab.reserve( n );
    std::uniform_int_distribution<std::size_t> syl( 0, syllable_count - 1 );
    std::uniform_int_distribution<int> parts( 1, 4 );
    for( std::size_t i = 0; i < n; ++i )
    {
        std::string w;
        const int k = parts( eng );
        for( int j = 0; j < k; ++j )
        {
            w += syllables[ syl( eng ) ];
        }
        vocab.push_back( std::move( w ) );
    }
    return vocab;
}

/** Inverse-CDF sampler over a Zipf(s) distribution on [0, n). */
class zipf_sampler
{
public:
    zipf_sampler( const std::size_t n, const double s )
    {
        cdf_.reserve( n );
        double acc = 0.0;
        for( std::size_t k = 1; k <= n; ++k )
        {
            acc += 1.0 / std::pow( static_cast<double>( k ), s );
            cdf_.push_back( acc );
        }
        for( auto &v : cdf_ )
        {
            v /= acc;
        }
    }

    std::size_t operator()( std::mt19937_64 &eng ) const
    {
        const double u = std::uniform_real_distribution<double>(
            0.0, 1.0 )( eng );
        const auto it = std::lower_bound( cdf_.begin(), cdf_.end(), u );
        return static_cast<std::size_t>( it - cdf_.begin() );
    }

private:
    std::vector<double> cdf_;
};

} /** end anonymous namespace **/

std::string make_corpus( const corpus_options &opt )
{
    std::mt19937_64 eng( opt.seed );
    const auto vocab = build_vocabulary( opt.vocabulary, eng );
    const zipf_sampler zipf( vocab.size(), opt.zipf_s );
    std::uniform_int_distribution<std::size_t> line_len(
        1, std::max<std::size_t>( 2, opt.mean_line_words * 2 ) );

    std::string text;
    text.reserve( opt.size_bytes + 64 );
    std::size_t words_left = line_len( eng );
    while( text.size() < opt.size_bytes )
    {
        text += vocab[ zipf( eng ) ];
        if( --words_left == 0 )
        {
            text += '\n';
            words_left = line_len( eng );
        }
        else
        {
            text += ' ';
        }
    }
    text.resize( opt.size_bytes );

    /** implant pattern occurrences at the requested density **/
    if( !opt.pattern.empty() && opt.implant_per_mib > 0.0 &&
        opt.pattern.size() < opt.size_bytes )
    {
        const auto mib = static_cast<double>( opt.size_bytes ) /
                         ( 1024.0 * 1024.0 );
        const auto occurrences = static_cast<std::size_t>(
            std::max( 1.0, mib * opt.implant_per_mib ) );
        std::uniform_int_distribution<std::size_t> pos(
            0, opt.size_bytes - opt.pattern.size() );
        for( std::size_t i = 0; i < occurrences; ++i )
        {
            text.replace( pos( eng ), opt.pattern.size(), opt.pattern );
        }
    }
    return text;
}

std::uint64_t oracle_count( const std::string &text,
                            const std::string &pattern )
{
    const naive_matcher oracle( pattern );
    return oracle.count( text.data(), text.size() );
}

} /** end namespace raft::algo **/
