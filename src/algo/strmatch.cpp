#include "algo/strmatch.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <stdexcept>

namespace raft::algo {

namespace {

void require_pattern( const std::string &p )
{
    if( p.empty() )
    {
        throw std::invalid_argument( "empty search pattern" );
    }
}

} /** end anonymous namespace **/

/* ------------------------------------------------------------------ */
/* naive                                                                */
/* ------------------------------------------------------------------ */

naive_matcher::naive_matcher( std::string pattern )
    : pattern_( std::move( pattern ) )
{
    require_pattern( pattern_ );
}

void naive_matcher::find( const char *data, const std::size_t len,
                          const match_cb &on_match ) const
{
    const auto m = pattern_.size();
    if( len < m )
    {
        return;
    }
    for( std::size_t i = 0; i + m <= len; ++i )
    {
        bool hit = true;
        for( std::size_t j = 0; j < m; ++j )
        {
            if( data[ i + j ] != pattern_[ j ] )
            {
                hit = false;
                break;
            }
        }
        if( hit )
        {
            on_match( i, 0 );
        }
    }
}

std::uint64_t naive_matcher::count( const char *data,
                                    const std::size_t len ) const
{
    std::uint64_t n = 0;
    find( data, len, [ &n ]( std::size_t, std::uint32_t ) { ++n; } );
    return n;
}

/* ------------------------------------------------------------------ */
/* memchr                                                               */
/* ------------------------------------------------------------------ */

memchr_matcher::memchr_matcher( std::string pattern )
    : pattern_( std::move( pattern ) )
{
    require_pattern( pattern_ );
}

void memchr_matcher::find( const char *data, const std::size_t len,
                           const match_cb &on_match ) const
{
    const auto m = pattern_.size();
    if( len < m )
    {
        return;
    }
    const char first  = pattern_[ 0 ];
    const char *cur   = data;
    const char *limit = data + ( len - m ) + 1;
    while( cur < limit )
    {
        const auto *hit = static_cast<const char *>( std::memchr(
            cur, first, static_cast<std::size_t>( limit - cur ) ) );
        if( hit == nullptr )
        {
            return;
        }
        if( m == 1 ||
            std::memcmp( hit + 1, pattern_.data() + 1, m - 1 ) == 0 )
        {
            on_match( static_cast<std::size_t>( hit - data ), 0 );
        }
        cur = hit + 1;
    }
}

std::uint64_t memchr_matcher::count( const char *data,
                                     const std::size_t len ) const
{
    const auto m = pattern_.size();
    if( len < m )
    {
        return 0;
    }
    std::uint64_t n   = 0;
    const char first  = pattern_[ 0 ];
    const char *cur   = data;
    const char *limit = data + ( len - m ) + 1;
    while( cur < limit )
    {
        const auto *hit = static_cast<const char *>( std::memchr(
            cur, first, static_cast<std::size_t>( limit - cur ) ) );
        if( hit == nullptr )
        {
            break;
        }
        if( m == 1 ||
            std::memcmp( hit + 1, pattern_.data() + 1, m - 1 ) == 0 )
        {
            ++n;
        }
        cur = hit + 1;
    }
    return n;
}

/* ------------------------------------------------------------------ */
/* Boyer–Moore–Horspool                                                 */
/* ------------------------------------------------------------------ */

bmh_matcher::bmh_matcher( std::string pattern )
    : pattern_( std::move( pattern ) )
{
    require_pattern( pattern_ );
    const auto m = pattern_.size();
    for( auto &s : skip_ )
    {
        s = m;
    }
    for( std::size_t i = 0; i + 1 < m; ++i )
    {
        skip_[ static_cast<unsigned char>( pattern_[ i ] ) ] = m - 1 - i;
    }
}

void bmh_matcher::find( const char *data, const std::size_t len,
                        const match_cb &on_match ) const
{
    const auto m = pattern_.size();
    if( len < m )
    {
        return;
    }
    std::size_t i = 0;
    while( i + m <= len )
    {
        const unsigned char last =
            static_cast<unsigned char>( data[ i + m - 1 ] );
        if( static_cast<char>( last ) == pattern_[ m - 1 ] &&
            std::memcmp( data + i, pattern_.data(), m - 1 ) == 0 )
        {
            on_match( i, 0 );
        }
        i += skip_[ last ];
    }
}

std::uint64_t bmh_matcher::count( const char *data,
                                  const std::size_t len ) const
{
    const auto m = pattern_.size();
    if( len < m )
    {
        return 0;
    }
    std::uint64_t n = 0;
    std::size_t i   = 0;
    while( i + m <= len )
    {
        const unsigned char last =
            static_cast<unsigned char>( data[ i + m - 1 ] );
        if( static_cast<char>( last ) == pattern_[ m - 1 ] &&
            std::memcmp( data + i, pattern_.data(), m - 1 ) == 0 )
        {
            ++n;
        }
        i += skip_[ last ];
    }
    return n;
}

/* ------------------------------------------------------------------ */
/* Boyer–Moore (bad character + good suffix)                            */
/* ------------------------------------------------------------------ */

bm_matcher::bm_matcher( std::string pattern )
    : pattern_( std::move( pattern ) )
{
    require_pattern( pattern_ );
    const auto m = static_cast<std::ptrdiff_t>( pattern_.size() );

    bad_char_.assign( 256, -1 );
    for( std::ptrdiff_t i = 0; i < m; ++i )
    {
        bad_char_[ static_cast<unsigned char>( pattern_[ i ] ) ] = i;
    }

    /** good-suffix preprocessing (standard strong-suffix construction) **/
    const auto mu = pattern_.size();
    std::vector<std::size_t> border( mu + 1, 0 );
    good_suffix_.assign( mu + 1, 0 );
    std::size_t i = mu, j = mu + 1;
    border[ i ]   = j;
    while( i > 0 )
    {
        while( j <= mu &&
               pattern_[ i - 1 ] != pattern_[ j - 1 ] )
        {
            if( good_suffix_[ j ] == 0 )
            {
                good_suffix_[ j ] = j - i;
            }
            j = border[ j ];
        }
        --i;
        --j;
        border[ i ] = j;
    }
    j = border[ 0 ];
    for( std::size_t k = 0; k <= mu; ++k )
    {
        if( good_suffix_[ k ] == 0 )
        {
            good_suffix_[ k ] = j;
        }
        if( k == j )
        {
            j = border[ j ];
        }
    }
}

void bm_matcher::find( const char *data, const std::size_t len,
                       const match_cb &on_match ) const
{
    const auto m = static_cast<std::ptrdiff_t>( pattern_.size() );
    if( static_cast<std::ptrdiff_t>( len ) < m )
    {
        return;
    }
    std::ptrdiff_t s = 0;
    const auto n     = static_cast<std::ptrdiff_t>( len );
    while( s <= n - m )
    {
        std::ptrdiff_t j = m - 1;
        while( j >= 0 && pattern_[ j ] == data[ s + j ] )
        {
            --j;
        }
        if( j < 0 )
        {
            on_match( static_cast<std::size_t>( s ), 0 );
            s += static_cast<std::ptrdiff_t>( good_suffix_[ 0 ] );
        }
        else
        {
            const auto bc =
                j - bad_char_[ static_cast<unsigned char>( data[ s + j ] ) ];
            const auto gs = static_cast<std::ptrdiff_t>(
                good_suffix_[ static_cast<std::size_t>( j ) + 1 ] );
            s += std::max<std::ptrdiff_t>( 1, std::max( bc, gs ) );
        }
    }
}

std::uint64_t bm_matcher::count( const char *data,
                                 const std::size_t len ) const
{
    std::uint64_t n = 0;
    find( data, len, [ &n ]( std::size_t, std::uint32_t ) { ++n; } );
    return n;
}

/* ------------------------------------------------------------------ */
/* Aho–Corasick                                                         */
/* ------------------------------------------------------------------ */

aho_corasick_matcher::aho_corasick_matcher(
    std::vector<std::string> patterns )
    : patterns_( std::move( patterns ) )
{
    if( patterns_.empty() )
    {
        throw std::invalid_argument( "aho-corasick needs >= 1 pattern" );
    }
    for( const auto &p : patterns_ )
    {
        require_pattern( p );
        max_len_ = std::max( max_len_, p.size() );
    }

    /** trie construction with sparse children first **/
    struct node
    {
        std::uint32_t child[ 256 ];
        std::uint32_t fail{ 0 };
        node() { std::fill( std::begin( child ), std::end( child ), 0u ); }
    };
    std::vector<node> trie( 1 );
    std::vector<std::vector<output>> node_out( 1 );
    for( std::uint32_t r = 0; r < patterns_.size(); ++r )
    {
        std::uint32_t cur = 0;
        for( const char ch : patterns_[ r ] )
        {
            const auto b = static_cast<unsigned char>( ch );
            if( trie[ cur ].child[ b ] == 0 )
            {
                trie.emplace_back();
                node_out.emplace_back();
                trie[ cur ].child[ b ] =
                    static_cast<std::uint32_t>( trie.size() - 1 );
            }
            cur = trie[ cur ].child[ b ];
        }
        node_out[ cur ].push_back( output{
            r, static_cast<std::uint32_t>( patterns_[ r ].size() ) } );
    }

    /** BFS: failure links + goto-automaton completion **/
    std::deque<std::uint32_t> q;
    for( unsigned b = 0; b < 256; ++b )
    {
        const auto c = trie[ 0 ].child[ b ];
        if( c != 0 )
        {
            trie[ c ].fail = 0;
            q.push_back( c );
        }
    }
    while( !q.empty() )
    {
        const auto u = q.front();
        q.pop_front();
        /** inherit outputs along failure chain (flattened) **/
        const auto f = trie[ u ].fail;
        for( const auto &o : node_out[ f ] )
        {
            node_out[ u ].push_back( o );
        }
        for( unsigned b = 0; b < 256; ++b )
        {
            const auto c = trie[ u ].child[ b ];
            if( c != 0 )
            {
                trie[ c ].fail = trie[ f ].child[ b ];
                q.push_back( c );
            }
            else
            {
                trie[ u ].child[ b ] = trie[ f ].child[ b ];
            }
        }
    }

    node_count_ = trie.size();
    next_.resize( node_count_ * 256 );
    for( std::size_t s = 0; s < node_count_; ++s )
    {
        for( unsigned b = 0; b < 256; ++b )
        {
            next_[ s * 256 + b ] = trie[ s ].child[ b ];
        }
    }
    outputs_ = std::move( node_out );
    out_count_.resize( node_count_ );
    for( std::size_t s = 0; s < node_count_; ++s )
    {
        out_count_[ s ] =
            static_cast<std::uint32_t>( outputs_[ s ].size() );
    }
}

void aho_corasick_matcher::find( const char *data, const std::size_t len,
                                 const match_cb &on_match ) const
{
    std::uint32_t state = 0;
    for( std::size_t i = 0; i < len; ++i )
    {
        state = next_[ state * 256 +
                       static_cast<unsigned char>( data[ i ] ) ];
        if( out_count_[ state ] != 0 )
        {
            for( const auto &o : outputs_[ state ] )
            {
                on_match( i + 1 - o.len, o.rule );
            }
        }
    }
}

std::uint64_t aho_corasick_matcher::count( const char *data,
                                           const std::size_t len ) const
{
    std::uint64_t n     = 0;
    std::uint32_t state = 0;
    const auto *next    = next_.data();
    const auto *oc      = out_count_.data();
    for( std::size_t i = 0; i < len; ++i )
    {
        state = next[ state * 256 +
                      static_cast<unsigned char>( data[ i ] ) ];
        n += oc[ state ];
    }
    return n;
}

} /** end namespace raft::algo **/
