#include "algo/matmul.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace raft::algo {

matrix matrix::random( const std::size_t dim, const std::uint64_t seed )
{
    matrix m( dim );
    std::mt19937_64 eng( seed );
    std::uniform_real_distribution<double> dist( -1.0, 1.0 );
    for( auto &x : m.a )
    {
        x = dist( eng );
    }
    return m;
}

matrix multiply_reference( const matrix &A, const matrix &B )
{
    if( A.n != B.n )
    {
        throw std::invalid_argument( "dimension mismatch" );
    }
    const auto n = A.n;
    matrix C( n );
    constexpr std::size_t bs = 32;
    for( std::size_t ii = 0; ii < n; ii += bs )
    {
        for( std::size_t kk = 0; kk < n; kk += bs )
        {
            for( std::size_t jj = 0; jj < n; jj += bs )
            {
                const auto ie = std::min( ii + bs, n );
                const auto ke = std::min( kk + bs, n );
                const auto je = std::min( jj + bs, n );
                for( std::size_t i = ii; i < ie; ++i )
                {
                    for( std::size_t k = kk; k < ke; ++k )
                    {
                        const double aik = A.at( i, k );
                        for( std::size_t j = jj; j < je; ++j )
                        {
                            C.at( i, j ) += aik * B.at( k, j );
                        }
                    }
                }
            }
        }
    }
    return C;
}

namespace {

std::size_t tiles_per_dim( const std::size_t n )
{
    return ( n + mm_tile_dim - 1 ) / mm_tile_dim;
}

} /** end anonymous namespace **/

mm_source::mm_source( const std::size_t n )
    : kernel(), tiles_per_dim_( tiles_per_dim( n ) ),
      tiles_( tiles_per_dim_ * tiles_per_dim_ )
{
    output.addPort<mm_work>( "0" );
}

kstatus mm_source::run()
{
    if( next_ >= tiles_ )
    {
        return raft::stop;
    }
    const auto t = static_cast<std::uint32_t>( tiles_per_dim_ );
    auto out     = output[ "0" ].allocate_s<mm_work>();
    out->tile_r  = static_cast<std::uint32_t>( next_ ) / t;
    out->tile_c  = static_cast<std::uint32_t>( next_ ) % t;
    ++next_;
    if( next_ >= tiles_ )
    {
        out.set_signal( raft::eos );
        return raft::stop;
    }
    return raft::proceed;
}

mm_multiply::mm_multiply( const matrix *A, const matrix *B )
    : kernel(), A_( A ), B_( B )
{
    input.addPort<mm_work>( "0" );
    output.addPort<mm_tile>( "0" );
}

kstatus mm_multiply::run()
{
    auto w   = input[ "0" ].pop_s<mm_work>();
    auto out = output[ "0" ].allocate_s<mm_tile>();
    out->tile_r  = w->tile_r;
    out->tile_c  = w->tile_c;
    const auto n = A_->n;
    const auto r0 =
        static_cast<std::size_t>( w->tile_r ) * mm_tile_dim;
    const auto c0 =
        static_cast<std::size_t>( w->tile_c ) * mm_tile_dim;
    for( std::size_t i = 0; i < mm_tile_dim && r0 + i < n; ++i )
    {
        for( std::size_t k = 0; k < n; ++k )
        {
            const double aik = A_->at( r0 + i, k );
            for( std::size_t j = 0; j < mm_tile_dim && c0 + j < n; ++j )
            {
                out->v[ i * mm_tile_dim + j ] +=
                    aik * B_->at( k, c0 + j );
            }
        }
    }
    return raft::proceed;
}

mm_sink::mm_sink( matrix *C ) : kernel(), C_( C )
{
    input.addPort<mm_tile>( "0" );
}

kstatus mm_sink::run()
{
    auto t       = input[ "0" ].pop_s<mm_tile>();
    const auto n = C_->n;
    const auto r0 =
        static_cast<std::size_t>( t->tile_r ) * mm_tile_dim;
    const auto c0 =
        static_cast<std::size_t>( t->tile_c ) * mm_tile_dim;
    for( std::size_t i = 0; i < mm_tile_dim && r0 + i < n; ++i )
    {
        for( std::size_t j = 0; j < mm_tile_dim && c0 + j < n; ++j )
        {
            C_->at( r0 + i, c0 + j ) = t->v[ i * mm_tile_dim + j ];
        }
    }
    return raft::proceed;
}

} /** end namespace raft::algo **/
