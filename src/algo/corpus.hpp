/**
 * corpus.hpp — synthetic text-corpus generator.
 *
 * Substitute for the paper's 30 GB Stack Exchange post-history dump (§5),
 * which is unavailable offline. The generator emits English-like text —
 * Zipf-distributed words built from plausible syllables, punctuation,
 * line breaks — with a controllable density of implanted pattern
 * occurrences. String-search throughput depends on byte statistics and
 * match density, which the generator controls, so relative algorithm
 * behaviour (the shape of Figure 10) is preserved. Fully deterministic for
 * a given seed.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace raft::algo {

struct corpus_options
{
    std::size_t size_bytes{ 1u << 20 };
    std::uint64_t seed{ 0x5eedc0ffee ^ 0 };
    /** Implanted occurrences of `pattern` per MiB (0 = rely on chance). */
    double implant_per_mib{ 8.0 };
    std::string pattern;
    /** Zipf exponent of the word frequency distribution. */
    double zipf_s{ 1.1 };
    std::size_t vocabulary{ 4096 };
    std::size_t mean_line_words{ 12 };
};

/** Generate a corpus per `opt`. The returned string has exactly
 *  opt.size_bytes bytes. */
std::string make_corpus( const corpus_options &opt );

/** Ground-truth occurrence count of `pattern` in `text` (overlapping),
 *  computed with the naive oracle — used by tests and benches to validate
 *  every parallel pipeline's result. */
std::uint64_t oracle_count( const std::string &text,
                            const std::string &pattern );

} /** end namespace raft::algo **/
