/**
 * strmatch.hpp — exact string-matching algorithms (paper §5).
 *
 * The benchmark study parallelizes two algorithms with RaftLib:
 *  - Aho–Corasick [4]: automaton-based, "quite good for multiple string
 *    patterns"; examines every input byte.
 *  - Boyer–Moore–Horspool [27]: "often much faster for single pattern
 *    matching"; skips heuristically, so its downstream data volume is
 *    highly data-dependent (§3's dynamic-rate discussion).
 *
 * Also implemented:
 *  - Boyer–Moore (bad-character + good-suffix): the algorithm the paper's
 *    Apache Spark comparator runs;
 *  - memchr_matcher: memchr-accelerated first-byte scan + verify, standing
 *    in for GNU grep's tuned single-pattern matcher in the pgrep baseline;
 *  - naive_matcher: the obviously-correct oracle for property tests.
 *
 * All matchers implement the same interface over a byte window; both a
 * position-reporting find() and an allocation-free count() are provided
 * (count() is the hot path of the throughput benchmarks).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace raft::algo {

/** Called per match: (start position within the window, pattern index). */
using match_cb = std::function<void( std::size_t, std::uint32_t )>;

class matcher
{
public:
    virtual ~matcher() = default;

    /** Report every match with its start position in [0, len). */
    virtual void find( const char *data, std::size_t len,
                       const match_cb &on_match ) const = 0;

    /** Number of matches (no allocation, no callback overhead). */
    virtual std::uint64_t count( const char *data,
                                 std::size_t len ) const = 0;

    virtual const char *name() const noexcept = 0;

    /** Longest pattern length — the segment overlap needed so boundary-
     *  straddling matches are found (max_pattern_len() - 1 bytes). */
    virtual std::size_t max_pattern_len() const noexcept = 0;
};

/** Brute-force oracle: correct by inspection. */
class naive_matcher final : public matcher
{
public:
    explicit naive_matcher( std::string pattern );
    void find( const char *data, std::size_t len,
               const match_cb &on_match ) const override;
    std::uint64_t count( const char *data, std::size_t len ) const override;
    const char *name() const noexcept override { return "naive"; }
    std::size_t max_pattern_len() const noexcept override
    {
        return pattern_.size();
    }

private:
    std::string pattern_;
};

/** memchr on the first byte + memcmp verify (grep's hot loop in spirit). */
class memchr_matcher final : public matcher
{
public:
    explicit memchr_matcher( std::string pattern );
    void find( const char *data, std::size_t len,
               const match_cb &on_match ) const override;
    std::uint64_t count( const char *data, std::size_t len ) const override;
    const char *name() const noexcept override { return "memchr"; }
    std::size_t max_pattern_len() const noexcept override
    {
        return pattern_.size();
    }

private:
    std::string pattern_;
};

/** Boyer–Moore–Horspool [27]: bad-character skip only. */
class bmh_matcher final : public matcher
{
public:
    explicit bmh_matcher( std::string pattern );
    void find( const char *data, std::size_t len,
               const match_cb &on_match ) const override;
    std::uint64_t count( const char *data, std::size_t len ) const override;
    const char *name() const noexcept override
    {
        return "boyer-moore-horspool";
    }
    std::size_t max_pattern_len() const noexcept override
    {
        return pattern_.size();
    }

private:
    std::string pattern_;
    std::size_t skip_[ 256 ];
};

/** Full Boyer–Moore: bad-character + good-suffix rules. */
class bm_matcher final : public matcher
{
public:
    explicit bm_matcher( std::string pattern );
    void find( const char *data, std::size_t len,
               const match_cb &on_match ) const override;
    std::uint64_t count( const char *data, std::size_t len ) const override;
    const char *name() const noexcept override { return "boyer-moore"; }
    std::size_t max_pattern_len() const noexcept override
    {
        return pattern_.size();
    }

private:
    std::string pattern_;
    std::vector<std::ptrdiff_t> bad_char_; /** 256 entries             */
    std::vector<std::size_t> good_suffix_;
};

/** Aho–Corasick [4]: multi-pattern automaton with dense goto tables. */
class aho_corasick_matcher final : public matcher
{
public:
    explicit aho_corasick_matcher( std::vector<std::string> patterns );
    explicit aho_corasick_matcher( std::string pattern )
        : aho_corasick_matcher(
              std::vector<std::string>{ std::move( pattern ) } )
    {
    }

    void find( const char *data, std::size_t len,
               const match_cb &on_match ) const override;
    std::uint64_t count( const char *data, std::size_t len ) const override;
    const char *name() const noexcept override { return "aho-corasick"; }
    std::size_t max_pattern_len() const noexcept override
    {
        return max_len_;
    }

    std::size_t state_count() const noexcept { return node_count_; }

private:
    struct output
    {
        std::uint32_t rule;
        std::uint32_t len;
    };

    std::vector<std::string> patterns_;
    std::size_t max_len_{ 0 };
    std::size_t node_count_{ 0 };
    /** dense transition table: next_[state * 256 + byte] */
    std::vector<std::uint32_t> next_;
    /** per-state match outputs (patterns ending at this state, including
     *  via failure-link chains — precomputed flat) */
    std::vector<std::vector<output>> outputs_;
    /** per-state count of outputs (fast path for count()) */
    std::vector<std::uint32_t> out_count_;
};

/** Algorithm tags used by the search kernel's template parameter:
 *  `search< ahocorasick >` / `search< boyermoore >` (Figure 9). */
struct ahocorasick
{
};
struct boyermoore
{
};
struct boyermoorehorspool
{
};

/** Factory keyed by tag type. */
template <class Tag>
std::unique_ptr<matcher> make_matcher( const std::string &pattern );

template <>
inline std::unique_ptr<matcher>
make_matcher<ahocorasick>( const std::string &pattern )
{
    return std::make_unique<aho_corasick_matcher>( pattern );
}

template <>
inline std::unique_ptr<matcher>
make_matcher<boyermoore>( const std::string &pattern )
{
    return std::make_unique<bm_matcher>( pattern );
}

template <>
inline std::unique_ptr<matcher>
make_matcher<boyermoorehorspool>( const std::string &pattern )
{
    return std::make_unique<bmh_matcher>( pattern );
}

} /** end namespace raft::algo **/
