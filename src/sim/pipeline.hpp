/**
 * pipeline.hpp — queueing-network simulation of a streaming pipeline.
 *
 * Simulates a linear pipeline of stages — each a multi-server station with
 * a finite upstream queue — with manufacturing blocking: a server that
 * finishes an item while the downstream queue is full holds the item (and
 * the server) until space opens, exactly the stall behaviour of a RaftLib
 * kernel blocking on a full output stream. This is the model §3 invokes
 * ("Streaming systems can be modeled as queueing networks. Each stream
 * within the system is a queue.") made executable.
 *
 * Service times may be deterministic or exponential; a global resource pool
 * (memory bandwidth) can cap the aggregate service rate of flagged stages —
 * this is what flattens the BMH curve past ~10 cores in Figure 10 ("the
 * memory system itself becomes the bottleneck").
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sim/des.hpp"

namespace raft::sim {

enum class service_dist
{
    deterministic,    /**< CV = 0                                    */
    uniform,          /**< U(0, 2/rate): CV = 1/sqrt(3)              */
    exponential,      /**< CV = 1                                    */
    hyperexponential  /**< balanced-means H2 with CV^2 = 4           */
};

/** Squared coefficient of variation of a service distribution. */
double service_scv( service_dist d );

struct stage_desc
{
    std::string name;
    double service_rate{ 1.0 }; /**< items/s per server                  */
    std::size_t servers{ 1 };
    std::size_t queue_capacity{ 64 }; /**< upstream queue (stage 0: ∞)   */
    service_dist dist{ service_dist::exponential };
    /** When true, this stage's aggregate rate is capped by the shared
     *  bandwidth pool (see pipeline_desc::shared_bandwidth_rate). */
    bool uses_shared_bandwidth{ false };
};

struct pipeline_desc
{
    std::vector<stage_desc> stages;
    std::uint64_t items{ 10'000 };
    /** Aggregate items/s available to bandwidth-capped stages
     *  (0 = uncapped). */
    double shared_bandwidth_rate{ 0.0 };
    std::uint64_t seed{ 0xD35C0DE };
};

struct stage_metrics
{
    std::string name;
    std::uint64_t completed{ 0 };
    double utilization{ 0.0 };     /**< busy server-time / (T · servers) */
    double mean_queue_len{ 0.0 };  /**< time-averaged                    */
    double blocked_fraction{ 0.0 };/**< server-time spent output-blocked */
};

struct pipeline_result
{
    double makespan_s{ 0.0 };
    double throughput_items_per_s{ 0.0 };
    std::vector<stage_metrics> stages;
};

/** Run the pipeline until `items` have left the final stage. */
pipeline_result simulate_pipeline( const pipeline_desc &desc );

} /** end namespace raft::sim **/
