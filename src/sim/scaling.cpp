#include "sim/scaling.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#if defined( __unix__ )
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "algo/strmatch.hpp"

namespace raft::sim {

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point &t0 )
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0 )
        .count();
}

/** Time a matcher over the corpus; returns bytes/s. */
double measure_matcher( const algo::matcher &m, const std::string &corpus )
{
    /** warm-up pass, then timed passes until >= 50 ms accumulated **/
    volatile std::uint64_t sink =
        m.count( corpus.data(), std::min<std::size_t>( corpus.size(),
                                                       1u << 16 ) );
    (void) sink;
    double elapsed   = 0.0;
    std::size_t reps = 0;
    const auto t0    = std::chrono::steady_clock::now();
    do
    {
        sink    = m.count( corpus.data(), corpus.size() );
        elapsed = seconds_since( t0 );
        ++reps;
    } while( elapsed < 0.05 );
    return static_cast<double>( corpus.size() ) *
           static_cast<double>( reps ) / elapsed;
}

double measure_mem_bw()
{
    const std::size_t n = 32u << 20; /** 32 MiB **/
    std::vector<std::uint64_t> buf( n / sizeof( std::uint64_t ), 1 );
    volatile std::uint64_t sink = 0;
    /** warm **/
    sink = std::accumulate( buf.begin(), buf.end(), std::uint64_t{ 0 } );
    double elapsed   = 0.0;
    std::size_t reps = 0;
    const auto t0    = std::chrono::steady_clock::now();
    do
    {
        sink = sink + std::accumulate( buf.begin(), buf.end(),
                                       std::uint64_t{ 0 } );
        elapsed = seconds_since( t0 );
        ++reps;
    } while( elapsed < 0.1 );
    (void) sink;
    return static_cast<double>( n ) * static_cast<double>( reps ) /
           elapsed;
}

double measure_thread_spawn()
{
    constexpr int reps = 64;
    const auto t0      = std::chrono::steady_clock::now();
    for( int i = 0; i < reps; ++i )
    {
        std::thread t( []() {} );
        t.join();
    }
    return seconds_since( t0 ) / reps;
}

double measure_process_spawn()
{
#if defined( __unix__ )
    constexpr int reps = 16;
    const auto t0      = std::chrono::steady_clock::now();
    for( int i = 0; i < reps; ++i )
    {
        const pid_t pid = fork();
        if( pid == 0 )
        {
            _exit( 0 );
        }
        if( pid > 0 )
        {
            int status = 0;
            waitpid( pid, &status, 0 );
        }
    }
    return seconds_since( t0 ) / reps;
#else
    return 0.002;
#endif
}

double measure_pipe_bw()
{
#if defined( __unix__ )
    int fds[ 2 ];
    if( pipe( fds ) != 0 )
    {
        return 1e9;
    }
    constexpr std::size_t total = 32u << 20;
    constexpr std::size_t chunk = 64u << 10;
    std::vector<char> wbuf( chunk, 'x' ), rbuf( chunk );
    const auto t0 = std::chrono::steady_clock::now();
    std::thread writer( [ & ]() {
        std::size_t sent = 0;
        while( sent < total )
        {
            const auto k = write( fds[ 1 ], wbuf.data(), chunk );
            if( k <= 0 )
            {
                break;
            }
            sent += static_cast<std::size_t>( k );
        }
        close( fds[ 1 ] );
    } );
    std::size_t got = 0;
    for( ;; )
    {
        const auto k = read( fds[ 0 ], rbuf.data(), chunk );
        if( k <= 0 )
        {
            break;
        }
        got += static_cast<std::size_t>( k );
    }
    writer.join();
    close( fds[ 0 ] );
    const auto dt = seconds_since( t0 );
    /** the distributor both reads stdin and writes the pipe: halve **/
    return dt > 0.0 ? static_cast<double>( got ) / dt / 2.0 : 1e9;
#else
    return 1e9;
#endif
}

} /** end anonymous namespace **/

calibration calibrate( const std::string &corpus,
                       const std::string &pattern )
{
    calibration c;
    c.memchr_bps = measure_matcher( algo::memchr_matcher( pattern ),
                                    corpus );
    c.ac_bps  = measure_matcher( algo::aho_corasick_matcher( pattern ),
                                 corpus );
    c.bmh_bps = measure_matcher( algo::bmh_matcher( pattern ), corpus );
    c.bm_bps  = measure_matcher( algo::bm_matcher( pattern ), corpus );
    c.mem_bw_bps      = measure_mem_bw();
    c.thread_spawn_s  = measure_thread_spawn();
    c.process_spawn_s = measure_process_spawn();
    c.pipe_bw_bps     = measure_pipe_bw();
    return c;
}

std::vector<scaling_point> model_pgrep( const calibration &c,
                                        const double file_bytes,
                                        const unsigned max_cores )
{
    std::vector<scaling_point> out;
    const auto block = c.parallel_block_bytes;
    const auto items =
        static_cast<std::uint64_t>( std::max( 1.0, file_bytes / block ) );
    for( unsigned n = 1; n <= max_cores; ++n )
    {
        pipeline_desc d;
        /** stage 0: the GNU Parallel parent — reads stdin, chops blocks,
         *  writes each down a worker pipe. Single-threaded. */
        const double distribute_bps =
            std::min( c.pipe_bw_bps, c.parallel_split_bps );
        d.stages.push_back( stage_desc{
            "distribute", distribute_bps / block, 1, 4,
            service_dist::deterministic, false } );
        /** stage 1: per-block grep job — fresh process each block.
         *  Equal-size blocks of exact search take near-deterministic
         *  time. **/
        const double job_s =
            c.process_spawn_s + block / c.memchr_bps;
        d.stages.push_back( stage_desc{ "grep", 1.0 / job_s, n, 2 * n,
                                        service_dist::deterministic,
                                        true } );
        d.items                 = items;
        d.shared_bandwidth_rate = c.mem_bw_bps / block;
        const auto r            = simulate_pipeline( d );
        out.push_back( scaling_point{
            n, r.throughput_items_per_s * block / 1e9 } );
    }
    return out;
}

std::vector<scaling_point> model_spark( const calibration &c,
                                        const double file_bytes,
                                        const unsigned max_cores )
{
    std::vector<scaling_point> out;
    const auto part = c.spark_partition_bytes;
    const auto items =
        static_cast<std::uint64_t>( std::max( 1.0, file_bytes / part ) );
    for( unsigned n = 1; n <= max_cores; ++n )
    {
        pipeline_desc d;
        /** stage 0: driver task dispatch (fast relative to task time) **/
        d.stages.push_back( stage_desc{
            "driver", 1.0 / c.spark_task_overhead_s, 1, 8,
            service_dist::deterministic, false } );
        /** stage 1: executor — JVM Boyer–Moore over one partition **/
        const double task_s =
            part / ( c.bm_bps * c.jvm_matcher_factor ) +
            c.spark_task_overhead_s;
        d.stages.push_back( stage_desc{ "executor", 1.0 / task_s, n,
                                        2 * n,
                                        service_dist::deterministic,
                                        true } );
        d.items                 = items;
        d.shared_bandwidth_rate = c.mem_bw_bps / part;
        const auto r            = simulate_pipeline( d );
        out.push_back( scaling_point{
            n, r.throughput_items_per_s * part / 1e9 } );
    }
    return out;
}

std::vector<scaling_point> model_raft( const calibration &c,
                                       const double algo_bps,
                                       const double file_bytes,
                                       const unsigned max_cores )
{
    std::vector<scaling_point> out;
    const auto seg = c.raft_segment_bytes;
    const auto items =
        static_cast<std::uint64_t>( std::max( 1.0, file_bytes / seg ) );
    for( unsigned n = 1; n <= max_cores; ++n )
    {
        pipeline_desc d;
        /** stage 0: filereader — mints zero-copy descriptors, cheap **/
        d.stages.push_back( stage_desc{ "filereader", 2e6, 1, 8,
                                        service_dist::deterministic,
                                        false } );
        /** stage 1: n replicated match kernels; they stream the corpus
         *  bytes, so the shared memory system caps their aggregate **/
        d.stages.push_back( stage_desc{ "match", algo_bps / seg, n,
                                        64,
                                        service_dist::deterministic,
                                        true } );
        /** stage 2: reduce — descriptor merge, cheap **/
        d.stages.push_back( stage_desc{ "reduce", 5e6, 1, 64,
                                        service_dist::deterministic,
                                        false } );
        d.items                 = items;
        d.shared_bandwidth_rate = c.mem_bw_bps / seg;
        const auto r            = simulate_pipeline( d );
        out.push_back( scaling_point{
            n, r.throughput_items_per_s * seg / 1e9 } );
    }
    return out;
}

double plain_grep_gbps( const calibration &c )
{
    return c.memchr_bps / 1e9;
}

} /** end namespace raft::sim **/
