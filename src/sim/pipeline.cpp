#include "sim/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace raft::sim {

namespace {

class pipeline_sim
{
public:
    explicit pipeline_sim( const pipeline_desc &desc )
        : desc_( desc ), eng_(), rng_( desc.seed )
    {
        const auto n = desc_.stages.size();
        queue_len_.assign( n, 0 );
        busy_.assign( n, 0 );
        blocked_.assign( n, 0 );
        busy_integral_.assign( n, 0.0 );
        queue_integral_.assign( n, 0.0 );
        blocked_integral_.assign( n, 0.0 );
        last_t_.assign( n, 0.0 );
        completed_.assign( n, 0 );
        source_remaining_ = desc_.items;
    }

    pipeline_result run()
    {
        admit( 0 );
        eng_.run();
        const auto n = desc_.stages.size();
        const auto T = eng_.now();
        pipeline_result r;
        r.makespan_s = T;
        r.throughput_items_per_s =
            T > 0.0 ? static_cast<double>( desc_.items ) / T : 0.0;
        for( std::size_t i = 0; i < n; ++i )
        {
            integrate( i ); /** close out to T **/
            stage_metrics m;
            m.name      = desc_.stages[ i ].name;
            m.completed = completed_[ i ];
            const auto denom =
                T * static_cast<double>( desc_.stages[ i ].servers );
            m.utilization =
                denom > 0.0 ? busy_integral_[ i ] / denom : 0.0;
            m.mean_queue_len =
                T > 0.0 ? queue_integral_[ i ] / T : 0.0;
            m.blocked_fraction =
                denom > 0.0 ? blocked_integral_[ i ] / denom : 0.0;
            r.stages.push_back( std::move( m ) );
        }
        return r;
    }

private:
    void integrate( const std::size_t i )
    {
        const auto dt = eng_.now() - last_t_[ i ];
        if( dt > 0.0 )
        {
            busy_integral_[ i ] += static_cast<double>( busy_[ i ] ) * dt;
            queue_integral_[ i ] +=
                static_cast<double>( queue_len_[ i ] ) * dt;
            blocked_integral_[ i ] +=
                static_cast<double>( blocked_[ i ] ) * dt;
            last_t_[ i ] = eng_.now();
        }
        else
        {
            last_t_[ i ] = eng_.now();
        }
    }

    std::size_t free_servers( const std::size_t i ) const
    {
        return desc_.stages[ i ].servers - busy_[ i ] - blocked_[ i ];
    }

    bool input_available( const std::size_t i ) const
    {
        return i == 0 ? source_remaining_ > 0 : queue_len_[ i ] > 0;
    }

    std::size_t active_bandwidth_servers() const
    {
        std::size_t a = 0;
        for( std::size_t i = 0; i < desc_.stages.size(); ++i )
        {
            if( desc_.stages[ i ].uses_shared_bandwidth )
            {
                a += busy_[ i ];
            }
        }
        return a;
    }

    double sample_service( const std::size_t i )
    {
        const auto &st = desc_.stages[ i ];
        double rate    = st.service_rate;
        if( st.uses_shared_bandwidth && desc_.shared_bandwidth_rate > 0.0 )
        {
            /** processor-sharing approximation over the shared pool:
             *  the per-server rate shrinks as flagged servers pile on **/
            const auto active = static_cast<double>(
                std::max<std::size_t>( 1, active_bandwidth_servers() ) );
            rate = std::min( rate,
                             desc_.shared_bandwidth_rate / active );
        }
        if( rate <= 0.0 )
        {
            rate = 1e-12;
        }
        switch( st.dist )
        {
            case service_dist::deterministic:
                return 1.0 / rate;
            case service_dist::uniform:
            {
                std::uniform_real_distribution<double> u( 0.0,
                                                          2.0 / rate );
                return u( rng_ );
            }
            case service_dist::hyperexponential:
            {
                /** balanced-means H2 with SCV = 4: branch prob
                 *  p = (1 + sqrt(3/5)) / 2, branch rates 2 p rate and
                 *  2 (1-p) rate keep the mean at 1/rate **/
                static const double p =
                    0.5 * ( 1.0 + std::sqrt( 3.0 / 5.0 ) );
                std::uniform_real_distribution<double> u( 0.0, 1.0 );
                const double branch_rate =
                    u( rng_ ) < p ? 2.0 * p * rate
                                  : 2.0 * ( 1.0 - p ) * rate;
                std::exponential_distribution<double> e( branch_rate );
                return e( rng_ );
            }
            case service_dist::exponential:
            default:
            {
                std::exponential_distribution<double> exp_d( rate );
                return exp_d( rng_ );
            }
        }
    }

    /** Pull available input into free servers at stage i. */
    void admit( const std::size_t i )
    {
        while( free_servers( i ) > 0 && input_available( i ) )
        {
            integrate( i );
            if( i == 0 )
            {
                --source_remaining_;
            }
            else
            {
                --queue_len_[ i ];
                unblock_upstream( i );
            }
            ++busy_[ i ];
            const auto dt = sample_service( i );
            eng_.schedule_in( dt, [ this, i ]() { complete( i ); } );
        }
    }

    /** A slot opened in queue i: a blocked stage i-1 server's held item
     *  moves in, freeing that server. */
    void unblock_upstream( const std::size_t i )
    {
        if( i == 0 || blocked_[ i - 1 ] == 0 )
        {
            return;
        }
        integrate( i - 1 );
        integrate( i );
        --blocked_[ i - 1 ];
        ++queue_len_[ i ];
        ++completed_[ i - 1 ];
        admit( i - 1 );
    }

    void complete( const std::size_t i )
    {
        integrate( i );
        const auto last = desc_.stages.size() - 1;
        if( i == last )
        {
            --busy_[ i ];
            ++completed_[ i ];
            admit( i );
            return;
        }
        if( queue_len_[ i + 1 ] <
            desc_.stages[ i + 1 ].queue_capacity )
        {
            integrate( i + 1 );
            --busy_[ i ];
            ++queue_len_[ i + 1 ];
            ++completed_[ i ];
            admit( i + 1 );
            admit( i );
        }
        else
        {
            /** manufacturing blocking: hold the item in the server **/
            --busy_[ i ];
            ++blocked_[ i ];
        }
    }

    pipeline_desc desc_;
    des_engine eng_;
    std::mt19937_64 rng_;
    std::vector<std::size_t> queue_len_, busy_, blocked_;
    std::vector<double> busy_integral_, queue_integral_,
        blocked_integral_, last_t_;
    std::vector<std::uint64_t> completed_;
    std::uint64_t source_remaining_{ 0 };
};

} /** end anonymous namespace **/

double service_scv( const service_dist d )
{
    switch( d )
    {
        case service_dist::deterministic:
            return 0.0;
        case service_dist::uniform:
            return 1.0 / 3.0;
        case service_dist::hyperexponential:
            return 4.0;
        case service_dist::exponential:
        default:
            return 1.0;
    }
}

pipeline_result simulate_pipeline( const pipeline_desc &desc )
{
    if( desc.stages.empty() )
    {
        throw std::invalid_argument( "pipeline needs >= 1 stage" );
    }
    pipeline_sim sim( desc );
    return sim.run();
}

} /** end namespace raft::sim **/
