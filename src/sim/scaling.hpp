/**
 * scaling.hpp — calibrated scaling models for the Figure 10 study.
 *
 * The paper measures four string-search systems on a 16-core Xeon (Table 1):
 * GNU-Parallel-parallelized grep, Apache Spark running Boyer–Moore,
 * RaftLib + Aho–Corasick and RaftLib + Boyer–Moore–Horspool. This host has
 * one core, so each framework's *execution structure* is simulated as the
 * queueing network it actually is (sim/pipeline.hpp), with every rate
 * constant calibrated by running the real code on the live machine:
 *
 *  - matcher service rates: the actual algo:: matchers timed over the
 *    actual corpus;
 *  - memory bandwidth: a measured streaming scan (the ceiling that flattens
 *    BMH past ~10 cores — "the memory system itself becomes the
 *    bottleneck", §5);
 *  - process/thread spawn cost: measured fork/join (GNU Parallel spawns a
 *    fresh grep per block);
 *  - pipe bandwidth: measured (GNU Parallel's single-threaded parent
 *    distributes stdin through pipes — its structural bottleneck);
 *  - the JVM matcher factor and Spark task overhead are documented
 *    constants (no JVM offline), chosen so the single-core Spark/grep ratio
 *    matches the paper's reported absolute rates.
 *
 * Framework structure (who has what bottleneck) is what produces the
 * paper's shape; the constants only set the scale.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/pipeline.hpp"

namespace raft::sim {

struct calibration
{
    /** measured single-core matcher rates, bytes/s **/
    double memchr_bps{ 0.0 }; /**< grep's hot loop stand-in */
    double ac_bps{ 0.0 };
    double bmh_bps{ 0.0 };
    double bm_bps{ 0.0 };

    double mem_bw_bps{ 0.0 };      /**< measured streaming scan        */
    double thread_spawn_s{ 0.0 };  /**< measured create+join           */
    double process_spawn_s{ 0.0 }; /**< measured fork+waitpid          */
    double pipe_bw_bps{ 0.0 };     /**< measured pipe transfer         */

    /** documented substitution constants (see DESIGN.md §3) **/
    double jvm_matcher_factor{ 0.25 };
    /** GNU Parallel's --pipe parent is an interpreted record splitter;
     *  its sustained distribution rate is far below raw pipe bandwidth
     *  (GNU Parallel documentation reports order-100 MB/s; 0.5 GB/s is
     *  a generous bound). */
    double parallel_split_bps{ 0.5e9 };
    double spark_task_overhead_s{ 0.005 };
    double spark_partition_bytes{ 32.0 * 1024 * 1024 };
    double parallel_block_bytes{ 1.0 * 1024 * 1024 };
    double raft_segment_bytes{ 64.0 * 1024 };
};

/** Measure every live constant against `corpus` / `pattern`. */
calibration calibrate( const std::string &corpus,
                       const std::string &pattern );

struct scaling_point
{
    unsigned cores{ 1 };
    double gbps{ 0.0 };
};

/** GNU-Parallel grep: single-threaded pipe distributor feeding n
 *  spawn-per-block grep workers. */
std::vector<scaling_point> model_pgrep( const calibration &c,
                                        double file_bytes,
                                        unsigned max_cores );

/** Apache Spark: driver task dispatch feeding n executors running
 *  (JVM-factored) Boyer–Moore over fixed partitions. */
std::vector<scaling_point> model_spark( const calibration &c,
                                        double file_bytes,
                                        unsigned max_cores );

/** RaftLib: filereader (descriptor source) feeding n replicated match
 *  kernels (memory-bandwidth-capped) feeding a reduce. `algo_bps` selects
 *  the matcher (c.ac_bps or c.bmh_bps). */
std::vector<scaling_point> model_raft( const calibration &c,
                                       double algo_bps,
                                       double file_bytes,
                                       unsigned max_cores );

/** Plain single-threaded grep reference (the paper's ~1.2 GB/s remark). */
double plain_grep_gbps( const calibration &c );

} /** end namespace raft::sim **/
