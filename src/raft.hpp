/**
 * raft.hpp — umbrella header for the RaftLib reproduction.
 *
 *   #include <raft.hpp>   // or "raft.hpp" with src/ on the include path
 *
 * Pulls in the full public API: kernels, ports, streams, the map, the
 * standard kernel library, options and statistics. Substrate libraries
 * (queueing models, mapping, net, simulator, baselines) have their own
 * headers under queueing/, mapping/, net/, sim/ and baselines/.
 */
#pragma once

#include "core/defs.hpp"
#include "core/exceptions.hpp"
#include "core/restart.hpp"
#include "core/fifo.hpp"
#include "core/graph.hpp"
#include "core/kernel.hpp"
#include "core/kstatus.hpp"
#include "core/map.hpp"
#include "core/monitor.hpp"
#include "core/options.hpp"
#include "core/parallel.hpp"
#include "core/port.hpp"
#include "core/ringbuffer.hpp"
#include "core/scheduler.hpp"
#include "core/signal.hpp"
#include "core/split_strategy.hpp"

#include "core/kernels/filereader.hpp"
#include "core/kernels/for_each.hpp"
#include "core/kernels/functional.hpp"
#include "core/kernels/generate.hpp"
#include "core/kernels/lambdak.hpp"
#include "core/kernels/print.hpp"
#include "core/kernels/read_each.hpp"
#include "core/kernels/reduce.hpp"
#include "core/kernels/reorder.hpp"
#include "core/kernels/search.hpp"
#include "core/kernels/segment.hpp"
#include "core/kernels/sum.hpp"
#include "core/kernels/synonym.hpp"
#include "core/kernels/write_each.hpp"

#include "analysis/analysis.hpp"

#include "runtime/elastic/elastic.hpp"
#include "runtime/elastic/estimator.hpp"
#include "runtime/elastic/policy.hpp"
#include "runtime/inject.hpp"
#include "runtime/stats.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/telemetry/exporters.hpp"
#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/telemetry.hpp"
#include "runtime/telemetry/trace.hpp"
